// serve_inference: the network serving front end as a runnable binary.
//
// Opens an InferenceSession over one or more model-zoo networks,
// pre-stages the whole variant fleet off the serving path (vector
// prepare_async), then serves framed inference requests over loopback TCP
// until SIGINT/SIGTERM:
//
//   ./build/examples/serve_inference                 # lenet5, port 7790
//   ./build/examples/serve_inference --port=0        # ephemeral port
//   ./build/examples/serve_inference --backend=soc --replay-budget=8mib
//       --models=lenet5,resnet18_cifar
//
// The first --models entry is the session's default model; the rest
// register alongside it and are reachable per request with a
// `?model=NAME` spec ("soc?model=resnet18_cifar"). --replay-budget bounds
// the bytes replay residency may hold across models (schedules + arenas);
// cold models shed arenas, then schedules, and re-stage transparently on
// their next request.
//
// Protocol (see src/server/frame.hpp): length-prefixed binary frames,
// request = id + backend spec + image floats, response = id + status +
// output tensor (or error text), streamed in completion order. The
// bench_serving_latency load generator and the Client class in
// src/server/client.hpp speak it.
#include <cctype>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "models/models.hpp"
#include "runtime/execution_backend.hpp"
#include "runtime/inference_session.hpp"
#include "server/inference_server.hpp"

namespace {

nvsoc::server::InferenceServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->shutdown();
}

const char* arg_value(const char* arg, const char* key) {
  const std::size_t len = std::strlen(key);
  return std::strncmp(arg, key, len) == 0 ? arg + len : nullptr;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (at <= csv.size()) {
    const std::size_t comma = csv.find(',', at);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > at) out.push_back(csv.substr(at, end - at));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

// Zoo names are spelled "LeNet-5"; accept the relaxed CLI spellings the
// older --model flag taught people ("lenet5", "resnet18_cifar").
std::string normalized(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

const nvsoc::models::ModelInfo* find_model(const std::string& name) {
  const std::string want =
      normalized(name == "resnet18_cifar" ? "ResNet-18" : name);
  for (const auto& info : nvsoc::models::model_zoo()) {
    if (normalized(info.name) == want) return &info;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nvsoc;

  std::string models_csv = "lenet5";
  std::string backend = "vp";
  std::string replay_budget;
  std::string fault_plan;
  int port = 7790;
  int deadline_ms = 0;
  int max_inflight = 0;
  int retries = 0;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = arg_value(argv[i], "--models=")) {
      models_csv = v;
    } else if (const char* v = arg_value(argv[i], "--model=")) {
      models_csv = v;  // legacy singular spelling
    } else if (const char* v = arg_value(argv[i], "--backend=")) {
      backend = v;
    } else if (const char* v = arg_value(argv[i], "--replay-budget=")) {
      replay_budget = v;
    } else if (const char* v = arg_value(argv[i], "--fault=")) {
      fault_plan = v;
    } else if (const char* v = arg_value(argv[i], "--deadline-ms=")) {
      deadline_ms = std::atoi(v);
    } else if (const char* v = arg_value(argv[i], "--max-inflight=")) {
      max_inflight = std::atoi(v);
    } else if (const char* v = arg_value(argv[i], "--retries=")) {
      retries = std::atoi(v);
    } else if (const char* v = arg_value(argv[i], "--port=")) {
      port = std::atoi(v);
    } else {
      std::printf(
          "usage: %s [--models=NAME[,NAME...]] [--backend=SPEC] "
          "[--replay-budget=SIZE]\n  [--fault=PLAN] [--deadline-ms=N] "
          "[--max-inflight=N] [--retries=N] [--port=N]\n\nServes framed "
          "inference requests over loopback TCP; --port=0 binds an\n"
          "ephemeral port (printed on startup). The first --models entry is "
          "the\ndefault model; the rest are reachable with a '?model=NAME' "
          "spec in the\nrequest's backend string. --replay-budget (e.g. "
          "8mib) bounds replay\nresidency across models. The per-request "
          "backend spec in each frame wins;\n--backend only picks what to "
          "pre-stage. Zoo models (case and\npunctuation insensitive): "
          "LeNet-5, ResNet-18, ResNet-50, MobileNet,\nGoogleNet, "
          "AlexNet.\n\nRobustness knobs:\n  --fault=PLAN       arm a "
          "deterministic session fault plan, e.g.\n                     "
          "'flip:1e-6+csb_error:0.01+seed:7' (kinds: flip,\n"
          "                     csb_timeout, csb_error, dbb_error, stall, "
          "staging, replay)\n  --deadline-ms=N    per-request wall-clock "
          "deadline (server scan +\n                     session task "
          "boundaries); expired requests answer\n                     "
          "DEADLINE_EXCEEDED\n  --max-inflight=N   global in-flight cap; "
          "excess requests shed with\n                     UNAVAILABLE on a "
          "still-usable connection\n  --retries=N        bounded automatic "
          "retry of transient failures inside\n                     the "
          "session (UNAVAILABLE / DATA_LOSS after quarantine)\n",
          argv[0]);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  const std::vector<std::string> model_names = split_csv(models_csv);
  if (model_names.empty()) {
    std::fprintf(stderr, "--models needs at least one zoo model name\n");
    return 2;
  }
  std::vector<const models::ModelInfo*> fleet_models;
  for (const auto& name : model_names) {
    const models::ModelInfo* info = find_model(name);
    if (info == nullptr) {
      std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
      return 2;
    }
    fleet_models.push_back(info);
  }

  runtime::InferenceSession session(fleet_models.front()->build());
  for (std::size_t i = 1; i < fleet_models.size(); ++i) {
    const models::ModelInfo* info = fleet_models[i];
    if (const Status s = session.register_model(info->name, info->build());
        !s.is_ok()) {
      std::fprintf(stderr, "register %s: %s\n", info->name.c_str(),
                   s.to_string().c_str());
      return 2;
    }
  }

  if (!replay_budget.empty()) {
    const auto budget = runtime::parse_mem_size(replay_budget);
    if (!budget.is_ok()) {
      std::fprintf(stderr, "--replay-budget: %s\n",
                   budget.status().to_string().c_str());
      return 2;
    }
    session.set_replay_budget_bytes(*budget);
  }

  if (!fault_plan.empty()) {
    if (const Status s = session.set_fault_plan(fault_plan); !s.is_ok()) {
      std::fprintf(stderr, "--fault: %s\n", s.to_string().c_str());
      return 2;
    }
  }
  if (retries > 0) {
    session.set_retry_policy({static_cast<std::uint32_t>(retries) + 1, 0});
  }
  if (deadline_ms > 0) {
    session.set_default_deadline_ms(static_cast<std::uint32_t>(deadline_ms));
  }

  // Long-lived server: return burst threads to the host between peaks.
  session.set_pool_idle_timeout(std::chrono::seconds(5));

  // Front-load the whole fleet's staging so no model's first request pays
  // a one-time stall: one vector prepare enqueues every (model, backend)
  // variant's staging concurrently on the session pool.
  std::vector<std::string> fleet;
  fleet.push_back(backend);
  for (std::size_t i = 1; i < fleet_models.size(); ++i) {
    const char glue = backend.find('?') == std::string::npos ? '?' : '&';
    fleet.push_back(backend + glue + "model=" + fleet_models[i]->name);
  }
  auto staged = session.prepare_async(fleet);

  server::ServerOptions options;
  options.port = static_cast<std::uint16_t>(port);
  if (deadline_ms > 0) {
    options.deadline_ms = static_cast<std::uint32_t>(deadline_ms);
  }
  if (max_inflight > 0) {
    options.max_inflight_total = static_cast<std::uint32_t>(max_inflight);
  }
  server::InferenceServer server(session, options);
  if (const Status started = server.start(); !started.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.to_string().c_str());
    return 2;
  }

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::printf("serving %zu model(s) on 127.0.0.1:%u (staging %zu '%s' "
              "variant(s) in the background)\n",
              model_names.size(), server.port(), fleet.size(),
              backend.c_str());
  for (const auto& name : session.model_names()) {
    std::printf("  model %s\n", name.c_str());
  }
  std::fflush(stdout);

  server.run();  // until SIGINT/SIGTERM -> graceful drain

  std::printf("shut down: %llu connections, %llu requests, %llu responses "
              "(%llu errors, %llu spec-cache hits)\n",
              static_cast<unsigned long long>(server.connections_accepted()),
              static_cast<unsigned long long>(server.requests_received()),
              static_cast<unsigned long long>(server.responses_sent()),
              static_cast<unsigned long long>(server.error_responses()),
              static_cast<unsigned long long>(server.spec_cache_hits()));
  for (const auto& v : server.variant_stats()) {
    std::printf("  variant %s model=%s staged=%d requests=%llu "
                "stagings=%llu evictions=%llu resident=%llu B\n",
                v.backend.c_str(), v.model.c_str(), v.staged ? 1 : 0,
                static_cast<unsigned long long>(v.requests),
                static_cast<unsigned long long>(v.stagings),
                static_cast<unsigned long long>(v.evictions),
                static_cast<unsigned long long>(v.resident_bytes));
  }
  const auto robust = session.robustness();
  std::uint64_t faults_injected = 0;
  if (const auto injector = session.fault_injector(); injector != nullptr) {
    faults_injected = injector->total_injected();
  }
  std::printf("robustness: %llu faults injected, %llu retries, %llu "
              "quarantines, %llu restages,\n  %llu data-loss, %llu staging "
              "faults, %llu deadline-exceeded (session),\n  %llu "
              "deadline-expired (server), %llu shed, %llu shutdown "
              "rejections\n",
              static_cast<unsigned long long>(faults_injected),
              static_cast<unsigned long long>(robust.retries),
              static_cast<unsigned long long>(robust.quarantines),
              static_cast<unsigned long long>(robust.restages),
              static_cast<unsigned long long>(robust.data_loss),
              static_cast<unsigned long long>(robust.staging_faults),
              static_cast<unsigned long long>(robust.deadline_exceeded),
              static_cast<unsigned long long>(server.deadline_expirations()),
              static_cast<unsigned long long>(server.shed_requests()),
              static_cast<unsigned long long>(robust.shutdown_rejections));
  return 0;
}
