// serve_inference: the network serving front end as a runnable binary.
//
// Opens an InferenceSession over a model-zoo network, pre-stages its
// artifacts off the serving path (prepare_async), then serves framed
// inference requests over loopback TCP until SIGINT/SIGTERM:
//
//   ./build/examples/serve_inference                 # lenet5, port 7790
//   ./build/examples/serve_inference --port=0        # ephemeral port
//   ./build/examples/serve_inference --model=resnet18_cifar --backend=vp
//
// Protocol (see src/server/frame.hpp): length-prefixed binary frames,
// request = id + backend spec + image floats, response = id + status +
// output tensor (or error text), streamed in completion order. The
// bench_serving_latency load generator and the Client class in
// src/server/client.hpp speak it.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "models/models.hpp"
#include "runtime/inference_session.hpp"
#include "server/inference_server.hpp"

namespace {

nvsoc::server::InferenceServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->shutdown();
}

const char* arg_value(const char* arg, const char* key) {
  const std::size_t len = std::strlen(key);
  return std::strncmp(arg, key, len) == 0 ? arg + len : nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nvsoc;

  std::string model = "lenet5";
  std::string backend = "vp";
  int port = 7790;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = arg_value(argv[i], "--model=")) {
      model = v;
    } else if (const char* v = arg_value(argv[i], "--backend=")) {
      backend = v;
    } else if (const char* v = arg_value(argv[i], "--port=")) {
      port = std::atoi(v);
    } else {
      std::printf(
          "usage: %s [--model=lenet5|resnet18_cifar] [--backend=SPEC] "
          "[--port=N]\n\nServes framed inference requests over loopback "
          "TCP; --port=0 binds an\nephemeral port (printed on startup). "
          "The per-request backend spec in each\nframe wins; --backend "
          "only picks what to pre-stage.\n",
          argv[0]);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  const compiler::Network net =
      model == "resnet18_cifar" ? models::resnet18_cifar() : models::lenet5();
  runtime::InferenceSession session(net);
  // Long-lived server: return burst threads to the host between peaks.
  session.set_pool_idle_timeout(std::chrono::seconds(5));
  // Front-load staging so the first request pays no one-time stall.
  auto staged = session.prepare_async(backend);

  server::ServerOptions options;
  options.port = static_cast<std::uint16_t>(port);
  server::InferenceServer server(session, options);
  if (const Status started = server.start(); !started.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.to_string().c_str());
    return 2;
  }

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::printf("serving %s on 127.0.0.1:%u (staging '%s' in the background; "
              "expects %zu-element images)\n",
              net.name().c_str(), server.port(), backend.c_str(),
              static_cast<std::size_t>(net.input_shape().elements()));
  std::fflush(stdout);

  server.run();  // until SIGINT/SIGTERM -> graceful drain

  std::printf("shut down: %llu connections, %llu requests, %llu responses "
              "(%llu errors)\n",
              static_cast<unsigned long long>(server.connections_accepted()),
              static_cast<unsigned long long>(server.requests_received()),
              static_cast<unsigned long long>(server.responses_sent()),
              static_cast<unsigned long long>(server.error_responses()));
  return 0;
}
