// Scenario example 1: MNIST-style digit inference with artifact export.
//
// Draws a synthetic "7" into a 28x28 image, feeds it to an
// InferenceSession (which stages the offline flow of Fig. 1 for exactly
// that image), and writes every intermediate artifact into
// ./lenet5_artifacts/ so they can be inspected:
//   lenet5.cfg        configuration file (write_reg / read_reg commands)
//   lenet5.s          generated RISC-V assembly
//   lenet5.mem        machine code for program memory ($readmemh format)
//   lenet5_weights.bin weight file (DDR preload image)
//   lenet5.calib      INT8 calibration table
//   lenet5.loadable   serialized compiled network
//
// Build & run:  ./build/examples/mnist_digit_inference
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "models/models.hpp"
#include "runtime/inference_session.hpp"

using namespace nvsoc;

namespace {

/// Paint a crude 7 (top bar + diagonal stroke) on a 28x28 canvas in [-1,1].
std::vector<float> draw_seven() {
  std::vector<float> image(28 * 28, -1.0f);
  for (int x = 4; x < 24; ++x) {       // top bar
    image[5 * 28 + x] = 1.0f;
    image[6 * 28 + x] = 1.0f;
  }
  for (int y = 7; y < 25; ++y) {       // diagonal
    const int x = 23 - (y - 7);
    image[y * 28 + x] = 1.0f;
    if (x > 0) image[y * 28 + x - 1] = 1.0f;
  }
  return image;
}

void write_file(const std::filesystem::path& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  std::printf("  wrote %-28s %8zu bytes\n", path.string().c_str(),
              text.size());
}

void write_file(const std::filesystem::path& path,
                std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("  wrote %-28s %8zu bytes\n", path.string().c_str(),
              bytes.size());
}

}  // namespace

int main() {
  runtime::InferenceSession session(models::lenet5());

  // Stage the offline flow for our digit: the input-independent stages
  // (weights, calibration, loadable) and the input-dependent tail (VP
  // trace, configuration file, program) are all computed — once — here.
  const std::vector<float> digit = draw_seven();
  const core::PreparedModel& prepared = session.prepare(digit);

  std::printf("exporting Fig. 1 artifacts:\n");
  const std::filesystem::path dir = "lenet5_artifacts";
  std::filesystem::create_directories(dir);
  write_file(dir / "lenet5.cfg", prepared.config_file().to_text());
  write_file(dir / "lenet5.s", prepared.program().assembly);
  write_file(dir / "lenet5.mem", prepared.program().mem_text);
  write_file(dir / "lenet5_weights.bin", prepared.preload_weight_file().to_bin());
  write_file(dir / "lenet5.calib", prepared.calibration().to_text());
  write_file(dir / "lenet5.loadable", prepared.loadable().to_bytes());

  const auto result = session.run("system_top", digit);
  if (!result.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().to_string().c_str());
    return 2;
  }
  std::printf("\ndigit inference on the Fig. 4 set-up:\n");
  std::printf("  predicted class: %zu   latency: %.3f ms @100 MHz\n",
              result->predicted_class, result->ms);
  std::printf("  class probabilities:");
  for (std::size_t i = 0; i < result->output.size(); ++i) {
    std::printf(" %zu:%.3f", i, result->output[i]);
  }
  std::printf("\n  fp32 reference argmax: %zu (NVDLA INT8 max |diff| %.4f)\n",
              compiler::argmax(prepared.reference_output),
              core::max_abs_diff(result->output, prepared.reference_output));
  // Note: weights are synthetic, so the "class" is arbitrary — the check
  // that matters is INT8-vs-FP32 agreement on the same parameters.
  return 0;
}
