// Scenario example 3: the trace-to-assembly command-line tool — the C++
// equivalent of the Python scripts in the paper's released repository
// (github.com/vineetbitsp/riscv-nvdla-sw).
//
// Usage:
//   trace_to_asm_tool <vp_log.txt> <out_prefix>
//       Parses a textual VP log (nvdla.csb_adaptor / nvdla.dbb_adaptor
//       lines), writes <out_prefix>.cfg, <out_prefix>.s, <out_prefix>.mem
//       and <out_prefix>_weights.bin.
//
//   trace_to_asm_tool --demo <out_prefix>
//       Generates a LeNet-5 VP log first (running the full virtual
//       platform), then processes it exactly as above — a self-contained
//       demonstration of the paper's Fig. 1 steps 2-3.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "models/models.hpp"
#include "runtime/inference_session.hpp"
#include "toolflow/asm_emitter.hpp"
#include "toolflow/config_file.hpp"
#include "vp/virtual_platform.hpp"

using namespace nvsoc;

namespace {

void save(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), text.size());
}

void save(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
}

int process_log(const std::string& log_text, const std::string& prefix) {
  // Step 2 of Fig. 1: configuration-file generation from csb_adaptor lines.
  const auto config = toolflow::ConfigFile::from_log_text(log_text);
  std::printf("configuration file: %zu commands (%zu write_reg, %zu "
              "read_reg)\n",
              config.commands.size(), config.write_count(),
              config.read_count());
  save(prefix + ".cfg", config.to_text());

  // Step 2b: assembly + machine code.
  const auto program = toolflow::generate_program(config);
  save(prefix + ".s", program.assembly);
  save(prefix + ".mem", program.mem_text);

  // Step 3: weight extraction from dbb_adaptor read lines (first
  // occurrence kept).
  const auto weights = toolflow::weights_from_log_text(log_text);
  std::printf("weight file: %.2f MB in %zu chunks\n",
              weights.total_bytes() / 1e6, weights.chunks.size());
  save(prefix + "_weights.bin", weights.to_bin());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s <vp_log.txt>|--demo <out_prefix>\n", argv[0]);
    return 2;
  }
  const std::string source = argv[1];
  const std::string prefix = argv[2];

  std::string log_text;
  if (source == "--demo") {
    std::printf("running the LeNet-5 virtual platform to produce a log...\n");
    runtime::InferenceSession session(models::lenet5());
    vp::VirtualPlatform platform(session.config().nvdla);
    auto result = platform.run(session.loadable(), session.default_input(),
                               /*capture_dbb_payloads=*/true);
    log_text = result.trace.to_log_text(&platform.last_dbb_payloads());
    save(prefix + "_vp.log", log_text);
  } else {
    std::ifstream in(source, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", source.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    log_text = buffer.str();
  }
  return process_log(log_text, prefix);
}
