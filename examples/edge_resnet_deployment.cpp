// Scenario example 2: edge deployment study for a CIFAR-class workload.
//
// The paper's motivation: resource-constrained edge devices cannot afford
// a Linux kernel + driver stack. This example deploys ResNet-18 (3x32x32)
// through the runtime API and reports everything an edge integrator would
// ask for:
//   * end-to-end latency and its decomposition (config vs compute),
//   * on-chip memory footprint (program memory, DRAM arena),
//   * the Linux-stack comparator — selected from the same BackendRegistry
//     ("linux_baseline") as the bare-metal board ("system_top"),
//   * energy-proxy numbers (cycle counts per inference),
//   * multi-camera batch serving through run_batch_parallel: one staged
//     flow (single VP replay), every frame repacked onto pooled workers.
//
// Build & run:  ./build/examples/edge_resnet_deployment
#include <chrono>
#include <cstdio>

#include "core/report.hpp"
#include "models/models.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/thread_pool.hpp"

using namespace nvsoc;

int main(int argc, char** argv) {
  const std::string board =
      argc > 1 ? argv[1] : "system_top";  // accepts any backend spec
  if (board == "--help" || board == "-h") {
    std::printf("usage: %s [board-backend-spec]\n\n"
                "Deploys ResNet-18 through the runtime API and reports the "
                "edge-integration\nnumbers (latency, storage, Linux-stack "
                "comparison, batch serving). The board\ndefaults to "
                "'system_top'; pass any backend spec to re-point it, e.g.\n"
                "'system_top?mode=replay' for functional-replay serving.\n\n"
                "%s",
                argv[0], runtime::spec_vocabulary_help().c_str());
    return 0;
  }
  runtime::InferenceSession session(models::resnet18_cifar());

  std::printf("=== edge deployment: %s on nv_small @100 MHz ===\n\n",
              session.network().name().c_str());
  const auto exec = session.run(board);
  if (!exec.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n", exec.status().to_string().c_str());
    return 2;
  }
  if (!exec->soc.has_value()) {
    std::fprintf(stderr,
                 "'%s' is not a SoC-style board backend (no bus census); "
                 "use soc/system_top variants\n",
                 board.c_str());
    return 2;
  }
  const core::PreparedModel& prepared = session.prepared();

  // --- latency ---------------------------------------------------------
  std::printf("latency: %.2f ms per inference (%llu cycles)\n", exec->ms,
              static_cast<unsigned long long>(exec->cycles));
  const auto& census = exec->soc->census;
  const std::uint64_t csb_transfers = census.apb2csb.transfers();
  std::printf("  CSB config path: %llu register transfers (polling "
              "included)\n",
              static_cast<unsigned long long>(csb_transfers));
  std::printf("  NVDLA data path: %.2f MB moved over the 64->32 DBB "
              "converter\n",
              (census.dbb.bytes_read + census.dbb.bytes_written) / 1e6);
  const auto& engine_stats = exec->soc->engine_stats;
  std::printf("  hardware layers: %llu (conv %llu, sdp %llu, pdp %llu)\n",
              static_cast<unsigned long long>(engine_stats.total_ops()),
              static_cast<unsigned long long>(engine_stats.conv_ops),
              static_cast<unsigned long long>(engine_stats.sdp_ops),
              static_cast<unsigned long long>(engine_stats.pdp_ops));

  // --- storage ----------------------------------------------------------
  std::printf("\nstorage budget (no kernel, no filesystem, no driver):\n");
  std::printf("  program memory : %8zu bytes of machine code\n",
              prepared.program().image.bytes.size());
  std::printf("  DRAM preload   : %8.2f MB (weights + input)\n",
              prepared.vp().weights.total_bytes() / 1e6);
  std::printf("  DRAM arena     : %8.2f MB total (activations included)\n",
              prepared.loadable().arena_end / 1e6);

  // --- vs the Linux-stack platform --------------------------------------
  const auto linux_run = session.run("linux_baseline");
  if (!linux_run.is_ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 linux_run.status().to_string().c_str());
    return 2;
  }
  std::printf("\nLinux-stack platform (Giri et al. [8], 50 MHz):\n");
  std::printf("  estimated latency: %.1f ms (%.0f%% software overhead)\n",
              linux_run->ms,
              linux_run->linux_estimate->overhead_fraction() * 100.0);
  std::printf("  bare-metal speedup: %.1fx\n", linux_run->ms / exec->ms);
  std::printf("  plus: no kernel image (~10s of MB), no driver modules, "
              "no boot time\n");

  // --- per-layer profile -------------------------------------------------
  const auto profile =
      core::build_profile(prepared.loadable(), prepared.vp().op_records);
  std::printf("\nper-layer hotspots (top 5 of %zu):\n%s",
              profile.layers.size(),
              core::format_profile(
                  core::ExecutionProfile{profile.hotspots(5),
                                         profile.total_cycles},
                  session.config().soc_clock)
                  .c_str());

  // --- batch serving -----------------------------------------------------
  // An edge box rarely serves one camera: run a frame per camera through
  // the thread-pooled batch path. The staged artifacts above are reused as
  // is — no further VP replay — and each worker executes on its own SoC
  // instance, so results are bit-exact with one-at-a-time serving.
  constexpr std::size_t kCameras = 6;
  std::vector<std::vector<float>> frames;
  for (std::size_t cam = 0; cam < kCameras; ++cam) {
    frames.push_back(compiler::synthetic_input(
        session.network().input_shape(), 12'000 + cam));
  }
  runtime::BatchOptions batch_options;
  batch_options.workers = runtime::ThreadPool::recommended_workers(kCameras);
  const auto batch_start = std::chrono::steady_clock::now();
  const auto batch = session.run_batch_parallel(board, frames,
                                                batch_options);
  const auto batch_stop = std::chrono::steady_clock::now();
  if (!batch.is_ok()) {
    std::fprintf(stderr, "batch failed: %s\n",
                 batch.status().to_string().c_str());
    return 2;
  }
  const double batch_wall_ms =
      std::chrono::duration<double, std::milli>(batch_stop - batch_start)
          .count();
  std::printf("\nbatch serving (%zu cameras, %zu workers):\n", kCameras,
              batch_options.workers);
  std::printf("  host wall time : %.1f ms for the batch (%.1f frames/sec)\n",
              batch_wall_ms, kCameras / (batch_wall_ms / 1e3));
  std::printf("  board latency  : %.2f ms per frame (unchanged — same SoC)\n",
              (*batch)[0].ms);
  std::printf("  VP replays     : %u for the whole session (repacked "
              "inputs, %u repacks)\n",
              session.counters().trace, session.counters().repack);

  // --- streaming serving (async staging) ---------------------------------
  // A camera feed does not arrive as a batch. A cold streaming session
  // front-loads its whole staging pipeline with prepare_async() — frontend
  // compile, one VP trace, replay-schedule recording, and the board
  // backend's own staging hook, all inside the session pool — while
  // submit() hands each arriving frame to the same pool and returns
  // immediately. The calling thread never runs a simulation.
  runtime::InferenceSession streaming(models::resnet18_cifar());
  auto staging = streaming.prepare_async(board, frames.front());
  std::vector<runtime::PendingResult> inflight;
  const auto stream_start = std::chrono::steady_clock::now();
  for (const auto& frame : frames) {
    inflight.push_back(streaming.submit(board, frame));  // non-blocking
  }
  const double submit_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - stream_start)
          .count();
  const Status staged = staging.wait();
  if (!staged.is_ok()) {
    std::fprintf(stderr, "async staging failed: %s\n",
                 staged.to_string().c_str());
    return 2;
  }
  for (std::size_t i = 0; i < inflight.size(); ++i) {
    auto result = inflight[i].get();
    if (!result.is_ok() || result->output != (*batch)[i].output) {
      std::fprintf(stderr, "streaming frame %zu diverged from the batch\n", i);
      return 2;
    }
  }
  std::printf("\nstreaming serving (async staging, %u staging task):\n",
              streaming.counters().async_stagings);
  std::printf("  submit() cost  : %.2f ms to enqueue all %zu frames "
              "(staging ran in the pool)\n",
              submit_ms, frames.size());
  std::printf("  results        : bit-exact with the batch path, "
              "%u VP trace for the session\n",
              streaming.counters().trace);

  // --- accuracy ----------------------------------------------------------
  std::printf("\nINT8 deployment accuracy (vs FP32 reference on identical "
              "weights):\n");
  std::printf("  argmax match: %s, max |logit diff| %.4f\n",
              exec->predicted_class ==
                      compiler::argmax(prepared.reference_output)
                  ? "yes"
                  : "NO",
              core::max_abs_diff(exec->output, prepared.reference_output));
  return 0;
}
