// Scenario example 2: edge deployment study for a CIFAR-class workload.
//
// The paper's motivation: resource-constrained edge devices cannot afford
// a Linux kernel + driver stack. This example deploys ResNet-18 (3x32x32)
// on the Fig. 4 board model and reports everything an edge integrator
// would ask for:
//   * end-to-end latency and its decomposition (config vs compute),
//   * on-chip memory footprint (program memory, DRAM arena),
//   * comparison against the Linux-stack platform of Giri et al. [8],
//   * energy-proxy numbers (cycle counts per inference).
//
// Build & run:  ./build/examples/edge_resnet_deployment
#include <cstdio>

#include "baseline/linux_baseline.hpp"
#include "core/bare_metal_flow.hpp"
#include "core/report.hpp"
#include "models/models.hpp"

using namespace nvsoc;

int main() {
  const auto net = models::resnet18_cifar();
  core::FlowConfig config;

  std::printf("=== edge deployment: %s on nv_small @100 MHz ===\n\n",
              net.name().c_str());
  const auto prepared = core::prepare_model(net, config);
  const auto exec = core::execute_on_system_top(prepared, config);

  // --- latency ---------------------------------------------------------
  std::printf("latency: %.2f ms per inference (%llu cycles)\n", exec.ms,
              static_cast<unsigned long long>(exec.cycles));
  const auto& census = exec.census;
  const std::uint64_t csb_transfers = census.apb2csb.transfers();
  std::printf("  CSB config path: %llu register transfers (polling "
              "included)\n",
              static_cast<unsigned long long>(csb_transfers));
  std::printf("  NVDLA data path: %.2f MB moved over the 64->32 DBB "
              "converter\n",
              (census.dbb.bytes_read + census.dbb.bytes_written) / 1e6);
  std::printf("  hardware layers: %llu (conv %llu, sdp %llu, pdp %llu)\n",
              static_cast<unsigned long long>(exec.engine_stats.total_ops()),
              static_cast<unsigned long long>(exec.engine_stats.conv_ops),
              static_cast<unsigned long long>(exec.engine_stats.sdp_ops),
              static_cast<unsigned long long>(exec.engine_stats.pdp_ops));

  // --- storage ----------------------------------------------------------
  std::printf("\nstorage budget (no kernel, no filesystem, no driver):\n");
  std::printf("  program memory : %8zu bytes of machine code\n",
              prepared.program.image.bytes.size());
  std::printf("  DRAM preload   : %8.2f MB (weights + input)\n",
              prepared.vp.weights.total_bytes() / 1e6);
  std::printf("  DRAM arena     : %8.2f MB total (activations included)\n",
              prepared.loadable.arena_end / 1e6);

  // --- vs the Linux-stack platform --------------------------------------
  baseline::LinuxDriverBaseline linux_platform;
  const auto linux_est =
      linux_platform.estimate(prepared.loadable, prepared.vp.total_cycles);
  std::printf("\nLinux-stack platform (Giri et al. [8], 50 MHz):\n");
  std::printf("  estimated latency: %.1f ms (%.0f%% software overhead)\n",
              linux_est.ms, linux_est.overhead_fraction() * 100.0);
  std::printf("  bare-metal speedup: %.1fx\n", linux_est.ms / exec.ms);
  std::printf("  plus: no kernel image (~10s of MB), no driver modules, "
              "no boot time\n");

  // --- per-layer profile -------------------------------------------------
  const auto profile =
      core::build_profile(prepared.loadable, prepared.vp.op_records);
  std::printf("\nper-layer hotspots (top 5 of %zu):\n%s",
              profile.layers.size(),
              core::format_profile(
                  core::ExecutionProfile{profile.hotspots(5),
                                         profile.total_cycles},
                  config.soc_clock)
                  .c_str());

  // --- accuracy ----------------------------------------------------------
  std::printf("\nINT8 deployment accuracy (vs FP32 reference on identical "
              "weights):\n");
  std::printf("  argmax match: %s, max |logit diff| %.4f\n",
              exec.predicted_class ==
                      compiler::argmax(prepared.reference_output)
                  ? "yes"
                  : "NO",
              core::max_abs_diff(exec.output, prepared.reference_output));
  return 0;
}
