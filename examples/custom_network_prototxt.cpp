// Scenario example 4: bring-your-own network as a Caffe .prototxt.
//
// The paper's toolflow takes "arbitrary Caffe-based neural networks"; this
// example defines a small custom CNN as deploy-prototxt text (exactly what
// you would feed the NVDLA compiler), parses it, and pushes it through the
// whole bare-metal flow. Pass a path to your own .prototxt to run that
// instead.
//
// Build & run:  ./build/examples/custom_network_prototxt [model.prototxt]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

#include "compiler/prototxt.hpp"
#include "runtime/inference_session.hpp"

using namespace nvsoc;

namespace {

constexpr const char* kDefaultPrototxt = R"(
name: "CustomEdgeCNN"
input: "data"
input_shape { dim: 1 dim: 3 dim: 32 dim: 32 }
layer {
  name: "conv1" type: "Convolution" bottom: "data" top: "conv1"
  convolution_param { num_output: 16 kernel_size: 3 pad: 1 }
}
layer { name: "relu1" type: "ReLU" bottom: "conv1" top: "conv1" }
layer {
  name: "pool1" type: "Pooling" bottom: "conv1" top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "conv2a" type: "Convolution" bottom: "pool1" top: "conv2a"
  convolution_param { num_output: 32 kernel_size: 3 pad: 1 }
}
layer {
  name: "conv2b" type: "Convolution" bottom: "pool1" top: "conv2b"
  convolution_param { num_output: 32 kernel_size: 1 }
}
layer {
  name: "res2" type: "Eltwise" bottom: "conv2a" bottom: "conv2b" top: "res2"
  eltwise_param { operation: SUM }
}
layer { name: "relu2" type: "ReLU" bottom: "res2" top: "res2" }
layer {
  name: "pool2" type: "Pooling" bottom: "res2" top: "pool2"
  pooling_param { pool: AVE global_pooling: true }
}
layer {
  name: "fc" type: "InnerProduct" bottom: "pool2" top: "fc"
  inner_product_param { num_output: 10 }
}
layer { name: "prob" type: "Softmax" bottom: "fc" top: "prob" }
)";

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (std::string_view(argv[1]) == "--help" ||
                   std::string_view(argv[1]) == "-h")) {
    std::printf("usage: %s [model.prototxt]\n\n"
                "Parses a Caffe deploy-prototxt (or a built-in demo CNN) "
                "and runs it\nthrough the bare-metal flow on every "
                "registered backend.\n\n%s",
                argv[0], runtime::spec_vocabulary_help().c_str());
    return 0;
  }
  std::string text = kDefaultPrototxt;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
    std::printf("loaded prototxt from %s\n", argv[1]);
  } else {
    std::printf("using the built-in CustomEdgeCNN prototxt "
                "(pass a path to use your own)\n");
  }

  compiler::Network net = [&] {
    try {
      return compiler::parse_prototxt(text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "prototxt error: %s\n", e.what());
      std::exit(1);
    }
  }();
  std::printf("parsed '%s': %zu layers, %llu parameters\n",
              net.name().c_str(), net.layer_count(),
              static_cast<unsigned long long>(net.parameter_count()));
  for (const auto& layer : net.layers()) {
    const auto& shape = net.blob_shape(layer.top);
    std::printf("  %-12s %-13s -> %ux%ux%u\n", layer.name.c_str(),
                compiler::layer_kind_name(layer.kind), shape.c, shape.h,
                shape.w);
  }

  runtime::InferenceSession session(net);
  const auto exec = session.run("soc");
  if (!exec.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n", exec.status().to_string().c_str());
    return 2;
  }
  const auto& prepared = session.prepared();
  std::printf("\nbare-metal inference: class %zu in %.3f ms @100 MHz "
              "(%zu hardware layers, %zu register commands)\n",
              exec->predicted_class, exec->ms, prepared.loadable().ops.size(),
              prepared.config_file().commands.size());
  std::printf("INT8 vs FP32 reference: argmax %s, max |diff| %.4f\n",
              exec->predicted_class ==
                      compiler::argmax(prepared.reference_output)
                  ? "match"
                  : "MISMATCH",
              core::max_abs_diff(exec->output, prepared.reference_output));
  return 0;
}
