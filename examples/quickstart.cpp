// Quickstart: the whole paper flow in ~30 lines.
//
//   1. Describe a Caffe-style network (LeNet-5 from the model zoo).
//   2. prepare_model() runs the offline flow of Fig. 1: synthetic weights,
//      INT8 calibration, NVDLA compilation, virtual-platform tracing, and
//      generation of the bare-metal RISC-V program + weight file.
//   3. execute_on_soc() loads program memory and DRAM and lets the
//      µRISC-V core drive the NVDLA — no OS anywhere.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/bare_metal_flow.hpp"
#include "models/models.hpp"

int main() {
  using namespace nvsoc;

  // 1. A network from the zoo (or build your own compiler::Network).
  const compiler::Network net = models::lenet5();
  std::printf("network: %s (%zu layers, %.1f MB fp32)\n",
              net.name().c_str(), net.layer_count(),
              net.model_size_bytes() / 1e6);

  // 2. Offline generation flow (Fig. 1) — one call.
  core::FlowConfig config;  // nv_small, INT8, 100 MHz
  const core::PreparedModel prepared = core::prepare_model(net, config);
  std::printf("generated: %zu register commands -> %zu RISC-V instructions, "
              "%.2f MB weight file\n",
              prepared.config_file.commands.size(),
              prepared.program.image.size_words(),
              prepared.vp.weights.total_bytes() / 1e6);

  // 3. Bare-metal execution on the SoC (Fig. 2).
  const core::SocExecution exec = core::execute_on_soc(prepared, config);
  std::printf("inference: class %zu in %.3f ms at 100 MHz "
              "(%llu cycles, %llu instructions)\n",
              exec.predicted_class, exec.ms,
              static_cast<unsigned long long>(exec.cycles),
              static_cast<unsigned long long>(exec.cpu.instructions));

  // Validate against the FP32 reference executor.
  const std::size_t golden = compiler::argmax(prepared.reference_output);
  std::printf("fp32 reference agrees: %s (max |diff| %.4f)\n",
              exec.predicted_class == golden ? "yes" : "NO",
              core::max_abs_diff(exec.output, prepared.reference_output));
  return exec.predicted_class == golden ? 0 : 1;
}
