// Quickstart: the whole paper flow through the runtime API in ~30 lines.
//
//   1. Describe a Caffe-style network (LeNet-5 from the model zoo).
//   2. Open an InferenceSession: the offline flow of Fig. 1 (synthetic
//      weights, INT8 calibration, NVDLA compilation, virtual-platform
//      tracing, bare-metal program generation) runs lazily, stage by
//      stage, and every artifact is memoized inside the session.
//   3. session.run("soc") executes on the Fig. 2 SoC model — pick any
//      registered backend by name (soc, system_top, vp, linux_baseline) or
//      configured-variant spec ("soc?mode=cycle_accurate",
//      "linux_baseline@25mhz"); --help lists the full vocabulary. The SoC
//      backends serve by functional replay by default; ?mode=cycle_accurate
//      opts back into simulating every image in full.
//
// Build & run:  ./build/examples/quickstart [backend-spec]
#include <cstdio>

#include "models/models.hpp"
#include "runtime/backend_registry.hpp"
#include "runtime/inference_session.hpp"

int main(int argc, char** argv) {
  using namespace nvsoc;
  const std::string backend = argc > 1 ? argv[1] : "soc";
  if (backend == "--help" || backend == "-h") {
    std::printf("usage: %s [backend-spec]\n\nregistered backends:\n",
                argv[0]);
    const auto& registry = runtime::BackendRegistry::global();
    for (const auto& name : registry.names()) {
      const auto found = registry.find(name);
      std::printf("  %-15s %s\n", name.c_str(),
                  std::string((*found)->description()).c_str());
    }
    std::printf("\n%s", runtime::spec_vocabulary_help().c_str());
    return 0;
  }

  // 1. A network from the zoo (or build your own compiler::Network).
  const compiler::Network net = models::lenet5();
  std::printf("network: %s (%zu layers, %.1f MB fp32)\n",
              net.name().c_str(), net.layer_count(),
              net.model_size_bytes() / 1e6);

  // 2. A session over the network: stages run once, on first use.
  runtime::InferenceSession session(net);  // nv_small, INT8, 100 MHz
  const core::PreparedModel& prepared = session.prepared();
  std::printf("generated: %zu register commands -> %zu RISC-V instructions, "
              "%.2f MB weight file\n",
              prepared.config_file().commands.size(),
              prepared.program().image.size_words(),
              prepared.vp().weights.total_bytes() / 1e6);

  // 3. Execute on a backend selected by name.
  const auto result = session.run(backend);
  if (!result.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n", result.status().to_string().c_str());
    return 2;
  }
  std::printf("inference [%s]: class %zu in %.3f ms (%llu cycles at %llu MHz)\n",
              result->backend.c_str(), result->predicted_class, result->ms,
              static_cast<unsigned long long>(result->cycles),
              static_cast<unsigned long long>(result->clock / kMHz));

  // Validate against the FP32 reference executor.
  const std::size_t golden = compiler::argmax(prepared.reference_output);
  std::printf("fp32 reference agrees: %s (max |diff| %.4f)\n",
              result->predicted_class == golden ? "yes" : "NO",
              core::max_abs_diff(result->output, prepared.reference_output));
  return result->predicted_class == golden ? 0 : 1;
}
