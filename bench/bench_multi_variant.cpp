// Multi-variant serving: concurrent fleet staging and byte-budgeted
// replay residency on one InferenceSession.
//
// Leg 1 (staging4) stages the same four (model, backend-spec) variants two
// ways and times the wall clock of each:
//
//   serialized:  four isolated single-model sessions, each staging its one
//                variant to completion before the next starts — the
//                pre-multi-model deployment (one process per variant),
//                where nothing is shared: 4 frontends, 4 traces, 4 replay
//                envelopes.
//   concurrent:  one session holding both models, the whole fleet staged
//                by a single vector prepare_async() — specs sharing a
//                model dedup the frontend/trace/envelope behind that
//                model's staging latch: 2 frontends, 2 traces, 2
//                envelopes.
//
// The gated ratio concurrent_staging_speedup = serialized/concurrent is
// work-dedup, not thread-count: it holds on a single-core host and reads
// ~1.0 the moment per-variant staging stops sharing the per-model
// artifacts. staging_peak is the concurrency evidence: the vector prepare
// pushes four stagings in flight before any completes.
//
// Leg 2 (budget) registers the same architecture twice, budgets replay
// residency to exactly one copy's footprint, and walks the LRU eviction
// sequence: staging the second model evicts the cold first (arenas, then
// schedule), the first model's next request re-stages it transparently,
// and its output stays bit-identical across the eviction. The perf gate
// asserts the eviction stats are present and restage_bit_exact holds.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "models/models.hpp"
#include "runtime/inference_session.hpp"

using namespace nvsoc;

namespace {

using Clock = std::chrono::steady_clock;

double wall_ms(Clock::time_point start, Clock::time_point stop) {
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  bench::print_header(
      "Multi-variant serving: fleet staging + byte-budgeted residency");
  bench::JsonReport report("multi_variant");

  const compiler::Network lenet = models::lenet5();
  const compiler::Network resnet = models::resnet18_cifar();
  const std::vector<float> lenet_image =
      compiler::synthetic_input(lenet.input_shape(), 4242);
  const std::vector<float> resnet_image =
      compiler::synthetic_input(resnet.input_shape(), 4242);

  // --- leg 1: serialized vs concurrent staging of the same 4 variants -----
  // "soc" and "soc?mode=replay" are distinct canonical variants of the
  // same configuration (replay is the default), so the pair isolates pure
  // per-variant bookkeeping: everything expensive is per *model*.
  struct FleetEntry {
    const compiler::Network* network;
    const std::vector<float>* image;
    const char* spec;           // isolated single-model session spelling
    const char* routed_spec;    // multi-model session spelling
  };
  const std::vector<FleetEntry> fleet = {
      {&lenet, &lenet_image, "soc", "soc"},
      {&lenet, &lenet_image, "soc?mode=replay", "soc?mode=replay"},
      {&resnet, &resnet_image, "soc", "soc?model=resnet18"},
      {&resnet, &resnet_image, "soc?mode=replay",
       "soc?mode=replay&model=resnet18"},
  };

  const auto serialized_start = Clock::now();
  for (const auto& entry : fleet) {
    runtime::InferenceSession isolated(*entry.network);
    if (const Status staged =
            isolated.prepare_async(entry.spec, *entry.image).wait();
        !staged.is_ok()) {
      std::fprintf(stderr, "serialized staging (%s) failed: %s\n", entry.spec,
                   staged.to_string().c_str());
      return 1;
    }
  }
  const double serialized_ms = wall_ms(serialized_start, Clock::now());

  runtime::InferenceSession session(lenet);
  if (const Status registered = session.register_model("resnet18", resnet);
      !registered.is_ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 registered.to_string().c_str());
    return 1;
  }
  std::vector<std::string> specs;
  for (const auto& entry : fleet) specs.emplace_back(entry.routed_spec);

  const auto concurrent_start = Clock::now();
  auto handles = session.prepare_async(specs);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (const Status staged = handles[i].wait(); !staged.is_ok()) {
      std::fprintf(stderr, "concurrent staging (%s) failed: %s\n",
                   specs[i].c_str(), staged.to_string().c_str());
      return 1;
    }
  }
  const double concurrent_ms = wall_ms(concurrent_start, Clock::now());
  const double speedup =
      concurrent_ms > 0.0 ? serialized_ms / concurrent_ms : 0.0;

  const runtime::StageCounters counters = session.counters();
  std::size_t staged_variants = 0;
  for (const auto& v : session.variant_stats()) staged_variants += v.staged;

  std::printf("%-12s %14s %14s %9s %13s %9s\n", "section", "serialized ms",
              "concurrent ms", "speedup", "staging peak", "variants");
  std::printf("%-12s %14.1f %14.1f %9.2f %13u %9zu\n", "staging4",
              serialized_ms, concurrent_ms, speedup, counters.staging_peak,
              staged_variants);

  report.add("staging4", "serialized_staging_ms", serialized_ms);
  report.add("staging4", "concurrent_staging_ms", concurrent_ms);
  report.add("staging4", "concurrent_staging_speedup", speedup);
  report.add("staging4", "staging_peak",
             static_cast<std::uint64_t>(counters.staging_peak));
  report.add("staging4", "variants_staged",
             static_cast<std::uint64_t>(staged_variants));

  // --- leg 2: byte-budgeted residency with a deterministic footprint ------
  // Two registrations of the same architecture have bit-identical replay
  // footprints, so a budget of exactly one copy's bytes forces the LRU
  // walk without any host-dependent margin.
  runtime::InferenceSession budgeted(lenet);
  if (const Status registered =
          budgeted.register_model("lenet5_b", models::lenet5());
      !registered.is_ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 registered.to_string().c_str());
    return 1;
  }
  if (const Status staged =
          budgeted.prepare_async("soc", lenet_image).wait();
      !staged.is_ok()) {
    std::fprintf(stderr, "budget leg staging failed: %s\n",
                 staged.to_string().c_str());
    return 1;
  }
  const auto first = budgeted.submit("soc", lenet_image).get();
  if (!first.is_ok()) {
    std::fprintf(stderr, "budget leg run failed: %s\n",
                 first.status().to_string().c_str());
    return 1;
  }
  const std::uint64_t budget_bytes = budgeted.replay_resident_bytes();
  budgeted.set_replay_budget_bytes(budget_bytes);

  if (const Status staged =
          budgeted.prepare_async("soc?model=lenet5_b", lenet_image).wait();
      !staged.is_ok()) {
    std::fprintf(stderr, "second model staging failed: %s\n",
                 staged.to_string().c_str());
    return 1;
  }
  const auto second = budgeted.submit("soc?model=lenet5_b", lenet_image).get();
  if (!second.is_ok()) {
    std::fprintf(stderr, "second model run failed: %s\n",
                 second.status().to_string().c_str());
    return 1;
  }
  // Budget enforcement runs at submit time, so a run's own arena growth is
  // reclaimed at the *next* submit. The first warm request walks the LRU:
  // the cold first model already shed its arenas, now its schedule goes
  // too — the full eviction the restage below recovers from.
  const auto warm = budgeted.submit("soc?model=lenet5_b", lenet_image).get();
  if (!warm.is_ok()) {
    std::fprintf(stderr, "warm run failed: %s\n",
                 warm.status().to_string().c_str());
    return 1;
  }
  const std::uint64_t resident_after_evict = budgeted.replay_resident_bytes();
  const std::uint64_t evictions_after_second =
      budgeted.counters().evictions;

  // The first model's next request re-stages it transparently; the one
  // after adopts the fresh schedule and the budget evicts the now-cold
  // second model in turn.
  const auto restaged = budgeted.submit("soc", lenet_image).get();
  const auto settled = budgeted.submit("soc", lenet_image).get();
  if (!restaged.is_ok() || !settled.is_ok()) {
    std::fprintf(stderr, "restage run failed\n");
    return 1;
  }
  const std::uint64_t resident_after_restage =
      budgeted.replay_resident_bytes();
  const std::uint64_t evictions_total = budgeted.counters().evictions;
  const bool bit_exact = restaged->output == first->output &&
                         settled->output == first->output;

  std::printf("\n%-12s %12s %14s %15s %10s %10s\n", "section", "budget B",
              "resident B", "post-restage B", "evictions", "bit-exact");
  std::printf("%-12s %12llu %14llu %15llu %10llu %10s\n", "budget",
              static_cast<unsigned long long>(budget_bytes),
              static_cast<unsigned long long>(resident_after_evict),
              static_cast<unsigned long long>(resident_after_restage),
              static_cast<unsigned long long>(evictions_total),
              bit_exact ? "yes" : "NO");

  report.add("budget", "budget_bytes", budget_bytes);
  report.add("budget", "resident_bytes_after_eviction", resident_after_evict);
  report.add("budget", "resident_bytes_after_restage", resident_after_restage);
  report.add("budget", "evictions", evictions_total);
  report.add("budget", "restage_bit_exact", bit_exact ? 1.0 : 0.0);
  report.write();

  bool ok = true;
  if (counters.staging_peak < 4) {
    std::fprintf(stderr, "FAIL: staging_peak %u < 4 — the vector prepare did "
                 "not overlap the fleet\n", counters.staging_peak);
    ok = false;
  }
  if (staged_variants < 4) {
    std::fprintf(stderr, "FAIL: only %zu variants staged\n", staged_variants);
    ok = false;
  }
  if (evictions_after_second < 1 ||
      resident_after_evict > budget_bytes ||
      resident_after_restage > budget_bytes) {
    std::fprintf(stderr, "FAIL: budget not enforced (evictions %llu, "
                 "resident %llu/%llu against budget %llu)\n",
                 static_cast<unsigned long long>(evictions_after_second),
                 static_cast<unsigned long long>(resident_after_evict),
                 static_cast<unsigned long long>(resident_after_restage),
                 static_cast<unsigned long long>(budget_bytes));
    ok = false;
  }
  if (!bit_exact) {
    std::fprintf(stderr, "FAIL: restaged output differs from the original\n");
    ok = false;
  }

  bench::print_footer_note(
      "staging times are wall-clock and host-dependent (not gated); the "
      "gated same-host ratio is\nconcurrent_staging_speedup (>= 1.5 — the "
      "multi-model session must dedup per-model staging\nwork across "
      "variants; it holds on one core because the win is shared work, not "
      "threads),\nplus restage_bit_exact and the eviction stats the perf "
      "gate asserts are present");
  return ok ? 0 : 1;
}
