// Ablation B: cost of the tightly coupled configuration path.
//
// Microbenchmarks (google-benchmark) of single register writes/reads
// through the full AHB-Lite -> APB -> CSB chain, plus a modelled sweep of
// bridge latencies showing how a loosely coupled config path would inflate
// the per-layer programming cost that the bare-metal flow pays ~50-250
// times per hardware layer.
#include <benchmark/benchmark.h>

#include "bus/bridges.hpp"
#include "mem/dram.hpp"
#include "nvdla/engine.hpp"
#include "nvdla/regmap.hpp"
#include "vp/virtual_platform.hpp"

using namespace nvsoc;

namespace {

struct CsbPathFixture {
  Dram dram{1 << 20};

  class RawAxi final : public AxiTarget {
   public:
    explicit RawAxi(Dram& dram) : dram_(dram) {}
    AxiBurstResponse burst(const AxiBurstRequest& req) override {
      if (req.is_write) dram_.write_bytes(req.addr, req.wdata);
      else dram_.read_bytes(req.addr, req.rbuf);
      return {Status::ok(), req.start + 1};
    }
    std::string_view name() const override { return "raw"; }
    Dram& dram_;
  } axi{dram};

  nvdla::Nvdla engine{nvdla::NvdlaConfig::small(), axi};
  ApbToCsbAdapter apb2csb{engine};
  AhbToApbBridge bridge{apb2csb};
};

void BM_CsbRegisterWrite(benchmark::State& state) {
  CsbPathFixture f;
  Cycle now = 0;
  for (auto _ : state) {
    BusRequest req{.addr = nvdla::unit_base(nvdla::Unit::kCdma) +
                           nvdla::cdma::kDainAddr,
                   .is_write = true, .wdata = 0x1234, .byte_enable = 0xF,
                   .start = now};
    const auto rsp = f.bridge.access(req);
    benchmark::DoNotOptimize(rsp.rdata);
    now = rsp.complete;
  }
  state.counters["bus_cycles_per_write"] = static_cast<double>(
      csb_write_path_cycles(BridgeTiming{}));
}
BENCHMARK(BM_CsbRegisterWrite);

void BM_CsbRegisterRead(benchmark::State& state) {
  CsbPathFixture f;
  Cycle now = 0;
  for (auto _ : state) {
    BusRequest req{.addr = nvdla::glb::kIntrStatus, .is_write = false,
                   .wdata = 0, .byte_enable = 0xF, .start = now};
    const auto rsp = f.bridge.access(req);
    benchmark::DoNotOptimize(rsp.rdata);
    now = rsp.complete;
  }
  state.counters["bus_cycles_per_read"] =
      static_cast<double>(csb_read_path_cycles(BridgeTiming{}));
}
BENCHMARK(BM_CsbRegisterRead);

/// Sweep the APB access latency (a loosely coupled bridge, e.g. across an
/// interconnect hop, costs several more cycles per phase) and report the
/// config-programming cost of one LeNet-5 inference's 235 register writes.
void BM_ConfigPathLatencySweep(benchmark::State& state) {
  const Cycle apb_extra = static_cast<Cycle>(state.range(0));
  BridgeTiming timing;
  timing.apb_setup += apb_extra;
  timing.apb_access += apb_extra;
  const Cycle per_write = csb_write_path_cycles(timing);
  constexpr std::uint64_t kLenetWrites = 235;
  for (auto _ : state) {
    benchmark::DoNotOptimize(per_write * kLenetWrites);
  }
  state.counters["cycles_per_write"] = static_cast<double>(per_write);
  state.counters["lenet_config_cycles"] =
      static_cast<double>(per_write * kLenetWrites);
}
BENCHMARK(BM_ConfigPathLatencySweep)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
