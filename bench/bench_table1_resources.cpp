// Regenerates Table I: FPGA resource utilisation on the ZCU102 for the
// overall system set-up, its major components, and the SoC breakdown.
// Also reports the nv_full estimate, reproducing the paper's observation
// that nv_full over-utilises the device LUTs.
#include <cstdio>

#include "bench_util.hpp"
#include "fpga/resources.hpp"

using namespace nvsoc;

namespace {

void print_row(const fpga::UtilizationRow& row) {
  const auto& r = row.used;
  std::printf("%-34s %8.0f %8.0f %7.0f %8.0f %8.0f %7.0f %7.1f %5.0f\n",
              row.component.c_str(), r.luts, r.regs, r.carry8, r.f7_muxes,
              r.f8_muxes, r.clbs, r.bram_tiles, r.dsps);
}

}  // namespace

int main() {
  bench::print_header(
      "Table I: FPGA resource utilization (AMD ZCU102 evaluation board)");

  const auto capacity = fpga::zcu102_capacity();
  std::printf("%-34s %8s %8s %7s %8s %8s %7s %7s %5s\n", "Component",
              "CLB LUTs", "CLB Regs", "CARRY8", "F7 Mux", "F8 Mux", "CLBs",
              "BRAM", "DSPs");
  std::printf("%-34s %8.0f %8.0f %7.0f %8.0f %8.0f %7.0f %7.0f %5.0f\n",
              "(device capacity)", capacity.luts, capacity.regs,
              capacity.carry8, capacity.f7_muxes, capacity.f8_muxes,
              capacity.clbs, capacity.bram_tiles, capacity.dsps);

  const auto small = nvdla::NvdlaConfig::small();
  for (const auto& row : fpga::table1_rows(small)) print_row(row);

  std::printf("\nPaper reference row (Overall System Set-up): "
              "96733 102823 1825 3719 1133 19898 323.5 39\n");
  std::printf("Peak utilisation (nv_small overall): %.1f%% -> fits: %s\n",
              fpga::peak_utilization(fpga::overall_system(small), capacity),
              fpga::fits(fpga::overall_system(small), capacity) ? "yes"
                                                                : "no");

  const auto full = nvdla::NvdlaConfig::full();
  const auto full_overall = fpga::overall_system(full);
  std::printf("\nnv_full estimate: %.0f LUTs (%.0f%% of device) -> fits: %s\n",
              full_overall.luts, 100.0 * full_overall.luts / capacity.luts,
              fpga::fits(full_overall, capacity) ? "yes" : "no");

  bench::JsonReport report("table1_resources");
  const auto small_overall = fpga::overall_system(small);
  report.add("nv_small_overall", "luts", small_overall.luts);
  report.add("nv_small_overall", "regs", small_overall.regs);
  report.add("nv_small_overall", "bram_tiles", small_overall.bram_tiles);
  report.add("nv_small_overall", "dsps", small_overall.dsps);
  report.add("nv_small_overall", "peak_utilization_pct",
             fpga::peak_utilization(small_overall, capacity));
  report.add("nv_small_overall", "fits", fpga::fits(small_overall, capacity));
  report.add("nv_full_overall", "luts", full_overall.luts);
  report.add("nv_full_overall", "lut_pct",
             100.0 * full_overall.luts / capacity.luts);
  report.add("nv_full_overall", "fits", fpga::fits(full_overall, capacity));
  report.write();
  bench::print_footer_note(
      "Matches the paper: nv_small fits comfortably; nv_full's LUT "
      "over-utilisation is substantial (it does not fit the ZCU102).");
  return 0;
}
