// Ablation A: bare-metal vs Linux-kernel driver stack, decomposed.
//
// Sweeps the two Linux-overhead parameters (runtime start-up, per-layer
// submission) around the calibrated point and reports the resulting
// speedup of the bare-metal flow for each Table II model, showing that the
// headline 50x on LeNet-5 is an overhead-amortisation effect that shrinks
// to ~2x for accelerator-bound ResNet-50 — the core claim of the paper.
#include <cstdio>

#include "baseline/linux_baseline.hpp"
#include "bench_util.hpp"
#include "core/bare_metal_flow.hpp"
#include "models/models.hpp"

using namespace nvsoc;

int main() {
  bench::print_header("Ablation A: bare-metal speedup vs Linux driver-stack "
                      "overhead decomposition");

  // Prepare the two light Table II models (ResNet-50 takes minutes; its
  // scaling is shown analytically from its hardware-layer count below).
  struct Point {
    std::string name;
    core::PreparedModel prepared;
    double bare_ms;
  };
  std::vector<Point> points;
  for (const auto& info :
       {models::nv_small_zoo()[0], models::nv_small_zoo()[1]}) {
    core::FlowConfig config;
    auto prepared = core::prepare_model(info.build(), config);
    const auto exec = core::execute_on_system_top(prepared, config);
    points.push_back({info.name, std::move(prepared), exec.ms});
  }

  std::printf("%-11s | %-26s | %10s %10s %9s\n", "Model",
              "Linux overhead configuration", "linux_ms", "bare_ms",
              "speedup");
  for (const auto& point : points) {
    for (const double scale : {0.25, 0.5, 1.0, 2.0}) {
      baseline::LinuxPlatformConfig cfg;
      cfg.runtime_init_cycles =
          static_cast<Cycle>(cfg.runtime_init_cycles * scale);
      cfg.per_layer_submit_cycles =
          static_cast<Cycle>(cfg.per_layer_submit_cycles * scale);
      baseline::LinuxDriverBaseline baseline_platform(cfg);
      const auto est = baseline_platform.estimate(
          point.prepared.loadable, point.prepared.vp.total_cycles);
      std::printf("%-11s | init=%5.1fMcyc submit=%4.0fkcyc | %8.1f ms "
                  "%8.2f ms %8.1fx\n",
                  point.name.c_str(), cfg.runtime_init_cycles / 1e6,
                  cfg.per_layer_submit_cycles / 1e3, est.ms, point.bare_ms,
                  est.ms / point.bare_ms);
    }
    std::printf("\n");
  }

  // Overhead fraction vs model size (analytic, including ResNet-50's
  // hardware-layer count from its compiled loadable structure).
  baseline::LinuxDriverBaseline calibrated;
  std::printf("Overhead fraction at the calibrated point:\n");
  for (const auto& point : points) {
    const auto est = calibrated.estimate(point.prepared.loadable,
                                         point.prepared.vp.total_cycles);
    std::printf("  %-11s %5.1f%% of Linux time is software overhead\n",
                point.name.c_str(), est.overhead_fraction() * 100.0);
  }
  bench::print_footer_note(
      "Paper shape: LeNet-5 263 ms -> 4.8 ms (~55x, overhead-bound); "
      "ResNet-50 2.5 s -> 1.1 s (~2.3x, accelerator-bound). The speedup is "
      "a decreasing function of accelerator occupancy.");
  return 0;
}
