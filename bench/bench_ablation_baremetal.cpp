// Ablation A: bare-metal vs Linux-kernel driver stack, decomposed.
//
// Sweeps the two Linux-overhead parameters (runtime start-up, per-layer
// submission) around the calibrated point and reports the resulting
// speedup of the bare-metal flow for each Table II model, showing that the
// headline 50x on LeNet-5 is an overhead-amortisation effect that shrinks
// to ~2x for accelerator-bound ResNet-50 — the core claim of the paper.
// The sweep registers one LinuxBaselineBackend per overhead configuration
// in a private BackendRegistry — the multi-backend API at work.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "models/models.hpp"
#include "runtime/backends.hpp"
#include "runtime/inference_session.hpp"

using namespace nvsoc;

int main() {
  bench::print_header("Ablation A: bare-metal speedup vs Linux driver-stack "
                      "overhead decomposition");
  bench::JsonReport report("ablation_baremetal");

  // Prepare the two light Table II models (ResNet-50 takes minutes; its
  // scaling is shown analytically from its hardware-layer count below).
  struct Point {
    std::string name;
    std::unique_ptr<runtime::InferenceSession> session;
    double bare_ms;
  };
  std::vector<Point> points;
  for (const auto& info :
       {models::nv_small_zoo()[0], models::nv_small_zoo()[1]}) {
    auto session = std::make_unique<runtime::InferenceSession>(info.build());
    const auto exec = session->run("system_top");
    if (!exec.is_ok()) {
      std::fprintf(stderr, "%s failed: %s\n", info.name.c_str(),
                   exec.status().to_string().c_str());
      return 2;
    }
    points.push_back({info.name, std::move(session), exec->ms});
  }

  std::printf("%-11s | %-26s | %10s %10s %9s\n", "Model",
              "Linux overhead configuration", "linux_ms", "bare_ms",
              "speedup");
  for (auto& point : points) {
    for (const double scale : {0.25, 0.5, 1.0, 2.0}) {
      baseline::LinuxPlatformConfig cfg;
      cfg.runtime_init_cycles =
          static_cast<Cycle>(cfg.runtime_init_cycles * scale);
      cfg.per_layer_submit_cycles =
          static_cast<Cycle>(cfg.per_layer_submit_cycles * scale);
      const runtime::LinuxBaselineBackend backend(cfg);
      const auto est = backend.run(point.session->prepared(),
                                   runtime::RunOptions{});
      if (!est.is_ok()) {
        std::fprintf(stderr, "baseline failed: %s\n",
                     est.status().to_string().c_str());
        return 2;
      }
      std::printf("%-11s | init=%5.1fMcyc submit=%4.0fkcyc | %8.1f ms "
                  "%8.2f ms %8.1fx\n",
                  point.name.c_str(), cfg.runtime_init_cycles / 1e6,
                  cfg.per_layer_submit_cycles / 1e3, est->ms, point.bare_ms,
                  est->ms / point.bare_ms);
      if (scale == 1.0) {
        report.add(point.name, "linux_ms_calibrated", est->ms);
        report.add(point.name, "bare_ms", point.bare_ms);
        report.add(point.name, "speedup_calibrated", est->ms / point.bare_ms);
      }
    }
    std::printf("\n");
  }

  // Overhead fraction vs model size at the calibrated point, through the
  // registry's stock "linux_baseline" backend.
  std::printf("Overhead fraction at the calibrated point:\n");
  for (auto& point : points) {
    const auto est = point.session->run("linux_baseline");
    if (!est.is_ok()) {
      std::fprintf(stderr, "baseline failed: %s\n",
                   est.status().to_string().c_str());
      return 2;
    }
    std::printf("  %-11s %5.1f%% of Linux time is software overhead\n",
                point.name.c_str(),
                est->linux_estimate->overhead_fraction() * 100.0);
    report.add(point.name, "overhead_fraction",
               est->linux_estimate->overhead_fraction());
  }
  // Decode-cache ablation on the bare-metal ISS leg itself: the same
  // cycle-accurate system_top inference with the decoded-block cache on
  // (the default) vs off (the per-instruction oracle). Simulated cycles
  // are bit-identical by contract; the host wall-clock ratio is what the
  // cache buys end to end. The datapath model dominates these runs, so
  // the ratio is reported ungated — the floored decode_cache_speedup
  // lives in bench_batch_throughput's ISS microbench.
  std::printf("\nDecode-cache ablation (cycle-accurate system_top):\n");
  for (auto& point : points) {
    const auto c0 = std::chrono::steady_clock::now();
    const auto cached = point.session->run("system_top?mode=cycle_accurate");
    const auto c1 = std::chrono::steady_clock::now();
    const auto uncached = point.session->run(
        "system_top?mode=cycle_accurate&decode_cache=off");
    const auto c2 = std::chrono::steady_clock::now();
    if (!cached.is_ok() || !uncached.is_ok()) {
      std::fprintf(stderr, "decode-cache legs failed: %s%s\n",
                   cached.status().to_string().c_str(),
                   uncached.status().to_string().c_str());
      return 2;
    }
    if (cached->cycles != uncached->cycles ||
        cached->output != uncached->output) {
      std::fprintf(stderr,
                   "%s: decode-cache run diverges from the oracle\n",
                   point.name.c_str());
      return 2;
    }
    const double cached_ms =
        std::chrono::duration<double, std::milli>(c1 - c0).count();
    const double oracle_ms =
        std::chrono::duration<double, std::milli>(c2 - c1).count();
    const auto& stats = cached->soc->cpu.stats;
    std::printf("  %-11s %8.1f ms cached  %8.1f ms oracle  %5.2fx "
                "(%llu blocks, %llu hits)\n",
                point.name.c_str(), cached_ms, oracle_ms,
                oracle_ms / cached_ms,
                static_cast<unsigned long long>(stats.decoded_blocks),
                static_cast<unsigned long long>(stats.block_hits));
    report.add(point.name, "decode_cache_cached_wall_ms", cached_ms);
    report.add(point.name, "decode_cache_off_wall_ms", oracle_ms);
    report.add(point.name, "decode_cache_end_to_end_ratio",
               oracle_ms / cached_ms);
    report.add(point.name, "decoded_blocks", stats.decoded_blocks);
    report.add(point.name, "block_hits", stats.block_hits);
  }

  report.write();
  bench::print_footer_note(
      "Paper shape: LeNet-5 263 ms -> 4.8 ms (~55x, overhead-bound); "
      "ResNet-50 2.5 s -> 1.1 s (~2.3x, accelerator-bound). The speedup is "
      "a decreasing function of accelerator occupancy. The decode-cache "
      "rows compare the ISS's decoded-block dispatch against its "
      "per-instruction oracle on identical simulated work (cycles are "
      "bit-identical; the ratio is host time).");
  return 0;
}
