// Network serving latency: an open-loop Poisson load generator driving the
// TCP inference server over loopback.
//
// Closed-loop clients hide queueing pain (a slow server throttles its own
// load); an open-loop generator sends on a fixed Poisson schedule
// regardless of how the server keeps up, and measures each response
// against the request's *intended* send time — so queueing delay shows up
// in the tail instead of vanishing into a slower offered rate. Four legs:
//
//   1. direct:      in-process submit()/get() throughput (no network) —
//                   the ceiling the wire path is measured against;
//   2. saturation:  a pipelined burst through the server — how much of
//                   the direct throughput survives framing + TCP + the
//                   event loop;
//   3. open-loop:   Poisson arrivals at ~60% of the measured saturation
//                   rate, reporting p50/p99 latency from intended send;
//   4. degraded:    the same traffic under a standing fault plan with
//                   bounded retries and an in-flight cap — graceful
//                   degradation (bit-exact or typed, shed not queued)
//                   measured as a throughput ratio, with the fault/retry/
//                   quarantine/shed evidence counters in the report.
//
// Wall-clock latencies and rates vary with the host and are not gated;
// the gated metrics are the same-host ratios (bench/check_regression.py):
//
//   serving_saturation_efficiency >= 0.2   served/direct throughput — the
//                                          wire path must keep at least a
//                                          fifth of the in-process rate;
//   serving_p99_tail_ratio        <= 25    p99/p50 at moderate load — an
//                                          event loop that stalls (a
//                                          blocking get() on the loop
//                                          thread, a lost wakeup) blows
//                                          the tail up by orders of
//                                          magnitude, not percent.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "models/models.hpp"
#include "runtime/inference_session.hpp"
#include "server/client.hpp"
#include "server/inference_server.hpp"

using namespace nvsoc;

namespace {

using Clock = std::chrono::steady_clock;

double wall_ms(Clock::time_point start, Clock::time_point stop) {
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) / 100.0 + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

}  // namespace

int main() {
  bench::print_header(
      "Serving latency: open-loop Poisson load over the loopback TCP server");
  bench::JsonReport report("serving_latency");

  const compiler::Network network = models::lenet5();
  const std::vector<float> image =
      compiler::synthetic_input(network.input_shape(), 4242);
  constexpr const char* kBackend = "vp";
  const std::string section = std::string(network.name()) + "_" + kBackend;

  // --- leg 1: direct in-process throughput (the wire path's ceiling) ------
  runtime::InferenceSession session(network);
  if (const Status staged = session.prepare_async(kBackend).wait();
      !staged.is_ok()) {
    std::fprintf(stderr, "staging failed: %s\n", staged.to_string().c_str());
    return 1;
  }
  constexpr std::size_t kDirect = 64;
  const auto direct_start = Clock::now();
  for (std::size_t i = 0; i < kDirect; ++i) {
    auto result = session.submit(kBackend, image).get();
    if (!result.is_ok()) {
      std::fprintf(stderr, "direct run failed: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }
  }
  const double direct_ms = wall_ms(direct_start, Clock::now());
  const double direct_per_sec = 1000.0 * kDirect / direct_ms;

  // --- the server under test ----------------------------------------------
  server::InferenceServer server(session);
  if (const Status started = server.start(); !started.is_ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.to_string().c_str());
    return 1;
  }
  std::thread loop([&server] { server.run(); });

  server::Client client;
  if (!client.connect(server.port()).is_ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }

  const auto make_request = [&image](std::uint64_t id) {
    server::Request request;
    request.id = id;
    request.backend = kBackend;
    request.image = image;
    return request;
  };

  // --- leg 2: saturation — a pipelined burst, as fast as the wire takes ---
  constexpr std::size_t kBurst = 64;
  const auto burst_start = Clock::now();
  for (std::size_t i = 0; i < kBurst; ++i) {
    if (!client.send(make_request(i)).is_ok()) return 1;
  }
  for (std::size_t i = 0; i < kBurst; ++i) {
    const auto response = client.receive();
    if (!response.is_ok() || !response->is_ok()) {
      std::fprintf(stderr, "saturation leg failed\n");
      return 1;
    }
  }
  const double burst_ms = wall_ms(burst_start, Clock::now());
  const double saturation_per_sec = 1000.0 * kBurst / burst_ms;
  const double efficiency = saturation_per_sec / direct_per_sec;

  // --- leg 3: open-loop Poisson arrivals at ~60% of saturation ------------
  constexpr std::size_t kRequests = 200;
  const double offered_per_sec = 0.6 * saturation_per_sec;
  const double mean_gap_ms = 1000.0 / offered_per_sec;
  Rng rng(0x5eedf00d);
  std::vector<double> intended_ms(kRequests);  // offsets from epoch
  double at = 0.0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    // Exponential inter-arrivals; clamp the uniform away from 1.0 so the
    // log stays finite.
    const double u =
        std::min(0.999999, static_cast<double>(rng.next_float()));
    at += -std::log(1.0 - u) * mean_gap_ms;
    intended_ms[i] = at;
  }

  const auto epoch = Clock::now();
  std::thread sender([&] {
    // Open loop: send at the scheduled instants no matter how far behind
    // the server is. Writes and reads on one socket from two threads are
    // independent directions; the Client's decode buffer stays on the
    // receiver side.
    for (std::size_t i = 0; i < kRequests; ++i) {
      const auto when =
          epoch + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(intended_ms[i]));
      std::this_thread::sleep_until(when);
      if (!client.send(make_request(i)).is_ok()) return;
    }
  });

  std::vector<double> latency_ms;
  latency_ms.reserve(kRequests);
  bool receive_failed = false;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto response = client.receive();
    if (!response.is_ok() || !response->is_ok()) {
      receive_failed = true;
      break;
    }
    // Latency from the *intended* send time: schedule slip and queueing
    // delay both count against the server, as an external client sees it.
    latency_ms.push_back(wall_ms(epoch, Clock::now()) -
                         intended_ms[response->id]);
  }
  sender.join();
  server.shutdown();
  loop.join();
  if (receive_failed || latency_ms.size() != kRequests) {
    std::fprintf(stderr, "open-loop leg failed (%zu/%zu responses)\n",
                 latency_ms.size(), kRequests);
    return 1;
  }

  // --- leg 4: degraded serving under a standing fault plan ----------------
  // The graceful-degradation contract, measured: with deterministic faults
  // injected into the replay path and bounded retries armed, the server
  // must stay up, every OK response must stay bit-exact against a clean
  // oracle, every failure must be a *typed* transient status, and an
  // oversubscribed burst against an in-flight cap must shed (UNAVAILABLE)
  // instead of queueing without bound. Gated ratios
  // (bench/check_regression.py):
  //
  //   degraded_serving_efficiency >= 0.2  served/s under faults vs the
  //                                       clean rate through the same
  //                                       capped server — retries and
  //                                       quarantine/restage cost the tax;
  //   shed_request_fraction       <= 0.9  of the oversubscribed burst —
  //                                       a cap that sheds everything has
  //                                       stopped serving.
  //
  // Requests use fresh inputs (not the staged trace's input) so they take
  // the repack->replay path, where the armed replay/flip faults live.
  const std::vector<float> image_b =
      compiler::synthetic_input(network.input_shape(), 9999);
  const std::vector<float> image_c =
      compiler::synthetic_input(network.input_shape(), 31337);
  const auto oracle_b = session.submit(kBackend, image_b).get();
  const auto oracle_c = session.submit(kBackend, image_c).get();
  if (!oracle_b.is_ok() || !oracle_c.is_ok()) {
    std::fprintf(stderr, "degraded-leg oracle runs failed\n");
    return 1;
  }

  server::ServerOptions degraded_options;
  degraded_options.port = 0;
  degraded_options.max_inflight_total = 8;   // the shedding gate under test
  degraded_options.deadline_ms = 60000;      // armed, never the limiter here
  server::InferenceServer degraded_server(session, degraded_options);
  if (const Status started = degraded_server.start(); !started.is_ok()) {
    std::fprintf(stderr, "degraded server start failed: %s\n",
                 started.to_string().c_str());
    return 1;
  }
  std::thread degraded_loop([&degraded_server] { degraded_server.run(); });
  server::Client degraded_client;
  if (!degraded_client.connect(degraded_server.port()).is_ok()) {
    std::fprintf(stderr, "degraded connect failed\n");
    return 1;
  }
  const auto make_request_for = [](std::uint64_t id,
                                   const std::vector<float>& img) {
    server::Request request;
    request.id = id;
    request.backend = kBackend;
    request.image = img;
    return request;
  };
  const auto bit_exact = [](const std::vector<float>& got,
                            const std::vector<float>& want) {
    return got.size() == want.size() &&
           std::memcmp(got.data(), want.data(),
                       want.size() * sizeof(float)) == 0;
  };
  const auto is_typed_transient = [](StatusCode code) {
    return code == StatusCode::kUnavailable ||
           code == StatusCode::kDataLoss ||
           code == StatusCode::kDeadlineExceeded;
  };

  // Clean closed-loop baseline through the capped server: the denominator
  // the degraded rate is held against (same wire, same repack path, no
  // faults) — host speed cancels out of the ratio.
  constexpr std::size_t kClean = 24;
  const auto clean_start = Clock::now();
  for (std::size_t i = 0; i < kClean; ++i) {
    const auto response =
        degraded_client.roundtrip(make_request_for(i, image_b));
    if (!response.is_ok() || !response->is_ok() ||
        !bit_exact(response->output, oracle_b->output)) {
      std::fprintf(stderr, "degraded leg: clean baseline request failed\n");
      return 1;
    }
  }
  const double clean_ms = wall_ms(clean_start, Clock::now());
  const double clean_per_sec = 1000.0 * kClean / clean_ms;

  // Arm the standing fault plan + bounded retries (both thread-safe
  // against the live server) and drive the same traffic again.
  if (const Status armed =
          session.set_fault_plan("replay:0.15+flip:0.05+seed:77");
      !armed.is_ok()) {
    std::fprintf(stderr, "fault plan rejected: %s\n",
                 armed.to_string().c_str());
    return 1;
  }
  session.set_retry_policy({3, 0});

  constexpr std::size_t kDegraded = 32;
  std::size_t degraded_ok = 0;
  const auto degraded_start = Clock::now();
  for (std::size_t i = 0; i < kDegraded; ++i) {
    const auto response =
        degraded_client.roundtrip(make_request_for(i, image_b));
    if (!response.is_ok()) {
      std::fprintf(stderr, "degraded leg: connection died under faults\n");
      return 1;
    }
    if (response->is_ok()) {
      if (!bit_exact(response->output, oracle_b->output)) {
        std::fprintf(stderr, "degraded leg: OK response is not bit-exact\n");
        return 1;
      }
      ++degraded_ok;
    } else if (!is_typed_transient(response->code)) {
      std::fprintf(stderr, "degraded leg: untyped failure %d: %s\n",
                   static_cast<int>(response->code),
                   response->error.c_str());
      return 1;
    }
  }
  const double degraded_ms = wall_ms(degraded_start, Clock::now());
  const double degraded_per_sec = 1000.0 * degraded_ok / degraded_ms;
  const double degraded_efficiency = degraded_per_sec / clean_per_sec;

  // Oversubscribed burst against the in-flight cap: a slow head-of-line
  // request (fresh input -> repack under faults) holds a worker while the
  // remaining frames decode, so the cap must shed the excess with a typed
  // UNAVAILABLE on a connection that stays usable.
  constexpr std::size_t kFlurry = 24;
  const std::uint64_t shed_before = degraded_server.shed_requests();
  for (std::size_t i = 0; i < kFlurry; ++i) {
    const auto& img = i == 0 ? image_c : image_b;
    if (!degraded_client.send(make_request_for(i, img)).is_ok()) return 1;
  }
  for (std::size_t i = 0; i < kFlurry; ++i) {
    const auto response = degraded_client.receive();
    if (!response.is_ok()) {
      std::fprintf(stderr, "degraded leg: flurry receive failed\n");
      return 1;
    }
    const auto& want = response->id == 0 ? oracle_c->output : oracle_b->output;
    if (response->is_ok()) {
      if (!bit_exact(response->output, want)) {
        std::fprintf(stderr, "degraded leg: flurry response not bit-exact\n");
        return 1;
      }
    } else if (!is_typed_transient(response->code)) {
      std::fprintf(stderr, "degraded leg: untyped flurry failure %d: %s\n",
                   static_cast<int>(response->code),
                   response->error.c_str());
      return 1;
    }
  }
  const std::uint64_t shed_flurry =
      degraded_server.shed_requests() - shed_before;
  const double shed_fraction =
      static_cast<double>(shed_flurry) / static_cast<double>(kFlurry);

  degraded_client.close();
  degraded_server.shutdown();
  degraded_loop.join();

  const auto robust = session.robustness();
  std::uint64_t faults_injected = 0;
  if (const auto injector = session.fault_injector(); injector != nullptr) {
    faults_injected = injector->total_injected();
  }
  if (faults_injected == 0) {
    std::fprintf(stderr, "degraded leg: fault plan never fired — the "
                         "chaos evidence is vacuous\n");
    return 1;
  }

  const double p50 = percentile(latency_ms, 50.0);
  const double p99 = percentile(latency_ms, 99.0);
  const double tail_ratio = p50 > 0.0 ? p99 / p50 : 0.0;

  std::printf("%-12s %8s %12s %12s %10s %10s %8s\n", "section", "direct/s",
              "saturated/s", "offered/s", "p50 ms", "p99 ms", "p99/p50");
  std::printf("%-12s %8.1f %12.1f %12.1f %10.3f %10.3f %8.2f\n",
              section.c_str(), direct_per_sec, saturation_per_sec,
              offered_per_sec, p50, p99, tail_ratio);
  std::printf("degraded: %.1f/s clean -> %.1f/s under faults "
              "(efficiency %.2f); %llu/%zu of the burst shed (%.2f)\n",
              clean_per_sec, degraded_per_sec, degraded_efficiency,
              static_cast<unsigned long long>(shed_flurry), kFlurry,
              shed_fraction);
  std::printf("evidence: %llu faults injected, %llu retries, %llu "
              "quarantines, %llu restages, %llu shed\n",
              static_cast<unsigned long long>(faults_injected),
              static_cast<unsigned long long>(robust.retries),
              static_cast<unsigned long long>(robust.quarantines),
              static_cast<unsigned long long>(robust.restages),
              static_cast<unsigned long long>(
                  degraded_server.shed_requests()));

  report.add(section, "direct_per_sec", direct_per_sec);
  report.add(section, "serving_saturation_per_sec", saturation_per_sec);
  report.add(section, "serving_saturation_efficiency", efficiency);
  report.add(section, "offered_per_sec", offered_per_sec);
  report.add(section, "serving_p50_ms", p50);
  report.add(section, "serving_p99_ms", p99);
  report.add(section, "serving_p99_tail_ratio", tail_ratio);
  report.add(section, "degraded_clean_per_sec", clean_per_sec);
  report.add(section, "degraded_per_sec", degraded_per_sec);
  report.add(section, "degraded_serving_efficiency", degraded_efficiency);
  report.add(section, "shed_request_fraction", shed_fraction);
  report.add(section, "faults_injected", faults_injected);
  report.add(section, "retries", robust.retries);
  report.add(section, "quarantines", robust.quarantines);
  report.add(section, "restages", robust.restages);
  report.add(section, "shed_requests", degraded_server.shed_requests());
  report.write();

  bench::print_footer_note(
      "latencies are wall-clock and host-dependent (not gated); the gated "
      "same-host ratios are\nserving_saturation_efficiency (>= 0.2 of the "
      "in-process rate must survive the wire),\nserving_p99_tail_ratio "
      "(<= 25x — a stalled event loop blows the tail up by orders of "
      "magnitude),\ndegraded_serving_efficiency (>= 0.2 — retries and "
      "restages may tax the faulted rate, not erase it)\nand "
      "shed_request_fraction (<= 0.9 of the oversubscribed burst — a cap "
      "that sheds everything\nhas stopped serving)");
  return 0;
}
