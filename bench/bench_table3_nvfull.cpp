// Regenerates Table III: nv_full simulation results (virtual platform,
// FP16) — total clock cycles and processing time at 100 MHz for all six
// models. The paper runs these on the NVDLA VP because nv_full does not
// fit the ZCU102; we do the same: the "vp" backend (Fig. 3, direct VP
// execution, no SoC fabric).
#include <cstdio>

#include "bench_util.hpp"
#include "models/models.hpp"
#include "runtime/inference_session.hpp"

using namespace nvsoc;

int main() {
  bench::print_header(
      "Table III: nv_full NVDLA, simulation results (FP16, VP cycles)");
  bench::JsonReport report("table3_nvfull");

  const double paper_cycles[6] = {143188,   324387,   26565315,
                                  22525704, 40889646, 35535582};
  const char* paper_inputs[6] = {"1x28x28",   "3x32x32",   "3x224x224",
                                 "3x224x224", "3x224x224", "3x227x227"};

  std::printf("%-10s %-10s %9s | %12s %12s | %11s %11s\n", "Model", "Input",
              "ModelSz", "cycles", "paper", "t@100MHz", "paper");

  int i = 0;
  for (const auto& info : models::model_zoo()) {
    const auto net = info.build();
    core::FlowConfig config;
    config.nvdla = nvdla::NvdlaConfig::full();
    config.precision = nvdla::Precision::kFp16;
    runtime::InferenceSession session(net, config);
    const auto exec = session.run("vp");
    if (!exec.is_ok()) {
      std::fprintf(stderr, "%s failed: %s\n", info.name.c_str(),
                   exec.status().to_string().c_str());
      return 2;
    }

    std::printf("%-10s %-10s %7.1fMB | %12llu %12.0f | %8.1f ms %8.1f ms\n",
                info.name.c_str(), paper_inputs[i],
                net.model_size_bytes() / 1e6,
                static_cast<unsigned long long>(exec->cycles),
                paper_cycles[i], exec->ms, paper_cycles[i] / 1e5);
    std::fflush(stdout);
    report.add(info.name, "vp_cycles", exec->cycles);
    report.add(info.name, "paper_cycles", paper_cycles[i]);
    report.add(info.name, "ms_100mhz", exec->ms);
    ++i;
  }
  report.write();
  bench::print_footer_note(
      "Shape check: LRN-bearing networks (GoogleNet, AlexNet) dominate the "
      "cycle counts despite modest MAC budgets; ResNet-50 runs ~4x faster "
      "on nv_full than on nv_small (cf. Table II).");
  return 0;
}
