// Ablation C: NVDLA configuration scaling between nv_small and nv_full.
//
// Sweeps the hardware-tree parameters (MAC array shape, CBUF capacity, DBB
// width) across intermediate design points and reports ResNet-18 inference
// cycles on the VP plus the FPGA resource estimate — the design-space view
// behind the paper's conclusion that nv_full "does not fit on most FPGAs"
// while nv_small trades 4x performance for deployability.
#include <cstdio>

#include "bench_util.hpp"
#include "core/bare_metal_flow.hpp"
#include "fpga/resources.hpp"
#include "models/models.hpp"

using namespace nvsoc;

int main() {
  bench::print_header("Ablation C: NVDLA scaling (nv_small -> nv_full), "
                      "ResNet-18 on the VP");

  struct DesignPoint {
    const char* name;
    std::uint32_t atomic_c, atomic_k, cbuf_kib, dbb_bits;
  };
  const DesignPoint points[] = {
      {"nv_small (8x8)", 8, 8, 128, 64},
      {"small_x2 (16x8)", 16, 8, 128, 64},
      {"mid (16x16)", 16, 16, 256, 128},
      {"large (32x16)", 32, 16, 256, 256},
      {"nv_full (64x16)", 64, 16, 512, 512},
  };

  const auto capacity = fpga::zcu102_capacity();
  std::printf("%-17s %6s %7s %5s | %11s %9s | %9s %6s %5s\n", "Design",
              "MACs", "CBUF", "DBB", "R18 cycles", "t@100MHz", "LUTs",
              "LUT%", "fits");

  const auto net = models::resnet18_cifar();
  for (const auto& p : points) {
    nvdla::NvdlaConfig cfg = nvdla::NvdlaConfig::small();  // small timing
    cfg.name = p.name;
    cfg.atomic_c = p.atomic_c;
    cfg.atomic_k = p.atomic_k;
    cfg.cbuf_kib = p.cbuf_kib;
    cfg.dbb_width_bits = p.dbb_bits;

    core::FlowConfig flow;
    flow.nvdla = cfg;
    const auto prepared = core::prepare_model(net, flow);

    const auto resources = fpga::overall_system(cfg);
    const double lut_pct = 100.0 * resources.luts / capacity.luts;
    std::printf("%-17s %6u %5uKB %4ub | %11llu %6.2f ms | %9.0f %5.0f%% %5s\n",
                p.name, cfg.num_macs(), cfg.cbuf_kib, cfg.dbb_width_bits,
                static_cast<unsigned long long>(prepared.vp.total_cycles),
                cycles_to_ms(prepared.vp.total_cycles, 100 * kMHz),
                resources.luts, lut_pct,
                fpga::fits(resources, capacity) ? "yes" : "NO");
    std::fflush(stdout);
  }
  bench::print_footer_note(
      "Performance saturates once layers become overhead/DBB-bound while "
      "LUT cost grows linearly with the MAC array — the ZCU102 runs out of "
      "LUTs well before nv_full, as the paper observed during synthesis.");
  return 0;
}
