// Ablation C: NVDLA configuration scaling between nv_small and nv_full.
//
// Sweeps the hardware-tree parameters (MAC array shape, CBUF capacity, DBB
// width) across intermediate design points and reports ResNet-18 inference
// cycles on the VP plus the FPGA resource estimate — the design-space view
// behind the paper's conclusion that nv_full "does not fit on most FPGAs"
// while nv_small trades 4x performance for deployability. One
// InferenceSession per design point: the staged flow recompiles for each
// hardware tree, and the "vp" backend reports the cycles.
#include <cstdio>

#include "bench_util.hpp"
#include "fpga/resources.hpp"
#include "models/models.hpp"
#include "runtime/inference_session.hpp"

using namespace nvsoc;

int main() {
  bench::print_header("Ablation C: NVDLA scaling (nv_small -> nv_full), "
                      "ResNet-18 on the VP");
  bench::JsonReport report("ablation_nvdla_scaling");

  struct DesignPoint {
    const char* name;
    const char* key;
    std::uint32_t atomic_c, atomic_k, cbuf_kib, dbb_bits;
  };
  const DesignPoint points[] = {
      {"nv_small (8x8)", "nv_small", 8, 8, 128, 64},
      {"small_x2 (16x8)", "small_x2", 16, 8, 128, 64},
      {"mid (16x16)", "mid", 16, 16, 256, 128},
      {"large (32x16)", "large", 32, 16, 256, 256},
      {"nv_full (64x16)", "nv_full", 64, 16, 512, 512},
  };

  const auto capacity = fpga::zcu102_capacity();
  std::printf("%-17s %6s %7s %5s | %11s %9s | %9s %6s %5s\n", "Design",
              "MACs", "CBUF", "DBB", "R18 cycles", "t@100MHz", "LUTs",
              "LUT%", "fits");

  const auto net = models::resnet18_cifar();
  for (const auto& p : points) {
    nvdla::NvdlaConfig cfg = nvdla::NvdlaConfig::small();  // small timing
    cfg.name = p.name;
    cfg.atomic_c = p.atomic_c;
    cfg.atomic_k = p.atomic_k;
    cfg.cbuf_kib = p.cbuf_kib;
    cfg.dbb_width_bits = p.dbb_bits;

    core::FlowConfig flow;
    flow.nvdla = cfg;
    runtime::InferenceSession session(net, flow);
    const auto exec = session.run("vp");
    if (!exec.is_ok()) {
      std::fprintf(stderr, "%s failed: %s\n", p.name,
                   exec.status().to_string().c_str());
      return 2;
    }

    const auto resources = fpga::overall_system(cfg);
    const double lut_pct = 100.0 * resources.luts / capacity.luts;
    const bool fits = fpga::fits(resources, capacity);
    std::printf("%-17s %6u %5uKB %4ub | %11llu %6.2f ms | %9.0f %5.0f%% %5s\n",
                p.name, cfg.num_macs(), cfg.cbuf_kib, cfg.dbb_width_bits,
                static_cast<unsigned long long>(exec->cycles), exec->ms,
                resources.luts, lut_pct, fits ? "yes" : "NO");
    std::fflush(stdout);
    report.add(p.key, "macs", static_cast<std::uint64_t>(cfg.num_macs()));
    report.add(p.key, "resnet18_cycles", exec->cycles);
    report.add(p.key, "ms_100mhz", exec->ms);
    report.add(p.key, "luts", resources.luts);
    report.add(p.key, "lut_pct", lut_pct);
    report.add(p.key, "fits", fits);
  }
  report.write();
  bench::print_footer_note(
      "Performance saturates once layers become overhead/DBB-bound while "
      "LUT cost grows linearly with the MAC array — the ZCU102 runs out of "
      "LUTs well before nv_full, as the paper observed during synthesis.");
  return 0;
}
