// Regenerates Table II: execution time of the nv_small SoC (FPGA set-up of
// Fig. 4) at 100 MHz for LeNet-5, ResNet-18 and ResNet-50, against the
// Linux-kernel 64-bit RISC-V platform of Giri et al. [8] at 50 MHz.
//
// Each model runs the complete flow: synthetic weights -> calibration ->
// NVDLA compilation -> VP trace -> generated bare-metal RISC-V program ->
// execution on the SystemTop model (Zynq-PS preload, SmartConnect switch,
// CDC, MIG DDR4). The baseline column layers the measured accelerator
// cycles under the Linux driver-stack overhead model.
#include <cstdio>

#include "baseline/linux_baseline.hpp"
#include "bench_util.hpp"
#include "core/bare_metal_flow.hpp"
#include "models/models.hpp"

using namespace nvsoc;

int main() {
  bench::print_header(
      "Table II: nv_small SoC, FPGA implementation results @100 MHz");

  struct PaperRow {
    double proc_ms_100mhz;
    const char* linux_50mhz;
    int layers;
    const char* input;
    const char* size;
  };
  const PaperRow paper[3] = {
      {4.8, "263 ms", 9, "1x28x28", "1.7 MB"},
      {16.2, "NA", 86, "3x32x32", "0.8 MB"},
      {1100.0, "2.5 s", 228, "3x224x224", "102.5 MB"},
  };

  std::printf("%-10s %6s %-10s %-9s | %12s %12s | %14s %14s\n", "Model",
              "Layers", "Input", "ModelSz", "t@100MHz", "paper", "Linux@50MHz",
              "paper[8]");

  int i = 0;
  for (const auto& info : models::nv_small_zoo()) {
    const auto net = info.build();
    core::FlowConfig config;  // nv_small INT8 at 100 MHz
    const auto prepared = core::prepare_model(net, config);
    const auto exec = core::execute_on_system_top(prepared, config);

    baseline::LinuxDriverBaseline linux_platform;
    const auto linux_est =
        linux_platform.estimate(prepared.loadable, prepared.vp.total_cycles);

    std::printf(
        "%-10s %6zu %-10s %-9s | %9.1f ms %9.1f ms | %11.0f ms %14s\n",
        info.name.c_str(), net.layer_count(), paper[i].input, paper[i].size,
        exec.ms, paper[i].proc_ms_100mhz, linux_est.ms, paper[i].linux_50mhz);
    std::fflush(stdout);
    ++i;
  }
  bench::print_footer_note(
      "Shape check: bare-metal wins by >20x on LeNet-5 (software-overhead "
      "bound) but only ~2x on ResNet-50 (accelerator bound), as in the "
      "paper.");
  return 0;
}
