// Regenerates Table II: execution time of the nv_small SoC (FPGA set-up of
// Fig. 4) at 100 MHz for LeNet-5, ResNet-18 and ResNet-50, against the
// Linux-kernel 64-bit RISC-V platform of Giri et al. [8] at 50 MHz.
//
// Each model runs the complete staged flow through one InferenceSession;
// the bare-metal column executes on the "system_top" backend (Fig. 4) and
// the comparator column on "linux_baseline" — both selected by name from
// the BackendRegistry, sharing every prepared artifact.
#include <cstdio>

#include "bench_util.hpp"
#include "models/models.hpp"
#include "runtime/inference_session.hpp"

using namespace nvsoc;

int main() {
  bench::print_header(
      "Table II: nv_small SoC, FPGA implementation results @100 MHz");
  bench::JsonReport report("table2_nvsmall");

  struct PaperRow {
    double proc_ms_100mhz;
    const char* linux_50mhz;
    int layers;
    const char* input;
    const char* size;
  };
  const PaperRow paper[3] = {
      {4.8, "263 ms", 9, "1x28x28", "1.7 MB"},
      {16.2, "NA", 86, "3x32x32", "0.8 MB"},
      {1100.0, "2.5 s", 228, "3x224x224", "102.5 MB"},
  };

  std::printf("%-10s %6s %-10s %-9s | %12s %12s | %14s %14s\n", "Model",
              "Layers", "Input", "ModelSz", "t@100MHz", "paper", "Linux@50MHz",
              "paper[8]");

  int i = 0;
  for (const auto& info : models::nv_small_zoo()) {
    runtime::InferenceSession session(info.build());  // nv_small INT8 100 MHz
    const auto exec = session.run("system_top");
    const auto linux_est = session.run("linux_baseline");
    if (!exec.is_ok() || !linux_est.is_ok()) {
      std::fprintf(stderr, "%s failed: %s%s\n", info.name.c_str(),
                   exec.status().to_string().c_str(),
                   linux_est.status().to_string().c_str());
      return 2;
    }

    std::printf(
        "%-10s %6zu %-10s %-9s | %9.1f ms %9.1f ms | %11.0f ms %14s\n",
        info.name.c_str(), session.network().layer_count(), paper[i].input,
        paper[i].size, exec->ms, paper[i].proc_ms_100mhz, linux_est->ms,
        paper[i].linux_50mhz);
    std::fflush(stdout);
    report.add(info.name, "bare_metal_ms", exec->ms);
    report.add(info.name, "bare_metal_cycles", exec->cycles);
    report.add(info.name, "paper_ms", paper[i].proc_ms_100mhz);
    report.add(info.name, "linux_baseline_ms", linux_est->ms);
    report.add(info.name, "speedup", linux_est->ms / exec->ms);
    ++i;
  }
  report.write();
  bench::print_footer_note(
      "Shape check: bare-metal wins by >20x on LeNet-5 (software-overhead "
      "bound) but only ~2x on ResNet-50 (accelerator bound), as in the "
      "paper.");
  return 0;
}
