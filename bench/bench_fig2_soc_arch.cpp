// Regenerates Fig. 2 (the SoC architecture) as a per-component traffic
// census while the bare-metal LeNet-5 program runs: every bridge, the
// decoder, the width converter and the arbiter report what crossed them,
// demonstrating the tightly coupled config path (AHB->APB->CSB) and the
// shared-DRAM data path (DBB->64/32 converter->arbiter).
#include <cstdio>

#include "bench_util.hpp"
#include "models/models.hpp"
#include "runtime/inference_session.hpp"

using namespace nvsoc;

namespace {

void print_stats(const char* name, const BusStats& s) {
  std::printf("%-26s %9llu %9llu %11llu %11llu %8llu\n", name,
              static_cast<unsigned long long>(s.reads),
              static_cast<unsigned long long>(s.writes),
              static_cast<unsigned long long>(s.bytes_read),
              static_cast<unsigned long long>(s.bytes_written),
              static_cast<unsigned long long>(s.stall_cycles));
}

}  // namespace

int main() {
  bench::print_header("Fig. 2: the system-on-chip — bus traffic census "
                      "(bare-metal LeNet-5 inference)");

  runtime::InferenceSession session(models::lenet5());
  const auto exec = session.run("soc");
  if (!exec.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n", exec.status().to_string().c_str());
    return 2;
  }
  const auto& soc_exec = *exec->soc;

  std::printf("Run: %llu cycles @100 MHz = %.3f ms, %llu instructions "
              "retired (%.3f CPI)\n\n",
              static_cast<unsigned long long>(exec->cycles), exec->ms,
              static_cast<unsigned long long>(soc_exec.cpu.instructions()),
              soc_exec.cpu.cpi());

  std::printf("%-26s %9s %9s %11s %11s %8s\n", "Component", "reads", "writes",
              "bytes_rd", "bytes_wr", "stalls");
  const auto& c = soc_exec.census;
  print_stats("system_bus_decoder", c.decoder);
  print_stats("ahb2apb_bridge", c.ahb2apb);
  print_stats("apb2csb_adapter (NVDLA)", c.apb2csb);
  print_stats("ahb2axi_bridge (DRAM)", c.ahb2axi);
  print_stats("axi_dwidth_conv (DBB)", c.width_converter);

  std::printf("\nArbiter grants: CPU=%llu (wait %llu cyc), NVDLA-DBB=%llu "
              "(wait %llu cyc)\n",
              static_cast<unsigned long long>(c.arbiter_cpu.grants),
              static_cast<unsigned long long>(c.arbiter_cpu.wait_cycles),
              static_cast<unsigned long long>(c.arbiter_dbb.grants),
              static_cast<unsigned long long>(c.arbiter_dbb.wait_cycles));
  std::printf("NVDLA DBB totals: %.2f MB read, %.2f MB written in %llu "
              "bursts\n",
              c.dbb.bytes_read / 1e6, c.dbb.bytes_written / 1e6,
              static_cast<unsigned long long>(c.dbb.bursts));
  std::printf("CPU profile: %llu loads, %llu stores, %llu taken branches, "
              "%llu memory-stall cycles\n",
              static_cast<unsigned long long>(soc_exec.cpu.stats.loads),
              static_cast<unsigned long long>(soc_exec.cpu.stats.stores),
              static_cast<unsigned long long>(
                  soc_exec.cpu.stats.taken_branches),
              static_cast<unsigned long long>(
                  soc_exec.cpu.stats.memory_stall_cycles));

  bench::JsonReport report("fig2_soc_arch");
  report.add("lenet5", "cycles", exec->cycles);
  report.add("lenet5", "ms", exec->ms);
  report.add("lenet5", "instructions", soc_exec.cpu.instructions());
  report.add("lenet5", "csb_transfers", c.apb2csb.transfers());
  report.add("lenet5", "dbb_bytes", c.dbb.bytes_read + c.dbb.bytes_written);
  report.add("lenet5", "arbiter_dbb_wait_cycles", c.arbiter_dbb.wait_cycles);
  report.write();

  bench::print_footer_note(
      "Every NVDLA register write travels decoder -> AHB2APB -> APB2CSB "
      "(address range 0x0-0xFFFFF); all accelerator data crosses the 64->32 "
      "width converter into the shared-DRAM arbiter (0x100000-0x200FFFFF).");
  return 0;
}
