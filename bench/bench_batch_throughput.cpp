// Batched-inference throughput: sequential run_batch vs thread-pooled
// run_batch_parallel vs streaming submit() on the same InferenceSession
// artifacts, plus the functional-replay serving leg against full
// re-simulation.
//
// The serving story behind the runtime API: the offline flow is staged
// once (weights, calibration, loadable, one VP trace + recorded replay
// schedule), then every further image only repacks the input surface and
// replays the schedule's functional ops — no ISS, no KMD, no trace
// capture. This bench measures what that buys end to end and reports the
// trajectory metrics (BENCH_batch_throughput.json).
//
// Wall-clock metrics (ms, images/sec, speedup) vary with the host and are
// not gated; the gated trajectory metrics are virtual-time:
// platform_cycles_per_image and virtual_images_per_sec (both
// simulator-deterministic), plus the replay_speedup_vs_full ratio, which
// bench/check_regression.py holds to an absolute >= 2.0 floor so the fast
// path cannot silently regress into a re-simulation.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "mem/dram.hpp"
#include "mem/program_memory.hpp"
#include "models/models.hpp"
#include "riscv/assembler.hpp"
#include "riscv/cpu.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/thread_pool.hpp"
#include "vp/replay_engine.hpp"

using namespace nvsoc;

namespace {

double wall_ms(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  bench::print_header(
      "Batch throughput: sequential run_batch vs run_batch_parallel vs "
      "streaming submit()");
  bench::JsonReport report("batch_throughput");

  constexpr std::size_t kImages = 8;
  // Floor of 2 so the pooled path is exercised (not silently degraded to
  // run_batch) even on single-core hosts; there the speedup honestly reads
  // ~1x and the scaling shows up on multi-core machines.
  const std::size_t workers =
      std::max<std::size_t>(2, runtime::ThreadPool::recommended_workers(kImages));

  struct Case {
    const char* model;
    compiler::Network (*build)();
    /// Stable report/section label — the baseline JSON is keyed on it, so
    /// it must not change when spec spellings do.
    const char* label;
    /// The cycle-accurate legs. The SoC platforms replay by default now,
    /// so full simulation is selected explicitly — keeping the measured
    /// flows identical to the pre-flip bench.
    const char* backend;
    /// The functional-replay serving leg: for the simulation-backed `vp`
    /// backend the repack path replays automatically, so the full-sim
    /// comparator is a repack-disabled session on the same backend.
    const char* replay_backend;
  };
  const Case cases[] = {
      {"lenet5", models::lenet5, "soc", "soc?mode=cycle_accurate",
       "soc?mode=replay"},
      {"lenet5", models::lenet5, "vp", "vp", "vp"},
      {"resnet18", models::resnet18_cifar, "soc", "soc?mode=cycle_accurate",
       "soc?mode=replay"},
  };

  std::printf("%-10s %-6s %3s img | %10s %10s %10s | %9s %9s %9s | %7s\n",
              "Model", "Backend", "", "seq", "parallel", "stream",
              "seq im/s", "par im/s", "str im/s", "speedup");

  for (const auto& c : cases) {
    const compiler::Network network = c.build();
    std::vector<std::vector<float>> images;
    for (std::size_t i = 0; i < kImages; ++i) {
      images.push_back(
          compiler::synthetic_input(network.input_shape(), 9000 + i));
    }

    runtime::InferenceSession sequential(c.build());
    runtime::InferenceSession parallel(c.build());
    runtime::InferenceSession streaming(c.build());
    // Stage the shared artifacts outside the timed region for every path:
    // the bench measures batch execution, not one-time compilation.
    (void)sequential.prepare(images.front());
    (void)parallel.prepare(images.front());
    (void)streaming.prepare(images.front());

    const auto t0 = std::chrono::steady_clock::now();
    const auto seq = sequential.run_batch(c.backend, images);
    const auto t1 = std::chrono::steady_clock::now();
    runtime::BatchOptions options;
    options.workers = workers;
    const auto par = parallel.run_batch_parallel(c.backend, images, options);
    const auto t2 = std::chrono::steady_clock::now();

    // Streaming arrivals: submit every image up front (no batch barrier),
    // collect in submission order. Same session-lifetime pool mechanics as
    // the parallel batch, minus the barrier. The first get() is timed
    // separately: submit-to-first-result is the latency a streaming client
    // actually feels (staging happens in the pool, so the calling thread
    // pays enqueue cost only).
    std::vector<runtime::PendingResult> pending;
    pending.reserve(kImages);
    for (const auto& image : images) {
      pending.push_back(streaming.submit(c.backend, image));
    }
    std::vector<runtime::ExecutionResult> stream_results;
    stream_results.reserve(kImages);
    Status stream_status = Status::ok();
    double first_result_ms = 0.0;
    for (auto& handle : pending) {
      auto result = handle.get();
      if (stream_results.empty() && stream_status.is_ok()) {
        first_result_ms = wall_ms(t2, std::chrono::steady_clock::now());
      }
      if (!result.is_ok()) {
        if (stream_status.is_ok()) stream_status = result.status();
        continue;
      }
      stream_results.push_back(std::move(result).value());
    }
    const auto t3 = std::chrono::steady_clock::now();

    // Functional-replay legs. Two comparators, two gates:
    //
    //  * replay_speedup_vs_full — exact same-shape pair: same backend
    //    spec, same pooled API, same worker count; the only difference is
    //    set_replay_enabled(false) on the comparator, which drops the
    //    recorded schedule so every image re-simulates in full.
    //    Parallelism cancels out of the ratio, so a replay path that
    //    silently degrades into re-simulation drives it to ~1.0 on any
    //    host — check_regression.py floors it at 1.25.
    //  * replay_serving_speedup — pooled replay serving vs the legacy
    //    sequential serving path (replay disabled: eager FP32 reference +
    //    one full simulation per image — what repeat images cost before
    //    the replay engine existed). The end-to-end win; floored at 2.0.
    runtime::InferenceSession replaying(c.build());
    (void)replaying.prepare(images.front());
    const auto t4 = std::chrono::steady_clock::now();
    const auto rep =
        replaying.run_batch_parallel(c.replay_backend, images, options);
    const auto t5 = std::chrono::steady_clock::now();
    const double replay_ms = wall_ms(t4, t5);

    runtime::InferenceSession fullsim(c.build());
    fullsim.set_replay_enabled(false);
    (void)fullsim.prepare(images.front());
    const auto f0 = std::chrono::steady_clock::now();
    const auto full =
        fullsim.run_batch_parallel(c.replay_backend, images, options);
    const double full_ms = wall_ms(f0, std::chrono::steady_clock::now());
    const auto l0 = std::chrono::steady_clock::now();
    const auto legacy = fullsim.run_batch(c.replay_backend, images);
    const double legacy_ms = wall_ms(l0, std::chrono::steady_clock::now());
    if (!full.is_ok() || !legacy.is_ok()) {
      std::fprintf(stderr, "%s/%s full-sim legs failed: %s%s\n", c.model,
                   c.label, full.status().to_string().c_str(),
                   legacy.status().to_string().c_str());
      return 2;
    }

    if (!seq.is_ok() || !par.is_ok() || !stream_status.is_ok() ||
        !rep.is_ok()) {
      std::fprintf(stderr, "%s/%s failed: %s%s%s%s\n", c.model, c.label,
                   seq.status().to_string().c_str(),
                   par.status().to_string().c_str(),
                   stream_status.to_string().c_str(),
                   rep.status().to_string().c_str());
      return 2;
    }

    Cycle total_cycles = 0;
    bool bit_exact = true;
    for (std::size_t i = 0; i < kImages; ++i) {
      total_cycles += (*seq)[i].cycles;
      bit_exact = bit_exact && (*seq)[i].output == (*par)[i].output &&
                  (*seq)[i].cycles == (*par)[i].cycles &&
                  (*seq)[i].output == stream_results[i].output &&
                  (*seq)[i].cycles == stream_results[i].cycles &&
                  (*seq)[i].output == (*rep)[i].output &&
                  (*seq)[i].cycles == (*rep)[i].cycles &&
                  (*rep)[i].output == (*full)[i].output &&
                  (*rep)[i].cycles == (*full)[i].cycles &&
                  (*rep)[i].output == (*legacy)[i].output &&
                  (*rep)[i].cycles == (*legacy)[i].cycles;
    }
    if (!bit_exact) {
      std::fprintf(stderr,
                   "%s/%s: parallel/streaming/replay results diverge from "
                   "sequential\n",
                   c.model, c.label);
      return 2;
    }

    // Arena staging microbench: replay an *empty* op span so both legs do
    // exactly the per-image arena staging (preload vs reset + input pack)
    // and none of the op math, which dominates wall time and cancels out
    // of the serving comparison anyway. "fresh" builds a new engine — and
    // thus a new arena (sparse-page allocation + weight-blob copy) — per
    // image, which is what every replay paid before arena reuse; "reused"
    // checks the one warm arena out and resets only the pages the
    // previous image dirtied.
    constexpr int kArenaReps = 64;
    const auto& staged = replaying.prepared();
    const compiler::Loadable& staged_loadable = staged.loadable();
    const std::span<const nvdla::ReplayOp> no_ops;
    const auto a0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kArenaReps; ++r) {
      vp::ReplayEngine fresh(staged.nvdla());
      (void)fresh.run(staged_loadable, no_ops, images[r % kImages]);
    }
    const double arena_fresh_ms =
        wall_ms(a0, std::chrono::steady_clock::now());
    vp::ReplayEngine reused(staged.nvdla());
    (void)reused.run(staged_loadable, no_ops, images[0]);  // warm the arena
    const auto a1 = std::chrono::steady_clock::now();
    for (int r = 0; r < kArenaReps; ++r) {
      (void)reused.run(staged_loadable, no_ops, images[r % kImages]);
    }
    const double arena_reuse_ms =
        wall_ms(a1, std::chrono::steady_clock::now());
    const double arena_speedup = arena_fresh_ms / arena_reuse_ms;

    const double seq_ms = wall_ms(t0, t1);
    const double par_ms = wall_ms(t1, t2);
    const double str_ms = wall_ms(t2, t3);
    const double seq_ips = kImages / (seq_ms / 1e3);
    const double par_ips = kImages / (par_ms / 1e3);
    const double str_ips = kImages / (str_ms / 1e3);
    const std::string section = std::string(c.model) + "_" + c.label;
    // Virtual-time throughput: simulator cycles per image at the platform
    // clock — deterministic across hosts, unlike the wall-clock columns.
    const Cycle cycles_per_image = total_cycles / kImages;
    const double virtual_ips =
        static_cast<double>(seq->front().clock) / cycles_per_image;
    std::printf("%-10s %-6s %3zu img | %7.1f ms %7.1f ms %7.1f ms | %9.1f "
                "%9.1f %9.1f | %6.2fx | replay %5.2fx engine, %5.2fx "
                "serving, %5.2fx arena | first %5.2f ms\n",
                c.model, c.label, kImages, seq_ms, par_ms, str_ms, seq_ips,
                par_ips, str_ips, seq_ms / par_ms, full_ms / replay_ms,
                legacy_ms / replay_ms, arena_speedup, first_result_ms);
    std::fflush(stdout);

    report.add(section, "images", static_cast<std::uint64_t>(kImages));
    report.add(section, "workers", static_cast<std::uint64_t>(workers));
    report.add(section, "sequential_wall_ms", seq_ms);
    report.add(section, "parallel_wall_ms", par_ms);
    report.add(section, "sequential_images_per_sec", seq_ips);
    report.add(section, "parallel_images_per_sec", par_ips);
    report.add(section, "streaming_wall_ms", str_ms);
    report.add(section, "streaming_images_per_sec", str_ips);
    report.add(section, "first_result_latency_ms", first_result_ms);
    report.add(section, "speedup", seq_ms / par_ms);
    report.add(section, "platform_cycles_per_image",
               static_cast<std::uint64_t>(cycles_per_image));
    report.add(section, "virtual_images_per_sec", virtual_ips);
    report.add(section, "full_sim_wall_ms", full_ms);
    report.add(section, "legacy_serving_wall_ms", legacy_ms);
    report.add(section, "replay_wall_ms", replay_ms);
    report.add(section, "replay_speedup_vs_full", full_ms / replay_ms);
    report.add(section, "replay_serving_speedup", legacy_ms / replay_ms);
    report.add(section, "arena_fresh_ms", arena_fresh_ms);
    report.add(section, "arena_reuse_ms", arena_reuse_ms);
    report.add(section, "arena_replay_speedup", arena_speedup);
    report.add(section, "replays_executed",
               static_cast<std::uint64_t>(replaying.counters().replay));
    report.add(section, "vp_replays_sequential",
               static_cast<std::uint64_t>(sequential.counters().trace));
    report.add(section, "vp_replays_parallel",
               static_cast<std::uint64_t>(parallel.counters().trace));
    report.add(section, "vp_replays_streaming",
               static_cast<std::uint64_t>(streaming.counters().trace));

    // Decode-cache ablation (ISS-bearing legs only): the cycle-accurate
    // batch above dispatched from the decoded-block cache; re-run the same
    // sequential batch with `?decode_cache=off` — the per-instruction
    // fetch/decode oracle. Cycles and outputs must be bit-identical (the
    // cache is a host-side optimisation, not a model change); the
    // wall-clock ratio is the cache's win and check_regression.py floors
    // it at 1.3x. The cached leg's CpuStats counters are the evidence
    // that blocks were actually built and replayed.
    if (std::string(c.backend).find("cycle_accurate") != std::string::npos) {
      runtime::InferenceSession oracle(c.build());
      (void)oracle.prepare(images.front());
      const std::string off_spec =
          std::string(c.backend) + "&decode_cache=off";
      const auto u0 = std::chrono::steady_clock::now();
      const auto unc = oracle.run_batch(off_spec, images);
      const double dc_off_ms = wall_ms(u0, std::chrono::steady_clock::now());
      if (!unc.is_ok()) {
        std::fprintf(stderr, "%s/%s decode_cache=off leg failed: %s\n",
                     c.model, c.label, unc.status().to_string().c_str());
        return 2;
      }
      for (std::size_t i = 0; i < kImages; ++i) {
        if ((*seq)[i].cycles != (*unc)[i].cycles ||
            (*seq)[i].output != (*unc)[i].output) {
          std::fprintf(stderr,
                       "%s/%s: decode-cache run diverges from the "
                       "per-instruction oracle on image %zu\n",
                       c.model, c.label, i);
          return 2;
        }
      }
      const auto& cached_cpu = seq->front().soc->cpu.stats;
      const auto& oracle_cpu = unc->front().soc->cpu.stats;
      if (cached_cpu.decoded_blocks == 0 || cached_cpu.block_hits == 0 ||
          oracle_cpu.decoded_blocks != 0) {
        std::fprintf(stderr,
                     "%s/%s: decode-cache evidence counters are wrong "
                     "(cached blocks=%llu hits=%llu, oracle blocks=%llu)\n",
                     c.model, c.label,
                     static_cast<unsigned long long>(
                         cached_cpu.decoded_blocks),
                     static_cast<unsigned long long>(cached_cpu.block_hits),
                     static_cast<unsigned long long>(
                         oracle_cpu.decoded_blocks));
        return 2;
      }
      std::printf("%-10s %-6s decode cache: %7.1f ms cached vs %7.1f ms "
                  "oracle (%5.2fx end to end), %llu blocks, %llu hits, "
                  "%llu invalidations, cycles bit-identical\n",
                  c.model, c.label, seq_ms, dc_off_ms, dc_off_ms / seq_ms,
                  static_cast<unsigned long long>(cached_cpu.decoded_blocks),
                  static_cast<unsigned long long>(cached_cpu.block_hits),
                  static_cast<unsigned long long>(
                      cached_cpu.block_invalidations));
      std::fflush(stdout);
      // End-to-end the ISS is a minority of the wall time (the NVDLA
      // datapath model dominates), so this ratio is reported ungated;
      // the gated decode_cache_speedup comes from the ISS-dominated
      // microbench below.
      report.add(section, "decode_cache_off_wall_ms", dc_off_ms);
      report.add(section, "decode_cache_end_to_end_ratio",
                 dc_off_ms / seq_ms);
      report.add(section, "decoded_blocks", cached_cpu.decoded_blocks);
      report.add(section, "block_hits", cached_cpu.block_hits);
      report.add(section, "block_invalidations",
                 cached_cpu.block_invalidations);
    }
  }

  // ISS decode-cache microbench. The inference legs above spend most of
  // their wall time in the NVDLA datapath kernels, which dilutes the ISS
  // dispatch win to noise — so the gated ratio isolates what the cache
  // actually accelerates: the fetch/decode/execute loop itself. One
  // poll-shaped program (load + count + branch, the generated programs'
  // wait idiom) runs twice on the same timing model, decoded-block
  // dispatch vs the per-instruction oracle; cycles and stats must agree
  // bit for bit, and check_regression.py floors the wall-clock ratio at
  // 1.3x so cached dispatch cannot silently degrade into per-instruction
  // execution.
  {
    rv::Assembler assembler;
    const auto image = assembler.assemble(R"(
      li   s0, 0x1000
      li   t0, 0
      li   t1, 1500000
    loop:
      lw   t2, 0(s0)
      addi t0, t0, 1
      bne  t0, t1, loop
      ebreak
    )");
    double leg_ms[2] = {0.0, 0.0};
    rv::RunResult leg_result[2];
    for (int leg = 0; leg < 2; ++leg) {
      ProgramMemory pmem(64 * 1024);
      pmem.load_image(0, image.bytes);
      Dram dram(1 << 20);
      rv::CpuConfig config;
      config.decode_cache = (leg == 0);
      rv::Cpu cpu(pmem, dram, config);
      const auto m0 = std::chrono::steady_clock::now();
      leg_result[leg] = cpu.run();
      leg_ms[leg] = wall_ms(m0, std::chrono::steady_clock::now());
    }
    const auto& cached = leg_result[0];
    const auto& oracle = leg_result[1];
    if (cached.cycles != oracle.cycles ||
        cached.stats.instructions != oracle.stats.instructions ||
        cached.stats.memory_stall_cycles !=
            oracle.stats.memory_stall_cycles ||
        cached.stats.taken_branches != oracle.stats.taken_branches ||
        cached.stats.decoded_blocks == 0 || cached.stats.block_hits == 0) {
      std::fprintf(stderr,
                   "ISS decode-cache microbench: cached dispatch diverges "
                   "from the per-instruction oracle\n");
      return 2;
    }
    const double dc_speedup = leg_ms[1] / leg_ms[0];
    const double cached_mips =
        cached.stats.instructions / (leg_ms[0] * 1e3);
    std::printf("ISS decode cache: %.1fM instructions, %6.1f ms cached "
                "(%.1f Minstr/s) vs %6.1f ms oracle (%5.2fx), cycles "
                "bit-identical\n",
                cached.stats.instructions / 1e6, leg_ms[0], cached_mips,
                leg_ms[1], dc_speedup);
    std::fflush(stdout);
    report.add("iss_decode_cache", "instructions",
               cached.stats.instructions);
    report.add("iss_decode_cache", "cached_wall_ms", leg_ms[0]);
    report.add("iss_decode_cache", "decode_cache_off_wall_ms", leg_ms[1]);
    report.add("iss_decode_cache", "decode_cache_speedup", dc_speedup);
    report.add("iss_decode_cache", "cached_minstr_per_sec", cached_mips);
    report.add("iss_decode_cache", "decoded_blocks",
               cached.stats.decoded_blocks);
    report.add("iss_decode_cache", "block_hits", cached.stats.block_hits);
    report.add("iss_decode_cache", "block_invalidations",
               cached.stats.block_invalidations);
  }

  report.write();
  bench::print_footer_note(
      "Same staged artifacts, one VP trace + recorded replay schedule and "
      "one thread pool per session; parallel, streaming and replay-leg "
      "results are bit-exact with sequential (verified above). Replay "
      "ratios: 'engine' is the same-shape pooled pair differing only in "
      "the schedule (check_regression.py floors it at 1.25x), 'serving' "
      "is pooled replay vs the legacy sequential serving path (floored "
      "at 2x), 'arena' is per-image arena staging fresh-vs-reused "
      "(floored at 1.5x). 'first' is the streaming submit-to-first-get "
      "latency (wall clock, ungated).");
  return 0;
}
