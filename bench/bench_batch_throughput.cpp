// Batched-inference throughput: sequential run_batch vs thread-pooled
// run_batch_parallel vs streaming submit() on the same InferenceSession
// artifacts.
//
// The serving story behind the runtime API: the offline flow is staged
// once (weights, calibration, loadable, one VP trace), then every further
// image only repacks the input surface — so a multi-user batch is
// embarrassingly parallel, each worker executing on its own SoC/VP
// instance. This bench measures what that buys end to end and reports
// images/sec for the perf trajectory (BENCH_batch_throughput.json).
//
// Wall-clock metrics (ms, images/sec, speedup) vary with the host; the
// platform_cycles_per_image metric is simulator-deterministic and is what
// bench/check_regression.py tracks across PRs.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "models/models.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/thread_pool.hpp"

using namespace nvsoc;

namespace {

double wall_ms(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  bench::print_header(
      "Batch throughput: sequential run_batch vs run_batch_parallel vs "
      "streaming submit()");
  bench::JsonReport report("batch_throughput");

  constexpr std::size_t kImages = 8;
  // Floor of 2 so the pooled path is exercised (not silently degraded to
  // run_batch) even on single-core hosts; there the speedup honestly reads
  // ~1x and the scaling shows up on multi-core machines.
  const std::size_t workers =
      std::max<std::size_t>(2, runtime::ThreadPool::recommended_workers(kImages));

  struct Case {
    const char* model;
    compiler::Network (*build)();
    const char* backend;
  };
  const Case cases[] = {
      {"lenet5", models::lenet5, "soc"},
      {"lenet5", models::lenet5, "vp"},
      {"resnet18", models::resnet18_cifar, "soc"},
  };

  std::printf("%-10s %-6s %3s img | %10s %10s %10s | %9s %9s %9s | %7s\n",
              "Model", "Backend", "", "seq", "parallel", "stream",
              "seq im/s", "par im/s", "str im/s", "speedup");

  for (const auto& c : cases) {
    const compiler::Network network = c.build();
    std::vector<std::vector<float>> images;
    for (std::size_t i = 0; i < kImages; ++i) {
      images.push_back(
          compiler::synthetic_input(network.input_shape(), 9000 + i));
    }

    runtime::InferenceSession sequential(c.build());
    runtime::InferenceSession parallel(c.build());
    runtime::InferenceSession streaming(c.build());
    // Stage the shared artifacts outside the timed region for every path:
    // the bench measures batch execution, not one-time compilation.
    (void)sequential.prepare(images.front());
    (void)parallel.prepare(images.front());
    (void)streaming.prepare(images.front());

    const auto t0 = std::chrono::steady_clock::now();
    const auto seq = sequential.run_batch(c.backend, images);
    const auto t1 = std::chrono::steady_clock::now();
    runtime::BatchOptions options;
    options.workers = workers;
    const auto par = parallel.run_batch_parallel(c.backend, images, options);
    const auto t2 = std::chrono::steady_clock::now();

    // Streaming arrivals: submit every image up front (no batch barrier),
    // collect in submission order. Same session-lifetime pool mechanics as
    // the parallel batch, minus the barrier.
    std::vector<runtime::PendingResult> pending;
    pending.reserve(kImages);
    for (const auto& image : images) {
      pending.push_back(streaming.submit(c.backend, image));
    }
    std::vector<runtime::ExecutionResult> stream_results;
    stream_results.reserve(kImages);
    Status stream_status = Status::ok();
    for (auto& handle : pending) {
      auto result = handle.get();
      if (!result.is_ok()) {
        if (stream_status.is_ok()) stream_status = result.status();
        continue;
      }
      stream_results.push_back(std::move(result).value());
    }
    const auto t3 = std::chrono::steady_clock::now();

    if (!seq.is_ok() || !par.is_ok() || !stream_status.is_ok()) {
      std::fprintf(stderr, "%s/%s failed: %s%s%s\n", c.model, c.backend,
                   seq.status().to_string().c_str(),
                   par.status().to_string().c_str(),
                   stream_status.to_string().c_str());
      return 2;
    }

    Cycle total_cycles = 0;
    bool bit_exact = true;
    for (std::size_t i = 0; i < kImages; ++i) {
      total_cycles += (*seq)[i].cycles;
      bit_exact = bit_exact && (*seq)[i].output == (*par)[i].output &&
                  (*seq)[i].cycles == (*par)[i].cycles &&
                  (*seq)[i].output == stream_results[i].output &&
                  (*seq)[i].cycles == stream_results[i].cycles;
    }
    if (!bit_exact) {
      std::fprintf(stderr, "%s/%s: parallel results diverge from sequential\n",
                   c.model, c.backend);
      return 2;
    }

    const double seq_ms = wall_ms(t0, t1);
    const double par_ms = wall_ms(t1, t2);
    const double str_ms = wall_ms(t2, t3);
    const double seq_ips = kImages / (seq_ms / 1e3);
    const double par_ips = kImages / (par_ms / 1e3);
    const double str_ips = kImages / (str_ms / 1e3);
    const std::string section = std::string(c.model) + "_" + c.backend;
    std::printf("%-10s %-6s %3zu img | %7.1f ms %7.1f ms %7.1f ms | %9.1f "
                "%9.1f %9.1f | %6.2fx\n",
                c.model, c.backend, kImages, seq_ms, par_ms, str_ms, seq_ips,
                par_ips, str_ips, seq_ms / par_ms);
    std::fflush(stdout);

    report.add(section, "images", static_cast<std::uint64_t>(kImages));
    report.add(section, "workers", static_cast<std::uint64_t>(workers));
    report.add(section, "sequential_wall_ms", seq_ms);
    report.add(section, "parallel_wall_ms", par_ms);
    report.add(section, "sequential_images_per_sec", seq_ips);
    report.add(section, "parallel_images_per_sec", par_ips);
    report.add(section, "streaming_wall_ms", str_ms);
    report.add(section, "streaming_images_per_sec", str_ips);
    report.add(section, "speedup", seq_ms / par_ms);
    report.add(section, "platform_cycles_per_image",
               static_cast<std::uint64_t>(total_cycles / kImages));
    report.add(section, "vp_replays_sequential",
               static_cast<std::uint64_t>(sequential.counters().trace));
    report.add(section, "vp_replays_parallel",
               static_cast<std::uint64_t>(parallel.counters().trace));
    report.add(section, "vp_replays_streaming",
               static_cast<std::uint64_t>(streaming.counters().trace));
  }

  report.write();
  bench::print_footer_note(
      "Same staged artifacts, one VP replay and one thread pool per "
      "session; parallel and streaming results are bit-exact with "
      "sequential (verified above).");
  return 0;
}
