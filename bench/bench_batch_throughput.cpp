// Batched-inference throughput: sequential run_batch vs thread-pooled
// run_batch_parallel vs streaming submit() on the same InferenceSession
// artifacts, plus the functional-replay serving leg against full
// re-simulation.
//
// The serving story behind the runtime API: the offline flow is staged
// once (weights, calibration, loadable, one VP trace + recorded replay
// schedule), then every further image only repacks the input surface and
// replays the schedule's functional ops — no ISS, no KMD, no trace
// capture. This bench measures what that buys end to end and reports the
// trajectory metrics (BENCH_batch_throughput.json).
//
// Wall-clock metrics (ms, images/sec, speedup) vary with the host and are
// not gated; the gated trajectory metrics are virtual-time:
// platform_cycles_per_image and virtual_images_per_sec (both
// simulator-deterministic), plus the replay_speedup_vs_full ratio, which
// bench/check_regression.py holds to an absolute >= 2.0 floor so the fast
// path cannot silently regress into a re-simulation.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "models/models.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/thread_pool.hpp"
#include "vp/replay_engine.hpp"

using namespace nvsoc;

namespace {

double wall_ms(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  bench::print_header(
      "Batch throughput: sequential run_batch vs run_batch_parallel vs "
      "streaming submit()");
  bench::JsonReport report("batch_throughput");

  constexpr std::size_t kImages = 8;
  // Floor of 2 so the pooled path is exercised (not silently degraded to
  // run_batch) even on single-core hosts; there the speedup honestly reads
  // ~1x and the scaling shows up on multi-core machines.
  const std::size_t workers =
      std::max<std::size_t>(2, runtime::ThreadPool::recommended_workers(kImages));

  struct Case {
    const char* model;
    compiler::Network (*build)();
    /// Stable report/section label — the baseline JSON is keyed on it, so
    /// it must not change when spec spellings do.
    const char* label;
    /// The cycle-accurate legs. The SoC platforms replay by default now,
    /// so full simulation is selected explicitly — keeping the measured
    /// flows identical to the pre-flip bench.
    const char* backend;
    /// The functional-replay serving leg: for the simulation-backed `vp`
    /// backend the repack path replays automatically, so the full-sim
    /// comparator is a repack-disabled session on the same backend.
    const char* replay_backend;
  };
  const Case cases[] = {
      {"lenet5", models::lenet5, "soc", "soc?mode=cycle_accurate",
       "soc?mode=replay"},
      {"lenet5", models::lenet5, "vp", "vp", "vp"},
      {"resnet18", models::resnet18_cifar, "soc", "soc?mode=cycle_accurate",
       "soc?mode=replay"},
  };

  std::printf("%-10s %-6s %3s img | %10s %10s %10s | %9s %9s %9s | %7s\n",
              "Model", "Backend", "", "seq", "parallel", "stream",
              "seq im/s", "par im/s", "str im/s", "speedup");

  for (const auto& c : cases) {
    const compiler::Network network = c.build();
    std::vector<std::vector<float>> images;
    for (std::size_t i = 0; i < kImages; ++i) {
      images.push_back(
          compiler::synthetic_input(network.input_shape(), 9000 + i));
    }

    runtime::InferenceSession sequential(c.build());
    runtime::InferenceSession parallel(c.build());
    runtime::InferenceSession streaming(c.build());
    // Stage the shared artifacts outside the timed region for every path:
    // the bench measures batch execution, not one-time compilation.
    (void)sequential.prepare(images.front());
    (void)parallel.prepare(images.front());
    (void)streaming.prepare(images.front());

    const auto t0 = std::chrono::steady_clock::now();
    const auto seq = sequential.run_batch(c.backend, images);
    const auto t1 = std::chrono::steady_clock::now();
    runtime::BatchOptions options;
    options.workers = workers;
    const auto par = parallel.run_batch_parallel(c.backend, images, options);
    const auto t2 = std::chrono::steady_clock::now();

    // Streaming arrivals: submit every image up front (no batch barrier),
    // collect in submission order. Same session-lifetime pool mechanics as
    // the parallel batch, minus the barrier. The first get() is timed
    // separately: submit-to-first-result is the latency a streaming client
    // actually feels (staging happens in the pool, so the calling thread
    // pays enqueue cost only).
    std::vector<runtime::PendingResult> pending;
    pending.reserve(kImages);
    for (const auto& image : images) {
      pending.push_back(streaming.submit(c.backend, image));
    }
    std::vector<runtime::ExecutionResult> stream_results;
    stream_results.reserve(kImages);
    Status stream_status = Status::ok();
    double first_result_ms = 0.0;
    for (auto& handle : pending) {
      auto result = handle.get();
      if (stream_results.empty() && stream_status.is_ok()) {
        first_result_ms = wall_ms(t2, std::chrono::steady_clock::now());
      }
      if (!result.is_ok()) {
        if (stream_status.is_ok()) stream_status = result.status();
        continue;
      }
      stream_results.push_back(std::move(result).value());
    }
    const auto t3 = std::chrono::steady_clock::now();

    // Functional-replay legs. Two comparators, two gates:
    //
    //  * replay_speedup_vs_full — exact same-shape pair: same backend
    //    spec, same pooled API, same worker count; the only difference is
    //    set_replay_enabled(false) on the comparator, which drops the
    //    recorded schedule so every image re-simulates in full.
    //    Parallelism cancels out of the ratio, so a replay path that
    //    silently degrades into re-simulation drives it to ~1.0 on any
    //    host — check_regression.py floors it at 1.25.
    //  * replay_serving_speedup — pooled replay serving vs the legacy
    //    sequential serving path (replay disabled: eager FP32 reference +
    //    one full simulation per image — what repeat images cost before
    //    the replay engine existed). The end-to-end win; floored at 2.0.
    runtime::InferenceSession replaying(c.build());
    (void)replaying.prepare(images.front());
    const auto t4 = std::chrono::steady_clock::now();
    const auto rep =
        replaying.run_batch_parallel(c.replay_backend, images, options);
    const auto t5 = std::chrono::steady_clock::now();
    const double replay_ms = wall_ms(t4, t5);

    runtime::InferenceSession fullsim(c.build());
    fullsim.set_replay_enabled(false);
    (void)fullsim.prepare(images.front());
    const auto f0 = std::chrono::steady_clock::now();
    const auto full =
        fullsim.run_batch_parallel(c.replay_backend, images, options);
    const double full_ms = wall_ms(f0, std::chrono::steady_clock::now());
    const auto l0 = std::chrono::steady_clock::now();
    const auto legacy = fullsim.run_batch(c.replay_backend, images);
    const double legacy_ms = wall_ms(l0, std::chrono::steady_clock::now());
    if (!full.is_ok() || !legacy.is_ok()) {
      std::fprintf(stderr, "%s/%s full-sim legs failed: %s%s\n", c.model,
                   c.label, full.status().to_string().c_str(),
                   legacy.status().to_string().c_str());
      return 2;
    }

    if (!seq.is_ok() || !par.is_ok() || !stream_status.is_ok() ||
        !rep.is_ok()) {
      std::fprintf(stderr, "%s/%s failed: %s%s%s%s\n", c.model, c.label,
                   seq.status().to_string().c_str(),
                   par.status().to_string().c_str(),
                   stream_status.to_string().c_str(),
                   rep.status().to_string().c_str());
      return 2;
    }

    Cycle total_cycles = 0;
    bool bit_exact = true;
    for (std::size_t i = 0; i < kImages; ++i) {
      total_cycles += (*seq)[i].cycles;
      bit_exact = bit_exact && (*seq)[i].output == (*par)[i].output &&
                  (*seq)[i].cycles == (*par)[i].cycles &&
                  (*seq)[i].output == stream_results[i].output &&
                  (*seq)[i].cycles == stream_results[i].cycles &&
                  (*seq)[i].output == (*rep)[i].output &&
                  (*seq)[i].cycles == (*rep)[i].cycles &&
                  (*rep)[i].output == (*full)[i].output &&
                  (*rep)[i].cycles == (*full)[i].cycles &&
                  (*rep)[i].output == (*legacy)[i].output &&
                  (*rep)[i].cycles == (*legacy)[i].cycles;
    }
    if (!bit_exact) {
      std::fprintf(stderr,
                   "%s/%s: parallel/streaming/replay results diverge from "
                   "sequential\n",
                   c.model, c.label);
      return 2;
    }

    // Arena staging microbench: replay an *empty* op span so both legs do
    // exactly the per-image arena staging (preload vs reset + input pack)
    // and none of the op math, which dominates wall time and cancels out
    // of the serving comparison anyway. "fresh" builds a new engine — and
    // thus a new arena (sparse-page allocation + weight-blob copy) — per
    // image, which is what every replay paid before arena reuse; "reused"
    // checks the one warm arena out and resets only the pages the
    // previous image dirtied.
    constexpr int kArenaReps = 64;
    const auto& staged = replaying.prepared();
    const compiler::Loadable& staged_loadable = staged.loadable();
    const std::span<const nvdla::ReplayOp> no_ops;
    const auto a0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kArenaReps; ++r) {
      vp::ReplayEngine fresh(staged.nvdla());
      (void)fresh.run(staged_loadable, no_ops, images[r % kImages]);
    }
    const double arena_fresh_ms =
        wall_ms(a0, std::chrono::steady_clock::now());
    vp::ReplayEngine reused(staged.nvdla());
    (void)reused.run(staged_loadable, no_ops, images[0]);  // warm the arena
    const auto a1 = std::chrono::steady_clock::now();
    for (int r = 0; r < kArenaReps; ++r) {
      (void)reused.run(staged_loadable, no_ops, images[r % kImages]);
    }
    const double arena_reuse_ms =
        wall_ms(a1, std::chrono::steady_clock::now());
    const double arena_speedup = arena_fresh_ms / arena_reuse_ms;

    const double seq_ms = wall_ms(t0, t1);
    const double par_ms = wall_ms(t1, t2);
    const double str_ms = wall_ms(t2, t3);
    const double seq_ips = kImages / (seq_ms / 1e3);
    const double par_ips = kImages / (par_ms / 1e3);
    const double str_ips = kImages / (str_ms / 1e3);
    const std::string section = std::string(c.model) + "_" + c.label;
    // Virtual-time throughput: simulator cycles per image at the platform
    // clock — deterministic across hosts, unlike the wall-clock columns.
    const Cycle cycles_per_image = total_cycles / kImages;
    const double virtual_ips =
        static_cast<double>(seq->front().clock) / cycles_per_image;
    std::printf("%-10s %-6s %3zu img | %7.1f ms %7.1f ms %7.1f ms | %9.1f "
                "%9.1f %9.1f | %6.2fx | replay %5.2fx engine, %5.2fx "
                "serving, %5.2fx arena | first %5.2f ms\n",
                c.model, c.label, kImages, seq_ms, par_ms, str_ms, seq_ips,
                par_ips, str_ips, seq_ms / par_ms, full_ms / replay_ms,
                legacy_ms / replay_ms, arena_speedup, first_result_ms);
    std::fflush(stdout);

    report.add(section, "images", static_cast<std::uint64_t>(kImages));
    report.add(section, "workers", static_cast<std::uint64_t>(workers));
    report.add(section, "sequential_wall_ms", seq_ms);
    report.add(section, "parallel_wall_ms", par_ms);
    report.add(section, "sequential_images_per_sec", seq_ips);
    report.add(section, "parallel_images_per_sec", par_ips);
    report.add(section, "streaming_wall_ms", str_ms);
    report.add(section, "streaming_images_per_sec", str_ips);
    report.add(section, "first_result_latency_ms", first_result_ms);
    report.add(section, "speedup", seq_ms / par_ms);
    report.add(section, "platform_cycles_per_image",
               static_cast<std::uint64_t>(cycles_per_image));
    report.add(section, "virtual_images_per_sec", virtual_ips);
    report.add(section, "full_sim_wall_ms", full_ms);
    report.add(section, "legacy_serving_wall_ms", legacy_ms);
    report.add(section, "replay_wall_ms", replay_ms);
    report.add(section, "replay_speedup_vs_full", full_ms / replay_ms);
    report.add(section, "replay_serving_speedup", legacy_ms / replay_ms);
    report.add(section, "arena_fresh_ms", arena_fresh_ms);
    report.add(section, "arena_reuse_ms", arena_reuse_ms);
    report.add(section, "arena_replay_speedup", arena_speedup);
    report.add(section, "replays_executed",
               static_cast<std::uint64_t>(replaying.counters().replay));
    report.add(section, "vp_replays_sequential",
               static_cast<std::uint64_t>(sequential.counters().trace));
    report.add(section, "vp_replays_parallel",
               static_cast<std::uint64_t>(parallel.counters().trace));
    report.add(section, "vp_replays_streaming",
               static_cast<std::uint64_t>(streaming.counters().trace));
  }

  report.write();
  bench::print_footer_note(
      "Same staged artifacts, one VP trace + recorded replay schedule and "
      "one thread pool per session; parallel, streaming and replay-leg "
      "results are bit-exact with sequential (verified above). Replay "
      "ratios: 'engine' is the same-shape pooled pair differing only in "
      "the schedule (check_regression.py floors it at 1.25x), 'serving' "
      "is pooled replay vs the legacy sequential serving path (floored "
      "at 2x), 'arena' is per-image arena staging fresh-vs-reused "
      "(floored at 1.5x). 'first' is the streaming submit-to-first-get "
      "latency (wall clock, ungated).");
  return 0;
}
