// Regenerates Fig. 1 (the software generation flow) as a stage-by-stage
// walk-through: Caffe-style model -> compiler -> virtual platform ->
// interface traces -> configuration file + weight file -> RISC-V assembly
// -> machine code. Prints the artifact produced by every stage with its
// size, for LeNet-5 and ResNet-18. The stages are the InferenceSession's:
// each artifact is pulled lazily and memoized inside the session.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "models/models.hpp"
#include "runtime/inference_session.hpp"

using namespace nvsoc;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void run_flow(const models::ModelInfo& info, bench::JsonReport& report) {
  std::printf("\n--- %s ---\n", info.name.c_str());
  const auto net = info.build();
  const auto t0 = std::chrono::steady_clock::now();

  std::printf("[1] Caffe model          : %zu layers, %llu parameters "
              "(%.2f MB fp32)\n",
              net.layer_count(),
              static_cast<unsigned long long>(net.parameter_count()),
              net.model_size_bytes() / 1e6);

  runtime::InferenceSession session(net);
  const auto& prepared = session.prepared();

  std::printf("[2] NVDLA compiler       : %zu hardware layers, %.2f MB "
              "packed weights, INT8 calibration table (%zu blobs)\n",
              prepared.loadable().ops.size(),
              prepared.loadable().weight_blob.size() / 1e6,
              prepared.calibration().all().size());
  std::printf("[3] Virtual platform     : %llu NVDLA cycles; trace: %zu CSB "
              "records, %zu DBB bursts\n",
              static_cast<unsigned long long>(prepared.vp().total_cycles),
              prepared.vp().trace.csb.size(), prepared.vp().trace.dbb.size());
  std::printf("[4] Configuration file   : %zu commands (%zu write_reg, "
              "%zu read_reg)\n",
              prepared.config_file().commands.size(),
              prepared.config_file().write_count(),
              prepared.config_file().read_count());
  std::printf("[5] Weight file (.bin)   : %.2f MB in %zu chunks "
              "(weights + bias tables + input image)\n",
              prepared.vp().weights.total_bytes() / 1e6,
              prepared.vp().weights.chunks.size());
  std::printf("[6] RISC-V assembly      : %zu lines, %zu polling loops\n",
              std::count(prepared.program().assembly.begin(),
                         prepared.program().assembly.end(), '\n'),
              prepared.program().poll_loops);
  std::printf("[7] Machine code (.mem)  : %zu instructions, %zu bytes\n",
              prepared.program().image.size_words(),
              prepared.program().image.bytes.size());
  const double wall_ms = ms_since(t0);
  std::printf("    offline flow wall time: %.0f ms (one-time, per model)\n",
              wall_ms);

  report.add(info.name, "hw_layers",
             static_cast<std::uint64_t>(prepared.loadable().ops.size()));
  report.add(info.name, "vp_cycles", prepared.vp().total_cycles);
  report.add(info.name, "config_commands",
             static_cast<std::uint64_t>(prepared.config_file().commands.size()));
  report.add(info.name, "weight_file_bytes", prepared.vp().weights.total_bytes());
  report.add(info.name, "program_words",
             static_cast<std::uint64_t>(prepared.program().image.size_words()));
  report.add(info.name, "offline_flow_wall_ms", wall_ms);
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 1: the proposed system and software development flow");
  bench::JsonReport report("fig1_swflow");
  run_flow(models::nv_small_zoo()[0], report);  // LeNet-5
  run_flow(models::nv_small_zoo()[1], report);  // ResNet-18
  bench::print_footer_note(
      "The flow is model-specific and executed once, offline (Sec. III); "
      "its outputs (machine code + weight file) are what the FPGA set-up "
      "consumes.");
  report.write();
  return 0;
}
