// Regenerates Fig. 4 (the overall Vivado system set-up): the Zynq-PS
// preload phase through the AXI SmartConnect, the mux switch to the SoC,
// and the run through the AXI Interconnect clock-domain crossing into the
// MIG DDR4 — including the paper's 300 MHz fabric / 100 MHz DDR split.
#include <cstdio>

#include "bench_util.hpp"
#include "models/models.hpp"
#include "runtime/inference_session.hpp"
#include "soc/system_top.hpp"

using namespace nvsoc;

int main() {
  bench::print_header("Fig. 4: overall system set-up (Zynq PS preload, "
                      "SmartConnect, CDC, MIG DDR4)");
  bench::JsonReport report("fig4_system_setup");

  runtime::InferenceSession session(models::lenet5());
  const auto& prepared = session.prepared();
  const auto& config = session.config();

  // Phase 1: PS-side preload, word-by-word through the PS SmartConnect
  // port (measure a slice), then bulk DMA for the rest.
  soc::SystemTopConfig top_config;
  top_config.soc.nvdla = config.nvdla;
  soc::SystemTop top(top_config);
  top.switch_to_ps();

  const auto& first_chunk = prepared.vp().weights.chunks.front();
  const std::size_t slice =
      std::min<std::size_t>(first_chunk.bytes.size(), 4096);
  const Cycle ps_cycles = top.ps_preload(
      first_chunk.addr, {first_chunk.bytes.data(), slice});
  std::printf("PS preload (bus-accurate slice): %zu bytes in %llu DDR "
              "cycles (%.1f MB/s at 100 MHz)\n",
              slice, static_cast<unsigned long long>(ps_cycles),
              slice / (ps_cycles / (100.0 * kMHz)) / 1e6);
  top.ps_preload_weight_file(prepared.vp().weights);
  const auto input_bytes = prepared.loadable().pack_input(prepared.input);
  top.ps_preload_backdoor(prepared.loadable().input_surface.base, input_bytes);
  std::printf("PS preload total: %.2f MB weights+input into DDR4\n",
              (prepared.vp().weights.total_bytes() + input_bytes.size()) / 1e6);
  report.add("preload", "slice_bytes", static_cast<std::uint64_t>(slice));
  report.add("preload", "slice_ddr_cycles", ps_cycles);
  report.add("preload", "total_bytes",
             prepared.vp().weights.total_bytes() + input_bytes.size());

  // Access through the deselected port must be blocked (mux exclusivity).
  top.switch_to_soc();
  std::printf("SmartConnect switched to SoC (blocked PS accesses so far: "
              "%llu)\n\n",
              static_cast<unsigned long long>(
                  top.smartconnect().blocked_accesses()));

  // Phase 2: run, sweeping the SoC fabric clock across the CDC.
  std::printf("%-28s %12s %10s %12s\n", "Fabric/DDR clocks", "cycles",
              "time", "CDC stalls");
  for (const Hertz fabric : {100 * kMHz, 200 * kMHz, 300 * kMHz}) {
    soc::SystemTopConfig cfg;
    cfg.soc.nvdla = config.nvdla;
    cfg.soc.clock = fabric;
    cfg.soc_fabric_clock = fabric;
    soc::SystemTop sweep_top(cfg);
    sweep_top.switch_to_ps();
    sweep_top.ps_preload_weight_file(prepared.vp().weights);
    sweep_top.ps_preload_backdoor(prepared.loadable().input_surface.base,
                                  input_bytes);
    sweep_top.switch_to_soc();
    sweep_top.soc().program_memory().load_mem_text(prepared.program().mem_text);
    const auto result = sweep_top.soc().run();
    std::printf("SoC %3llu MHz / DDR4 100 MHz %12llu %7.3f ms %12llu\n",
                static_cast<unsigned long long>(fabric / kMHz),
                static_cast<unsigned long long>(result.cycles),
                cycles_to_ms(result.cycles, fabric),
                static_cast<unsigned long long>(
                    sweep_top.interconnect().stats().stall_cycles));
    const std::string section =
        "fabric_" + std::to_string(fabric / kMHz) + "mhz";
    report.add(section, "cycles", result.cycles);
    report.add(section, "ms", cycles_to_ms(result.cycles, fabric));
    report.add(section, "cdc_stall_cycles",
               sweep_top.interconnect().stats().stall_cycles);
  }
  std::printf("\nMIG refresh stalls during run: modelled (tREFI=7.8us, "
              "tRFC=350ns at the 100 MHz UI clock)\n");
  report.write();
  bench::print_footer_note(
      "The AXI Interconnect reconciles the SoC fabric clock with the "
      "100 MHz DDR4 UI clock (the paper clocks the fabric at 300 MHz); "
      "the SmartConnect gives the DDR exclusively to the PS (preload) or "
      "the SoC (run).");
  return 0;
}
