#!/usr/bin/env python3
"""Cross-PR perf trajectory check over the BENCH_*.json reports.

Compares freshly emitted bench reports against the committed baselines in
bench/baselines/ and fails on virtual-time regressions. Gated metrics are
the simulator-deterministic ones (identical on every host):

  * keys containing "cycles" (e.g. platform_cycles_per_image) — lower is
    better; growing past the threshold fails;
  * keys containing "virtual_images_per_sec" (cycles-per-image at the
    platform clock, inverted) — higher is better; shrinking past the
    threshold fails.

Wall-clock metrics (ms, images/sec, speedup) vary with the host and are
never compared against baselines. Same-host *ratios* are gated as
absolute floors instead (see FLOOR_METRICS below): the same-shape
replay-vs-full ratio must stay >= 1.25 (a replay path that silently
regresses into re-simulation reads ~1.0), and the replay serving path
must stay >= 2x over the legacy sequential serving path.

Usage:
    python3 bench/check_regression.py [--current-dir DIR]
        [--baseline-dir bench/baselines] [--threshold 0.10]

Exit status: 0 clean, 1 on regressions or missing reports/metrics.

When a virtual-time metric legitimately changes (a modelling fix, a new
stage), refresh the baseline by copying the new BENCH_<name>.json over
bench/baselines/ in the same PR and call it out in the PR description.
"""

import argparse
import json
import pathlib
import sys
from typing import Any, Optional, cast

# Same-host ratios held to an absolute minimum wherever they are reported.
#  * replay_speedup_vs_full compares identical pooled runs that differ only
#    in the replay schedule being present — parallelism cancels, so a
#    replay path that silently degrades into re-simulation reads ~1.0 on
#    any host; 1.25 catches that with margin (healthy: ~1.8 on the
#    kernel-bound vp backend, ~6x on the ISS-bound SoCs).
#  * replay_serving_speedup compares pooled replay serving against the
#    legacy sequential serving path (eager FP32 reference + one full
#    simulation per image); the end-to-end fast-path win must stay >= 2x.
#  * arena_replay_speedup compares per-image arena *staging* cost fresh
#    (build a sparse arena + copy the weight blob per image) against the
#    reused per-worker arena (reset dirty pages + repack the input only) —
#    op math is excluded from both legs, so the ratio reads ~1.0 the
#    moment arena reuse silently degrades into per-image rebuilds.
#  * serving_saturation_efficiency compares pipelined-burst throughput
#    through the loopback TCP server against the in-process submit()/get()
#    rate on the same host — the framing/event-loop overhead ratio. The
#    wire path must keep at least a fifth of the direct rate (healthy:
#    ~0.8 — the serving cost is the inference, not the socket).
#  * concurrent_staging_speedup compares staging the same four
#    (model, spec) variants through four isolated single-model sessions
#    against one vector prepare_async on a multi-model session. The win is
#    shared per-model work (frontend/trace/envelope dedup behind the
#    staging latch), not thread count, so it holds on a single core
#    (healthy: ~2x for 2 models x 2 specs) and reads ~1.0 the moment
#    variants stop sharing their model's artifacts.
#  * restage_bit_exact is 1.0 iff an output produced after a budget
#    eviction + transparent re-stage is bit-identical to the pre-eviction
#    output — any drift in the rebuilt schedule reads 0.0.
#  * decode_cache_speedup compares the same ISS-dominated run with the
#    decoded-basic-block cache on (the default dispatch path) vs off
#    (the per-instruction fetch/decode oracle), on the microbench leg of
#    bench_batch_throughput where the ISS is the whole wall time (the
#    end-to-end inference legs are datapath-model-bound and report an
#    ungated decode_cache_end_to_end_ratio instead). Simulated cycles
#    are asserted bit-identical inside the bench, so the ratio is purely
#    the host-side dispatch win; it reads ~1.0 the moment cached
#    dispatch silently degrades into per-instruction execution.
#    Healthy: ~2x+; floored at 1.3 with margin.
#  * degraded_serving_efficiency compares closed-loop serving throughput
#    under a standing fault plan (deterministic replay/flip injection with
#    bounded retries and quarantine/restage armed) against the clean rate
#    through the same capped server on the same host. Retries and restages
#    are allowed to tax the rate, not erase it — a session whose retry
#    path stops converging (every faulted request burns all attempts and
#    fails) reads near 0. Can legitimately exceed 1.0: the retry rebuild
#    re-traces with the live request's input, warming the trace cache for
#    the rest of the leg.
FLOOR_METRICS = {
    "replay_speedup_vs_full": 1.25,
    "replay_serving_speedup": 2.0,
    "arena_replay_speedup": 1.5,
    "serving_saturation_efficiency": 0.2,
    "concurrent_staging_speedup": 1.5,
    "restage_bit_exact": 1.0,
    "decode_cache_speedup": 1.3,
    "degraded_serving_efficiency": 0.2,
}

# Same-host ratios held to an absolute maximum wherever they are reported.
#  * serving_p99_tail_ratio is p99/p50 open-loop serving latency at ~60% of
#    the measured saturation rate. A healthy event loop reads a
#    single-digit ratio; a loop that stalls (a blocking get() on the loop
#    thread, a lost wakeup, head-of-line blocking in the write path) blows
#    p99 up by orders of magnitude while p50 stays flat, so even a
#    generous 25x ceiling catches it on any host.
#  * shed_request_fraction is the shed share of a deliberately
#    oversubscribed pipelined burst (24 requests against an in-flight cap
#    of 8, behind a slow head-of-line request). Shedding *some* of it is
#    the point — overload answers UNAVAILABLE on a usable connection
#    instead of queueing without bound — but a server that sheds
#    (almost) everything has stopped serving under load; the structural
#    expectation is ~(burst - cap)/burst ~= 0.67, so 0.9 catches a cap
#    that collapsed to zero admissions on any host.
CEILING_METRICS = {
    "serving_p99_tail_ratio": 25.0,
    "shed_request_fraction": 0.9,
}

# Stats that must be *present* in a fresh report (values are asserted by
# the bench binary itself, where the semantics live): the byte-budget leg
# of bench_multi_variant must keep reporting its eviction accounting, or
# the residency gate silently stops measuring anything.
REQUIRED_KEYS = {
    "BENCH_multi_variant.json": {
        "budget": ["budget_bytes", "resident_bytes_after_eviction",
                   "resident_bytes_after_restage", "evictions"],
    },
    # The ISS legs must keep reporting decode-cache evidence (blocks
    # decoded, cache hits, invalidations) next to the ratios, and the
    # ISS microbench must keep emitting the floored speedup — or the
    # differential gate stops proving the cache actually dispatched.
    "BENCH_batch_throughput.json": {
        "lenet5_soc": ["decode_cache_end_to_end_ratio", "decoded_blocks",
                       "block_hits", "block_invalidations"],
        "resnet18_soc": ["decode_cache_end_to_end_ratio", "decoded_blocks",
                         "block_hits", "block_invalidations"],
        "iss_decode_cache": ["decode_cache_speedup", "decoded_blocks",
                             "block_hits", "block_invalidations"],
    },
    # The degraded serving leg must keep reporting its chaos evidence
    # (the bench itself asserts faults_injected > 0 and that every
    # response is bit-exact or a typed transient error) — or the
    # graceful-degradation gate silently stops exercising the fault path.
    "BENCH_serving_latency.json": {
        "lenet5_vp": ["degraded_serving_efficiency", "shed_request_fraction",
                      "faults_injected", "retries", "quarantines",
                      "shed_requests"],
    },
}


def gated_direction(key: str) -> Optional[str]:
    """"lower"/"higher" = better for baseline-compared metrics, else None."""
    if "virtual_images_per_sec" in key:
        return "higher"
    if "cycles" in key:
        return "lower"
    return None


def load_report(path: pathlib.Path) -> dict[str, dict[str, Any]]:
    with open(path) as fh:
        report = json.load(fh)
    # json.load is untyped; the bench emitters always write
    # {"sections": {name: {metric: value}}}, so narrow to that shape.
    sections = report.get("sections", {})
    if not isinstance(sections, dict):
        return {}
    return cast("dict[str, dict[str, Any]]", sections)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current-dir", default=".", type=pathlib.Path,
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--baseline-dir",
                        default=pathlib.Path(__file__).parent / "baselines",
                        type=pathlib.Path)
    parser.add_argument("--threshold", default=0.10, type=float,
                        help="relative change that counts as a regression")
    args = parser.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no baselines under {args.baseline_dir}", file=sys.stderr)
        return 1

    failures: list[str] = []
    checked = 0
    for baseline_path in baselines:
        current_path = args.current_dir / baseline_path.name
        if not current_path.exists():
            failures.append(f"{baseline_path.name}: report not emitted "
                            f"(expected {current_path})")
            continue
        baseline = load_report(baseline_path)
        current = load_report(current_path)
        for section, metrics in baseline.items():
            # A floored/ceilinged metric disappearing from the fresh report
            # would silently disable its gate — treat that as a failure too.
            for kind, keys in (("floored", FLOOR_METRICS),
                               ("ceilinged", CEILING_METRICS)):
                for key in keys:
                    if key in metrics and (section not in current
                                           or key not in current[section]):
                        failures.append(
                            f"{baseline_path.name}:{section}.{key}: {kind} "
                            f"metric missing from new report")
            for key, base_value in metrics.items():
                direction = gated_direction(key)
                if direction is None:
                    continue
                where = f"{baseline_path.name}:{section}.{key}"
                if section not in current or key not in current[section]:
                    failures.append(f"{where}: metric missing from new report")
                    continue
                new_value = current[section][key]
                checked += 1
                if not isinstance(base_value, (int, float)) or base_value <= 0:
                    continue
                growth = (new_value - base_value) / base_value
                regressed = (growth > args.threshold if direction == "lower"
                             else growth < -args.threshold)
                improved = (growth < -args.threshold if direction == "lower"
                            else growth > args.threshold)
                if regressed:
                    failures.append(
                        f"{where}: {base_value} -> {new_value} "
                        f"({growth:+.1%}, threshold {args.threshold:.0%}, "
                        f"{direction} is better)")
                elif improved:
                    print(f"note: {where} improved {base_value} -> {new_value} "
                          f"({growth:+.1%}); consider refreshing the baseline")

    # Absolute floors over the fresh reports (same-host ratios).
    for current_path in sorted(args.current_dir.glob("BENCH_*.json")):
        fresh = load_report(current_path)
        for section, keys in REQUIRED_KEYS.get(current_path.name, {}).items():
            for key in keys:
                checked += 1
                if key not in fresh.get(section, {}):
                    failures.append(
                        f"{current_path.name}:{section}.{key}: required "
                        f"stat missing from the report")
        for section, metrics in fresh.items():
            for key, floor in FLOOR_METRICS.items():
                if key not in metrics:
                    continue
                checked += 1
                if metrics[key] < floor:
                    failures.append(
                        f"{current_path.name}:{section}.{key}: "
                        f"{metrics[key]:.2f} below the {floor:.2f}x floor "
                        f"(the fast path has lost its lead)")
            for key, ceiling in CEILING_METRICS.items():
                if key not in metrics:
                    continue
                checked += 1
                if metrics[key] > ceiling:
                    failures.append(
                        f"{current_path.name}:{section}.{key}: "
                        f"{metrics[key]:.2f} above the {ceiling:.2f}x ceiling "
                        f"(the serving tail has blown up — is the event "
                        f"loop stalling?)")

    for current_path in sorted(args.current_dir.glob("BENCH_*.json")):
        if not (args.baseline_dir / current_path.name).exists():
            print(f"note: {current_path.name} has no committed baseline; "
                  f"copy it to {args.baseline_dir} to start tracking it")

    if failures:
        print(f"\nperf trajectory check FAILED "
              f"({len(failures)} problem(s), {checked} metrics checked):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"perf trajectory check passed: {checked} gated metrics within "
          f"bounds (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
