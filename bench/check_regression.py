#!/usr/bin/env python3
"""Cross-PR perf trajectory check over the BENCH_*.json reports.

Compares freshly emitted bench reports against the committed baselines in
bench/baselines/ and fails on cycle regressions: any *deterministic* metric
(key containing "cycles" — the simulator is cycle-reproducible across
hosts) that grew by more than the threshold sinks the check. Wall-clock
metrics (ms, images/sec) vary with the host and are never gated on.

Usage:
    python3 bench/check_regression.py [--current-dir DIR]
        [--baseline-dir bench/baselines] [--threshold 0.10]

Exit status: 0 clean, 1 on regressions or missing reports/metrics.

When a cycle count legitimately changes (a modelling fix, a new stage),
refresh the baseline by copying the new BENCH_<name>.json over
bench/baselines/ in the same PR and call it out in the PR description.
"""

import argparse
import json
import pathlib
import sys


def is_gated_metric(key: str) -> bool:
    return "cycles" in key


def load_report(path: pathlib.Path) -> dict:
    with open(path) as fh:
        report = json.load(fh)
    return report.get("sections", {})


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current-dir", default=".", type=pathlib.Path,
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--baseline-dir",
                        default=pathlib.Path(__file__).parent / "baselines",
                        type=pathlib.Path)
    parser.add_argument("--threshold", default=0.10, type=float,
                        help="relative growth that counts as a regression")
    args = parser.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no baselines under {args.baseline_dir}", file=sys.stderr)
        return 1

    failures = []
    checked = 0
    for baseline_path in baselines:
        current_path = args.current_dir / baseline_path.name
        if not current_path.exists():
            failures.append(f"{baseline_path.name}: report not emitted "
                            f"(expected {current_path})")
            continue
        baseline = load_report(baseline_path)
        current = load_report(current_path)
        for section, metrics in baseline.items():
            for key, base_value in metrics.items():
                if not is_gated_metric(key):
                    continue
                where = f"{baseline_path.name}:{section}.{key}"
                if section not in current or key not in current[section]:
                    failures.append(f"{where}: metric missing from new report")
                    continue
                new_value = current[section][key]
                checked += 1
                if not isinstance(base_value, (int, float)) or base_value <= 0:
                    continue
                growth = (new_value - base_value) / base_value
                if growth > args.threshold:
                    failures.append(
                        f"{where}: {base_value} -> {new_value} "
                        f"(+{growth:.1%}, threshold {args.threshold:.0%})")
                elif growth < -args.threshold:
                    print(f"note: {where} improved {base_value} -> {new_value} "
                          f"({growth:.1%}); consider refreshing the baseline")

    for current_path in sorted(args.current_dir.glob("BENCH_*.json")):
        if not (args.baseline_dir / current_path.name).exists():
            print(f"note: {current_path.name} has no committed baseline; "
                  f"copy it to {args.baseline_dir} to start tracking it")

    if failures:
        print(f"\nperf trajectory check FAILED "
              f"({len(failures)} problem(s), {checked} metrics checked):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"perf trajectory check passed: {checked} cycle metrics within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
