// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>

namespace nvsoc::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_footer_note(const std::string& note) {
  std::printf("----------------------------------------------------------------\n");
  std::printf("%s\n", note.c_str());
}

}  // namespace nvsoc::bench
