// Shared helpers for the table/figure reproduction benches: printed
// headers/footers plus a machine-readable JSON report (BENCH_<name>.json)
// so the perf trajectory can be tracked across PRs.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace nvsoc::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_footer_note(const std::string& note) {
  std::printf("----------------------------------------------------------------\n");
  std::printf("%s\n", note.c_str());
}

/// Collects named metrics, grouped in sections (one per model/config row),
/// and writes them as BENCH_<name>.json next to the binary:
///
///   {"bench": "table2_nvsmall",
///    "sections": {"lenet5": {"ms": 4.79, "cycles": 478912}, ...}}
///
/// Sections and keys keep insertion order.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void add(const std::string& section, const std::string& key, double value) {
    if (!std::isfinite(value)) {  // "nan"/"inf" are not valid JSON literals
      entry(section).emplace_back(key, "null");
      return;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    entry(section).emplace_back(key, buffer);
  }
  void add(const std::string& section, const std::string& key,
           std::uint64_t value) {
    entry(section).emplace_back(key, std::to_string(value));
  }
  void add(const std::string& section, const std::string& key, int value) {
    entry(section).emplace_back(key, std::to_string(value));
  }
  void add(const std::string& section, const std::string& key, bool value) {
    entry(section).emplace_back(key, value ? "true" : "false");
  }
  void add(const std::string& section, const std::string& key,
           const std::string& value) {
    entry(section).emplace_back(key, quote(value));
  }

  std::string to_json() const {
    std::string out = "{\n  \"bench\": " + quote(name_) + ",\n  \"sections\": {";
    bool first_section = true;
    for (const auto& [section, metrics] : sections_) {
      out += first_section ? "\n" : ",\n";
      first_section = false;
      out += "    " + quote(section) + ": {";
      bool first_metric = true;
      for (const auto& [key, literal] : metrics) {
        out += first_metric ? "" : ", ";
        first_metric = false;
        out += quote(key) + ": " + literal;
      }
      out += "}";
    }
    out += "\n  }\n}\n";
    return out;
  }

  /// Write BENCH_<name>.json into the working directory.
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return;
    }
    const std::string json = to_json();
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    std::printf("[json] wrote %s\n", path.c_str());
  }

 private:
  using Metrics = std::vector<std::pair<std::string, std::string>>;

  Metrics& entry(const std::string& section) {
    for (auto& [name, metrics] : sections_) {
      if (name == section) return metrics;
    }
    sections_.emplace_back(section, Metrics{});
    return sections_.back().second;
  }

  static std::string quote(const std::string& text) {
    std::string out = "\"";
    for (const char c : text) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char escaped[8];
            std::snprintf(escaped, sizeof escaped, "\\u%04x",
                          static_cast<unsigned char>(c));
            out += escaped;
          } else {
            out += c;
          }
      }
    }
    out += "\"";
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, Metrics>> sections_;
};

}  // namespace nvsoc::bench
