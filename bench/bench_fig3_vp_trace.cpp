// Regenerates Fig. 3 (the NVDLA virtual platform): runs the VP with full
// interface tracing and reports the csb_adaptor / dbb_adaptor streams the
// toolflow consumes, including the weight-extraction statistics (cold reads
// vs produced-data reads, first-occurrence dedup).
#include <cstdio>

#include "bench_util.hpp"
#include "models/models.hpp"
#include "runtime/inference_session.hpp"
#include "toolflow/config_file.hpp"
#include "vp/virtual_platform.hpp"

using namespace nvsoc;

int main() {
  bench::print_header("Fig. 3: NVDLA virtual platform — interface traces");
  bench::JsonReport report("fig3_vp_trace");

  std::printf("%-10s %9s %9s %9s | %9s %9s %10s | %11s %8s\n", "Model",
              "csb_wr", "csb_rd", "cfg_cmds", "dbb_rd", "dbb_wr", "dbb_MB",
              "weights_MB", "chunks");

  for (const auto& info : {models::nv_small_zoo()[0],
                           models::nv_small_zoo()[1]}) {
    runtime::InferenceSession session(info.build());
    const auto& prepared = session.prepared();
    const auto& trace = prepared.vp().trace;

    std::uint64_t dbb_rd = 0, dbb_wr = 0, dbb_bytes = 0;
    for (const auto& r : trace.dbb) {
      if (r.is_write) ++dbb_wr; else ++dbb_rd;
      dbb_bytes += r.len;
    }
    std::printf("%-10s %9zu %9zu %9zu | %9llu %9llu %9.2f | %10.2f %8zu\n",
                info.name.c_str(), prepared.config_file().write_count(),
                prepared.config_file().read_count(),
                prepared.config_file().commands.size(),
                static_cast<unsigned long long>(dbb_rd),
                static_cast<unsigned long long>(dbb_wr), dbb_bytes / 1e6,
                prepared.vp().weights.total_bytes() / 1e6,
                prepared.vp().weights.chunks.size());
    report.add(info.name, "csb_writes",
               static_cast<std::uint64_t>(prepared.config_file().write_count()));
    report.add(info.name, "csb_reads",
               static_cast<std::uint64_t>(prepared.config_file().read_count()));
    report.add(info.name, "dbb_bytes", dbb_bytes);
    report.add(info.name, "weight_file_bytes",
               prepared.vp().weights.total_bytes());
  }

  // Show the log-text path (the exact interface the paper's Python scripts
  // parse) on LeNet-5, with payload capture enabled.
  runtime::InferenceSession session(models::lenet5());
  vp::VirtualPlatform platform(session.config().nvdla);
  auto result = platform.run(session.loadable(), session.default_input(),
                             /*capture_dbb_payloads=*/true);
  const std::string log =
      result.trace.to_log_text(&platform.last_dbb_payloads());
  const auto cfg_from_log = toolflow::ConfigFile::from_log_text(log);
  const auto weights_from_log = toolflow::weights_from_log_text(log);
  std::printf("\nTextual VP log (LeNet-5): %.2f MB of log text\n",
              log.size() / 1e6);
  std::printf("  parsed nvdla.csb_adaptor lines -> %zu commands "
              "(structured path: %zu) \n",
              cfg_from_log.commands.size(),
              session.prepared().config_file().commands.size());
  std::printf("  parsed nvdla.dbb_adaptor reads -> %.2f MB weight file "
              "(first occurrence kept; structured: %.2f MB)\n",
              weights_from_log.total_bytes() / 1e6,
              session.prepared().vp().weights.total_bytes() / 1e6);
  report.add("lenet5_log_path", "log_bytes",
             static_cast<std::uint64_t>(log.size()));
  report.add("lenet5_log_path", "parsed_commands",
             static_cast<std::uint64_t>(cfg_from_log.commands.size()));
  report.write();
  bench::print_footer_note(
      "Both extraction paths are implemented: the structured trace (fast) "
      "and the paper's textual grep of adaptor lines (script parity).");
  return 0;
}
