#include "models/models.hpp"

#include "common/strfmt.hpp"

namespace nvsoc::models {

using compiler::BlobShape;
using compiler::ConvParams;
using compiler::LrnParams;
using compiler::Network;
using compiler::PoolParams;

namespace {

ConvParams conv_p(std::uint32_t k, std::uint32_t kernel, std::uint32_t stride,
                  std::uint32_t pad, std::uint32_t groups = 1,
                  bool bias = true) {
  ConvParams p;
  p.num_output = k;
  p.kernel_h = p.kernel_w = kernel;
  p.stride_h = p.stride_w = stride;
  p.pad_h = p.pad_w = pad;
  p.groups = groups;
  p.bias_term = bias;
  return p;
}

PoolParams max_pool(std::uint32_t kernel, std::uint32_t stride,
                    std::uint32_t pad = 0) {
  PoolParams p;
  p.method = PoolParams::Method::kMax;
  p.kernel_h = p.kernel_w = kernel;
  p.stride_h = p.stride_w = stride;
  p.pad_h = p.pad_w = pad;
  return p;
}

PoolParams ave_pool(std::uint32_t kernel, std::uint32_t stride,
                    std::uint32_t pad = 0) {
  PoolParams p;
  p.method = PoolParams::Method::kAve;
  p.kernel_h = p.kernel_w = kernel;
  p.stride_h = p.stride_w = stride;
  p.pad_h = p.pad_w = pad;
  return p;
}

PoolParams global_ave_pool() {
  PoolParams p;
  p.method = PoolParams::Method::kAve;
  p.global = true;
  return p;
}

/// conv -> BN -> Scale (-> ReLU): the Caffe ResNet/MobileNet idiom.
std::string conv_bn(Network& net, const std::string& name,
                    const std::string& bottom, ConvParams params,
                    bool relu = true) {
  params.bias_term = false;  // BN/Scale provide the affine term
  std::string top = net.add_conv(name, bottom, params);
  top = net.add_batch_norm("bn_" + name, top);
  top = net.add_scale("scale_" + name, top);
  if (relu) top = net.add_relu(name + "_relu", top);
  return top;
}

}  // namespace

// ---------------------------------------------------------------------------
// LeNet-5: the standard Caffe MNIST network; 9 layers including data,
// 431k parameters (~1.7 MB as fp32 .caffemodel).
// ---------------------------------------------------------------------------
compiler::Network lenet5() {
  Network net("lenet5", BlobShape{1, 28, 28});
  std::string t = net.add_conv("conv1", "data", conv_p(20, 5, 1, 0));
  t = net.add_pool("pool1", t, max_pool(2, 2));
  t = net.add_conv("conv2", t, conv_p(50, 5, 1, 0));
  t = net.add_pool("pool2", t, max_pool(2, 2));
  t = net.add_inner_product("ip1", t, 500);
  t = net.add_relu("relu1", t);
  t = net.add_inner_product("ip2", t, 10);
  net.add_softmax("prob", t);
  return net;
}

// ---------------------------------------------------------------------------
// ResNet-18 (CIFAR variant): 3x32x32 input, basic blocks [2,2,2,2] with
// widths 16/32/64/128 -> ~0.7M parameters (~0.8 MB quantised to INT8, the
// precision the nv_small flow deploys), matching the paper's reported
// input and model size.
// ---------------------------------------------------------------------------
compiler::Network resnet18_cifar() {
  Network net("resnet18", BlobShape{3, 32, 32});
  const std::uint32_t widths[4] = {16, 32, 64, 128};

  std::string t = conv_bn(net, "conv1", "data", conv_p(widths[0], 3, 1, 1));

  for (int stage = 0; stage < 4; ++stage) {
    const std::uint32_t w = widths[stage];
    for (int block = 0; block < 2; ++block) {
      const std::string id = strfmt("res{}{}", stage + 2,
                                    block == 0 ? "a" : "b");
      const std::uint32_t stride = (stage > 0 && block == 0) ? 2 : 1;
      std::string shortcut = t;
      if (block == 0 && stage > 0) {
        // Projection shortcut (1x1, stride 2, BN+Scale, no ReLU).
        shortcut = conv_bn(net, id + "_branch1", t, conv_p(w, 1, stride, 0),
                           /*relu=*/false);
      }
      std::string b = conv_bn(net, id + "_branch2a", t,
                              conv_p(w, 3, stride, 1));
      b = conv_bn(net, id + "_branch2b", b, conv_p(w, 3, 1, 1),
                  /*relu=*/false);
      t = net.add_eltwise_sum(id, shortcut, b);
      t = net.add_relu(id + "_relu", t);
    }
  }
  t = net.add_pool("pool5", t, global_ave_pool());
  t = net.add_inner_product("fc10", t, 10);
  return net;
}

// ---------------------------------------------------------------------------
// ResNet-50: the standard Caffe prototxt; 228 layers including data,
// 25.5M parameters (~102.5 MB fp32).
// ---------------------------------------------------------------------------
compiler::Network resnet50() {
  Network net("resnet50", BlobShape{3, 224, 224});

  std::string t = conv_bn(net, "conv1", "data", conv_p(64, 7, 2, 3));
  t = net.add_pool("pool1", t, max_pool(3, 2));

  const struct {
    int blocks;
    std::uint32_t mid, out;
  } stages[4] = {{3, 64, 256}, {4, 128, 512}, {6, 256, 1024}, {3, 512, 2048}};

  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < stages[stage].blocks; ++block) {
      const std::string id =
          strfmt("res{}{}", stage + 2, static_cast<char>('a' + block));
      const std::uint32_t stride = (stage > 0 && block == 0) ? 2 : 1;
      std::string shortcut = t;
      if (block == 0) {
        shortcut = conv_bn(net, id + "_branch1", t,
                           conv_p(stages[stage].out, 1, stride, 0),
                           /*relu=*/false);
      }
      std::string b = conv_bn(net, id + "_branch2a", t,
                              conv_p(stages[stage].mid, 1, stride, 0));
      b = conv_bn(net, id + "_branch2b", b, conv_p(stages[stage].mid, 3, 1, 1));
      b = conv_bn(net, id + "_branch2c", b, conv_p(stages[stage].out, 1, 1, 0),
                  /*relu=*/false);
      t = net.add_eltwise_sum(id, shortcut, b);
      t = net.add_relu(id + "_relu", t);
    }
  }
  t = net.add_pool("pool5", t, global_ave_pool());
  t = net.add_inner_product("fc1000", t, 1000);
  return net;
}

// ---------------------------------------------------------------------------
// MobileNet v1: depthwise-separable pairs; 4.2M parameters (~17 MB fp32).
// Depthwise convolutions use groups == channels (the compiler lowers them
// as channel-sliced NVDLA convolutions).
// ---------------------------------------------------------------------------
compiler::Network mobilenet() {
  Network net("mobilenet", BlobShape{3, 224, 224});

  std::string t = conv_bn(net, "conv1", "data", conv_p(32, 3, 2, 1));

  const struct {
    std::uint32_t out;
    std::uint32_t stride;
  } blocks[13] = {{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
                  {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
                  {512, 1}, {1024, 2}, {1024, 1}};

  std::uint32_t channels = 32;
  for (int i = 0; i < 13; ++i) {
    const std::string dw = strfmt("conv{}_dw", i + 2);
    const std::string pw = strfmt("conv{}_pw", i + 2);
    ConvParams dw_params = conv_p(channels, 3, blocks[i].stride, 1, channels);
    t = conv_bn(net, dw, t, dw_params);
    t = conv_bn(net, pw, t, conv_p(blocks[i].out, 1, 1, 0));
    channels = blocks[i].out;
  }
  t = net.add_pool("pool6", t, global_ave_pool());
  t = net.add_inner_product("fc7", t, 1000);
  net.add_softmax("prob", t);
  return net;
}

// ---------------------------------------------------------------------------
// GoogleNet (Inception v1): 13.4M parameters (~53.5 MB fp32), LRN layers
// and nine inception modules with channel concatenation.
// ---------------------------------------------------------------------------
namespace {

std::string inception(Network& net, const std::string& id,
                      const std::string& bottom, std::uint32_t c1,
                      std::uint32_t c3r, std::uint32_t c3, std::uint32_t c5r,
                      std::uint32_t c5, std::uint32_t pp) {
  const std::string p = "inception_" + id;
  std::string b1 = net.add_conv(p + "/1x1", bottom, conv_p(c1, 1, 1, 0));
  b1 = net.add_relu(p + "/relu_1x1", b1);

  std::string b2 = net.add_conv(p + "/3x3_reduce", bottom,
                                conv_p(c3r, 1, 1, 0));
  b2 = net.add_relu(p + "/relu_3x3_reduce", b2);
  b2 = net.add_conv(p + "/3x3", b2, conv_p(c3, 3, 1, 1));
  b2 = net.add_relu(p + "/relu_3x3", b2);

  std::string b3 = net.add_conv(p + "/5x5_reduce", bottom,
                                conv_p(c5r, 1, 1, 0));
  b3 = net.add_relu(p + "/relu_5x5_reduce", b3);
  b3 = net.add_conv(p + "/5x5", b3, conv_p(c5, 5, 1, 2));
  b3 = net.add_relu(p + "/relu_5x5", b3);

  std::string b4 = net.add_pool(p + "/pool", bottom, max_pool(3, 1, 1));
  b4 = net.add_conv(p + "/pool_proj", b4, conv_p(pp, 1, 1, 0));
  b4 = net.add_relu(p + "/relu_pool_proj", b4);

  return net.add_concat(p + "/output", {b1, b2, b3, b4});
}

}  // namespace

compiler::Network googlenet() {
  Network net("googlenet", BlobShape{3, 224, 224});

  std::string t = net.add_conv("conv1/7x7_s2", "data", conv_p(64, 7, 2, 3));
  t = net.add_relu("conv1/relu_7x7", t);
  t = net.add_pool("pool1/3x3_s2", t, max_pool(3, 2));
  t = net.add_lrn("pool1/norm1", t, LrnParams{5, 1e-4f, 0.75f, 1.0f});
  t = net.add_conv("conv2/3x3_reduce", t, conv_p(64, 1, 1, 0));
  t = net.add_relu("conv2/relu_3x3_reduce", t);
  t = net.add_conv("conv2/3x3", t, conv_p(192, 3, 1, 1));
  t = net.add_relu("conv2/relu_3x3", t);
  t = net.add_lrn("conv2/norm2", t, LrnParams{5, 1e-4f, 0.75f, 1.0f});
  t = net.add_pool("pool2/3x3_s2", t, max_pool(3, 2));

  t = inception(net, "3a", t, 64, 96, 128, 16, 32, 32);
  t = inception(net, "3b", t, 128, 128, 192, 32, 96, 64);
  t = net.add_pool("pool3/3x3_s2", t, max_pool(3, 2));
  t = inception(net, "4a", t, 192, 96, 208, 16, 48, 64);

  // Auxiliary classifier 1 (training head; kept in the .caffemodel, which
  // is why GoogleNet weighs 53.5 MB — Table III's model-size column).
  {
    std::string a = net.add_pool("loss1/ave_pool", t, ave_pool(5, 3));
    a = net.add_conv("loss1/conv", a, conv_p(128, 1, 1, 0));
    a = net.add_relu("loss1/relu_conv", a);
    a = net.add_inner_product("loss1/fc", a, 1024);
    a = net.add_relu("loss1/relu_fc", a);
    net.add_inner_product("loss1/classifier", a, 1000);
  }

  t = inception(net, "4b", t, 160, 112, 224, 24, 64, 64);
  t = inception(net, "4c", t, 128, 128, 256, 24, 64, 64);
  t = inception(net, "4d", t, 112, 144, 288, 32, 64, 64);

  // Auxiliary classifier 2.
  {
    std::string a = net.add_pool("loss2/ave_pool", t, ave_pool(5, 3));
    a = net.add_conv("loss2/conv", a, conv_p(128, 1, 1, 0));
    a = net.add_relu("loss2/relu_conv", a);
    a = net.add_inner_product("loss2/fc", a, 1024);
    a = net.add_relu("loss2/relu_fc", a);
    net.add_inner_product("loss2/classifier", a, 1000);
  }

  t = inception(net, "4e", t, 256, 160, 320, 32, 128, 128);
  t = net.add_pool("pool4/3x3_s2", t, max_pool(3, 2));
  t = inception(net, "5a", t, 256, 160, 320, 32, 128, 128);
  t = inception(net, "5b", t, 384, 192, 384, 48, 128, 128);

  t = net.add_pool("pool5/7x7_s1", t, ave_pool(7, 1));
  t = net.add_inner_product("loss3/classifier", t, 1000);
  net.add_softmax("prob", t);
  return net;
}

// ---------------------------------------------------------------------------
// AlexNet: 61M parameters (~243.9 MB fp32), LRN after conv1/conv2 and
// grouped convolutions (groups=2) in conv2/conv4/conv5.
// ---------------------------------------------------------------------------
compiler::Network alexnet() {
  Network net("alexnet", BlobShape{3, 227, 227});
  std::string t = net.add_conv("conv1", "data", conv_p(96, 11, 4, 0));
  t = net.add_relu("relu1", t);
  t = net.add_lrn("norm1", t, LrnParams{5, 1e-4f, 0.75f, 1.0f});
  t = net.add_pool("pool1", t, max_pool(3, 2));
  t = net.add_conv("conv2", t, conv_p(256, 5, 1, 2, 2));
  t = net.add_relu("relu2", t);
  t = net.add_lrn("norm2", t, LrnParams{5, 1e-4f, 0.75f, 1.0f});
  t = net.add_pool("pool2", t, max_pool(3, 2));
  t = net.add_conv("conv3", t, conv_p(384, 3, 1, 1));
  t = net.add_relu("relu3", t);
  t = net.add_conv("conv4", t, conv_p(384, 3, 1, 1, 2));
  t = net.add_relu("relu4", t);
  t = net.add_conv("conv5", t, conv_p(256, 3, 1, 1, 2));
  t = net.add_relu("relu5", t);
  t = net.add_pool("pool5", t, max_pool(3, 2));
  t = net.add_inner_product("fc6", t, 4096);
  t = net.add_relu("relu6", t);
  t = net.add_inner_product("fc7", t, 4096);
  t = net.add_relu("relu7", t);
  t = net.add_inner_product("fc8", t, 1000);
  net.add_softmax("prob", t);
  return net;
}

const std::vector<ModelInfo>& model_zoo() {
  static const std::vector<ModelInfo> zoo = {
      {"LeNet-5", lenet5},       {"ResNet-18", resnet18_cifar},
      {"ResNet-50", resnet50},   {"MobileNet", mobilenet},
      {"GoogleNet", googlenet},  {"AlexNet", alexnet},
  };
  return zoo;
}

const std::vector<ModelInfo>& nv_small_zoo() {
  static const std::vector<ModelInfo> zoo = {
      {"LeNet-5", lenet5},
      {"ResNet-18", resnet18_cifar},
      {"ResNet-50", resnet50},
  };
  return zoo;
}

}  // namespace nvsoc::models
