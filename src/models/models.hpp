// Model zoo: the six Caffe networks the paper evaluates.
//
//   Table II (nv_small FPGA):  LeNet-5 (1x28x28), ResNet-18 (3x32x32),
//                              ResNet-50 (3x224x224)
//   Table III (nv_full sim):   + MobileNet, GoogleNet (3x224x224),
//                              AlexNet (3x227x227)
//
// Structures follow the public Caffe prototxts (conv/BN/Scale/ReLU layer
// granularity, grouped convolutions in AlexNet, depthwise pairs in
// MobileNet, LRN in AlexNet/GoogleNet, inception concats in GoogleNet).
// ResNet-18 is the CIFAR-width variant matching the paper's 3x32x32 input
// and ~0.8 MB model size.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "compiler/network.hpp"

namespace nvsoc::models {

compiler::Network lenet5();
compiler::Network resnet18_cifar();
compiler::Network resnet50();
compiler::Network mobilenet();
compiler::Network googlenet();
compiler::Network alexnet();

/// Registry entry for benches and examples.
struct ModelInfo {
  std::string name;                       ///< paper's row label
  std::function<compiler::Network()> build;
};

/// All six models in the order of Table III.
const std::vector<ModelInfo>& model_zoo();

/// The Table II subset (nv_small FPGA evaluation).
const std::vector<ModelInfo>& nv_small_zoo();

}  // namespace nvsoc::models
