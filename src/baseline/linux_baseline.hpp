// Linux-kernel driver-stack execution model — the comparator platform of
// Table II (Giri et al. [8]: NVDLA + 64-bit Ariane RISC-V, PetaLinux-class
// software stack, 50 MHz system clock).
//
// All prior FPGA integrations the paper compares against run the NVDLA
// runtime (UMD) and kernel driver (KMD) under Linux. Relative to the
// bare-metal flow this adds:
//   * one-time runtime start-up: loadable parsing, DMA-buffer allocation
//     and mmap, device open — paid on every inference invocation of the
//     demo binaries used by prior work;
//   * per-hardware-layer submission cost: ioctl into the KMD, descriptor
//     marshalling, interrupt service + context switch back to user space.
// The accelerator-side cycles are identical to ours (same NVDLA); only the
// clock and software envelope differ. The model reproduces Table II's
// shape: ~55x on LeNet-5 (overhead-dominated) vs ~2.3x on ResNet-50
// (compute-dominated).
#pragma once

#include "compiler/loadable.hpp"
#include "nvdla/config.hpp"

namespace nvsoc::baseline {

struct LinuxPlatformConfig {
  Hertz clock = 50 * kMHz;  ///< the comparator runs CPU and NVDLA at 50 MHz
  /// One-time software cost per inference run (UMD start, loadable parse,
  /// buffer allocation + mmap). Calibrated against [8]'s LeNet-5 point.
  Cycle runtime_init_cycles = 11'500'000;
  /// Kernel round trip per submitted hardware layer.
  Cycle per_layer_submit_cycles = 300'000;
};

struct LinuxRunEstimate {
  Cycle hw_cycles = 0;        ///< NVDLA execution (same engine, 50 MHz)
  Cycle overhead_cycles = 0;  ///< Linux runtime + driver overhead
  Cycle total_cycles = 0;
  double ms = 0.0;

  double overhead_fraction() const {
    return total_cycles == 0
               ? 0.0
               : static_cast<double>(overhead_cycles) / total_cycles;
  }
};

class LinuxDriverBaseline {
 public:
  explicit LinuxDriverBaseline(LinuxPlatformConfig config = {})
      : config_(config) {}

  /// Estimate the end-to-end latency of running `loadable` under the Linux
  /// stack, given the accelerator-side cycle count measured for the same
  /// network (the NVDLA is clock-for-clock identical).
  LinuxRunEstimate estimate(const compiler::Loadable& loadable,
                            Cycle accelerator_cycles) const;

  const LinuxPlatformConfig& config() const { return config_; }

 private:
  LinuxPlatformConfig config_;
};

}  // namespace nvsoc::baseline
