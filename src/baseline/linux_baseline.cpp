#include "baseline/linux_baseline.hpp"

namespace nvsoc::baseline {

LinuxRunEstimate LinuxDriverBaseline::estimate(
    const compiler::Loadable& loadable, Cycle accelerator_cycles) const {
  LinuxRunEstimate est;
  est.hw_cycles = accelerator_cycles;
  est.overhead_cycles =
      config_.runtime_init_cycles +
      config_.per_layer_submit_cycles * loadable.ops.size();
  est.total_cycles = est.hw_cycles + est.overhead_cycles;
  est.ms = cycles_to_ms(est.total_cycles, config_.clock);
  return est;
}

}  // namespace nvsoc::baseline
