#include "riscv/cpu.hpp"

#include "common/bitutil.hpp"
#include "common/strfmt.hpp"

namespace nvsoc::rv {

namespace {

constexpr Word kMieMeie = 1u << 11;   // machine external interrupt enable
constexpr Word kMipMeip = 1u << 11;   // machine external interrupt pending
constexpr Word kMstatusMie = 1u << 3; // global machine interrupt enable
constexpr Word kCauseMachineExternal = 0x8000000Bu;
constexpr Word kCauseIllegal = 2;
constexpr Word kCauseBreakpoint = 3;
constexpr Word kCauseLoadFault = 5;
constexpr Word kCauseStoreFault = 7;
constexpr Word kCauseEcallM = 11;

/// Basic blocks are capped so a pathological straight-line region cannot
/// produce unbounded decode work on a first touch.
constexpr std::size_t kMaxBlockOps = 64;

/// Ops whose behaviour depends on the live irq line or the interrupt CSRs
/// (wfi samples the line; CSR ops can read mip or re-arm mstatus/mie).
/// They may only dispatch immediately after a burst-entry boundary check,
/// and they end the burst so the caller re-samples the line.
bool irq_sensitive(Opcode op) {
  return op == Opcode::kWfi ||
         (op >= Opcode::kCsrrw && op <= Opcode::kCsrrci);
}

/// Ops that end a basic block: anything that can redirect the PC, plus the
/// irq-sensitive ops (kept block-terminal so the solo-dispatch rule above
/// lands them at a block boundary instead of splitting blocks mid-burst).
bool block_terminal(Opcode op) {
  switch (op) {
    case Opcode::kInvalid:
    case Opcode::kJal:
    case Opcode::kJalr:
    case Opcode::kEcall:
    case Opcode::kEbreak:
    case Opcode::kMret:
      return true;
    default:
      return is_branch(op) || irq_sensitive(op);
  }
}

}  // namespace

const char* halt_reason_name(HaltReason reason) {
  switch (reason) {
    case HaltReason::kNone: return "running";
    case HaltReason::kEbreak: return "ebreak";
    case HaltReason::kEcall: return "ecall";
    case HaltReason::kInvalidInstruction: return "invalid-instruction";
    case HaltReason::kBusError: return "bus-error";
    case HaltReason::kWfi: return "wfi";
    case HaltReason::kInstructionLimit: return "instruction-limit";
  }
  return "unknown";
}

Cpu::Cpu(BusTarget& imem, BusTarget& dmem, CpuConfig config)
    : imem_(imem), dmem_(dmem), config_(config) {
  if (config_.decode_cache) {
    // The cache is only safe when every write into the instruction memory
    // is reported back, so it switches on only when the memory implements
    // CodeWriteSource (ProgramMemory does; arbitrary BusTargets need not).
    if (auto* source = dynamic_cast<CodeWriteSource*>(&imem_)) {
      cache_on_ = true;
      code_listener_ = std::make_shared<CodeWriteSource::Listener>(
          [this](Addr base, std::uint64_t bytes) {
            on_code_write(base, bytes);
          });
      source->add_code_write_listener(code_listener_);
    }
  }
  reset();
}

void Cpu::reset() {
  regs_.fill(0);
  pc_ = config_.reset_pc;
  cycle_ = 0;
  mstatus_ = mie_ = mtvec_ = mepc_ = mcause_ = mip_ = 0;
  pending_load_rd_ = 0;
  // Decoded blocks survive reset — the write listener keeps them coherent,
  // and re-running the same image is exactly the case the cache is for.
  cur_block_ = nullptr;
  cur_index_ = 0;
  stats_ = {};
  halt_detail_.clear();
}

void Cpu::on_code_write(Addr base, std::uint64_t bytes) {
  const std::size_t erased = cache_.invalidate_range(base, bytes);
  if (erased > 0) {
    stats_.block_invalidations += erased;
    // The cursor may point at a freed block (a store can hit its own block);
    // drop it and re-resolve from the map at the next dispatch.
    cur_block_ = nullptr;
  }
}

Word Cpu::csr_read(std::uint16_t csr_num) const {
  switch (csr_num) {
    case csr::kMstatus: return mstatus_;
    case csr::kMie: return mie_;
    case csr::kMtvec: return mtvec_;
    case csr::kMepc: return mepc_;
    case csr::kMcause: return mcause_;
    case csr::kMip: return mip_;
    case csr::kCycle:
    case csr::kMcycle:
      return static_cast<Word>(cycle_);
    case csr::kCycleH: return static_cast<Word>(cycle_ >> 32);
    case csr::kInstret:
    case csr::kMinstret:
      return static_cast<Word>(stats_.instructions);
    case csr::kInstretH: return static_cast<Word>(stats_.instructions >> 32);
    default: return 0;
  }
}

Word Cpu::csr_read_write(std::uint16_t csr_num, Word value, bool write) {
  const Word old = csr_read(csr_num);
  if (!write) return old;
  switch (csr_num) {
    case csr::kMstatus: mstatus_ = value; break;
    case csr::kMie: mie_ = value; break;
    case csr::kMtvec: mtvec_ = value & ~0x3u; break;  // direct mode only
    case csr::kMepc: mepc_ = value & ~0x1u; break;
    case csr::kMcause: mcause_ = value; break;
    // mip/mcycle/minstret writes ignored (hardware-managed in this core)
    default: break;
  }
  return old;
}

HaltReason Cpu::take_trap(Word cause, Word tval) {
  (void)tval;
  ++stats_.traps;
  if (mtvec_ == 0) {
    // No handler installed: surface as a halt, as a bare-metal program with
    // no trap vector cannot make progress.
    if (cause == kCauseEcallM) return HaltReason::kEcall;
    if (cause == kCauseBreakpoint) return HaltReason::kEbreak;
    if (cause == kCauseIllegal) return HaltReason::kInvalidInstruction;
    return HaltReason::kBusError;
  }
  mepc_ = static_cast<Word>(pc_);
  mcause_ = cause;
  // MPIE <- MIE, MIE <- 0
  const Word mie_bit = (mstatus_ & kMstatusMie) ? 1u : 0u;
  mstatus_ = (mstatus_ & ~kMstatusMie & ~(1u << 7)) | (mie_bit << 7);
  pc_ = mtvec_;
  cycle_ += config_.branch_taken_penalty;  // redirect costs a flush
  return HaltReason::kNone;
}

HaltReason Cpu::step() {
  HaltReason reason = HaltReason::kNone;
  step_burst(1, reason);
  return reason;
}

HaltReason Cpu::dispatch_uncached() {
  // IF: pipelined single-cycle in steady state; wait states add stalls.
  BusRequest fetch_req{.addr = pc_, .is_write = false, .wdata = 0,
                       .byte_enable = 0xF, .start = cycle_};
  BusResponse fetch_rsp = imem_.access(fetch_req);
  if (!fetch_rsp.status.is_ok()) {
    halt_detail_ = strfmt("instruction fetch fault at pc={:#x}: {}", pc_,
                          fetch_rsp.status.to_string());
    return HaltReason::kBusError;
  }
  const Cycle fetch_latency = fetch_rsp.complete - cycle_;
  if (fetch_latency > 1) stats_.memory_stall_cycles += fetch_latency - 1;

  // ID.
  const Decoded d = decode(fetch_rsp.rdata);

  // Load-use interlock against the previous instruction's load destination.
  if (pending_load_rd_ != 0 &&
      ((source_reg_mask(d) >> pending_load_rd_) & 1u) != 0) {
    cycle_ += config_.load_use_penalty;
    ++stats_.load_use_stalls;
  }
  pending_load_rd_ = 0;

  // Base cost: one cycle per retired instruction plus fetch wait states.
  cycle_ += 1 + (fetch_latency > 1 ? fetch_latency - 1 : 0);

  // EX/WB.
  const HaltReason reason = execute(d);
  if (reason == HaltReason::kNone) ++stats_.instructions;
  return reason;
}

const DecodedBlock* Cpu::build_block(Addr start) {
  DecodedBlock block;
  block.start = start;
  block.ops.reserve(8);
  Addr pc = start;
  for (std::size_t i = 0; i < kMaxBlockOps; ++i) {
    BusRequest req{.addr = pc, .is_write = false, .wdata = 0,
                   .byte_enable = 0xF, .start = cycle_};
    const BusResponse rsp = imem_.access(req);
    // A faulting fetch is not cached: if execution actually reaches this pc
    // the uncached fallback reproduces the fault (and its halt detail).
    if (!rsp.status.is_ok()) break;
    CachedOp op;
    op.fetch_extra =
        rsp.complete > req.start + 1 ? rsp.complete - req.start - 1 : 0;
    op.d = decode(rsp.rdata);
    op.src_mask = source_reg_mask(op.d);
    block.ops.push_back(op);
    if (block_terminal(op.d.op)) break;
    pc += 4;
  }
  if (block.ops.empty()) return nullptr;
  ++stats_.decoded_blocks;
  return cache_.insert(std::move(block));
}

std::uint64_t Cpu::step_burst(std::uint64_t max_instructions,
                              HaltReason& reason) {
  reason = HaltReason::kNone;
  if (max_instructions == 0) return 0;

  // Interrupt check at the burst-entry instruction boundary.
  mip_ = irq_line_ ? (mip_ | kMipMeip) : (mip_ & ~kMipMeip);
  if ((mstatus_ & kMstatusMie) && (mie_ & kMieMeie) && (mip_ & kMipMeip)) {
    const HaltReason r = take_trap(kCauseMachineExternal, 0);
    if (r != HaltReason::kNone) {
      reason = r;
      return 0;
    }
  }

  if (!cache_on_) {
    reason = dispatch_uncached();
    return reason == HaltReason::kNone ? 1 : 0;
  }

  // While interrupts are armed every retired instruction is a potential trap
  // boundary whose outcome depends on the live irq line, so the burst
  // degenerates to single instructions and the caller re-samples the line —
  // the exact cadence of the per-step loop.
  const bool armed = (mstatus_ & kMstatusMie) && (mie_ & kMieMeie);
  const std::uint64_t budget = armed ? 1 : max_instructions;

  std::uint64_t executed = 0;
  while (executed < budget) {
    if (cur_block_ == nullptr || cur_index_ >= cur_block_->ops.size() ||
        pc_ != cur_block_->start + static_cast<Addr>(4 * cur_index_)) {
      cur_index_ = 0;
      cur_block_ = cache_.lookup(pc_);
      if (cur_block_ != nullptr) {
        ++stats_.block_hits;
      } else {
        cur_block_ = build_block(pc_);
        if (cur_block_ == nullptr) {
          reason = dispatch_uncached();
          if (reason != HaltReason::kNone) return executed;
          ++executed;
          continue;
        }
      }
    }

    // Copy the op out: a store below may invalidate (and free) its own
    // block, and execute() must not read through a dangling cursor.
    const CachedOp op = cur_block_->ops[cur_index_];

    const bool sensitive = irq_sensitive(op.d.op);
    if (sensitive && executed > 0) break;  // needs a fresh boundary check

    // Load-use interlock against the previous instruction's load
    // destination.
    if (pending_load_rd_ != 0 &&
        ((op.src_mask >> pending_load_rd_) & 1u) != 0) {
      cycle_ += config_.load_use_penalty;
      ++stats_.load_use_stalls;
    }
    pending_load_rd_ = 0;

    // Base cost: one cycle per retired instruction plus the fetch wait
    // states observed when the block was built (time-invariant for BRAM).
    if (op.fetch_extra > 0) stats_.memory_stall_cycles += op.fetch_extra;
    cycle_ += 1 + op.fetch_extra;

    const HaltReason r = execute(op.d);
    if (r != HaltReason::kNone) {
      reason = r;
      return executed;
    }
    ++stats_.instructions;
    ++executed;
    if (cur_block_ != nullptr) ++cur_index_;

    // mret can re-arm interrupts; irq-sensitive ops need the caller to
    // re-sample the line before anything else runs.
    if (sensitive || op.d.op == Opcode::kMret) break;
  }
  return executed;
}

HaltReason Cpu::execute(const Decoded& d) {
  const Addr pc_before = pc_;
  Addr next_pc = pc_ + 4;
  const Word rs1 = regs_[d.rs1];
  const Word rs2 = regs_[d.rs2];
  Word rd_value = 0;
  bool writes_rd = false;

  switch (d.op) {
    case Opcode::kInvalid: {
      halt_detail_ = strfmt("invalid instruction {:#010x} at pc={:#x}",
                            d.raw, pc_before);
      return take_trap(kCauseIllegal, d.raw);
    }
    case Opcode::kLui: rd_value = static_cast<Word>(d.imm); writes_rd = true; break;
    case Opcode::kAuipc:
      rd_value = static_cast<Word>(pc_before) + static_cast<Word>(d.imm);
      writes_rd = true;
      break;
    case Opcode::kJal:
      rd_value = static_cast<Word>(pc_before + 4);
      writes_rd = true;
      next_pc = static_cast<Word>(pc_before + static_cast<Word>(d.imm));
      cycle_ += config_.branch_taken_penalty;
      break;
    case Opcode::kJalr:
      rd_value = static_cast<Word>(pc_before + 4);
      writes_rd = true;
      next_pc = (rs1 + static_cast<Word>(d.imm)) & ~1u;
      cycle_ += config_.branch_taken_penalty;
      break;
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu: {
      ++stats_.branches;
      bool taken = false;
      switch (d.op) {
        case Opcode::kBeq: taken = rs1 == rs2; break;
        case Opcode::kBne: taken = rs1 != rs2; break;
        case Opcode::kBlt: taken = static_cast<std::int32_t>(rs1) <
                                   static_cast<std::int32_t>(rs2); break;
        case Opcode::kBge: taken = static_cast<std::int32_t>(rs1) >=
                                   static_cast<std::int32_t>(rs2); break;
        case Opcode::kBltu: taken = rs1 < rs2; break;
        case Opcode::kBgeu: taken = rs1 >= rs2; break;
        default: break;
      }
      if (taken) {
        ++stats_.taken_branches;
        next_pc = static_cast<Word>(pc_before + static_cast<Word>(d.imm));
        cycle_ += config_.branch_taken_penalty;
      }
      break;
    }
    case Opcode::kLb: case Opcode::kLh: case Opcode::kLw:
    case Opcode::kLbu: case Opcode::kLhu: {
      ++stats_.loads;
      const Addr addr = static_cast<Word>(rs1 + static_cast<Word>(d.imm));
      const unsigned size = (d.op == Opcode::kLw) ? 4
                          : (d.op == Opcode::kLh || d.op == Opcode::kLhu) ? 2
                          : 1;
      if ((addr % size) != 0) {
        halt_detail_ = strfmt("misaligned load of {} bytes at {:#x}, pc={:#x}",
                              size, addr, pc_before);
        return take_trap(kCauseLoadFault, static_cast<Word>(addr));
      }
      const Addr word_addr = align_down(addr, 4);
      BusRequest req{.addr = word_addr, .is_write = false, .wdata = 0,
                     .byte_enable = 0xF, .start = cycle_};
      BusResponse rsp = dmem_.access(req);
      if (!rsp.status.is_ok()) {
        halt_detail_ = strfmt("load fault at {:#x}, pc={:#x}: {}", addr,
                              pc_before, rsp.status.to_string());
        return take_trap(kCauseLoadFault, static_cast<Word>(addr));
      }
      const Cycle latency = rsp.complete - cycle_;
      if (latency > 1) {
        cycle_ += latency - 1;
        stats_.memory_stall_cycles += latency - 1;
      }
      const unsigned shift = static_cast<unsigned>((addr & 3u) * 8);
      const Word raw = rsp.rdata >> shift;
      switch (d.op) {
        case Opcode::kLb: rd_value = static_cast<Word>(sign_extend(raw & 0xFF, 8)); break;
        case Opcode::kLbu: rd_value = raw & 0xFF; break;
        case Opcode::kLh: rd_value = static_cast<Word>(sign_extend(raw & 0xFFFF, 16)); break;
        case Opcode::kLhu: rd_value = raw & 0xFFFF; break;
        case Opcode::kLw: rd_value = rsp.rdata; break;
        default: break;
      }
      writes_rd = true;
      pending_load_rd_ = d.rd;
      break;
    }
    case Opcode::kSb: case Opcode::kSh: case Opcode::kSw: {
      ++stats_.stores;
      const Addr addr = static_cast<Word>(rs1 + static_cast<Word>(d.imm));
      const unsigned size = (d.op == Opcode::kSw) ? 4
                          : (d.op == Opcode::kSh) ? 2 : 1;
      if ((addr % size) != 0) {
        halt_detail_ = strfmt("misaligned store of {} bytes at {:#x}, pc={:#x}",
                              size, addr, pc_before);
        return take_trap(kCauseStoreFault, static_cast<Word>(addr));
      }
      const Addr word_addr = align_down(addr, 4);
      const unsigned lane = static_cast<unsigned>(addr & 3u);
      const std::uint8_t be = static_cast<std::uint8_t>(
          ((size == 4) ? 0xFu : (size == 2) ? 0x3u : 0x1u) << lane);
      BusRequest req{.addr = word_addr, .is_write = true,
                     .wdata = rs2 << (lane * 8), .byte_enable = be,
                     .start = cycle_};
      BusResponse rsp = dmem_.access(req);
      if (!rsp.status.is_ok()) {
        halt_detail_ = strfmt("store fault at {:#x}, pc={:#x}: {}", addr,
                              pc_before, rsp.status.to_string());
        return take_trap(kCauseStoreFault, static_cast<Word>(addr));
      }
      const Cycle latency = rsp.complete - cycle_;
      if (latency > 1) {
        cycle_ += latency - 1;
        stats_.memory_stall_cycles += latency - 1;
      }
      break;
    }
    case Opcode::kAddi: rd_value = rs1 + static_cast<Word>(d.imm); writes_rd = true; break;
    case Opcode::kSlti:
      rd_value = static_cast<std::int32_t>(rs1) < d.imm ? 1 : 0;
      writes_rd = true;
      break;
    case Opcode::kSltiu:
      rd_value = rs1 < static_cast<Word>(d.imm) ? 1 : 0;
      writes_rd = true;
      break;
    case Opcode::kXori: rd_value = rs1 ^ static_cast<Word>(d.imm); writes_rd = true; break;
    case Opcode::kOri: rd_value = rs1 | static_cast<Word>(d.imm); writes_rd = true; break;
    case Opcode::kAndi: rd_value = rs1 & static_cast<Word>(d.imm); writes_rd = true; break;
    case Opcode::kSlli: rd_value = rs1 << (d.imm & 31); writes_rd = true; break;
    case Opcode::kSrli: rd_value = rs1 >> (d.imm & 31); writes_rd = true; break;
    case Opcode::kSrai:
      rd_value = static_cast<Word>(static_cast<std::int32_t>(rs1) >> (d.imm & 31));
      writes_rd = true;
      break;
    case Opcode::kAdd: rd_value = rs1 + rs2; writes_rd = true; break;
    case Opcode::kSub: rd_value = rs1 - rs2; writes_rd = true; break;
    case Opcode::kSll: rd_value = rs1 << (rs2 & 31); writes_rd = true; break;
    case Opcode::kSlt:
      rd_value = static_cast<std::int32_t>(rs1) < static_cast<std::int32_t>(rs2);
      writes_rd = true;
      break;
    case Opcode::kSltu: rd_value = rs1 < rs2; writes_rd = true; break;
    case Opcode::kXor: rd_value = rs1 ^ rs2; writes_rd = true; break;
    case Opcode::kSrl: rd_value = rs1 >> (rs2 & 31); writes_rd = true; break;
    case Opcode::kSra:
      rd_value = static_cast<Word>(static_cast<std::int32_t>(rs1) >> (rs2 & 31));
      writes_rd = true;
      break;
    case Opcode::kOr: rd_value = rs1 | rs2; writes_rd = true; break;
    case Opcode::kAnd: rd_value = rs1 & rs2; writes_rd = true; break;
    case Opcode::kFence: break;  // single memory port: fence is a no-op
    case Opcode::kEcall:
      return take_trap(kCauseEcallM, 0);
    case Opcode::kEbreak:
      if (config_.ebreak_halts) return HaltReason::kEbreak;
      return take_trap(kCauseBreakpoint, 0);
    case Opcode::kMret: {
      next_pc = mepc_;
      const Word mpie = (mstatus_ >> 7) & 1u;
      mstatus_ = (mstatus_ & ~kMstatusMie) | (mpie << 3) | (1u << 7);
      cycle_ += config_.branch_taken_penalty;
      break;
    }
    case Opcode::kWfi:
      if (!irq_line_) return HaltReason::kWfi;
      break;  // pending interrupt: wfi completes immediately
    case Opcode::kCsrrw:
      rd_value = csr_read_write(d.csr, rs1, true);
      writes_rd = d.rd != 0;
      break;
    case Opcode::kCsrrs:
      rd_value = csr_read_write(d.csr, csr_read(d.csr) | rs1, d.rs1 != 0);
      writes_rd = true;
      break;
    case Opcode::kCsrrc:
      rd_value = csr_read_write(d.csr, csr_read(d.csr) & ~rs1, d.rs1 != 0);
      writes_rd = true;
      break;
    case Opcode::kCsrrwi:
      rd_value = csr_read_write(d.csr, static_cast<Word>(d.imm), true);
      writes_rd = d.rd != 0;
      break;
    case Opcode::kCsrrsi:
      rd_value = csr_read_write(d.csr,
                                csr_read(d.csr) | static_cast<Word>(d.imm),
                                d.imm != 0);
      writes_rd = true;
      break;
    case Opcode::kCsrrci:
      rd_value = csr_read_write(d.csr,
                                csr_read(d.csr) & ~static_cast<Word>(d.imm),
                                d.imm != 0);
      writes_rd = true;
      break;
    case Opcode::kMul:
      rd_value = rs1 * rs2;
      writes_rd = true;
      cycle_ += config_.mul_extra_cycles;
      break;
    case Opcode::kMulh:
      rd_value = static_cast<Word>(
          (static_cast<std::int64_t>(static_cast<std::int32_t>(rs1)) *
           static_cast<std::int64_t>(static_cast<std::int32_t>(rs2))) >> 32);
      writes_rd = true;
      cycle_ += config_.mul_extra_cycles;
      break;
    case Opcode::kMulhsu:
      rd_value = static_cast<Word>(
          (static_cast<std::int64_t>(static_cast<std::int32_t>(rs1)) *
           static_cast<std::int64_t>(static_cast<std::uint64_t>(rs2))) >> 32);
      writes_rd = true;
      cycle_ += config_.mul_extra_cycles;
      break;
    case Opcode::kMulhu:
      rd_value = static_cast<Word>(
          (static_cast<std::uint64_t>(rs1) * static_cast<std::uint64_t>(rs2))
          >> 32);
      writes_rd = true;
      cycle_ += config_.mul_extra_cycles;
      break;
    case Opcode::kDiv:
      if (rs2 == 0) rd_value = ~0u;
      else if (rs1 == 0x80000000u && rs2 == ~0u) rd_value = rs1;
      else rd_value = static_cast<Word>(static_cast<std::int32_t>(rs1) /
                                        static_cast<std::int32_t>(rs2));
      writes_rd = true;
      cycle_ += config_.div_extra_cycles;
      break;
    case Opcode::kDivu:
      rd_value = rs2 == 0 ? ~0u : rs1 / rs2;
      writes_rd = true;
      cycle_ += config_.div_extra_cycles;
      break;
    case Opcode::kRem:
      if (rs2 == 0) rd_value = rs1;
      else if (rs1 == 0x80000000u && rs2 == ~0u) rd_value = 0;
      else rd_value = static_cast<Word>(static_cast<std::int32_t>(rs1) %
                                        static_cast<std::int32_t>(rs2));
      writes_rd = true;
      cycle_ += config_.div_extra_cycles;
      break;
    case Opcode::kRemu:
      rd_value = rs2 == 0 ? rs1 : rs1 % rs2;
      writes_rd = true;
      cycle_ += config_.div_extra_cycles;
      break;
  }

  if (writes_rd && d.rd != 0) regs_[d.rd] = rd_value;
  pc_ = next_pc;
  return HaltReason::kNone;
}

RunResult Cpu::run(std::uint64_t max_instructions) {
  RunResult result;
  std::uint64_t executed = 0;
  while (executed < max_instructions) {
    HaltReason reason = HaltReason::kNone;
    const std::uint64_t n = step_burst(max_instructions - executed, reason);
    executed += n;
    if (reason != HaltReason::kNone) {
      result.reason = reason;
      break;
    }
  }
  if (result.reason == HaltReason::kNone) {
    result.reason = HaltReason::kInstructionLimit;
  }
  result.cycles = cycle_;
  result.stats = stats_;
  result.detail = halt_detail_;
  return result;
}

}  // namespace nvsoc::rv
