#include "riscv/decode_cache.hpp"

namespace nvsoc::rv {

const DecodedBlock* DecodeCache::lookup(Addr pc) const {
  const auto it = blocks_.find(pc);
  return it == blocks_.end() ? nullptr : &it->second;
}

const DecodedBlock* DecodeCache::insert(DecodedBlock block) {
  const Addr start = block.start;
  const auto [it, inserted] = blocks_.insert_or_assign(start, std::move(block));
  (void)inserted;
  return &it->second;
}

std::size_t DecodeCache::invalidate_range(Addr base, std::uint64_t bytes) {
  if (bytes == 0 || blocks_.empty()) return 0;
  const Addr lo = base;
  const Addr hi = base + bytes;
  std::size_t erased = 0;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    const DecodedBlock& b = it->second;
    if (b.start < hi && lo < b.end()) {
      it = blocks_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

}  // namespace nvsoc::rv
