// µRISC-V core model: RV32IM, machine mode, 32-bit AHB-Lite instruction and
// data masters, and a 4-stage (IF/ID/EX/WB) pipeline timing model matching
// the Codasip µRISC-V of the paper.
//
// Timing model. The core is in-order and scalar; in steady state it retires
// one instruction per cycle. Deviations from 1 CPI:
//   * taken control transfer  -> flush of IF/ID   (+2 cycles)
//   * load-use dependency     -> one bubble       (+1 cycle)
//   * data-memory access      -> stalls for the bus latency beyond the
//                                single EX cycle (AHB wait states; this is
//                                where the NVDLA CSB path cost appears)
//   * MUL                     -> +2 (iterative 2-stage multiplier)
//   * DIV/REM                 -> +32 (bit-serial divider)
// Instruction fetch hits single-cycle BRAM program memory and is fully
// pipelined, so it adds no stalls unless the program memory reports wait
// states.
//
// Execution is staged (fetch / decode / execute) and, by default, dispatched
// from a decoded-basic-block cache: blocks are built on first execution,
// ended at control transfers and system ops, and replayed as a tight loop
// that only touches the bus for data accesses. Cached dispatch reproduces
// the per-step cycle accounting exactly (branch penalties, load-use bubbles,
// memory stall cycles); the per-instruction path stays reachable via
// `CpuConfig::decode_cache = false` as the differential-testing oracle. The
// cache stays coherent through a `CodeWriteSource` listener on the
// instruction memory; when the instruction memory does not implement that
// interface the cache silently stays off (correctness over speed).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "bus/bus_types.hpp"
#include "riscv/decode_cache.hpp"
#include "riscv/isa.hpp"

namespace nvsoc::rv {

struct CpuConfig {
  Addr reset_pc = 0;
  Cycle branch_taken_penalty = 2;
  Cycle load_use_penalty = 1;
  Cycle mul_extra_cycles = 2;
  Cycle div_extra_cycles = 32;
  /// When true, ebreak halts the simulation (bare-metal convention of the
  /// generated programs); when false it traps via mtvec.
  bool ebreak_halts = true;
  /// Dispatch from the decoded-basic-block cache (bit-identical timing;
  /// requires the instruction memory to be a CodeWriteSource). Disable to
  /// force the per-instruction fetch/decode path.
  bool decode_cache = true;
};

enum class HaltReason {
  kNone = 0,        ///< still running
  kEbreak,          ///< hit ebreak (normal end of a bare-metal program)
  kEcall,           ///< ecall with no trap handler installed
  kInvalidInstruction,
  kBusError,
  kWfi,             ///< wfi with interrupts disabled and no pending IRQ
  kInstructionLimit,
};

const char* halt_reason_name(HaltReason reason);

struct CpuStats {
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t load_use_stalls = 0;
  std::uint64_t memory_stall_cycles = 0;
  std::uint64_t traps = 0;
  // Decode-cache evidence. These are host-side bookkeeping, not simulated
  // state: they are the only CpuStats fields allowed to differ between a
  // cached and an uncached run of the same program.
  std::uint64_t decoded_blocks = 0;
  std::uint64_t block_hits = 0;
  std::uint64_t block_invalidations = 0;
};

struct RunResult {
  HaltReason reason = HaltReason::kNone;
  Cycle cycles = 0;
  CpuStats stats;      ///< final-state snapshot; shares truth with Cpu::stats()
  std::string detail;  ///< populated for error halts

  std::uint64_t instructions() const { return stats.instructions; }
  double cpi() const {
    return stats.instructions == 0
               ? 0.0
               : static_cast<double>(cycles) /
                     static_cast<double>(stats.instructions);
  }
};

class Cpu {
 public:
  Cpu(BusTarget& imem, BusTarget& dmem, CpuConfig config = {});
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Execute a single instruction. Returns kNone while running.
  HaltReason step();

  /// Execute up to `max_instructions` instructions as one burst, stopping
  /// early at any halt or at any boundary where the interrupt/irq state
  /// must be re-sampled by the caller (armed interrupts, wfi, CSR ops,
  /// mret). Returns the number of instructions retired and sets `reason`
  /// (kNone when the burst merely ran out or yielded for re-sampling).
  /// Equivalent, halt-for-halt and cycle-for-cycle, to calling step() in a
  /// loop with a constant irq line.
  std::uint64_t step_burst(std::uint64_t max_instructions, HaltReason& reason);

  /// Run until halt or `max_instructions` retired.
  RunResult run(std::uint64_t max_instructions = UINT64_MAX);

  void reset();

  /// True when the decoded-block cache is live (config asked for it and the
  /// instruction memory supports write notification).
  bool decode_cache_active() const { return cache_on_; }

  // --- architectural state ------------------------------------------------
  Word reg(unsigned index) const { return regs_[index]; }
  void set_reg(unsigned index, Word value) {
    if (index != 0) regs_[index] = value;
  }
  Addr pc() const { return pc_; }
  void set_pc(Addr pc) { pc_ = pc; }

  Cycle cycle() const { return cycle_; }
  /// Advance the core's clock without executing (models sleeping in WFI
  /// until an external wake event; never moves time backwards).
  void advance_to(Cycle cycle) { cycle_ = std::max(cycle_, cycle); }
  const CpuStats& stats() const { return stats_; }
  const std::string& halt_detail() const { return halt_detail_; }

  /// External interrupt line (NVDLA GLB IRQ). Level-sensitive.
  void set_irq(bool level) { irq_line_ = level; }
  bool irq() const { return irq_line_; }

  /// Machine CSR access for tests.
  Word csr_read(std::uint16_t csr) const;

 private:
  HaltReason execute(const Decoded& d);
  HaltReason take_trap(Word cause, Word tval);
  Word csr_read_write(std::uint16_t csr, Word value, bool write);
  /// Legacy fetch/decode/execute of one instruction (no boundary interrupt
  /// check — step_burst has already done it).
  HaltReason dispatch_uncached();
  /// Fetch + decode a basic block starting at `start`; nullptr when the
  /// first fetch faults (the caller falls back to the uncached path so the
  /// fault surfaces with identical detail).
  const DecodedBlock* build_block(Addr start);
  void on_code_write(Addr base, std::uint64_t bytes);

  BusTarget& imem_;
  BusTarget& dmem_;
  CpuConfig config_;

  std::array<Word, 32> regs_{};
  Addr pc_ = 0;
  Cycle cycle_ = 0;

  // machine CSRs
  Word mstatus_ = 0;
  Word mie_ = 0;
  Word mtvec_ = 0;
  Word mepc_ = 0;
  Word mcause_ = 0;
  Word mip_ = 0;

  bool irq_line_ = false;
  std::uint8_t pending_load_rd_ = 0;  ///< 0 = none (x0 cannot be a dest)

  // Decoded-block cache (tentpole of ROADMAP direction 3 tier (a)). The
  // write listener is registered weakly: dropping code_listener_ in ~Cpu
  // retires the registration without touching the memory, so the Cpu and
  // its instruction memory may be destroyed in either order.
  bool cache_on_ = false;
  DecodeCache cache_;
  const DecodedBlock* cur_block_ = nullptr;  ///< dispatch cursor
  std::size_t cur_index_ = 0;
  std::shared_ptr<CodeWriteSource::Listener> code_listener_;

  CpuStats stats_;
  std::string halt_detail_;
};

}  // namespace nvsoc::rv
