// RV32IM instruction-set definitions shared by the decoder, the executing
// core, the assembler and the disassembler.
//
// The µRISC-V core of the paper is a 32-bit, 4-stage pipelined
// general-purpose core; the bare-metal flow only relies on the base integer
// ISA (loads/stores to program NVDLA registers, branches for polling loops),
// but the full RV32IM set is implemented so arbitrary generated or
// hand-written bare-metal programs run.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/types.hpp"

namespace nvsoc::rv {

enum class Opcode : std::uint8_t {
  kInvalid = 0,
  // RV32I
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak,
  // Zicsr (used for mcycle/minstret self-measurement)
  kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
  // Machine-mode
  kMret, kWfi,
  // RV32M
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
};

/// Decoded instruction: opcode plus extracted fields. Immediates are already
/// sign-extended where the format requires it.
struct Decoded {
  Opcode op = Opcode::kInvalid;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
  std::uint16_t csr = 0;
  std::uint32_t raw = 0;

  bool valid() const { return op != Opcode::kInvalid; }
};

/// Decode a raw 32-bit instruction word.
Decoded decode(std::uint32_t raw);

/// Mnemonic for diagnostics and the disassembler.
std::string_view mnemonic(Opcode op);

/// True for instructions that read memory / write memory.
bool is_load(Opcode op);
bool is_store(Opcode op);
bool is_branch(Opcode op);

/// Bit r set when the instruction reads register r as a source (x0 never
/// set). Drives the load-use interlock on both the per-step path and the
/// pre-decoded dispatch path, so the two can't disagree.
std::uint32_t source_reg_mask(const Decoded& d);

/// ABI register names x0..x31 <-> zero, ra, sp, ...
std::string_view abi_name(unsigned reg);
std::optional<unsigned> parse_register(std::string_view token);

/// CSR numbers the core implements.
namespace csr {
inline constexpr std::uint16_t kMstatus = 0x300;
inline constexpr std::uint16_t kMie = 0x304;
inline constexpr std::uint16_t kMtvec = 0x305;
inline constexpr std::uint16_t kMepc = 0x341;
inline constexpr std::uint16_t kMcause = 0x342;
inline constexpr std::uint16_t kMip = 0x344;
inline constexpr std::uint16_t kCycle = 0xC00;
inline constexpr std::uint16_t kCycleH = 0xC80;
inline constexpr std::uint16_t kInstret = 0xC02;
inline constexpr std::uint16_t kInstretH = 0xC82;
inline constexpr std::uint16_t kMcycle = 0xB00;
inline constexpr std::uint16_t kMinstret = 0xB02;
}  // namespace csr

}  // namespace nvsoc::rv
