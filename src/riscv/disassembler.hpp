// Disassembler for diagnostics, listings and round-trip tests against the
// assembler.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace nvsoc::rv {

/// Render one instruction at `pc` (pc is needed for branch/jump targets).
std::string disassemble(std::uint32_t raw, Addr pc);

}  // namespace nvsoc::rv
