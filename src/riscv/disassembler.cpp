#include "riscv/disassembler.hpp"

#include "common/strfmt.hpp"
#include "riscv/isa.hpp"

namespace nvsoc::rv {

std::string disassemble(std::uint32_t raw, Addr pc) {
  const Decoded d = decode(raw);
  const std::string_view m = mnemonic(d.op);
  const std::string_view rd = abi_name(d.rd);
  const std::string_view rs1 = abi_name(d.rs1);
  const std::string_view rs2 = abi_name(d.rs2);

  switch (d.op) {
    case Opcode::kInvalid:
      return strfmt(".word {:#010x}", raw);
    case Opcode::kLui:
    case Opcode::kAuipc:
      return strfmt("{} {}, {:#x}", m, rd,
                    static_cast<std::uint32_t>(d.imm) >> 12);
    case Opcode::kJal:
      return strfmt("{} {}, {:#x}", m, rd,
                    pc + static_cast<std::int64_t>(d.imm));
    case Opcode::kJalr:
      return strfmt("{} {}, {}({})", m, rd, d.imm, rs1);
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
      return strfmt("{} {}, {}, {:#x}", m, rs1, rs2,
                    pc + static_cast<std::int64_t>(d.imm));
    case Opcode::kLb: case Opcode::kLh: case Opcode::kLw:
    case Opcode::kLbu: case Opcode::kLhu:
      return strfmt("{} {}, {}({})", m, rd, d.imm, rs1);
    case Opcode::kSb: case Opcode::kSh: case Opcode::kSw:
      return strfmt("{} {}, {}({})", m, rs2, d.imm, rs1);
    case Opcode::kAddi: case Opcode::kSlti: case Opcode::kSltiu:
    case Opcode::kXori: case Opcode::kOri: case Opcode::kAndi:
    case Opcode::kSlli: case Opcode::kSrli: case Opcode::kSrai:
      return strfmt("{} {}, {}, {}", m, rd, rs1, d.imm);
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kSll:
    case Opcode::kSlt: case Opcode::kSltu: case Opcode::kXor:
    case Opcode::kSrl: case Opcode::kSra: case Opcode::kOr:
    case Opcode::kAnd:
    case Opcode::kMul: case Opcode::kMulh: case Opcode::kMulhsu:
    case Opcode::kMulhu: case Opcode::kDiv: case Opcode::kDivu:
    case Opcode::kRem: case Opcode::kRemu:
      return strfmt("{} {}, {}, {}", m, rd, rs1, rs2);
    case Opcode::kCsrrw: case Opcode::kCsrrs: case Opcode::kCsrrc:
      return strfmt("{} {}, {:#x}, {}", m, rd, d.csr, rs1);
    case Opcode::kCsrrwi: case Opcode::kCsrrsi: case Opcode::kCsrrci:
      return strfmt("{} {}, {:#x}, {}", m, rd, d.csr, d.imm);
    case Opcode::kFence: case Opcode::kEcall: case Opcode::kEbreak:
    case Opcode::kMret: case Opcode::kWfi:
      return std::string(m);
  }
  return std::string(m);
}

}  // namespace nvsoc::rv
