#include "riscv/isa.hpp"

#include <array>
#include <string>

#include "common/bitutil.hpp"

namespace nvsoc::rv {

namespace {

Decoded decode_fields(std::uint32_t raw) {
  Decoded d;
  d.raw = raw;
  d.rd = static_cast<std::uint8_t>(bits(raw, 7, 5));
  d.rs1 = static_cast<std::uint8_t>(bits(raw, 15, 5));
  d.rs2 = static_cast<std::uint8_t>(bits(raw, 20, 5));
  return d;
}

std::int32_t imm_i(std::uint32_t raw) { return sign_extend(bits(raw, 20, 12), 12); }
std::int32_t imm_s(std::uint32_t raw) {
  return sign_extend((bits(raw, 25, 7) << 5) | bits(raw, 7, 5), 12);
}
std::int32_t imm_b(std::uint32_t raw) {
  const std::uint32_t v = (bit(raw, 31) << 12) | (bit(raw, 7) << 11) |
                          (bits(raw, 25, 6) << 5) | (bits(raw, 8, 4) << 1);
  return sign_extend(v, 13);
}
std::int32_t imm_u(std::uint32_t raw) {
  return static_cast<std::int32_t>(raw & 0xFFFFF000u);
}
std::int32_t imm_j(std::uint32_t raw) {
  const std::uint32_t v = (bit(raw, 31) << 20) | (bits(raw, 12, 8) << 12) |
                          (bit(raw, 20) << 11) | (bits(raw, 21, 10) << 1);
  return sign_extend(v, 21);
}

}  // namespace

Decoded decode(std::uint32_t raw) {
  Decoded d = decode_fields(raw);
  const std::uint32_t opcode = bits(raw, 0, 7);
  const std::uint32_t funct3 = bits(raw, 12, 3);
  const std::uint32_t funct7 = bits(raw, 25, 7);

  switch (opcode) {
    case 0x37: d.op = Opcode::kLui; d.imm = imm_u(raw); return d;
    case 0x17: d.op = Opcode::kAuipc; d.imm = imm_u(raw); return d;
    case 0x6F: d.op = Opcode::kJal; d.imm = imm_j(raw); return d;
    case 0x67:
      if (funct3 == 0) { d.op = Opcode::kJalr; d.imm = imm_i(raw); }
      return d;
    case 0x63:
      d.imm = imm_b(raw);
      switch (funct3) {
        case 0: d.op = Opcode::kBeq; break;
        case 1: d.op = Opcode::kBne; break;
        case 4: d.op = Opcode::kBlt; break;
        case 5: d.op = Opcode::kBge; break;
        case 6: d.op = Opcode::kBltu; break;
        case 7: d.op = Opcode::kBgeu; break;
        default: d.op = Opcode::kInvalid; break;
      }
      return d;
    case 0x03:
      d.imm = imm_i(raw);
      switch (funct3) {
        case 0: d.op = Opcode::kLb; break;
        case 1: d.op = Opcode::kLh; break;
        case 2: d.op = Opcode::kLw; break;
        case 4: d.op = Opcode::kLbu; break;
        case 5: d.op = Opcode::kLhu; break;
        default: d.op = Opcode::kInvalid; break;
      }
      return d;
    case 0x23:
      d.imm = imm_s(raw);
      switch (funct3) {
        case 0: d.op = Opcode::kSb; break;
        case 1: d.op = Opcode::kSh; break;
        case 2: d.op = Opcode::kSw; break;
        default: d.op = Opcode::kInvalid; break;
      }
      return d;
    case 0x13:
      d.imm = imm_i(raw);
      switch (funct3) {
        case 0: d.op = Opcode::kAddi; break;
        case 2: d.op = Opcode::kSlti; break;
        case 3: d.op = Opcode::kSltiu; break;
        case 4: d.op = Opcode::kXori; break;
        case 6: d.op = Opcode::kOri; break;
        case 7: d.op = Opcode::kAndi; break;
        case 1:
          if (funct7 == 0x00) { d.op = Opcode::kSlli; d.imm = static_cast<std::int32_t>(d.rs2); }
          else d.op = Opcode::kInvalid;
          break;
        case 5:
          if (funct7 == 0x00) { d.op = Opcode::kSrli; d.imm = static_cast<std::int32_t>(d.rs2); }
          else if (funct7 == 0x20) { d.op = Opcode::kSrai; d.imm = static_cast<std::int32_t>(d.rs2); }
          else d.op = Opcode::kInvalid;
          break;
        default: d.op = Opcode::kInvalid; break;
      }
      return d;
    case 0x33:
      if (funct7 == 0x01) {  // RV32M
        switch (funct3) {
          case 0: d.op = Opcode::kMul; break;
          case 1: d.op = Opcode::kMulh; break;
          case 2: d.op = Opcode::kMulhsu; break;
          case 3: d.op = Opcode::kMulhu; break;
          case 4: d.op = Opcode::kDiv; break;
          case 5: d.op = Opcode::kDivu; break;
          case 6: d.op = Opcode::kRem; break;
          case 7: d.op = Opcode::kRemu; break;
        }
        return d;
      }
      switch (funct3) {
        case 0:
          d.op = (funct7 == 0x20) ? Opcode::kSub
               : (funct7 == 0x00) ? Opcode::kAdd : Opcode::kInvalid;
          break;
        case 1: d.op = (funct7 == 0x00) ? Opcode::kSll : Opcode::kInvalid; break;
        case 2: d.op = (funct7 == 0x00) ? Opcode::kSlt : Opcode::kInvalid; break;
        case 3: d.op = (funct7 == 0x00) ? Opcode::kSltu : Opcode::kInvalid; break;
        case 4: d.op = (funct7 == 0x00) ? Opcode::kXor : Opcode::kInvalid; break;
        case 5:
          d.op = (funct7 == 0x20) ? Opcode::kSra
               : (funct7 == 0x00) ? Opcode::kSrl : Opcode::kInvalid;
          break;
        case 6: d.op = (funct7 == 0x00) ? Opcode::kOr : Opcode::kInvalid; break;
        case 7: d.op = (funct7 == 0x00) ? Opcode::kAnd : Opcode::kInvalid; break;
      }
      return d;
    case 0x0F: d.op = Opcode::kFence; return d;
    case 0x73: {
      d.csr = static_cast<std::uint16_t>(bits(raw, 20, 12));
      switch (funct3) {
        case 0:
          if (raw == 0x00000073u) d.op = Opcode::kEcall;
          else if (raw == 0x00100073u) d.op = Opcode::kEbreak;
          else if (raw == 0x30200073u) d.op = Opcode::kMret;
          else if (raw == 0x10500073u) d.op = Opcode::kWfi;
          return d;
        case 1: d.op = Opcode::kCsrrw; return d;
        case 2: d.op = Opcode::kCsrrs; return d;
        case 3: d.op = Opcode::kCsrrc; return d;
        case 5: d.op = Opcode::kCsrrwi; d.imm = d.rs1; return d;
        case 6: d.op = Opcode::kCsrrsi; d.imm = d.rs1; return d;
        case 7: d.op = Opcode::kCsrrci; d.imm = d.rs1; return d;
        default: return d;
      }
    }
    default:
      return d;
  }
}

std::string_view mnemonic(Opcode op) {
  switch (op) {
    case Opcode::kInvalid: return "<invalid>";
    case Opcode::kLui: return "lui";
    case Opcode::kAuipc: return "auipc";
    case Opcode::kJal: return "jal";
    case Opcode::kJalr: return "jalr";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kBltu: return "bltu";
    case Opcode::kBgeu: return "bgeu";
    case Opcode::kLb: return "lb";
    case Opcode::kLh: return "lh";
    case Opcode::kLw: return "lw";
    case Opcode::kLbu: return "lbu";
    case Opcode::kLhu: return "lhu";
    case Opcode::kSb: return "sb";
    case Opcode::kSh: return "sh";
    case Opcode::kSw: return "sw";
    case Opcode::kAddi: return "addi";
    case Opcode::kSlti: return "slti";
    case Opcode::kSltiu: return "sltiu";
    case Opcode::kXori: return "xori";
    case Opcode::kOri: return "ori";
    case Opcode::kAndi: return "andi";
    case Opcode::kSlli: return "slli";
    case Opcode::kSrli: return "srli";
    case Opcode::kSrai: return "srai";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kSll: return "sll";
    case Opcode::kSlt: return "slt";
    case Opcode::kSltu: return "sltu";
    case Opcode::kXor: return "xor";
    case Opcode::kSrl: return "srl";
    case Opcode::kSra: return "sra";
    case Opcode::kOr: return "or";
    case Opcode::kAnd: return "and";
    case Opcode::kFence: return "fence";
    case Opcode::kEcall: return "ecall";
    case Opcode::kEbreak: return "ebreak";
    case Opcode::kCsrrw: return "csrrw";
    case Opcode::kCsrrs: return "csrrs";
    case Opcode::kCsrrc: return "csrrc";
    case Opcode::kCsrrwi: return "csrrwi";
    case Opcode::kCsrrsi: return "csrrsi";
    case Opcode::kCsrrci: return "csrrci";
    case Opcode::kMret: return "mret";
    case Opcode::kWfi: return "wfi";
    case Opcode::kMul: return "mul";
    case Opcode::kMulh: return "mulh";
    case Opcode::kMulhsu: return "mulhsu";
    case Opcode::kMulhu: return "mulhu";
    case Opcode::kDiv: return "div";
    case Opcode::kDivu: return "divu";
    case Opcode::kRem: return "rem";
    case Opcode::kRemu: return "remu";
  }
  return "<invalid>";
}

bool is_load(Opcode op) {
  switch (op) {
    case Opcode::kLb: case Opcode::kLh: case Opcode::kLw:
    case Opcode::kLbu: case Opcode::kLhu:
      return true;
    default:
      return false;
  }
}

bool is_store(Opcode op) {
  return op == Opcode::kSb || op == Opcode::kSh || op == Opcode::kSw;
}

bool is_branch(Opcode op) {
  switch (op) {
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}

std::uint32_t source_reg_mask(const Decoded& d) {
  switch (d.op) {
    case Opcode::kLui:
    case Opcode::kAuipc:
    case Opcode::kJal:
    case Opcode::kEcall:
    case Opcode::kEbreak:
    case Opcode::kFence:
    case Opcode::kWfi:
    case Opcode::kMret:
    case Opcode::kCsrrwi:
    case Opcode::kCsrrsi:
    case Opcode::kCsrrci:
      return 0;
    default:
      break;
  }
  std::uint32_t mask = 0;
  if (d.rs1 != 0) mask |= 1u << d.rs1;
  // rs2 is only a real source for R-type, branches and stores.
  const bool uses_rs2 = is_store(d.op) || is_branch(d.op) ||
                        (d.op >= Opcode::kAdd && d.op <= Opcode::kAnd) ||
                        (d.op >= Opcode::kMul && d.op <= Opcode::kRemu);
  if (uses_rs2 && d.rs2 != 0) mask |= 1u << d.rs2;
  return mask;
}

namespace {
constexpr std::array<std::string_view, 32> kAbiNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
}

std::string_view abi_name(unsigned reg) {
  return reg < 32 ? kAbiNames[reg] : "<bad>";
}

std::optional<unsigned> parse_register(std::string_view token) {
  if (token.empty()) return std::nullopt;
  if ((token[0] == 'x' || token[0] == 'X') && token.size() >= 2) {
    unsigned value = 0;
    for (std::size_t i = 1; i < token.size(); ++i) {
      if (token[i] < '0' || token[i] > '9') return std::nullopt;
      value = value * 10 + static_cast<unsigned>(token[i] - '0');
    }
    if (value < 32) return value;
    return std::nullopt;
  }
  for (unsigned i = 0; i < 32; ++i) {
    if (token == kAbiNames[i]) return i;
  }
  if (token == "fp") return 8;  // frame-pointer alias for s0
  return std::nullopt;
}

}  // namespace nvsoc::rv
