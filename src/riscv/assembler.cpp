#include "riscv/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <optional>
#include <sstream>

#include "common/bitutil.hpp"
#include "common/strfmt.hpp"
#include "riscv/isa.hpp"

namespace nvsoc::rv {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw AssemblerError(strfmt("line {}: {}", line, message));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// Strip comments: '#', '//' and ';' start a comment to end of line.
std::string_view strip_comment(std::string_view s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '#' || s[i] == ';') return s.substr(0, i);
    if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '/')
      return s.substr(0, i);
  }
  return s;
}

/// Split an operand list on commas that are outside parentheses.
std::vector<std::string> split_operands(std::string_view s) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : s) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.emplace_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!trim(cur).empty() || !out.empty()) {
    const auto t = trim(cur);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::optional<std::int64_t> parse_integer(std::string_view token) {
  token = trim(token);
  if (token.empty()) return std::nullopt;
  bool negative = false;
  if (token.front() == '-' || token.front() == '+') {
    negative = token.front() == '-';
    token.remove_prefix(1);
    if (token.empty()) return std::nullopt;
  }
  int base = 10;
  if (token.size() > 2 && token[0] == '0' &&
      (token[1] == 'x' || token[1] == 'X')) {
    base = 16;
    token.remove_prefix(2);
  } else if (token.size() > 2 && token[0] == '0' &&
             (token[1] == 'b' || token[1] == 'B')) {
    base = 2;
    token.remove_prefix(2);
  }
  std::int64_t value = 0;
  for (char c : token) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else if (c == '_') continue;  // digit separators allowed
    else return std::nullopt;
    if (digit >= base) return std::nullopt;
    value = value * base + digit;
  }
  return negative ? -value : value;
}

// ---------------------------------------------------------------------------
// Encoders
// ---------------------------------------------------------------------------

std::uint32_t enc_r(unsigned opcode, unsigned rd, unsigned funct3,
                    unsigned rs1, unsigned rs2, unsigned funct7) {
  return opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) |
         (funct7 << 25);
}

std::uint32_t enc_i(unsigned opcode, unsigned rd, unsigned funct3,
                    unsigned rs1, std::int32_t imm) {
  return opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) |
         (static_cast<std::uint32_t>(imm & 0xFFF) << 20);
}

std::uint32_t enc_s(unsigned opcode, unsigned funct3, unsigned rs1,
                    unsigned rs2, std::int32_t imm) {
  const std::uint32_t u = static_cast<std::uint32_t>(imm) & 0xFFF;
  return opcode | ((u & 0x1F) << 7) | (funct3 << 12) | (rs1 << 15) |
         (rs2 << 20) | ((u >> 5) << 25);
}

std::uint32_t enc_b(unsigned opcode, unsigned funct3, unsigned rs1,
                    unsigned rs2, std::int32_t imm) {
  const std::uint32_t u = static_cast<std::uint32_t>(imm);
  return opcode | (((u >> 11) & 1) << 7) | (((u >> 1) & 0xF) << 8) |
         (funct3 << 12) | (rs1 << 15) | (rs2 << 20) |
         (((u >> 5) & 0x3F) << 25) | (((u >> 12) & 1) << 31);
}

std::uint32_t enc_u(unsigned opcode, unsigned rd, std::int32_t imm) {
  return opcode | (rd << 7) | (static_cast<std::uint32_t>(imm) & 0xFFFFF000u);
}

std::uint32_t enc_j(unsigned opcode, unsigned rd, std::int32_t imm) {
  const std::uint32_t u = static_cast<std::uint32_t>(imm);
  return opcode | (rd << 7) | (((u >> 12) & 0xFF) << 12) |
         (((u >> 11) & 1) << 20) | (((u >> 1) & 0x3FF) << 21) |
         (((u >> 20) & 1) << 31);
}

std::optional<std::uint16_t> parse_csr_name(std::string_view name) {
  const std::string n = to_lower(name);
  if (n == "mstatus") return csr::kMstatus;
  if (n == "mie") return csr::kMie;
  if (n == "mtvec") return csr::kMtvec;
  if (n == "mepc") return csr::kMepc;
  if (n == "mcause") return csr::kMcause;
  if (n == "mip") return csr::kMip;
  if (n == "cycle") return csr::kCycle;
  if (n == "cycleh") return csr::kCycleH;
  if (n == "instret") return csr::kInstret;
  if (n == "instreth") return csr::kInstretH;
  if (n == "mcycle") return csr::kMcycle;
  if (n == "minstret") return csr::kMinstret;
  if (auto v = parse_integer(name); v && *v >= 0 && *v < 4096)
    return static_cast<std::uint16_t>(*v);
  return std::nullopt;
}

/// A parsed source statement after pass 1: label-resolved size and shape.
struct Statement {
  std::size_t line = 0;
  std::string source;
  std::string mnemonic;                 // lower-case, empty for data
  std::vector<std::string> operands;
  Addr address = 0;
  unsigned size_bytes = 0;              // emitted size
  bool is_data = false;                 // .word / .half / .byte / .space
  std::vector<std::uint8_t> data;       // for data statements (pass 2 fills)
  std::vector<std::string> data_exprs;  // expressions for .word etc.
  unsigned data_unit = 4;               // bytes per element
};

}  // namespace

std::uint32_t AssembledImage::word(std::size_t index) const {
  std::uint32_t value = 0;
  std::memcpy(&value, bytes.data() + index * 4, 4);
  return value;
}

std::string AssembledImage::to_mem_text() const {
  std::ostringstream os;
  os << "// generated by nvsoc assembler; base=0x" << std::hex << base_address
     << std::dec << "\n";
  for (std::size_t i = 0; i < size_words(); ++i) {
    os << strfmt("{:08x}\n", word(i));
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Assembler implementation
// ---------------------------------------------------------------------------

namespace {

class AssemblerImpl {
 public:
  AssembledImage run(const std::string& source, Addr base);

 private:
  // Pass 1
  void scan(const std::string& source);
  unsigned statement_size(const Statement& stmt) const;

  // Pass 2
  void encode(Statement& stmt, AssembledImage& image);
  void emit32(const Statement& stmt, AssembledImage& image,
              std::uint32_t encoding);

  // Expression evaluation (symbols must be resolved by pass 2).
  std::int64_t eval(std::string_view expr, std::size_t line) const;
  std::optional<std::int64_t> try_eval(std::string_view expr) const;

  unsigned need_register(const std::string& token, std::size_t line) const;
  std::int32_t need_imm(const std::string& token, std::size_t line,
                        std::int64_t lo, std::int64_t hi) const;

  /// Parse "imm(reg)" memory operands.
  void parse_mem_operand(const std::string& token, std::size_t line,
                         unsigned& reg, std::int32_t& offset) const;

  std::map<std::string, std::int64_t> symbols_;
  std::vector<Statement> statements_;
  Addr base_ = 0;
  Addr cursor_ = 0;
};

void AssemblerImpl::scan(const std::string& source) {
  std::istringstream in(source);
  std::string raw_line;
  std::size_t line_no = 0;
  cursor_ = base_;

  while (std::getline(in, raw_line)) {
    ++line_no;
    std::string_view line = trim(strip_comment(raw_line));
    if (line.empty()) continue;

    // Peel leading labels (there can be several on one line).
    while (true) {
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) break;
      const std::string_view candidate = trim(line.substr(0, colon));
      // A label must look like an identifier (no spaces, not a directive).
      const bool identifier =
          !candidate.empty() &&
          std::all_of(candidate.begin(), candidate.end(), [](char c) {
            return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                   c == '.' || c == '$';
          });
      if (!identifier) break;
      const std::string name(candidate);
      if (symbols_.contains(name)) fail(line_no, "duplicate label " + name);
      symbols_[name] = static_cast<std::int64_t>(cursor_);
      line = trim(line.substr(colon + 1));
      if (line.empty()) break;
    }
    if (line.empty()) continue;

    Statement stmt;
    stmt.line = line_no;
    stmt.source = std::string(line);

    const std::size_t space = line.find_first_of(" \t");
    stmt.mnemonic = to_lower(line.substr(0, space));
    if (space != std::string_view::npos) {
      stmt.operands = split_operands(line.substr(space + 1));
    }

    // Directives that affect layout or symbols are handled here.
    if (stmt.mnemonic == ".equ" || stmt.mnemonic == ".set") {
      if (stmt.operands.size() != 2) fail(line_no, ".equ needs name, value");
      const auto value = try_eval(stmt.operands[1]);
      if (!value) fail(line_no, "cannot evaluate .equ value (must be a "
                                "literal or already-defined symbol)");
      symbols_[stmt.operands[0]] = *value;
      continue;
    }
    if (stmt.mnemonic == ".org") {
      if (stmt.operands.size() != 1) fail(line_no, ".org needs one operand");
      const auto value = try_eval(stmt.operands[0]);
      if (!value) fail(line_no, ".org operand must be a known value");
      const Addr target = static_cast<Addr>(*value);
      if (target < cursor_) fail(line_no, ".org cannot move backwards");
      stmt.is_data = true;
      stmt.size_bytes = static_cast<unsigned>(target - cursor_);
      stmt.mnemonic = ".space";  // padding
      stmt.operands = {std::to_string(stmt.size_bytes)};
      stmt.address = cursor_;
      cursor_ = target;
      statements_.push_back(std::move(stmt));
      continue;
    }
    if (stmt.mnemonic == ".align") {
      if (stmt.operands.size() != 1) fail(line_no, ".align needs one operand");
      const auto value = try_eval(stmt.operands[0]);
      if (!value || *value < 0 || *value > 16)
        fail(line_no, ".align operand must be 0..16");
      const Addr target = align_up(cursor_, 1ull << *value);
      stmt.is_data = true;
      stmt.size_bytes = static_cast<unsigned>(target - cursor_);
      stmt.mnemonic = ".space";
      stmt.operands = {std::to_string(stmt.size_bytes)};
      stmt.address = cursor_;
      cursor_ = target;
      statements_.push_back(std::move(stmt));
      continue;
    }
    if (stmt.mnemonic == ".text" || stmt.mnemonic == ".data" ||
        stmt.mnemonic == ".section" || stmt.mnemonic == ".globl" ||
        stmt.mnemonic == ".global" || stmt.mnemonic == ".option") {
      continue;  // single flat section; visibility directives are no-ops
    }

    stmt.address = cursor_;
    stmt.size_bytes = statement_size(stmt);
    cursor_ += stmt.size_bytes;
    statements_.push_back(std::move(stmt));
  }
}

unsigned AssemblerImpl::statement_size(const Statement& stmt) const {
  const std::string& m = stmt.mnemonic;
  if (m == ".word") return static_cast<unsigned>(stmt.operands.size() * 4);
  if (m == ".half") return static_cast<unsigned>(stmt.operands.size() * 2);
  if (m == ".byte") return static_cast<unsigned>(stmt.operands.size() * 1);
  if (m == ".space" || m == ".zero") {
    const auto value = try_eval(stmt.operands.empty() ? "" : stmt.operands[0]);
    if (!value || *value < 0) fail(stmt.line, ".space needs a literal size");
    return static_cast<unsigned>(*value);
  }
  if (m == "li") {
    // One instruction when the value is already known and fits in a signed
    // 12-bit immediate; otherwise the full lui+addi pair. Forward references
    // conservatively take two instructions.
    if (stmt.operands.size() == 2) {
      if (const auto v = try_eval(stmt.operands[1]);
          v && *v >= -2048 && *v < 2048) {
        return 4;
      }
    }
    return 8;
  }
  if (m == "la" || m == "call" || m == "tail") return 8;
  return 4;  // every other instruction/pseudo is one word
}

std::optional<std::int64_t> AssemblerImpl::try_eval(
    std::string_view expr) const {
  expr = trim(expr);
  if (expr.empty()) return std::nullopt;

  // %hi(expr) / %lo(expr): RISC-V relocation operators with the standard
  // carry adjustment so  lui rd,%hi(x); addi rd,rd,%lo(x)  reconstructs x.
  if (expr.starts_with("%hi(") && expr.ends_with(")")) {
    const auto inner = try_eval(expr.substr(4, expr.size() - 5));
    if (!inner) return std::nullopt;
    const std::uint32_t v = static_cast<std::uint32_t>(*inner);
    return static_cast<std::int64_t>((v + 0x800u) >> 12);
  }
  if (expr.starts_with("%lo(") && expr.ends_with(")")) {
    const auto inner = try_eval(expr.substr(4, expr.size() - 5));
    if (!inner) return std::nullopt;
    const std::uint32_t v = static_cast<std::uint32_t>(*inner);
    return static_cast<std::int64_t>(sign_extend(v & 0xFFF, 12));
  }

  // Binary +/- at top level (rightmost, left-associative), skipping a
  // leading sign.
  int depth = 0;
  for (std::size_t i = expr.size(); i-- > 1;) {
    const char c = expr[i];
    if (c == ')') ++depth;
    if (c == '(') --depth;
    if (depth == 0 && (c == '+' || c == '-')) {
      // Don't split exponent-style or leading signs; require the left side
      // (ignoring whitespace) to end with an identifier/digit/paren.
      std::size_t p = i;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(expr[p - 1]))) {
        --p;
      }
      if (p == 0) continue;
      const char prev = expr[p - 1];
      if (std::isalnum(static_cast<unsigned char>(prev)) || prev == ')' ||
          prev == '_') {
        const auto lhs = try_eval(expr.substr(0, i));
        const auto rhs = try_eval(expr.substr(i + 1));
        if (!lhs || !rhs) return std::nullopt;
        return c == '+' ? *lhs + *rhs : *lhs - *rhs;
      }
    }
  }

  if (const auto value = parse_integer(expr)) return value;

  const auto it = symbols_.find(std::string(expr));
  if (it != symbols_.end()) return it->second;
  return std::nullopt;
}

std::int64_t AssemblerImpl::eval(std::string_view expr,
                                 std::size_t line) const {
  const auto value = try_eval(expr);
  if (!value) fail(line, strfmt("cannot evaluate expression '{}'", expr));
  return *value;
}

unsigned AssemblerImpl::need_register(const std::string& token,
                                      std::size_t line) const {
  const auto reg = parse_register(trim(token));
  if (!reg) fail(line, strfmt("expected register, got '{}'", token));
  return *reg;
}

std::int32_t AssemblerImpl::need_imm(const std::string& token,
                                     std::size_t line, std::int64_t lo,
                                     std::int64_t hi) const {
  const std::int64_t value = eval(token, line);
  if (value < lo || value > hi) {
    fail(line, strfmt("immediate {} out of range [{}, {}]", value, lo, hi));
  }
  return static_cast<std::int32_t>(value);
}

void AssemblerImpl::parse_mem_operand(const std::string& token,
                                      std::size_t line, unsigned& reg,
                                      std::int32_t& offset) const {
  const std::string_view s = trim(token);
  const std::size_t open = s.rfind('(');
  if (open == std::string_view::npos || s.back() != ')') {
    fail(line, strfmt("expected offset(register), got '{}'", token));
  }
  const std::string_view offset_part = trim(s.substr(0, open));
  const std::string_view reg_part = s.substr(open + 1, s.size() - open - 2);
  reg = need_register(std::string(reg_part), line);
  offset = offset_part.empty()
               ? 0
               : need_imm(std::string(offset_part), line, -2048, 2047);
}

void AssemblerImpl::emit32(const Statement& stmt, AssembledImage& image,
                           std::uint32_t encoding) {
  const std::size_t offset = image.bytes.size();
  image.bytes.resize(offset + 4);
  std::memcpy(image.bytes.data() + offset, &encoding, 4);
  image.listing.push_back({base_ + offset, encoding, stmt.line, stmt.source});
}

void AssemblerImpl::encode(Statement& stmt, AssembledImage& image) {
  const std::string& m = stmt.mnemonic;
  const auto& ops = stmt.operands;
  const std::size_t line = stmt.line;

  auto expect_operands = [&](std::size_t n) {
    if (ops.size() != n) {
      fail(line, strfmt("'{}' expects {} operands, got {}", m, n, ops.size()));
    }
  };

  // ---- data directives ----------------------------------------------------
  if (m == ".word" || m == ".half" || m == ".byte") {
    const unsigned unit = m == ".word" ? 4 : m == ".half" ? 2 : 1;
    for (const auto& op : ops) {
      const std::int64_t value = eval(op, line);
      for (unsigned b = 0; b < unit; ++b) {
        image.bytes.push_back(static_cast<std::uint8_t>(value >> (8 * b)));
      }
    }
    return;
  }
  if (m == ".space" || m == ".zero") {
    image.bytes.insert(image.bytes.end(), stmt.size_bytes, 0);
    return;
  }

  const Addr pc = stmt.address;

  auto branch_offset = [&](const std::string& target) -> std::int32_t {
    const std::int64_t dest = eval(target, line);
    const std::int64_t delta = dest - static_cast<std::int64_t>(pc);
    if (delta < -4096 || delta > 4094 || (delta & 1)) {
      fail(line, strfmt("branch target out of range (delta {})", delta));
    }
    return static_cast<std::int32_t>(delta);
  };
  auto jal_offset = [&](const std::string& target) -> std::int32_t {
    const std::int64_t dest = eval(target, line);
    const std::int64_t delta = dest - static_cast<std::int64_t>(pc);
    if (delta < -(1 << 20) || delta >= (1 << 20) || (delta & 1)) {
      fail(line, strfmt("jump target out of range (delta {})", delta));
    }
    return static_cast<std::int32_t>(delta);
  };

  // ---- pseudo-instructions --------------------------------------------------
  if (m == "nop") { emit32(stmt, image, enc_i(0x13, 0, 0, 0, 0)); return; }
  if (m == "li") {
    expect_operands(2);
    const unsigned rd = need_register(ops[0], line);
    const std::int64_t value64 = eval(ops[1], line);
    const std::int32_t value = static_cast<std::int32_t>(value64);
    if (stmt.size_bytes == 4) {
      emit32(stmt, image, enc_i(0x13, rd, 0, 0, value));
      return;
    }
    const std::int32_t hi = static_cast<std::int32_t>(
        (static_cast<std::uint32_t>(value) + 0x800u) & 0xFFFFF000u);
    // Unsigned subtraction: value=0x7FFFFFFF puts hi at INT32_MIN and the
    // signed difference would overflow; only the wrapped low 12 bits matter.
    const std::int32_t lo = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(value) - static_cast<std::uint32_t>(hi));
    emit32(stmt, image, enc_u(0x37, rd, hi));
    emit32(stmt, image, enc_i(0x13, rd, 0, rd, lo));
    return;
  }
  if (m == "la") {
    expect_operands(2);
    const unsigned rd = need_register(ops[0], line);
    const std::int32_t value = static_cast<std::int32_t>(eval(ops[1], line));
    const std::int32_t hi = static_cast<std::int32_t>(
        (static_cast<std::uint32_t>(value) + 0x800u) & 0xFFFFF000u);
    const std::int32_t lo = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(value) - static_cast<std::uint32_t>(hi));
    emit32(stmt, image, enc_u(0x37, rd, hi));
    emit32(stmt, image, enc_i(0x13, rd, 0, rd, lo));
    return;
  }
  if (m == "mv") {
    expect_operands(2);
    emit32(stmt, image, enc_i(0x13, need_register(ops[0], line), 0,
                              need_register(ops[1], line), 0));
    return;
  }
  if (m == "not") {
    expect_operands(2);
    emit32(stmt, image, enc_i(0x13, need_register(ops[0], line), 4,
                              need_register(ops[1], line), -1));
    return;
  }
  if (m == "neg") {
    expect_operands(2);
    emit32(stmt, image, enc_r(0x33, need_register(ops[0], line), 0, 0,
                              need_register(ops[1], line), 0x20));
    return;
  }
  if (m == "seqz") {
    expect_operands(2);
    emit32(stmt, image, enc_i(0x13, need_register(ops[0], line), 3,
                              need_register(ops[1], line), 1));
    return;
  }
  if (m == "snez") {
    expect_operands(2);
    emit32(stmt, image, enc_r(0x33, need_register(ops[0], line), 3, 0,
                              need_register(ops[1], line), 0));
    return;
  }
  if (m == "beqz" || m == "bnez" || m == "blez" || m == "bgez" ||
      m == "bltz" || m == "bgtz") {
    expect_operands(2);
    const unsigned rs = need_register(ops[0], line);
    const std::int32_t off = branch_offset(ops[1]);
    if (m == "beqz") emit32(stmt, image, enc_b(0x63, 0, rs, 0, off));
    else if (m == "bnez") emit32(stmt, image, enc_b(0x63, 1, rs, 0, off));
    else if (m == "blez") emit32(stmt, image, enc_b(0x63, 5, 0, rs, off));
    else if (m == "bgez") emit32(stmt, image, enc_b(0x63, 5, rs, 0, off));
    else if (m == "bltz") emit32(stmt, image, enc_b(0x63, 4, rs, 0, off));
    else emit32(stmt, image, enc_b(0x63, 4, 0, rs, off));  // bgtz
    return;
  }
  if (m == "bgt" || m == "ble" || m == "bgtu" || m == "bleu") {
    expect_operands(3);
    const unsigned rs1 = need_register(ops[0], line);
    const unsigned rs2 = need_register(ops[1], line);
    const std::int32_t off = branch_offset(ops[2]);
    if (m == "bgt") emit32(stmt, image, enc_b(0x63, 4, rs2, rs1, off));
    else if (m == "ble") emit32(stmt, image, enc_b(0x63, 5, rs2, rs1, off));
    else if (m == "bgtu") emit32(stmt, image, enc_b(0x63, 6, rs2, rs1, off));
    else emit32(stmt, image, enc_b(0x63, 7, rs2, rs1, off));  // bleu
    return;
  }
  if (m == "j") {
    expect_operands(1);
    emit32(stmt, image, enc_j(0x6F, 0, jal_offset(ops[0])));
    return;
  }
  if (m == "jr") {
    expect_operands(1);
    emit32(stmt, image, enc_i(0x67, 0, 0, need_register(ops[0], line), 0));
    return;
  }
  if (m == "ret") {
    expect_operands(0);
    emit32(stmt, image, enc_i(0x67, 0, 0, 1, 0));
    return;
  }
  if (m == "call" || m == "tail") {
    expect_operands(1);
    const unsigned link = m == "call" ? 1u : 0u;
    const unsigned scratch = m == "call" ? 1u : 6u;  // ra or t1 per ABI
    const std::int64_t dest = eval(ops[0], line);
    const std::int64_t delta = dest - static_cast<std::int64_t>(pc);
    const std::int32_t d32 = static_cast<std::int32_t>(delta);
    const std::int32_t hi = static_cast<std::int32_t>(
        (static_cast<std::uint32_t>(d32) + 0x800u) & 0xFFFFF000u);
    const std::int32_t lo = d32 - hi;
    emit32(stmt, image, enc_u(0x17, scratch, hi));             // auipc
    emit32(stmt, image, enc_i(0x67, link, 0, scratch, lo));    // jalr
    return;
  }
  if (m == "csrr") {
    expect_operands(2);
    const auto csr = parse_csr_name(ops[1]);
    if (!csr) fail(line, "unknown CSR " + ops[1]);
    emit32(stmt, image, enc_i(0x73, need_register(ops[0], line), 2, 0,
                              static_cast<std::int32_t>(*csr)));
    return;
  }
  if (m == "csrw") {
    expect_operands(2);
    const auto csr = parse_csr_name(ops[0]);
    if (!csr) fail(line, "unknown CSR " + ops[0]);
    emit32(stmt, image, enc_i(0x73, 0, 1, need_register(ops[1], line),
                              static_cast<std::int32_t>(*csr)));
    return;
  }

  // ---- base instructions ----------------------------------------------------
  if (m == "lui" || m == "auipc") {
    expect_operands(2);
    const unsigned rd = need_register(ops[0], line);
    std::int64_t value = eval(ops[1], line);
    // Accept both the GNU convention (operand is the 20-bit page number,
    // e.g. from %hi) and a raw byte value that is already page-aligned.
    if (value >= -(1 << 19) && value < (1 << 20)) {
      value <<= 12;
    }
    emit32(stmt, image,
           enc_u(m == "lui" ? 0x37 : 0x17, rd,
                 static_cast<std::int32_t>(value)));
    return;
  }
  if (m == "jal") {
    // jal rd, target  |  jal target (rd = ra)
    if (ops.size() == 1) {
      emit32(stmt, image, enc_j(0x6F, 1, jal_offset(ops[0])));
    } else {
      expect_operands(2);
      emit32(stmt, image,
             enc_j(0x6F, need_register(ops[0], line), jal_offset(ops[1])));
    }
    return;
  }
  if (m == "jalr") {
    // jalr rd, offset(rs1) | jalr rd, rs1, offset | jalr rs1
    if (ops.size() == 1) {
      emit32(stmt, image, enc_i(0x67, 1, 0, need_register(ops[0], line), 0));
      return;
    }
    if (ops.size() == 2) {
      unsigned rs1;
      std::int32_t offset;
      parse_mem_operand(ops[1], line, rs1, offset);
      emit32(stmt, image,
             enc_i(0x67, need_register(ops[0], line), 0, rs1, offset));
      return;
    }
    expect_operands(3);
    emit32(stmt, image,
           enc_i(0x67, need_register(ops[0], line), 0,
                 need_register(ops[1], line), need_imm(ops[2], line, -2048, 2047)));
    return;
  }

  struct BranchDef { const char* name; unsigned funct3; };
  static constexpr BranchDef kBranches[] = {
      {"beq", 0}, {"bne", 1}, {"blt", 4}, {"bge", 5}, {"bltu", 6}, {"bgeu", 7}};
  for (const auto& b : kBranches) {
    if (m == b.name) {
      expect_operands(3);
      emit32(stmt, image,
             enc_b(0x63, b.funct3, need_register(ops[0], line),
                   need_register(ops[1], line), branch_offset(ops[2])));
      return;
    }
  }

  struct LoadDef { const char* name; unsigned funct3; };
  static constexpr LoadDef kLoads[] = {
      {"lb", 0}, {"lh", 1}, {"lw", 2}, {"lbu", 4}, {"lhu", 5}};
  for (const auto& l : kLoads) {
    if (m == l.name) {
      expect_operands(2);
      unsigned rs1;
      std::int32_t offset;
      parse_mem_operand(ops[1], line, rs1, offset);
      emit32(stmt, image,
             enc_i(0x03, need_register(ops[0], line), l.funct3, rs1, offset));
      return;
    }
  }
  static constexpr LoadDef kStores[] = {{"sb", 0}, {"sh", 1}, {"sw", 2}};
  for (const auto& s : kStores) {
    if (m == s.name) {
      expect_operands(2);
      unsigned rs1;
      std::int32_t offset;
      parse_mem_operand(ops[1], line, rs1, offset);
      emit32(stmt, image,
             enc_s(0x23, s.funct3, rs1, need_register(ops[0], line), offset));
      return;
    }
  }

  struct ImmDef { const char* name; unsigned funct3; };
  static constexpr ImmDef kImmOps[] = {{"addi", 0}, {"slti", 2}, {"sltiu", 3},
                                       {"xori", 4}, {"ori", 6}, {"andi", 7}};
  for (const auto& i : kImmOps) {
    if (m == i.name) {
      expect_operands(3);
      emit32(stmt, image,
             enc_i(0x13, need_register(ops[0], line), i.funct3,
                   need_register(ops[1], line),
                   need_imm(ops[2], line, -2048, 2047)));
      return;
    }
  }
  if (m == "slli" || m == "srli" || m == "srai") {
    expect_operands(3);
    const std::int32_t shamt = need_imm(ops[2], line, 0, 31);
    const unsigned funct3 = m == "slli" ? 1u : 5u;
    const unsigned funct7 = m == "srai" ? 0x20u : 0u;
    emit32(stmt, image,
           enc_r(0x13, need_register(ops[0], line), funct3,
                 need_register(ops[1], line), static_cast<unsigned>(shamt),
                 funct7));
    return;
  }

  struct RegDef { const char* name; unsigned funct3; unsigned funct7; };
  static constexpr RegDef kRegOps[] = {
      {"add", 0, 0x00}, {"sub", 0, 0x20}, {"sll", 1, 0x00}, {"slt", 2, 0x00},
      {"sltu", 3, 0x00}, {"xor", 4, 0x00}, {"srl", 5, 0x00}, {"sra", 5, 0x20},
      {"or", 6, 0x00}, {"and", 7, 0x00},
      {"mul", 0, 0x01}, {"mulh", 1, 0x01}, {"mulhsu", 2, 0x01},
      {"mulhu", 3, 0x01}, {"div", 4, 0x01}, {"divu", 5, 0x01},
      {"rem", 6, 0x01}, {"remu", 7, 0x01}};
  for (const auto& r : kRegOps) {
    if (m == r.name) {
      expect_operands(3);
      emit32(stmt, image,
             enc_r(0x33, need_register(ops[0], line), r.funct3,
                   need_register(ops[1], line), need_register(ops[2], line),
                   r.funct7));
      return;
    }
  }

  if (m == "fence") { emit32(stmt, image, 0x0FF0000Fu); return; }
  if (m == "ecall") { emit32(stmt, image, 0x00000073u); return; }
  if (m == "ebreak") { emit32(stmt, image, 0x00100073u); return; }
  if (m == "mret") { emit32(stmt, image, 0x30200073u); return; }
  if (m == "wfi") { emit32(stmt, image, 0x10500073u); return; }

  struct CsrDef { const char* name; unsigned funct3; bool immediate; };
  static constexpr CsrDef kCsrOps[] = {
      {"csrrw", 1, false}, {"csrrs", 2, false}, {"csrrc", 3, false},
      {"csrrwi", 5, true}, {"csrrsi", 6, true}, {"csrrci", 7, true}};
  for (const auto& c : kCsrOps) {
    if (m == c.name) {
      expect_operands(3);
      const auto csr = parse_csr_name(ops[1]);
      if (!csr) fail(line, "unknown CSR " + ops[1]);
      const unsigned rd = need_register(ops[0], line);
      unsigned src;
      if (c.immediate) {
        src = static_cast<unsigned>(need_imm(ops[2], line, 0, 31));
      } else {
        src = need_register(ops[2], line);
      }
      emit32(stmt, image,
             enc_i(0x73, rd, c.funct3, src, static_cast<std::int32_t>(*csr)));
      return;
    }
  }

  fail(line, strfmt("unknown mnemonic '{}'", m));
}

AssembledImage AssemblerImpl::run(const std::string& source, Addr base) {
  base_ = base;
  scan(source);

  AssembledImage image;
  image.base_address = base;
  for (auto& stmt : statements_) {
    const std::size_t before = image.bytes.size();
    encode(stmt, image);
    const std::size_t emitted = image.bytes.size() - before;
    if (emitted != stmt.size_bytes) {
      fail(stmt.line,
           strfmt("internal: pass-1 size {} != pass-2 size {} for '{}'",
                  stmt.size_bytes, emitted, stmt.source));
    }
  }
  for (const auto& [name, value] : symbols_) {
    image.symbols[name] = static_cast<Addr>(value);
  }
  return image;
}

}  // namespace

AssembledImage Assembler::assemble(const std::string& source,
                                   Addr base_address) {
  AssemblerImpl impl;
  return impl.run(source, base_address);
}

}  // namespace nvsoc::rv
