// Two-pass RV32IM assembler.
//
// The paper's toolflow converts the NVDLA configuration file into RISC-V
// assembly and compiles it with the Codasip Studio SDK. This assembler
// stands in for that SDK: it accepts standard GNU-style RV32IM assembly
// (labels, the usual pseudo-instructions, .word/.org/.equ directives) and
// produces a raw machine-code image plus a Vivado-style .mem rendering that
// loads straight into the SoC's program memory.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace nvsoc::rv {

/// Result of assembling a program: a flat little-endian image based at
/// `base_address` plus the symbol table and a line-addressed listing.
struct AssembledImage {
  Addr base_address = 0;
  std::vector<std::uint8_t> bytes;
  std::map<std::string, Addr> symbols;

  struct ListingEntry {
    Addr address;
    std::uint32_t encoding;
    std::size_t source_line;  ///< 1-based
    std::string source;
  };
  std::vector<ListingEntry> listing;

  std::size_t size_words() const { return bytes.size() / 4; }
  std::uint32_t word(std::size_t index) const;

  /// Vivado $readmemh-compatible rendering (one 32-bit hex word per line).
  std::string to_mem_text() const;
};

/// Thrown on any assembly error; message includes the 1-based line number.
class AssemblerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Assembler {
 public:
  /// Assemble `source`. `base_address` is the load/link address of the first
  /// emitted byte (the reset PC of the paper's programs is 0x0 in BRAM).
  AssembledImage assemble(const std::string& source, Addr base_address = 0);
};

}  // namespace nvsoc::rv
