// Decoded-basic-block cache for the ISS (ROADMAP direction 3, tier (a)).
//
// The cycle-accurate path re-fetched and re-decoded every instruction on
// every `Cpu::step()` — including the bare-metal polling loops that spin for
// thousands of iterations per NVDLA job. This cache stores basic blocks of
// pre-decoded ops keyed by their start PC so repeat executions dispatch a
// tight in-memory loop and only touch the bus for data accesses.
//
// The cache is purely a speed structure: each `CachedOp` carries the fetch
// wait states observed when the block was built (always zero for the
// single-cycle BRAM program memory), so cached dispatch reproduces the
// uncached pipeline timing cycle-for-cycle. Coherence is the owner's job:
// the `Cpu` registers a `CodeWriteSource` listener on its instruction memory
// and calls `invalidate_range()` for every byte range written, so stale ops
// can never be dispatched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "riscv/isa.hpp"

namespace nvsoc::rv {

/// One pre-decoded instruction plus everything the dispatch loop needs to
/// reproduce the uncached per-step accounting without touching the bus.
struct CachedOp {
  Decoded d;
  /// Fetch wait states beyond the single pipelined cycle, as observed when
  /// the block was built. Program memory is single-cycle BRAM, so its fetch
  /// latency is time-invariant and recording it once is exact.
  Cycle fetch_extra = 0;
  /// Bit r set when the op reads register r (load-use interlock test).
  std::uint32_t src_mask = 0;
};

/// A straight-line run of instructions ending at the first control transfer
/// or system op (or the build cap).
struct DecodedBlock {
  Addr start = 0;
  std::vector<CachedOp> ops;

  Addr end() const { return start + static_cast<Addr>(4 * ops.size()); }
};

class DecodeCache {
 public:
  /// Block starting exactly at `pc`, or nullptr. Pointers stay valid until
  /// the block is invalidated (std::unordered_map is node-based).
  const DecodedBlock* lookup(Addr pc) const;

  /// Insert (or replace) the block keyed by its start PC.
  const DecodedBlock* insert(DecodedBlock block);

  /// Drop every block whose [start, end) intersects [base, base + bytes).
  /// Returns the number of blocks dropped.
  std::size_t invalidate_range(Addr base, std::uint64_t bytes);

  void clear() { blocks_.clear(); }
  std::size_t block_count() const { return blocks_.size(); }

 private:
  std::unordered_map<Addr, DecodedBlock> blocks_;
};

}  // namespace nvsoc::rv
