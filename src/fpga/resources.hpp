// FPGA resource-utilisation model (Table I).
//
// Substitution for Vivado synthesis on the ZCU102: a parametric estimator
// per component. Fixed-function blocks (µRISC-V core, program memory, MIG
// DDR4, AXI SmartConnect, bus glue) carry their synthesised footprints from
// Table I directly; the NVDLA estimate scales with the hardware parameters
// (MAC count, CBUF capacity, DBB width) and is calibrated so nv_small
// reproduces the published row exactly. The same scaling predicts the
// nv_full LUT over-utilisation the paper reports during synthesis.
#pragma once

#include <string>
#include <vector>

#include "nvdla/config.hpp"

namespace nvsoc::fpga {

struct Resources {
  double luts = 0;
  double regs = 0;
  double carry8 = 0;
  double f7_muxes = 0;
  double f8_muxes = 0;
  double clbs = 0;
  double bram_tiles = 0;
  double dsps = 0;

  Resources& operator+=(const Resources& other);
  friend Resources operator+(Resources a, const Resources& b) {
    a += b;
    return a;
  }
};

/// ZCU102 (XCZU9EG) device capacity — the header row of Table I.
Resources zcu102_capacity();

// --- per-component estimates -------------------------------------------------
Resources estimate_nvdla(const nvdla::NvdlaConfig& config);
Resources urisc_v_core();
Resources program_memory();
Resources soc_glue();          ///< bridges, decoder, arbiter, converter
Resources mig_ddr4();
Resources axi_smartconnect();
Resources board_glue();        ///< AXI interconnect, resets, misc

/// The paper's aggregate rows.
Resources our_soc(const nvdla::NvdlaConfig& config);
Resources overall_system(const nvdla::NvdlaConfig& config);

/// A named utilisation row for report printing.
struct UtilizationRow {
  std::string component;
  Resources used;
};

/// Full Table I as rows (overall, MIG, SmartConnect, SoC, NVDLA, core, PM).
std::vector<UtilizationRow> table1_rows(const nvdla::NvdlaConfig& config);

/// True when every resource class fits the device.
bool fits(const Resources& used, const Resources& capacity);

/// Utilisation percentage of the scarcest resource class.
double peak_utilization(const Resources& used, const Resources& capacity);

}  // namespace nvsoc::fpga
