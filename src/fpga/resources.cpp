#include "fpga/resources.hpp"

#include <algorithm>

namespace nvsoc::fpga {

Resources& Resources::operator+=(const Resources& other) {
  luts += other.luts;
  regs += other.regs;
  carry8 += other.carry8;
  f7_muxes += other.f7_muxes;
  f8_muxes += other.f8_muxes;
  clbs += other.clbs;
  bram_tiles += other.bram_tiles;
  dsps += other.dsps;
  return *this;
}

Resources zcu102_capacity() {
  return {274080, 548160, 34260, 137040, 68520, 34260, 912, 2520};
}

Resources estimate_nvdla(const nvdla::NvdlaConfig& config) {
  // Scaling model calibrated on the synthesised nv_small row of Table I
  // (64 MACs, 128 KiB CBUF, 64-bit DBB -> 74575 LUTs, 79567 regs, 1569
  // CARRY8, 3091 F7, 1048 F8, 15734 CLBs, 66 BRAM, 32 DSPs):
  //   * datapath resources scale with the MAC count (each INT8 MAC costs
  //     LUT fabric for the multiplier partial products and the adder tree,
  //     plus pipeline registers) — DSP packing fits two INT8 MACs per DSP
  //     but the NVDLA RTL maps most multipliers to fabric, which is exactly
  //     why nv_full over-utilises LUTs on the ZCU102;
  //   * CBUF maps to BRAM tiles (36 Kb each) plus control overhead;
  //   * fixed cost covers CDMA/SDP/PDP/CDP control and the CSB fabric.
  const double macs = config.num_macs();
  const double cbuf_kib = config.cbuf_kib;
  const double dbb_bytes = config.dbb_width_bits / 8.0;

  Resources r;
  r.luts = 35663.0 + 580.0 * macs + 8.0 * cbuf_kib + 96.0 * dbb_bytes;
  r.regs = 43887.0 + 520.0 * macs + 10.0 * cbuf_kib + 140.0 * dbb_bytes;
  r.carry8 = 791.4 + 11.0 * macs + 0.2 * cbuf_kib + 6.0 * dbb_bytes;
  r.f7_muxes = 1174.2 + 28.0 * macs + 0.6 * cbuf_kib + 6.0 * dbb_bytes;
  r.f8_muxes = 400.0 + 9.5 * macs + 0.2 * cbuf_kib + 1.8 * dbb_bytes;
  r.clbs = 7230.0 + 126.0 * macs + 2.5 * cbuf_kib + 15.0 * dbb_bytes;
  r.bram_tiles = 30.0 + cbuf_kib / 4.0 + dbb_bytes / 2.0;
  r.dsps = macs / 2.0;
  return r;
}

Resources urisc_v_core() {
  return {6346, 2767, 173, 419, 67, 1297, 0, 4};
}

Resources program_memory() {
  return {241, 6, 0, 45, 18, 148, 232, 0};
}

Resources soc_glue() {
  // Bridges, decoder, arbiter and the width converter: the SoC row of
  // Table I minus its three explicit components. The negative CLB delta is
  // real Vivado behaviour — glue logic packs into CLBs already counted
  // against the larger components.
  return {824, 1319, 20, 0, 0, -154, 0, 0};
}

Resources mig_ddr4() {
  return {8651, 10260, 56, 164, 0, 1754, 25.5, 3};
}

Resources axi_smartconnect() {
  return {5546, 7860, 0, 0, 0, 1137, 0, 0};
}

Resources board_glue() {
  // Overall set-up minus SoC, MIG and SmartConnect (AXI interconnect CDC,
  // resets, Zynq PS interface logic).
  return {550, 1044, 7, 0, 0, -18, 0, 0};
}

Resources our_soc(const nvdla::NvdlaConfig& config) {
  return estimate_nvdla(config) + urisc_v_core() + program_memory() +
         soc_glue();
}

Resources overall_system(const nvdla::NvdlaConfig& config) {
  return our_soc(config) + mig_ddr4() + axi_smartconnect() + board_glue();
}

std::vector<UtilizationRow> table1_rows(const nvdla::NvdlaConfig& config) {
  return {
      {"Overall System Set-up (Fig. 4)", overall_system(config)},
      {"MIG DDR4", mig_ddr4()},
      {"AXI SmartConnect", axi_smartconnect()},
      {"Our SoC (Fig. 2)", our_soc(config)},
      {config.name + " NVDLA", estimate_nvdla(config)},
      {"uRISC_V core", urisc_v_core()},
      {"Program Memory", program_memory()},
  };
}

bool fits(const Resources& used, const Resources& capacity) {
  return used.luts <= capacity.luts && used.regs <= capacity.regs &&
         used.carry8 <= capacity.carry8 &&
         used.f7_muxes <= capacity.f7_muxes &&
         used.f8_muxes <= capacity.f8_muxes && used.clbs <= capacity.clbs &&
         used.bram_tiles <= capacity.bram_tiles && used.dsps <= capacity.dsps;
}

double peak_utilization(const Resources& used, const Resources& capacity) {
  double peak = 0.0;
  const double ratios[] = {
      used.luts / capacity.luts,          used.regs / capacity.regs,
      used.carry8 / capacity.carry8,      used.f7_muxes / capacity.f7_muxes,
      used.f8_muxes / capacity.f8_muxes,  used.clbs / capacity.clbs,
      used.bram_tiles / capacity.bram_tiles, used.dsps / capacity.dsps};
  for (const double r : ratios) peak = std::max(peak, r);
  return peak * 100.0;
}

}  // namespace nvsoc::fpga
