// Deterministic, seeded fault injection for the serving stack.
//
// A fault::Plan names per-kind injection rates plus a seed; a
// fault::Injector turns the plan into a reproducible decision stream:
// decision i for kind k fires iff hash(seed, k, i) < rate * 2^64, so the
// failure sequence depends only on (plan, seed, per-kind decision index) —
// never on wall clock, thread scheduling, or a shared RNG cursor. Two
// injectors built from the same plan produce the same sequence; the same
// plan with a different seed produces a different one.
//
// Plans parse from a compact spec usable inside a backend spec
// (`soc?fault=csb_timeout:0.5+flip:1e-6+seed:7`) or a CLI flag
// (`--fault=...`). Kinds:
//
//   flip         weight bit flips in the serving copies (replay arena /
//                SoC DRAM preload) — detected by checksum, surfaces as
//                kDataLoss before any corrupted answer is served
//   csb_timeout  a CSB register read completes only at the watchdog
//                latency with a timeout status -> kDeadlineExceeded
//   csb_error    a CSB register access returns an error response
//                -> kUnavailable (transient; retryable)
//   dbb_error    a DBB burst gets an AXI error response -> kUnavailable
//   stall        an artificial ISS stall: the SoC run burns its
//                instruction budget -> kDeadlineExceeded
//   staging      an async staging task fails -> kUnavailable
//   replay       a replay-engine run fails -> kUnavailable
//
// The injector is shared (shared_ptr) across the layers it arms and its
// counters are atomic: concurrent workers each consume distinct decision
// indices, so the *set* of fired decisions is deterministic even when the
// interleaving is not.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "common/status.hpp"

namespace nvsoc::fault {

enum class Kind : std::size_t {
  kWeightFlip = 0,
  kCsbTimeout,
  kCsbError,
  kDbbError,
  kIssStall,
  kStagingFail,
  kReplayFail,
  kCount,
};

constexpr std::size_t kKindCount = static_cast<std::size_t>(Kind::kCount);

/// Spec-vocabulary name of a fault kind ("flip", "csb_timeout", ...).
const char* kind_name(Kind kind);

/// Per-kind injection rates (probability per decision, in [0, 1]) plus the
/// seed that anchors the decision stream.
struct Plan {
  std::array<double, kKindCount> rate{};  // all zero: inject nothing
  std::uint64_t seed = 1;

  double& at(Kind kind) { return rate[static_cast<std::size_t>(kind)]; }
  double at(Kind kind) const { return rate[static_cast<std::size_t>(kind)]; }

  /// True when at least one kind has a non-zero rate.
  bool any() const;

  /// Parses "kind:rate[+kind:rate...][+seed:N]". Unknown kinds, rates
  /// outside [0, 1], and malformed numbers are kInvalidArgument.
  static StatusOr<Plan> parse(const std::string& spec);

  /// Canonical spec string (kinds in enum order, zero rates omitted,
  /// seed always present) — round-trips through parse() and keys the
  /// platform-envelope records of fault-armed variants.
  std::string to_string() const;
};

/// The decision stream + evidence counters over one Plan.
class Injector {
 public:
  explicit Injector(Plan plan) : plan_(plan) {}

  const Plan& plan() const { return plan_; }

  /// Consumes the next decision index for `kind`; true = inject. Thread
  /// safe; concurrent callers get distinct indices.
  bool fire(Kind kind);

  /// Deterministic corruption site for a fired kWeightFlip decision: the
  /// byte offset (within a region of `region_bytes`) and bit to flip,
  /// derived from the decision index so repeat runs corrupt the same
  /// sites. Returns nullopt when the decision does not fire or the
  /// region is empty.
  struct Corruption {
    std::uint64_t offset = 0;
    std::uint8_t bit = 0;
  };
  std::optional<Corruption> fire_corruption(std::uint64_t region_bytes);

  /// Decisions taken / faults injected, per kind and total.
  std::uint64_t decisions(Kind kind) const;
  std::uint64_t injected(Kind kind) const;
  std::uint64_t total_injected() const;

 private:
  // Deliberately lock-free: each counter is an independent fetch_add with
  // no cross-counter invariant, so there is nothing for a Mutex/GUARDED_BY
  // capability to protect — relaxed atomics are the whole discipline.
  // plan_ is set once in the constructor and read-only afterwards.
  Plan plan_;
  std::array<std::atomic<std::uint64_t>, kKindCount> next_index_{};
  std::array<std::atomic<std::uint64_t>, kKindCount> injected_{};
};

}  // namespace nvsoc::fault
