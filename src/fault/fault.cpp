#include "fault/fault.hpp"

#include <cmath>
#include <cstdlib>

#include "common/strfmt.hpp"

namespace nvsoc::fault {

namespace {

/// splitmix64 finalizer: a strong 64-bit mix, cheap enough for every
/// decision on the simulator hot path.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t decision_hash(std::uint64_t seed, Kind kind,
                            std::uint64_t index) {
  return mix64(mix64(seed ^ (static_cast<std::uint64_t>(kind) << 56)) ^
               index);
}

bool fires(double rate, std::uint64_t hash) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Compare against rate * 2^64 without overflowing: scale into [0, 1).
  return static_cast<double>(hash) <
         rate * 18446744073709551616.0;  // 2^64
}

}  // namespace

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kWeightFlip: return "flip";
    case Kind::kCsbTimeout: return "csb_timeout";
    case Kind::kCsbError: return "csb_error";
    case Kind::kDbbError: return "dbb_error";
    case Kind::kIssStall: return "stall";
    case Kind::kStagingFail: return "staging";
    case Kind::kReplayFail: return "replay";
    case Kind::kCount: break;
  }
  return "unknown";
}

bool Plan::any() const {
  for (const double r : rate) {
    if (r > 0.0) return true;
  }
  return false;
}

StatusOr<Plan> Plan::parse(const std::string& spec) {
  Plan plan;
  if (spec.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "fault plan spec is empty (expected kind:rate[+...], "
                  "e.g. 'csb_timeout:0.5+flip:1e-6+seed:7')");
  }
  std::size_t at = 0;
  while (at <= spec.size()) {
    const std::size_t plus = spec.find('+', at);
    const std::size_t end = plus == std::string::npos ? spec.size() : plus;
    const std::string term = spec.substr(at, end - at);
    const std::size_t colon = term.find(':');
    if (term.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 >= term.size()) {
      return Status(StatusCode::kInvalidArgument,
                    strfmt("fault plan term '{}' is not kind:rate", term));
    }
    const std::string key = term.substr(0, colon);
    const std::string value = term.substr(colon + 1);
    const char* begin = value.c_str();
    char* parsed_end = nullptr;
    if (key == "seed") {
      const unsigned long long seed = std::strtoull(begin, &parsed_end, 10);
      if (parsed_end == begin || *parsed_end != '\0') {
        return Status(StatusCode::kInvalidArgument,
                      strfmt("fault plan seed '{}' is not an integer",
                             value));
      }
      plan.seed = static_cast<std::uint64_t>(seed);
    } else {
      const double rate = std::strtod(begin, &parsed_end);
      if (parsed_end == begin || *parsed_end != '\0' || std::isnan(rate)) {
        return Status(StatusCode::kInvalidArgument,
                      strfmt("fault plan rate '{}' is not a number", value));
      }
      if (rate < 0.0 || rate > 1.0) {
        return Status(StatusCode::kInvalidArgument,
                      strfmt("fault plan rate {}:{} outside [0, 1]", key,
                             value));
      }
      bool known = false;
      for (std::size_t k = 0; k < kKindCount; ++k) {
        if (key == kind_name(static_cast<Kind>(k))) {
          plan.rate[k] = rate;
          known = true;
          break;
        }
      }
      if (!known) {
        std::string kinds;
        for (std::size_t k = 0; k < kKindCount; ++k) {
          if (!kinds.empty()) kinds += ", ";
          kinds += kind_name(static_cast<Kind>(k));
        }
        return Status(StatusCode::kInvalidArgument,
                      strfmt("unknown fault kind '{}' (known: {}, seed)",
                             key, kinds));
      }
    }
    if (plus == std::string::npos) break;
    at = plus + 1;
  }
  return plan;
}

std::string Plan::to_string() const {
  std::string out;
  for (std::size_t k = 0; k < kKindCount; ++k) {
    if (rate[k] <= 0.0) continue;
    if (!out.empty()) out += "+";
    out += strfmt("{}:{}", kind_name(static_cast<Kind>(k)), rate[k]);
  }
  if (!out.empty()) out += "+";
  out += strfmt("seed:{}", seed);
  return out;
}

bool Injector::fire(Kind kind) {
  const std::size_t k = static_cast<std::size_t>(kind);
  const std::uint64_t index =
      next_index_[k].fetch_add(1, std::memory_order_relaxed);
  if (!fires(plan_.rate[k], decision_hash(plan_.seed, kind, index))) {
    return false;
  }
  injected_[k].fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<Injector::Corruption> Injector::fire_corruption(
    std::uint64_t region_bytes) {
  constexpr std::size_t k = static_cast<std::size_t>(Kind::kWeightFlip);
  const std::uint64_t index =
      next_index_[k].fetch_add(1, std::memory_order_relaxed);
  if (region_bytes == 0 ||
      !fires(plan_.rate[k],
             decision_hash(plan_.seed, Kind::kWeightFlip, index))) {
    return std::nullopt;
  }
  injected_[k].fetch_add(1, std::memory_order_relaxed);
  // A second mix decorrelates the site from the fire/no-fire decision.
  const std::uint64_t site =
      mix64(decision_hash(plan_.seed, Kind::kWeightFlip, index) ^
            0xc0ffee5eedull);
  Corruption corruption;
  corruption.offset = site % region_bytes;
  corruption.bit = static_cast<std::uint8_t>((site >> 56) & 7);
  return corruption;
}

std::uint64_t Injector::decisions(Kind kind) const {
  return next_index_[static_cast<std::size_t>(kind)].load(
      std::memory_order_relaxed);
}

std::uint64_t Injector::injected(Kind kind) const {
  return injected_[static_cast<std::size_t>(kind)].load(
      std::memory_order_relaxed);
}

std::uint64_t Injector::total_injected() const {
  std::uint64_t total = 0;
  for (const auto& count : injected_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace nvsoc::fault
