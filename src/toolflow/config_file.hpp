// Configuration-file generation (Fig. 1, step 2).
//
// The VP log is processed into a sequence of register commands:
//   * CSB writes  -> write_reg commands (target address, data value)
//   * CSB reads   -> read_reg commands storing the *expected* value
// The command list is the "configuration file" that subsequently becomes
// RISC-V assembly. Both the structured path (from VpTrace records) and the
// paper's textual path (grepping `nvdla.csb_adaptor` lines from the log,
// exactly like the released Python script) are implemented.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "vp/virtual_platform.hpp"

namespace nvsoc::toolflow {

struct ConfigCommand {
  bool is_write = false;
  Addr addr = 0;
  /// Write data, or the expected value for read_reg commands.
  std::uint32_t data = 0;
};

class ConfigFile {
 public:
  std::vector<ConfigCommand> commands;

  std::size_t write_count() const;
  std::size_t read_count() const;

  /// Build from the structured VP trace.
  static ConfigFile from_trace(const vp::VpTrace& trace);

  /// Build from a textual VP log: keeps lines containing the keyword
  /// `nvdla.csb_adaptor`, classifying each by its iswrite flag.
  static ConfigFile from_log_text(const std::string& log_text);

  /// Textual configuration-file format:
  ///   write_reg <addr> <data>
  ///   read_reg <addr> <expected>
  std::string to_text() const;
  static ConfigFile from_text(const std::string& text);
};

/// Weight extraction from a textual VP log (Fig. 1, step 3, as in the
/// paper's script): keep `nvdla.dbb_adaptor` read lines, delete duplicate
/// address entries retaining the first occurrence.
vp::WeightFile weights_from_log_text(const std::string& log_text);

}  // namespace nvsoc::toolflow
