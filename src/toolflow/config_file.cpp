#include "toolflow/config_file.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/interval_set.hpp"
#include "common/strfmt.hpp"

namespace nvsoc::toolflow {

std::size_t ConfigFile::write_count() const {
  return static_cast<std::size_t>(
      std::count_if(commands.begin(), commands.end(),
                    [](const ConfigCommand& c) { return c.is_write; }));
}

std::size_t ConfigFile::read_count() const {
  return commands.size() - write_count();
}

ConfigFile ConfigFile::from_trace(const vp::VpTrace& trace) {
  ConfigFile file;
  file.commands.reserve(trace.csb.size());
  for (const auto& r : trace.csb) {
    file.commands.push_back({r.is_write, r.addr, r.data});
  }
  return file;
}

namespace {

/// Extract the value of `key=0x...` or `key=N` from a log line.
std::optional<std::uint64_t> field(const std::string& line,
                                   const std::string& key) {
  const std::string needle = key + "=";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(start, &end, 0);
  if (end == start) return std::nullopt;
  return value;
}

}  // namespace

ConfigFile ConfigFile::from_log_text(const std::string& log_text) {
  ConfigFile file;
  std::istringstream in(log_text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("nvdla.csb_adaptor") == std::string::npos) continue;
    const auto addr = field(line, "addr");
    const auto data = field(line, "data");
    const auto iswrite = field(line, "iswrite");
    if (!addr || !data || !iswrite) {
      throw std::runtime_error("malformed csb_adaptor line: " + line);
    }
    file.commands.push_back({*iswrite != 0, *addr,
                             static_cast<std::uint32_t>(*data)});
  }
  return file;
}

std::string ConfigFile::to_text() const {
  std::ostringstream os;
  os << "# nvsoc configuration file: register command sequence\n";
  for (const auto& c : commands) {
    os << strfmt("{} 0x{:08x} 0x{:08x}\n", c.is_write ? "write_reg" : "read_reg",
                 c.addr, c.data);
  }
  return os.str();
}

ConfigFile ConfigFile::from_text(const std::string& text) {
  ConfigFile file;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string op;
    std::string addr_s, data_s;
    if (!(ls >> op >> addr_s >> data_s)) {
      throw std::runtime_error("bad config line: " + line);
    }
    ConfigCommand cmd;
    if (op == "write_reg") {
      cmd.is_write = true;
    } else if (op == "read_reg") {
      cmd.is_write = false;
    } else {
      throw std::runtime_error("unknown config command: " + op);
    }
    cmd.addr = std::stoull(addr_s, nullptr, 0);
    cmd.data = static_cast<std::uint32_t>(std::stoull(data_s, nullptr, 0));
    file.commands.push_back(cmd);
  }
  return file;
}

vp::WeightFile weights_from_log_text(const std::string& log_text) {
  vp::WeightFile wf;
  IntervalSet seen;
  std::istringstream in(log_text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("nvdla.dbb_adaptor") == std::string::npos) continue;
    const auto addr = field(line, "addr");
    const auto len = field(line, "len");
    const auto iswrite = field(line, "iswrite");
    if (!addr || !len || !iswrite) {
      throw std::runtime_error("malformed dbb_adaptor line: " + line);
    }
    if (*iswrite != 0) continue;  // reads are the memory fetches
    const auto data_pos = line.find("data=");
    if (data_pos == std::string::npos) {
      throw std::runtime_error("dbb_adaptor read line lacks payload: " + line);
    }
    const std::string hex = line.substr(data_pos + 5);
    if (hex.size() < 2 * *len) {
      throw std::runtime_error("dbb_adaptor payload shorter than len");
    }
    // Duplicate address entries are deleted, retaining the first occurrence
    // (those carry the original weights).
    for (const auto& [begin, end] : seen.gaps(*addr, *addr + *len)) {
      vp::WeightFile::Chunk chunk;
      chunk.addr = begin;
      chunk.bytes.reserve(end - begin);
      for (std::uint64_t b = begin; b < end; ++b) {
        const std::size_t o = static_cast<std::size_t>(b - *addr) * 2;
        const auto nibble = [&](char c) -> std::uint8_t {
          if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
          if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
          if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
          throw std::runtime_error("bad hex in dbb payload");
        };
        chunk.bytes.push_back(
            static_cast<std::uint8_t>((nibble(hex[o]) << 4) | nibble(hex[o + 1])));
      }
      wf.chunks.push_back(std::move(chunk));
      seen.insert(begin, end);
    }
  }
  return wf;
}

}  // namespace nvsoc::toolflow
