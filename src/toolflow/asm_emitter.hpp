// Configuration-file -> RISC-V assembly conversion (Fig. 1, step 2b).
//
// Each write_reg becomes a load-immediate + store to the memory-mapped
// NVDLA register; each read_reg becomes a polling loop that spins until the
// register matches the expected value recorded in the trace (the interrupt
// status reads are the layer-completion synchronisation points of the
// bare-metal program). The program ends with ebreak.
//
// The generated source assembles with src/riscv's assembler into the .mem
// image loaded into the SoC's program memory — the complete substitute for
// the Linux-kernel driver stack.
#pragma once

#include <string>

#include "riscv/assembler.hpp"
#include "toolflow/config_file.hpp"

namespace nvsoc::toolflow {

/// How the generated program waits for NVDLA layer completion.
enum class WaitMode {
  /// Busy-poll the register until it matches the expected value (the
  /// paper's flow).
  kPoll,
  /// Sleep in WFI until the NVDLA interrupt line wakes the core, then
  /// check the register once (extension: lower switching activity on the
  /// CSB path while the accelerator runs).
  kInterrupt,
};

struct AsmOptions {
  /// CPU-visible base address of the NVDLA register space (the paper's map
  /// places it at 0x0, so CSB offsets are CPU addresses directly).
  Addr nvdla_base = 0x0;
  /// Insert a comment with the symbolic register name next to each command.
  bool annotate = true;
  WaitMode wait_mode = WaitMode::kPoll;
};

struct BareMetalProgram {
  std::string assembly;       ///< generated .s text
  rv::AssembledImage image;   ///< assembled machine code
  std::string mem_text;       ///< Vivado .mem rendering of the image
  std::size_t poll_loops = 0; ///< number of read_reg polling loops emitted
  /// Wait mode the program was generated with — baked into the machine
  /// code, so runtime backends can check it against the requested flow.
  WaitMode wait_mode = WaitMode::kPoll;
};

/// Emit assembly text for a configuration file.
std::string emit_assembly(const ConfigFile& config, const AsmOptions& options);

/// Emit and assemble in one step.
BareMetalProgram generate_program(const ConfigFile& config,
                                  const AsmOptions& options = {});

}  // namespace nvsoc::toolflow
