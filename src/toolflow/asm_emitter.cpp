#include "toolflow/asm_emitter.hpp"

#include <sstream>

#include "common/strfmt.hpp"
#include "nvdla/regmap.hpp"

namespace nvsoc::toolflow {

std::string emit_assembly(const ConfigFile& config,
                          const AsmOptions& options) {
  std::ostringstream os;
  os << "# Bare-metal NVDLA control program, generated from a VP trace.\n";
  os << "# " << config.write_count() << " register writes, "
     << config.read_count() << " polled reads.\n";
  os << strfmt(".equ NVDLA_BASE, 0x{:x}\n", options.nvdla_base);
  os << ".text\n";
  os << "start:\n";

  std::size_t poll_index = 0;
  for (const auto& cmd : config.commands) {
    const Addr cpu_addr = options.nvdla_base + cmd.addr;
    if (options.annotate) {
      os << strfmt("    # {} {} = 0x{:08x}\n",
                   cmd.is_write ? "write" : "poll ",
                   nvdla::register_name(cmd.addr), cmd.data);
    }
    if (cmd.is_write) {
      os << strfmt("    li t0, 0x{:x}\n", cpu_addr);
      os << strfmt("    li t1, 0x{:x}\n", cmd.data);
      os << "    sw t1, 0(t0)\n";
    } else if (options.wait_mode == WaitMode::kInterrupt) {
      // Sleep until the NVDLA IRQ wakes the core, then verify the status;
      // a spurious wake (masked or already-cleared source) sleeps again.
      os << strfmt("    li t0, 0x{:x}\n", cpu_addr);
      os << strfmt("    li t1, 0x{:x}\n", cmd.data);
      os << strfmt("wait_{}:\n", poll_index);
      os << "    wfi\n";
      os << "    lw t2, 0(t0)\n";
      os << strfmt("    bne t2, t1, wait_{}\n", poll_index);
      ++poll_index;
    } else {
      os << strfmt("    li t0, 0x{:x}\n", cpu_addr);
      os << strfmt("    li t1, 0x{:x}\n", cmd.data);
      os << strfmt("poll_{}:\n", poll_index);
      os << "    lw t2, 0(t0)\n";
      os << strfmt("    bne t2, t1, poll_{}\n", poll_index);
      ++poll_index;
    }
  }
  os << "    # end of configuration sequence\n";
  os << "    ebreak\n";
  return os.str();
}

BareMetalProgram generate_program(const ConfigFile& config,
                                  const AsmOptions& options) {
  BareMetalProgram program;
  program.assembly = emit_assembly(config, options);
  rv::Assembler assembler;
  program.image = assembler.assemble(program.assembly);
  program.mem_text = program.image.to_mem_text();
  program.poll_loops = config.read_count();
  program.wait_mode = options.wait_mode;
  return program;
}

}  // namespace nvsoc::toolflow
