// Kernel-mode-driver equivalent: programs a compiled Loadable into the
// NVDLA engine over the CSB, hardware layer by hardware layer, using the
// ping-pong register groups and the GLB interrupt protocol.
//
// This is the software the paper *replaces* on the target (where generated
// bare-metal assembly performs the same register sequence); here it runs
// inside the virtual platform to produce the reference execution and the
// CSB/DBB traces the toolflow converts. Keeping one canonical programming
// sequence guarantees the VP trace and the SoC-side assembly agree.
#pragma once

#include "bus/bus_types.hpp"
#include "compiler/loadable.hpp"
#include "nvdla/engine.hpp"

namespace nvsoc::vp {

struct KmdStats {
  std::uint64_t reg_writes = 0;
  std::uint64_t reg_reads = 0;
  std::uint64_t hw_layers = 0;
};

class KernelDriver {
 public:
  /// `csb` is the register path (possibly wrapped by a trace recorder);
  /// `engine` is consulted only to advance virtual time to op completion
  /// (the VP-scheduler role QEMU+SystemC play in the real platform).
  KernelDriver(CsbTarget& csb, const nvdla::Nvdla& engine)
      : csb_(csb), engine_(engine) {}

  /// Execute all hardware layers; returns the cycle after the last
  /// interrupt was acknowledged.
  Cycle run(const compiler::Loadable& loadable, Cycle start);

  const KmdStats& stats() const { return stats_; }

 private:
  Cycle write_reg(Addr addr, std::uint32_t value, Cycle now);
  std::uint32_t read_reg(Addr addr, Cycle& now);

  Cycle program_conv(const compiler::HwOp& op, unsigned group, Cycle now);
  Cycle program_sdp(const compiler::HwOp& op, unsigned group, Cycle now,
                    bool flying);
  Cycle program_pdp(const compiler::HwOp& op, unsigned group, Cycle now);
  Cycle program_cdp(const compiler::HwOp& op, unsigned group, Cycle now);
  Cycle program_bdma(const compiler::HwOp& op, unsigned group, Cycle now);

  /// Wait for `intr_bits` in GLB INTR_STATUS, then W1C-acknowledge them.
  Cycle wait_and_clear(std::uint32_t intr_bits, Cycle now);

  CsbTarget& csb_;
  const nvdla::Nvdla& engine_;
  KmdStats stats_;
};

}  // namespace nvsoc::vp
