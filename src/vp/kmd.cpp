#include "vp/kmd.hpp"

#include <stdexcept>

#include "common/strfmt.hpp"
#include "nvdla/regmap.hpp"

namespace nvsoc::vp {

using namespace nvsoc::nvdla;
using compiler::HwOp;
using compiler::HwOpKind;

namespace {

std::uint32_t precision_bit(Precision p) {
  return p == Precision::kFp16 ? 1u : 0u;
}

}  // namespace

Cycle KernelDriver::write_reg(Addr addr, std::uint32_t value, Cycle now) {
  const CsbResponse rsp =
      csb_.csb_access({.addr = addr, .is_write = true, .wdata = value,
                       .start = now});
  if (!rsp.status.is_ok()) {
    // Preserve the typed code (kDeadlineExceeded for an injected watchdog
    // timeout, kUnavailable for a transient error response, kBusError for
    // a structural decode fault) instead of collapsing into runtime_error.
    throw StatusError(rsp.status.code(),
                      strfmt("KMD write_reg {:#x}: {}", addr,
                             rsp.status.message()));
  }
  ++stats_.reg_writes;
  return rsp.complete;
}

std::uint32_t KernelDriver::read_reg(Addr addr, Cycle& now) {
  const CsbResponse rsp = csb_.csb_access(
      {.addr = addr, .is_write = false, .wdata = 0, .start = now});
  if (!rsp.status.is_ok()) {
    throw StatusError(rsp.status.code(),
                      strfmt("KMD read_reg {:#x}: {}", addr,
                             rsp.status.message()));
  }
  ++stats_.reg_reads;
  now = rsp.complete;
  return rsp.rdata;
}

Cycle KernelDriver::wait_and_clear(std::uint32_t intr_bits, Cycle now) {
  // The VP scheduler advances virtual time until the engine raises the
  // interrupt, then the driver reads the status (this read, with its
  // expected value, is what the trace-to-assembly flow turns into a
  // polling loop on the bare-metal side). The poll is *bounded*: an engine
  // that never raises the expected bits (a wedged pipeline, a lost
  // interrupt) exhausts the cycle budget and surfaces kDeadlineExceeded
  // instead of spinning or asserting.
  constexpr unsigned kMaxPolls = 64;
  constexpr Cycle kPollInterval = 1024;
  for (unsigned poll = 0; poll < kMaxPolls; ++poll) {
    if (const auto next = engine_.next_completion_after(now)) {
      now = std::max(now, *next);
    }
    const std::uint32_t status =
        read_reg(unit_base(Unit::kGlb) + glb::kIntrStatus, now);
    if ((status & intr_bits) == intr_bits) {
      return write_reg(unit_base(Unit::kGlb) + glb::kIntrStatus, status, now);
    }
    now += kPollInterval;
  }
  throw StatusError(
      StatusCode::kDeadlineExceeded,
      strfmt("KMD poll budget exhausted waiting for intr bits {:#x} "
             "({} polls x {} cycles)",
             intr_bits, kMaxPolls, kPollInterval));
}

Cycle KernelDriver::program_conv(const HwOp& op, unsigned group, Cycle now) {
  const auto& c = op.conv;

  // CDMA
  const Addr cdma_base = unit_base(Unit::kCdma);
  now = write_reg(cdma_base + ctrl::kPointer, group, now);
  now = write_reg(cdma_base + cdma::kDatainFormat,
                  precision_bit(c.precision), now);
  now = write_reg(cdma_base + cdma::kDatainSize0,
                  c.input.dims.w | (c.input.dims.h << 16), now);
  now = write_reg(cdma_base + cdma::kDatainSize1, c.input.dims.c, now);
  now = write_reg(cdma_base + cdma::kDainAddr,
                  static_cast<std::uint32_t>(c.input.base), now);
  now = write_reg(cdma_base + cdma::kDainLineStride, c.input.line_stride, now);
  now = write_reg(cdma_base + cdma::kDainSurfStride, c.input.surf_stride, now);
  now = write_reg(cdma_base + cdma::kWeightAddr,
                  static_cast<std::uint32_t>(c.weight_addr), now);
  now = write_reg(cdma_base + cdma::kWeightBytes, c.weight_bytes, now);
  now = write_reg(cdma_base + cdma::kZeroPadding,
                  c.pad_left | (c.pad_top << 8) | (c.pad_right << 16) |
                      (c.pad_bottom << 24),
                  now);
  now = write_reg(cdma_base + cdma::kConvStride,
                  c.stride_x | (c.stride_y << 16), now);
  now = write_reg(cdma_base + cdma::kPadValue,
                  static_cast<std::uint32_t>(c.pad_value), now);

  // CSC
  const Addr csc_base = unit_base(Unit::kCsc);
  now = write_reg(csc_base + ctrl::kPointer, group, now);
  now = write_reg(csc_base + csc::kKernelSize,
                  c.kernel_w | (c.kernel_h << 16), now);
  now = write_reg(csc_base + csc::kKernelChannels, c.kernel_c, now);
  now = write_reg(csc_base + csc::kKernelNumber, c.kernel_k, now);
  now = write_reg(csc_base + csc::kKernelGroups, c.groups, now);

  // CMAC
  const Addr cmac_base = unit_base(Unit::kCmac);
  now = write_reg(cmac_base + ctrl::kPointer, group, now);
  now = write_reg(cmac_base + cmac::kMiscCfg, precision_bit(c.precision),
                  now);

  // CACC
  const Addr cacc_base = unit_base(Unit::kCacc);
  now = write_reg(cacc_base + ctrl::kPointer, group, now);
  now = write_reg(cacc_base + cacc::kDataoutSize0, c.out_w | (c.out_h << 16),
                  now);
  now = write_reg(cacc_base + cacc::kDataoutSize1, c.kernel_k, now);
  now = write_reg(cacc_base + cacc::kClipTruncate, 0, now);

  // SDP (+RDMA) as the on-the-fly tail.
  now = program_sdp(op, group, now, /*flying=*/true);

  // Enables: pipeline head to tail; the launch happens at the SDP enable.
  now = write_reg(cdma_base + ctrl::kOpEnable, 1, now);
  now = write_reg(csc_base + ctrl::kOpEnable, 1, now);
  now = write_reg(cmac_base + ctrl::kOpEnable, 1, now);
  now = write_reg(cacc_base + ctrl::kOpEnable, 1, now);
  now = write_reg(unit_base(Unit::kSdp) + ctrl::kOpEnable, 1, now);

  return wait_and_clear(glb::intr_bit(glb::IntrSource::kCacc, group) |
                            glb::intr_bit(glb::IntrSource::kSdp, group),
                        now);
}

Cycle KernelDriver::program_sdp(const HwOp& op, unsigned group, Cycle now,
                                bool flying) {
  const auto& s = op.sdp;

  const Addr rdma_base = unit_base(Unit::kSdpRdma);
  now = write_reg(rdma_base + ctrl::kPointer, group, now);
  now = write_reg(rdma_base + sdp_rdma::kBrdmaAddr,
                  static_cast<std::uint32_t>(s.operand_addr), now);
  now = write_reg(rdma_base + sdp_rdma::kBrdmaLineStride,
                  s.operand_line_stride, now);
  now = write_reg(rdma_base + sdp_rdma::kBrdmaSurfStride,
                  s.operand_surf_stride, now);
  now = write_reg(rdma_base + sdp_rdma::kBrdmaMode,
                  s.operand_per_element ? 1 : 0, now);
  now = write_reg(rdma_base + sdp_rdma::kBrdmaPrecision,
                  precision_bit(s.out_precision), now);
  now = write_reg(rdma_base + sdp_rdma::kBsAddr,
                  static_cast<std::uint32_t>(s.bias_addr), now);

  const Addr sdp_base = unit_base(Unit::kSdp);
  now = write_reg(sdp_base + ctrl::kPointer, group, now);
  now = write_reg(sdp_base + sdp::kCubeWidth, s.dims.w, now);
  now = write_reg(sdp_base + sdp::kCubeHeight, s.dims.h, now);
  now = write_reg(sdp_base + sdp::kCubeChannel, s.dims.c, now);
  now = write_reg(sdp_base + sdp::kSrcBaseAddr,
                  static_cast<std::uint32_t>(s.src.base), now);
  now = write_reg(sdp_base + sdp::kSrcLineStride, s.src.line_stride, now);
  now = write_reg(sdp_base + sdp::kSrcSurfStride, s.src.surf_stride, now);
  now = write_reg(sdp_base + sdp::kDstBaseAddr,
                  static_cast<std::uint32_t>(s.dst.base), now);
  now = write_reg(sdp_base + sdp::kDstLineStride, s.dst.line_stride, now);
  now = write_reg(sdp_base + sdp::kDstSurfStride, s.dst.surf_stride, now);
  now = write_reg(sdp_base + sdp::kOpCfg,
                  (s.bias_enable ? 1u : 0u) | (s.relu_enable ? 2u : 0u) |
                      (s.eltwise_enable ? 4u : 0u),
                  now);
  now = write_reg(sdp_base + sdp::kCvtScale,
                  static_cast<std::uint32_t>(s.cvt_scale) & 0xFFFF, now);
  now = write_reg(sdp_base + sdp::kCvtShift, s.cvt_shift, now);
  now = write_reg(sdp_base + sdp::kOutPrecision,
                  precision_bit(s.out_precision), now);

  if (!flying) {
    now = write_reg(sdp_base + ctrl::kOpEnable, 1, now);
    now = wait_and_clear(glb::intr_bit(glb::IntrSource::kSdp, group), now);
  }
  return now;
}

Cycle KernelDriver::program_pdp(const HwOp& op, unsigned group, Cycle now) {
  const auto& p = op.pdp;
  const Addr base = unit_base(Unit::kPdp);
  now = write_reg(base + ctrl::kPointer, group, now);
  now = write_reg(base + pdp::kCubeInWidth, p.src.dims.w, now);
  now = write_reg(base + pdp::kCubeInHeight, p.src.dims.h, now);
  now = write_reg(base + pdp::kCubeInChannel, p.src.dims.c, now);
  now = write_reg(base + pdp::kCubeOutWidth, p.dst.dims.w, now);
  now = write_reg(base + pdp::kCubeOutHeight, p.dst.dims.h, now);
  now = write_reg(base + pdp::kKernelCfg,
                  p.kernel_w | (p.kernel_h << 8) |
                      ((p.average ? pdp::kModeAvg : pdp::kModeMax) << 16) |
                      (p.stride_x << 20) | (p.stride_y << 24),
                  now);
  now = write_reg(base + pdp::kPaddingCfg,
                  p.pad_left | (p.pad_top << 8) | (p.pad_right << 16) |
                      (p.pad_bottom << 24),
                  now);
  now = write_reg(base + pdp::kSrcBaseAddr,
                  static_cast<std::uint32_t>(p.src.base), now);
  now = write_reg(base + pdp::kSrcLineStride, p.src.line_stride, now);
  now = write_reg(base + pdp::kSrcSurfStride, p.src.surf_stride, now);
  now = write_reg(base + pdp::kDstBaseAddr,
                  static_cast<std::uint32_t>(p.dst.base), now);
  now = write_reg(base + pdp::kDstLineStride, p.dst.line_stride, now);
  now = write_reg(base + pdp::kDstSurfStride, p.dst.surf_stride, now);
  now = write_reg(base + pdp::kPrecision, precision_bit(p.precision), now);
  now = write_reg(base + ctrl::kOpEnable, 1, now);
  return wait_and_clear(glb::intr_bit(glb::IntrSource::kPdp, group), now);
}

Cycle KernelDriver::program_cdp(const HwOp& op, unsigned group, Cycle now) {
  const auto& c = op.cdp;
  const Addr base = unit_base(Unit::kCdp);
  now = write_reg(base + ctrl::kPointer, group, now);
  now = write_reg(base + cdp::kCubeWidth, c.src.dims.w, now);
  now = write_reg(base + cdp::kCubeHeight, c.src.dims.h, now);
  now = write_reg(base + cdp::kCubeChannel, c.src.dims.c, now);
  now = write_reg(base + cdp::kSrcBaseAddr,
                  static_cast<std::uint32_t>(c.src.base), now);
  now = write_reg(base + cdp::kSrcLineStride, c.src.line_stride, now);
  now = write_reg(base + cdp::kSrcSurfStride, c.src.surf_stride, now);
  now = write_reg(base + cdp::kDstBaseAddr,
                  static_cast<std::uint32_t>(c.dst.base), now);
  now = write_reg(base + cdp::kDstLineStride, c.dst.line_stride, now);
  now = write_reg(base + cdp::kDstSurfStride, c.dst.surf_stride, now);
  now = write_reg(base + cdp::kLocalSize, c.local_size, now);
  now = write_reg(base + cdp::kAlphaQ16, c.alpha_q16, now);
  now = write_reg(base + cdp::kBetaQ16, c.beta_q16, now);
  now = write_reg(base + cdp::kKQ16, c.k_q16, now);
  now = write_reg(base + cdp::kInScaleQ16, c.in_scale_q16, now);
  now = write_reg(base + cdp::kPrecision, precision_bit(c.precision), now);
  now = write_reg(base + ctrl::kOpEnable, 1, now);
  return wait_and_clear(glb::intr_bit(glb::IntrSource::kCdp, group), now);
}

Cycle KernelDriver::program_bdma(const HwOp& op, unsigned group, Cycle now) {
  const auto& b = op.bdma;
  const Addr base = unit_base(Unit::kBdma);
  now = write_reg(base + ctrl::kPointer, group, now);
  now = write_reg(base + bdma::kSrcAddr,
                  static_cast<std::uint32_t>(b.src_addr), now);
  now = write_reg(base + bdma::kDstAddr,
                  static_cast<std::uint32_t>(b.dst_addr), now);
  now = write_reg(base + bdma::kLineSize, b.line_size, now);
  now = write_reg(base + bdma::kLineRepeat, b.line_repeat, now);
  now = write_reg(base + bdma::kSrcStride, b.src_stride, now);
  now = write_reg(base + bdma::kDstStride, b.dst_stride, now);
  now = write_reg(base + ctrl::kOpEnable, 1, now);
  return wait_and_clear(glb::intr_bit(glb::IntrSource::kBdma, group), now);
}

Cycle KernelDriver::run(const compiler::Loadable& loadable, Cycle start) {
  Cycle now = start;
  // Unmask all interrupt sources once up front.
  now = write_reg(unit_base(Unit::kGlb) + glb::kIntrMask, 0, now);

  unsigned layer_index = 0;
  for (const auto& op : loadable.ops) {
    const unsigned group = layer_index % nvdla::kNumGroups;
    switch (op.kind) {
      case HwOpKind::kConv:
        now = program_conv(op, group, now);
        break;
      case HwOpKind::kSdp:
        now = program_sdp(op, group, now, /*flying=*/false);
        break;
      case HwOpKind::kPdp:
        now = program_pdp(op, group, now);
        break;
      case HwOpKind::kCdp:
        now = program_cdp(op, group, now);
        break;
      case HwOpKind::kBdma:
        now = program_bdma(op, group, now);
        break;
    }
    ++layer_index;
    ++stats_.hw_layers;
  }
  return now;
}

}  // namespace nvsoc::vp
