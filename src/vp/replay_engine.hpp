// Functional replay engine over the VP memory model.
//
// Replays a recorded op schedule (nvdla/replay.hpp) for a new input image:
// preloads a fresh DRAM with the loadable's parameters and the packed
// image — exactly the VP's preload — then executes the functional op
// pipeline in recorded order through the zero-time backdoor. No kernel
// driver, no CSB programming, no trace or weight-file capture, no bus
// timing: the output cube is bit-identical to a full VirtualPlatform::run
// on the same image (the kernels and the byte movement are shared), at a
// small fraction of the cost. Cycle counts are the recorded schedule's —
// they are input-independent, so the caller reports them unchanged.
#pragma once

#include <span>
#include <vector>

#include "compiler/loadable.hpp"
#include "nvdla/config.hpp"
#include "nvdla/replay.hpp"

namespace nvsoc::vp {

class ReplayEngine {
 public:
  ReplayEngine(nvdla::NvdlaConfig config, const compiler::Loadable& loadable);

  /// Replay `ops` (launch order) for `image`; returns the decoded network
  /// output, bit-identical to a full VP run on the same image.
  std::vector<float> run(std::span<const nvdla::ReplayOp> ops,
                         std::span<const float> image);

 private:
  nvdla::NvdlaConfig config_;
  const compiler::Loadable& loadable_;
};

}  // namespace nvsoc::vp
