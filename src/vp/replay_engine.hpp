// Functional replay engine over the VP memory model, with reusable
// per-worker arenas.
//
// Replays a recorded op schedule (nvdla/replay.hpp) for a new input image:
// an arena holds the loadable's parameters preloaded into a sparse paged
// memory — exactly the VP's preload — and the engine executes the
// functional op pipeline in recorded order through the zero-time backdoor.
// No kernel driver, no CSB programming, no trace or weight-file capture,
// no bus timing: the output cube is bit-identical to a full
// VirtualPlatform::run on the same image (the kernels and the byte
// movement are shared), at a small fraction of the cost. Cycle counts are
// the recorded schedule's — they are input-independent, so the caller
// reports them unchanged.
//
// The engine is session-lifetime and thread-safe: each concurrently
// replaying worker checks a private arena out of the engine's pool (built
// on first use, so the steady state holds one arena per worker) and checks
// it back in afterwards. Between images an arena is *reset*, not rebuilt:
// every page the previous replay dirtied is restored to the post-preload
// baseline (weight bytes back in place, everything else back to zero) and
// only the new packed input is written — eliminating the per-image sparse
// allocation and multi-MB weight-blob copy of a from-scratch arena.
// Bit-exactness is preserved by construction: after a reset the arena is
// byte-identical to a freshly preloaded one.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "compiler/loadable.hpp"
#include "nvdla/config.hpp"
#include "nvdla/replay.hpp"

namespace nvsoc::vp {

class ReplayEngine {
 public:
  explicit ReplayEngine(nvdla::NvdlaConfig config);
  ~ReplayEngine();

  ReplayEngine(const ReplayEngine&) = delete;
  ReplayEngine& operator=(const ReplayEngine&) = delete;

  /// Replay `ops` (launch order) for `image`; returns the decoded network
  /// output, bit-identical to a full VP run on the same image. Thread-safe;
  /// concurrent callers replay on distinct arenas. Every call against one
  /// engine must pass the same loadable (the arenas are preloaded with its
  /// weight blob) — a different arena layout throws kInvalidArgument-style
  /// std::invalid_argument.
  std::vector<float> run(const compiler::Loadable& loadable,
                         std::span<const nvdla::ReplayOp> ops,
                         std::span<const float> image);

  /// How many arenas this engine has built — at most one per worker that
  /// ever replayed concurrently, regardless of how many images ran.
  std::uint32_t arenas_built() const {
    return arenas_built_.load(std::memory_order_relaxed);
  }
  /// How many images this engine has replayed (across all arenas).
  std::uint64_t images_replayed() const {
    return images_replayed_.load(std::memory_order_relaxed);
  }

 private:
  class Arena;

  Arena* acquire(const compiler::Loadable& loadable);
  void release(Arena* arena);

  nvdla::NvdlaConfig config_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Arena>> arenas_;  ///< all ever built
  std::vector<Arena*> free_;                    ///< checked-in, ready to reset
  std::atomic<std::uint32_t> arenas_built_{0};
  std::atomic<std::uint64_t> images_replayed_{0};
};

}  // namespace nvsoc::vp
