// Functional replay engine over the VP memory model, with reusable
// per-worker arenas.
//
// Replays a recorded op schedule (nvdla/replay.hpp) for a new input image:
// an arena holds the loadable's parameters preloaded into a sparse paged
// memory — exactly the VP's preload — and the engine executes the
// functional op pipeline in recorded order through the zero-time backdoor.
// No kernel driver, no CSB programming, no trace or weight-file capture,
// no bus timing: the output cube is bit-identical to a full
// VirtualPlatform::run on the same image (the kernels and the byte
// movement are shared), at a small fraction of the cost. Cycle counts are
// the recorded schedule's — they are input-independent, so the caller
// reports them unchanged.
//
// The engine is session-lifetime and thread-safe: each concurrently
// replaying worker checks a private arena out of the engine's pool (built
// on first use, so the steady state holds one arena per worker) and checks
// it back in afterwards. Between images an arena is *reset*, not rebuilt:
// every page the previous replay dirtied is restored to the post-preload
// baseline (weight bytes back in place, everything else back to zero) and
// only the new packed input is written — eliminating the per-image sparse
// allocation and multi-MB weight-blob copy of a from-scratch arena.
//
// The reset itself is *surface-aware*: from the recorded op descriptors
// the engine proves (replay_access_ranges + a read-before-write audit)
// which pages the schedule fully rewrites before ever reading — the
// intermediate/output surfaces — and skips restoring those "resident"
// pages entirely; only partially-written pages and pages the plan cannot
// vouch for are memcpy/memset-restored. A schedule whose audit finds a
// read of not-yet-written plan bytes (it never happens for compiled
// networks — ops chain forward) falls back to the full dirty-page reset.
// Bit-exactness is preserved by construction either way: every byte a
// replay reads is baseline, fresh input, or written earlier in that same
// replay.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "compiler/loadable.hpp"
#include "fault/fault.hpp"
#include "nvdla/config.hpp"
#include "nvdla/replay.hpp"

namespace nvsoc::vp {

class ReplayEngine {
 public:
  explicit ReplayEngine(nvdla::NvdlaConfig config);
  ~ReplayEngine();

  ReplayEngine(const ReplayEngine&) = delete;
  ReplayEngine& operator=(const ReplayEngine&) = delete;

  /// Replay `ops` (launch order) for `image`; returns the decoded network
  /// output, bit-identical to a full VP run on the same image. Thread-safe;
  /// concurrent callers replay on distinct arenas. Every call against one
  /// engine must pass the same loadable (the arenas are preloaded with its
  /// weight blob) — a different arena layout throws kInvalidArgument-style
  /// std::invalid_argument.
  ///
  /// `injector` (may be nullptr) arms per-replay fault injection: an
  /// injected replay failure throws StatusError(kUnavailable); an injected
  /// weight bit flip corrupts the checked-out arena's weight region
  /// through the dirty-tracked write path (the next reset restores it) and
  /// the pre-replay integrity check detects it as StatusError(kDataLoss) —
  /// a corrupted arena never produces an answer.
  std::vector<float> run(const compiler::Loadable& loadable,
                         std::span<const nvdla::ReplayOp> ops,
                         std::span<const float> image,
                         fault::Injector* injector = nullptr);

  /// How many arenas this engine has built — at most one per worker that
  /// ever replayed concurrently, regardless of how many images ran.
  std::uint32_t arenas_built() const {
    return arenas_built_.load(std::memory_order_relaxed);
  }
  /// How many images this engine has replayed (across all arenas).
  std::uint64_t images_replayed() const {
    return images_replayed_.load(std::memory_order_relaxed);
  }
  /// Pages actually memcpy/memset-restored across every reset — the cost
  /// the surface-aware plan is there to shrink.
  std::uint64_t pages_restored() const {
    return pages_restored_.load(std::memory_order_relaxed);
  }
  /// Resident pages the current write plan proved self-cleaning (fully
  /// rewritten by the schedule before any read — skipped on every reset).
  std::uint32_t resident_pages() const {
    return resident_pages_.load(std::memory_order_relaxed);
  }
  /// Write plans whose read-before-write audit failed, forcing the full
  /// dirty-page reset (expected 0 for compiled networks).
  std::uint32_t unsafe_plans() const {
    return unsafe_plans_.load(std::memory_order_relaxed);
  }

  /// Bytes currently held by this engine's arenas: allocated pages plus
  /// their baseline snapshots. This is the resident cost a byte-budget
  /// eviction policy reclaims — checked-out arenas are counted too (their
  /// page tallies are atomics, so an in-flight replay growing its arena
  /// never races this walk).
  std::uint64_t resident_bytes() const;

  /// Drop every checked-in arena and return the bytes freed. Arenas
  /// checked out by in-flight replays survive untouched and return to the
  /// pool on release, where a later call can reclaim them; the engine
  /// itself stays valid and rebuilds an arena from the loadable on the
  /// next acquire. Thread-safe.
  std::uint64_t release_free_arenas();

  /// Arenas dropped by release_free_arenas() so far (eviction evidence).
  std::uint32_t arenas_released() const {
    return arenas_released_.load(std::memory_order_relaxed);
  }

  /// Install (nullptr clears) a hook fired after every arena check-in,
  /// outside the engine lock — so the hook may call back into the engine
  /// (resident_bytes, release_free_arenas) or take its own locks. This is
  /// the byte-budget enforcement point that reclaims a replay's *own*
  /// arena growth at arena return rather than on the next request. The
  /// hook must not call run() (check-in would recurse). Thread-safe; an
  /// in-flight check-in may still fire the hook it copied before a
  /// concurrent replacement.
  void set_checkin_hook(std::function<void()> hook);

 private:
  class Arena;
  struct WritePlan;

  Arena* acquire(const compiler::Loadable& loadable);
  void release(Arena* arena);
  /// The cached surface-aware reset plan for `ops` (recomputed when the
  /// schedule identity changes — in practice one schedule per engine).
  std::shared_ptr<const WritePlan> plan_for(
      std::span<const nvdla::ReplayOp> ops);

  nvdla::NvdlaConfig config_;
  mutable Mutex mutex_;
  /// All arenas ever built.
  std::vector<std::unique_ptr<Arena>> arenas_ GUARDED_BY(mutex_);
  /// Checked-in arenas, ready to reset.
  std::vector<Arena*> free_ GUARDED_BY(mutex_);
  /// ops identity of plan_.
  const nvdla::ReplayOp* plan_key_ GUARDED_BY(mutex_) = nullptr;
  std::size_t plan_ops_ GUARDED_BY(mutex_) = 0;
  std::shared_ptr<const WritePlan> plan_ GUARDED_BY(mutex_);
  /// Post-check-in hook (see set_checkin_hook). shared_ptr so release()
  /// can copy it under the lock and invoke it after unlocking.
  std::shared_ptr<const std::function<void()>> checkin_hook_
      GUARDED_BY(mutex_);
  std::atomic<std::uint32_t> arenas_built_{0};
  std::atomic<std::uint32_t> arenas_released_{0};
  std::atomic<std::uint64_t> images_replayed_{0};
  std::atomic<std::uint64_t> pages_restored_{0};
  std::atomic<std::uint32_t> resident_pages_{0};
  std::atomic<std::uint32_t> unsafe_plans_{0};
};

}  // namespace nvsoc::vp
