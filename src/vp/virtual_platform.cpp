#include "vp/virtual_platform.hpp"

#include <algorithm>
#include <sstream>

#include "common/bitutil.hpp"
#include "common/interval_set.hpp"
#include "common/strfmt.hpp"

namespace nvsoc::vp {

using nvdla::Nvdla;

// ---------------------------------------------------------------------------
// VpTrace / WeightFile
// ---------------------------------------------------------------------------

std::string VpTrace::to_log_text(
    const std::vector<std::vector<std::uint8_t>>* dbb_payloads) const {
  std::ostringstream os;
  os << "# NVDLA virtual platform transaction log\n";
  for (const auto& r : csb) {
    os << strfmt("nvdla.csb_adaptor: addr=0x{:08x} data=0x{:08x} iswrite={}\n",
                 r.addr, r.data, r.is_write ? 1 : 0);
  }
  for (std::size_t i = 0; i < dbb.size(); ++i) {
    const auto& r = dbb[i];
    os << strfmt("nvdla.dbb_adaptor: addr=0x{:08x} len={} iswrite={}", r.addr,
                 r.len, r.is_write ? 1 : 0);
    if (dbb_payloads != nullptr && i < dbb_payloads->size() &&
        !(*dbb_payloads)[i].empty()) {
      os << " data=";
      static constexpr char kHex[] = "0123456789abcdef";
      for (const std::uint8_t b : (*dbb_payloads)[i]) {
        os << kHex[b >> 4] << kHex[b & 0xF];
      }
    }
    os << '\n';
  }
  return os.str();
}

std::uint64_t WeightFile::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& chunk : chunks) total += chunk.bytes.size();
  return total;
}

std::vector<std::uint8_t> WeightFile::to_bin() const {
  // Container: [u32 magic][u32 count] then per chunk [u64 addr][u32 len][data].
  std::vector<std::uint8_t> out;
  auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto put64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put32(0x4E57u);  // "WN"
  put32(static_cast<std::uint32_t>(chunks.size()));
  for (const auto& chunk : chunks) {
    put64(chunk.addr);
    put32(static_cast<std::uint32_t>(chunk.bytes.size()));
    out.insert(out.end(), chunk.bytes.begin(), chunk.bytes.end());
  }
  return out;
}

WeightFile WeightFile::from_bin(std::span<const std::uint8_t> bin) {
  std::size_t pos = 0;
  auto get32 = [&]() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bin[pos++]) << (8 * i);
    return v;
  };
  auto get64 = [&]() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bin[pos++]) << (8 * i);
    return v;
  };
  if (bin.size() < 8 || get32() != 0x4E57u) {
    throw std::runtime_error("weight file: bad magic");
  }
  WeightFile wf;
  const std::uint32_t count = get32();
  wf.chunks.resize(count);
  for (auto& chunk : wf.chunks) {
    chunk.addr = get64();
    const std::uint32_t len = get32();
    if (pos + len > bin.size()) {
      throw std::runtime_error("weight file: truncated");
    }
    chunk.bytes.assign(bin.begin() + static_cast<std::ptrdiff_t>(pos),
                       bin.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return wf;
}

void WeightFile::overwrite(Addr base, std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return;
  const Addr end = base + bytes.size();
  std::vector<bool> covered(bytes.size(), false);
  for (auto& chunk : chunks) {
    const Addr chunk_end = chunk.addr + chunk.bytes.size();
    const Addr lo = std::max(base, chunk.addr);
    const Addr hi = std::min(end, chunk_end);
    for (Addr a = lo; a < hi; ++a) {
      chunk.bytes[a - chunk.addr] = bytes[a - base];
      covered[a - base] = true;
    }
  }
  // Bytes no traced fetch ever touched still belong in the preload image:
  // append them as fresh chunks so consumers of the weight file (PS preload,
  // .bin export) see the complete new input surface.
  for (std::size_t i = 0; i < covered.size();) {
    if (covered[i]) { ++i; continue; }
    std::size_t j = i;
    while (j < covered.size() && !covered[j]) ++j;
    Chunk chunk;
    chunk.addr = base + i;
    chunk.bytes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(i),
                       bytes.begin() + static_cast<std::ptrdiff_t>(j));
    chunks.push_back(std::move(chunk));
    i = j;
  }
}

// ---------------------------------------------------------------------------
// VirtualPlatform
// ---------------------------------------------------------------------------

AxiBurstResponse VirtualPlatform::DirectAxiRam::burst(
    const AxiBurstRequest& req) {
  // TLM-style: data moves via the backdoor; latency is bandwidth-limited by
  // the configured DBB width.
  if (req.is_write) {
    dram_.write_bytes(req.addr, req.wdata);
  } else {
    dram_.read_bytes(req.addr, req.rbuf);
  }
  const Cycle beats = ceil_div<Cycle>(req.size_bytes(),
                                      config_.dbb_bytes_per_cycle());
  return {Status::ok(), req.start + 1 + beats};
}

namespace {

/// CSB decorator recording every access with its effective data value.
class RecordingCsb final : public CsbTarget {
 public:
  RecordingCsb(CsbTarget& inner, std::vector<CsbRecord>& out)
      : inner_(inner), out_(out) {}

  CsbResponse csb_access(const CsbRequest& req) override {
    const CsbResponse rsp = inner_.csb_access(req);
    out_.push_back({req.addr, req.is_write ? req.wdata : rsp.rdata,
                    req.is_write});
    return rsp;
  }

 private:
  CsbTarget& inner_;
  std::vector<CsbRecord>& out_;
};

}  // namespace

VirtualPlatform::VirtualPlatform(nvdla::NvdlaConfig config)
    : config_(std::move(config)) {}

VpRunResult VirtualPlatform::run(const compiler::Loadable& loadable,
                                 std::span<const float> image,
                                 bool capture_dbb_payloads) {
  VpRunResult result;
  dbb_payloads_.clear();

  Dram dram(align_up(loadable.arena_end + (1u << 20), 1u << 20));
  DirectAxiRam axi(dram, config_);
  Nvdla engine(config_, axi);
  if (fault_ != nullptr) engine.set_fault_injector(fault_);

  // Preload: parameters then the input image (the paper's weight/image .bin
  // DDR preload, performed by the PS on the board and by the VP here).
  dram.write_bytes(loadable.weight_base, loadable.weight_blob);
  const auto input_bytes = loadable.pack_input(image);
  dram.write_bytes(loadable.input_surface.base, input_bytes);

  // Trace hooks.
  RecordingCsb csb(engine, result.trace.csb);
  IntervalSet written;
  IntervalSet captured;
  engine.set_dbb_observer([&](bool is_write, Addr addr,
                              std::span<const std::uint8_t> data) {
    result.trace.dbb.push_back(
        {addr, static_cast<std::uint32_t>(data.size()), is_write});
    if (capture_dbb_payloads) {
      dbb_payloads_.emplace_back(data.begin(), data.end());
    }
    if (is_write) {
      written.insert(addr, addr + data.size());
      return;
    }
    // Cold reads (never written in this trace) are original weights/input;
    // keep the first occurrence only.
    for (const auto& [begin, end] : written.gaps(addr, addr + data.size())) {
      for (const auto& [cb, ce] : captured.gaps(begin, end)) {
        WeightFile::Chunk chunk;
        chunk.addr = cb;
        chunk.bytes.assign(data.begin() + static_cast<std::ptrdiff_t>(cb - addr),
                           data.begin() + static_cast<std::ptrdiff_t>(ce - addr));
        result.weights.chunks.push_back(std::move(chunk));
        captured.insert(cb, ce);
      }
    }
  });

  engine.set_op_recorder([&](const nvdla::ReplayOp& op) {
    result.replay_ops.push_back(op);
  });

  // Drive the loadable through the kernel driver.
  KernelDriver kmd(csb, engine);
  result.total_cycles = kmd.run(loadable, 0);

  // Harvest the output cube.
  std::vector<std::uint8_t> raw(loadable.output_surface.span_bytes());
  dram.read_bytes(loadable.output_surface.base, raw);
  result.output = loadable.unpack_output(raw);

  result.engine_stats = engine.stats();
  result.op_records = engine.op_records();
  result.kmd_stats = kmd.stats();
  result.dbb_stats = engine.dbb_stats();
  return result;
}

}  // namespace nvsoc::vp
