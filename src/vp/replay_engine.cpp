#include "vp/replay_engine.hpp"

#include <utility>

#include "common/bitutil.hpp"
#include "mem/dram.hpp"

namespace nvsoc::vp {

namespace {

/// Zero-time backdoor view of the VP DRAM for the functional replay.
class DramReplayMemory final : public nvdla::ReplayMemory {
 public:
  explicit DramReplayMemory(Dram& dram) : dram_(dram) {}
  void read(Addr addr, std::span<std::uint8_t> out) const override {
    dram_.read_bytes(addr, out);
  }
  void write(Addr addr, std::span<const std::uint8_t> data) override {
    dram_.write_bytes(addr, data);
  }

 private:
  Dram& dram_;
};

}  // namespace

ReplayEngine::ReplayEngine(nvdla::NvdlaConfig config,
                           const compiler::Loadable& loadable)
    : config_(std::move(config)), loadable_(loadable) {}

std::vector<float> ReplayEngine::run(std::span<const nvdla::ReplayOp> ops,
                                     std::span<const float> image) {
  // Same arena and preload as VirtualPlatform::run: parameters, then the
  // packed input image; intermediate surfaces read back zero until an op
  // writes them, exactly like the sparse VP memory.
  Dram dram(align_up(loadable_.arena_end + (1u << 20), 1u << 20));
  dram.write_bytes(loadable_.weight_base, loadable_.weight_blob);
  const auto input_bytes = loadable_.pack_input(image);
  dram.write_bytes(loadable_.input_surface.base, input_bytes);

  DramReplayMemory mem(dram);
  for (const auto& op : ops) {
    nvdla::replay_op(config_, op, mem);
  }

  std::vector<std::uint8_t> raw(loadable_.output_surface.span_bytes());
  dram.read_bytes(loadable_.output_surface.base, raw);
  return loadable_.unpack_output(raw);
}

}  // namespace nvsoc::vp
