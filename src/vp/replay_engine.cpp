#include "vp/replay_engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/bitutil.hpp"
#include "common/interval_set.hpp"
#include "common/strfmt.hpp"

namespace nvsoc::vp {

namespace {
constexpr std::uint64_t kPageBytes = 4096;
}

// ---------------------------------------------------------------------------
// WritePlan: which pages a schedule provably rewrites before reading
// ---------------------------------------------------------------------------

/// Built once per schedule from the recorded op descriptors. `resident`
/// holds every page fully covered by the schedule's write union *when* the
/// read-before-write audit passes: such a page is rewritten in full on
/// every replay before any op reads it, so the reset can leave its stale
/// bytes in place. A failed audit leaves `resident` empty (full reset).
struct ReplayEngine::WritePlan {
  std::unordered_set<std::uint64_t> resident;
  bool audit_passed = false;

  static WritePlan build(const nvdla::NvdlaConfig& config,
                         std::span<const nvdla::ReplayOp> ops) {
    WritePlan plan;
    IntervalSet writes;
    for (const auto& op : ops) {
      const auto access = nvdla::replay_access_ranges(config, op);
      for (const auto& range : access.writes) {
        writes.insert(range.begin, range.end);
      }
    }

    // Audit, in launch order: every byte an op reads must be baseline
    // state (outside the write union) or already written earlier in the
    // same replay. A read of plan bytes not yet written this replay would
    // observe the previous image's data on a skipped page — if any op does
    // that, no page may be left resident.
    IntervalSet written;
    plan.audit_passed = true;
    for (const auto& op : ops) {
      const auto access = nvdla::replay_access_ranges(config, op);
      for (const auto& range : access.reads) {
        for (const auto& [begin, end] : written.gaps(range.begin, range.end)) {
          if (writes.intersects(begin, end)) {
            plan.audit_passed = false;
            return plan;
          }
        }
      }
      for (const auto& range : access.writes) {
        written.insert(range.begin, range.end);
      }
    }

    // Pages wholly inside one coalesced write interval are rewritten
    // before any read: self-cleaning, no restore needed. Pages a write
    // only clips (the interval's ragged edges) still restore — their
    // remaining bytes belong to neighbours or baseline state.
    for (const auto& [begin, end] : writes.intervals()) {
      const std::uint64_t first = align_up(begin, kPageBytes) / kPageBytes;
      const std::uint64_t last = end / kPageBytes;  // exclusive
      for (std::uint64_t page = first; page < last; ++page) {
        plan.resident.insert(page);
      }
    }
    return plan;
  }
};

// ---------------------------------------------------------------------------
// Arena: sparse paged replay memory with baseline snapshot + dirty tracking
// ---------------------------------------------------------------------------

/// Byte-addressable replay memory mirroring the VP DRAM's backdoor
/// semantics: reads of never-written bytes return zero. Pages dirtied by a
/// replay are tracked so reset() restores exactly the post-preload state
/// (weight bytes for baseline pages, zeros elsewhere) without reallocating
/// or re-copying the weight blob.
class ReplayEngine::Arena final : public nvdla::ReplayMemory {
 public:
  explicit Arena(const compiler::Loadable& loadable)
      : size_(align_up(loadable.arena_end + (1u << 20), 1u << 20)),
        weight_base_(loadable.weight_base),
        weight_bytes_(loadable.weight_blob.size()),
        input_base_(loadable.input_surface.base) {
    // Same preload as VirtualPlatform::run: parameters first; the input
    // image is written per-replay by begin_image.
    write(loadable.weight_base, loadable.weight_blob);
    // Freeze the preload as the baseline reset() restores to.
    for (auto& [index, page] : pages_) {
      auto copy = std::make_unique<std::uint8_t[]>(kPageBytes);
      std::memcpy(copy.get(), page.data.get(), kPageBytes);
      baseline_.emplace(index, std::move(copy));
      page.dirty = false;
    }
    dirty_.clear();
  }

  /// Bytes this arena holds: allocated pages plus their baseline
  /// snapshots. The page tally is an atomic because a checked-out arena
  /// keeps allocating while the engine walks its pool for accounting;
  /// baseline_ is frozen by the constructor and safe to size concurrently.
  std::uint64_t resident_bytes() const {
    return (pages_allocated_.load(std::memory_order_relaxed) +
            baseline_.size()) *
           kPageBytes;
  }

  /// True when `loadable` matches the layout this arena was preloaded for.
  bool matches(const compiler::Loadable& loadable) const {
    return weight_base_ == loadable.weight_base &&
           weight_bytes_ == loadable.weight_blob.size() &&
           input_base_ == loadable.input_surface.base &&
           size_ == align_up(loadable.arena_end + (1u << 20), 1u << 20);
  }

  /// Restore dirtied pages to the post-preload baseline, then stage the
  /// packed input. Pages the plan proves resident (fully rewritten by the
  /// schedule before any read) are skipped — they *stay in the dirty list*,
  /// so a later reset under a different (or no) plan restores them like any
  /// other stale page. Returns how many pages were actually restored.
  std::size_t begin_image(const compiler::Loadable& loadable,
                          std::span<const float> image,
                          const WritePlan* plan) {
    std::size_t restored = 0;
    std::vector<std::uint64_t> still_stale;
    for (const std::uint64_t index : dirty_) {
      if (plan != nullptr && plan->resident.count(index) != 0) {
        still_stale.push_back(index);  // page.dirty stays set
        continue;
      }
      auto& page = pages_.at(index);
      if (const auto base = baseline_.find(index); base != baseline_.end()) {
        std::memcpy(page.data.get(), base->second.get(), kPageBytes);
      } else {
        std::memset(page.data.get(), 0, kPageBytes);
      }
      page.dirty = false;
      ++restored;
    }
    dirty_ = std::move(still_stale);
    write(loadable.input_surface.base, loadable.pack_input(image));
    return restored;
  }

  std::vector<float> read_output(const compiler::Loadable& loadable) const {
    std::vector<std::uint8_t> raw(loadable.output_surface.span_bytes());
    read(loadable.output_surface.base, raw);
    return loadable.unpack_output(raw);
  }

  /// Fault path: flip one bit of the preloaded weight region through the
  /// dirty-tracked write path, so the next reset restores the baseline.
  void corrupt_weight_bit(std::uint64_t offset, std::uint8_t bit) {
    if (weight_bytes_ == 0) return;
    std::uint8_t byte = 0;
    read(weight_base_ + offset, std::span<std::uint8_t>(&byte, 1));
    byte ^= static_cast<std::uint8_t>(1u << bit);
    write(weight_base_ + offset, std::span<const std::uint8_t>(&byte, 1));
  }

  /// True when the arena's weight region matches `blob` bit for bit — the
  /// pre-replay integrity check of fault-armed runs.
  bool weights_match(std::span<const std::uint8_t> blob) const {
    std::vector<std::uint8_t> readback(blob.size());
    read(weight_base_, readback);
    return std::equal(readback.begin(), readback.end(), blob.begin(),
                      blob.end());
  }

  // --- ReplayMemory -------------------------------------------------------
  void read(Addr addr, std::span<std::uint8_t> out) const override {
    bounds_check(addr, out.size());
    std::size_t done = 0;
    while (done < out.size()) {
      const Addr cur = addr + done;
      const std::uint64_t in_page = cur % kPageBytes;
      const std::size_t chunk =
          std::min<std::size_t>(out.size() - done, kPageBytes - in_page);
      const auto it = pages_.find(cur / kPageBytes);
      if (it == pages_.end()) {
        std::memset(out.data() + done, 0, chunk);
      } else {
        std::memcpy(out.data() + done, it->second.data.get() + in_page, chunk);
      }
      done += chunk;
    }
  }

  void write(Addr addr, std::span<const std::uint8_t> data) override {
    bounds_check(addr, data.size());
    std::size_t done = 0;
    while (done < data.size()) {
      const Addr cur = addr + done;
      const std::uint64_t in_page = cur % kPageBytes;
      const std::size_t chunk =
          std::min<std::size_t>(data.size() - done, kPageBytes - in_page);
      Page& page = pages_[cur / kPageBytes];
      if (page.data == nullptr) {
        page.data = std::make_unique<std::uint8_t[]>(kPageBytes);
        std::memset(page.data.get(), 0, kPageBytes);
        pages_allocated_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!page.dirty) {
        page.dirty = true;
        dirty_.push_back(cur / kPageBytes);
      }
      std::memcpy(page.data.get() + in_page, data.data() + done, chunk);
      done += chunk;
    }
  }

 private:
  struct Page {
    std::unique_ptr<std::uint8_t[]> data;
    bool dirty = false;
  };

  void bounds_check(Addr addr, std::size_t count) const {
    if (addr + count > size_) {
      throw std::runtime_error(
          strfmt("replay arena access at {:#x}+{} beyond {:#x}", addr, count,
                 size_));
    }
  }

  std::uint64_t size_;
  Addr weight_base_;
  std::uint64_t weight_bytes_;
  Addr input_base_;
  std::unordered_map<std::uint64_t, Page> pages_;
  /// Post-preload content of the pages the weight preload touched.
  std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>> baseline_;
  std::vector<std::uint64_t> dirty_;  ///< pages written since last reset
  std::atomic<std::uint64_t> pages_allocated_{0};  ///< pages_ entry count
};

// ---------------------------------------------------------------------------
// ReplayEngine
// ---------------------------------------------------------------------------

ReplayEngine::ReplayEngine(nvdla::NvdlaConfig config)
    : config_(std::move(config)) {}

ReplayEngine::~ReplayEngine() = default;

ReplayEngine::Arena* ReplayEngine::acquire(
    const compiler::Loadable& loadable) {
  {
    MutexLock lock(mutex_);
    if (!free_.empty()) {
      Arena* arena = free_.back();
      // Check before popping: a mismatching loadable must not strand the
      // checked-in arena on the error path.
      if (!arena->matches(loadable)) {
        throw std::invalid_argument(
            "ReplayEngine::run: loadable does not match the arena layout "
            "this engine was built for (one engine serves one compiled "
            "network)");
      }
      free_.pop_back();
      return arena;
    }
  }
  // Build outside the lock: arena construction copies the weight blob and
  // must not serialize concurrent replays that already hold arenas.
  auto built = std::make_unique<Arena>(loadable);
  Arena* arena = built.get();
  {
    MutexLock lock(mutex_);
    arenas_.push_back(std::move(built));
  }
  arenas_built_.fetch_add(1, std::memory_order_relaxed);
  return arena;
}

void ReplayEngine::release(Arena* arena) {
  std::shared_ptr<const std::function<void()>> hook;
  {
    MutexLock lock(mutex_);
    free_.push_back(arena);
    hook = checkin_hook_;
  }
  // Fire outside the lock: the hook is allowed to walk resident_bytes()
  // or call release_free_arenas() on this very engine.
  if (hook != nullptr && *hook) (*hook)();
}

void ReplayEngine::set_checkin_hook(std::function<void()> hook) {
  auto shared = hook ? std::make_shared<const std::function<void()>>(
                           std::move(hook))
                     : nullptr;
  MutexLock lock(mutex_);
  checkin_hook_ = std::move(shared);
}

std::uint64_t ReplayEngine::resident_bytes() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& arena : arenas_) total += arena->resident_bytes();
  return total;
}

std::uint64_t ReplayEngine::release_free_arenas() {
  MutexLock lock(mutex_);
  if (free_.empty()) return 0;
  const std::unordered_set<Arena*> releasing(free_.begin(), free_.end());
  std::uint64_t freed = 0;
  const auto keep_end = std::remove_if(
      arenas_.begin(), arenas_.end(),
      [&](const std::unique_ptr<Arena>& arena) {
        if (releasing.count(arena.get()) == 0) return false;  // checked out
        freed += arena->resident_bytes();
        return true;
      });
  arenas_released_.fetch_add(
      static_cast<std::uint32_t>(arenas_.end() - keep_end),
      std::memory_order_relaxed);
  arenas_.erase(keep_end, arenas_.end());
  free_.clear();
  return freed;
}

std::shared_ptr<const ReplayEngine::WritePlan> ReplayEngine::plan_for(
    std::span<const nvdla::ReplayOp> ops) {
  {
    MutexLock lock(mutex_);
    if (plan_ != nullptr && plan_key_ == ops.data() &&
        plan_ops_ == ops.size()) {
      return plan_;
    }
  }
  // Build outside the lock — the audit walks every descriptor. A racing
  // rebuild of the same schedule is harmless (identical plans; last one
  // cached).
  auto plan = std::make_shared<const WritePlan>(WritePlan::build(config_, ops));
  if (!plan->audit_passed) {
    unsafe_plans_.fetch_add(1, std::memory_order_relaxed);
  }
  MutexLock lock(mutex_);
  plan_key_ = ops.data();
  plan_ops_ = ops.size();
  plan_ = plan;
  resident_pages_.store(static_cast<std::uint32_t>(plan->resident.size()),
                        std::memory_order_relaxed);
  return plan;
}

std::vector<float> ReplayEngine::run(const compiler::Loadable& loadable,
                                     std::span<const nvdla::ReplayOp> ops,
                                     std::span<const float> image,
                                     fault::Injector* injector) {
  const std::shared_ptr<const WritePlan> plan = plan_for(ops);
  Arena* arena = acquire(loadable);
  try {
    pages_restored_.fetch_add(arena->begin_image(loadable, image, plan.get()),
                              std::memory_order_relaxed);
    if (injector != nullptr) {
      if (injector->fire(fault::Kind::kReplayFail)) {
        throw StatusError(StatusCode::kUnavailable,
                          "injected replay-engine failure");
      }
      if (const auto corruption =
              injector->fire_corruption(loadable.weight_blob.size())) {
        arena->corrupt_weight_bit(corruption->offset, corruption->bit);
      }
      // Checkout integrity gate: only runs when flips are armed (the
      // fault-free path never pays the weight-blob compare).
      if (injector->plan().at(fault::Kind::kWeightFlip) > 0 &&
          !arena->weights_match(loadable.weight_blob)) {
        throw StatusError(StatusCode::kDataLoss,
                          "replay arena weight corruption detected at "
                          "checkout — refusing to serve from a damaged "
                          "arena");
      }
    }
    for (const auto& op : ops) {
      nvdla::replay_op(config_, op, *arena);
    }
    std::vector<float> output = arena->read_output(loadable);
    images_replayed_.fetch_add(1, std::memory_order_relaxed);
    release(arena);
    return output;
  } catch (...) {
    // The arena's dirty tracking survives the failure: resident pages stay
    // listed as stale, so the next begin_image — under whatever plan —
    // restores or re-proves them as usual.
    release(arena);
    throw;
  }
}

}  // namespace nvsoc::vp
