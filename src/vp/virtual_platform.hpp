// NVDLA virtual platform (Fig. 3).
//
// Stands in for the QEMU + SystemC co-simulation of the NVDLA release: it
// owns a memory model and an NVDLA engine, runs the kernel driver over a
// compiled loadable, and records the two interface-level transaction
// streams the paper's toolflow consumes:
//   * nvdla.csb_adaptor — every register read/write (with read data), and
//   * nvdla.dbb_adaptor — every data-backbone burst.
// Traces are captured structurally (exact, fast) and can be rendered into
// the textual VP-log format for parity with the paper's Python scripts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/loadable.hpp"
#include "mem/dram.hpp"
#include "nvdla/engine.hpp"
#include "vp/kmd.hpp"

namespace nvsoc::vp {

struct CsbRecord {
  Addr addr = 0;
  std::uint32_t data = 0;  ///< write data, or read response data
  bool is_write = false;

  bool operator==(const CsbRecord&) const = default;
};

struct DbbRecord {
  Addr addr = 0;
  std::uint32_t len = 0;
  bool is_write = false;
};

struct VpTrace {
  std::vector<CsbRecord> csb;
  std::vector<DbbRecord> dbb;

  /// Render in the VP-log format the paper's scripts grep:
  ///   nvdla.csb_adaptor: addr=0x... data=0x... iswrite=N
  ///   nvdla.dbb_adaptor: addr=0x... len=N iswrite=N [data=<hex>]
  /// DBB payloads are only included when `dbb_payloads` is supplied
  /// (indexed like `dbb`) — they make the log large, as on the real VP.
  std::string to_log_text(
      const std::vector<std::vector<std::uint8_t>>* dbb_payloads
          = nullptr) const;
};

/// The preloadable DRAM image extracted from a VP run: every byte the
/// engine fetched before anything wrote it (weights, bias tables and the
/// input image) — the paper's "weight file", first occurrence kept.
struct WeightFile {
  struct Chunk {
    Addr addr = 0;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Chunk> chunks;

  std::uint64_t total_bytes() const;
  /// .bin container round-trip (what the Zynq PS loads into DDR).
  std::vector<std::uint8_t> to_bin() const;
  static WeightFile from_bin(std::span<const std::uint8_t> bin);

  /// Rewrite the bytes of [base, base + bytes.size()) wherever existing
  /// chunks cover that range, appending any uncovered remainder as a new
  /// chunk. This is the repack-input fast path: a new image is substituted
  /// into the preload image (the input surface) without re-running the
  /// virtual platform that captured the chunks.
  void overwrite(Addr base, std::span<const std::uint8_t> bytes);
};

struct VpRunResult {
  VpTrace trace;
  WeightFile weights;
  /// NVDLA cycles from driver start to the final acknowledged interrupt
  /// (the "number of clock cycles" column of Table III).
  Cycle total_cycles = 0;
  /// Decoded network output (softmax applied when the loadable asks).
  std::vector<float> output;
  nvdla::EngineStats engine_stats;
  std::vector<nvdla::OpRecord> op_records;
  KmdStats kmd_stats;
  nvdla::DbbStats dbb_stats;
  /// Decoded functional ops in launch order with their analytic timing —
  /// the raw material of a core::ReplaySchedule (the session moves them
  /// out when staging; see vp/replay_engine.hpp for the execution side).
  std::vector<nvdla::ReplayOp> replay_ops;
};

class VirtualPlatform {
 public:
  explicit VirtualPlatform(nvdla::NvdlaConfig config);

  /// Compile-side entry point: run `loadable` on `image` (planar floats),
  /// capturing traces and the weight file.
  VpRunResult run(const compiler::Loadable& loadable,
                  std::span<const float> image,
                  bool capture_dbb_payloads = false);

  /// DBB payloads of the last run (aligned with trace.dbb) when payload
  /// capture was requested; used by the textual-log weight-extraction path.
  const std::vector<std::vector<std::uint8_t>>& last_dbb_payloads() const {
    return dbb_payloads_;
  }

  /// Arms fault injection on the engine of every subsequent run() (CSB
  /// timeouts/errors, DBB bus errors -> StatusError out of run()). Serving
  /// paths only: staging/trace-recording runs construct their own
  /// fault-free platform.
  void set_fault_injector(std::shared_ptr<fault::Injector> injector) {
    fault_ = std::move(injector);
  }

  const nvdla::NvdlaConfig& config() const { return config_; }

 private:
  /// Direct TLM-style memory port for the DBB (the VP's fast memory, not
  /// the SoC fabric): bandwidth-limited by the configured DBB width.
  class DirectAxiRam final : public AxiTarget {
   public:
    DirectAxiRam(Dram& dram, const nvdla::NvdlaConfig& config)
        : dram_(dram), config_(config) {}
    AxiBurstResponse burst(const AxiBurstRequest& req) override;
    std::string_view name() const override { return "vp_axi_ram"; }

   private:
    Dram& dram_;
    const nvdla::NvdlaConfig& config_;
  };

  nvdla::NvdlaConfig config_;
  std::vector<std::vector<std::uint8_t>> dbb_payloads_;
  std::shared_ptr<fault::Injector> fault_;
};

}  // namespace nvsoc::vp
