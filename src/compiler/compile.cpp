#include "compiler/compile.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <stdexcept>

#include "common/bitutil.hpp"
#include "common/fp16.hpp"
#include "common/strfmt.hpp"

namespace nvsoc::compiler {

namespace {

/// A not-yet-materialised op accumulating fusable layers.
struct Pending {
  bool is_conv = true;       ///< false: standalone SDP
  std::string fused_names;   ///< "conv1+bn1+relu1" for diagnostics

  // Convolution part (is_conv).
  std::string input_blob;
  ConvParams conv;
  std::vector<float> weights;  ///< folded, [k][c/g][kh][kw]
  std::vector<float> bias;     ///< folded, [k]

  // Standalone-SDP part (!is_conv).
  std::string src_blob;

  bool relu = false;
  bool eltwise = false;
  std::string eltwise_blob;

  std::string top;  ///< current output blob name

  /// Destination forced by a Concat consumer (channel-offset view).
  std::optional<nvdla::SurfaceDesc> forced_dst;
};

class Compiler {
 public:
  Compiler(const Network& net, const NetWeights& weights,
           const CalibrationTable* calib, CompileOptions opts)
      : net_(net), weights_(weights), calib_(calib), opts_(opts) {
    if (opts_.precision == nvdla::Precision::kInt8 && calib_ == nullptr) {
      throw std::runtime_error(
          "INT8 compilation requires a calibration table (see "
          "compiler/calibration.hpp)");
    }
  }

  Loadable run();

 private:
  // --- scales ---------------------------------------------------------------
  float scale_of(const std::string& blob) {
    if (opts_.precision == nvdla::Precision::kFp16) return 1.0f;
    const auto it = scale_override_.find(blob);
    if (it != scale_override_.end()) return it->second;
    return calib_->blob_scale(blob);
  }
  void set_scale(const std::string& blob, float scale) {
    scale_override_[blob] = scale;
  }

  // --- placement -------------------------------------------------------------
  Addr alloc(std::uint64_t bytes) {
    const Addr at = cursor_;
    cursor_ = align_up(cursor_ + bytes, 64);
    return at;
  }
  nvdla::SurfaceDesc alloc_surface(const BlobShape& shape) {
    nvdla::SurfaceDesc d = nvdla::SurfaceDesc::packed(
        0, {shape.w, shape.h, shape.c}, opts_.precision, opts_.atom_bytes);
    d.base = alloc(d.span_bytes());
    return d;
  }
  const nvdla::SurfaceDesc& surface_of(const std::string& blob) {
    flush_blob(blob);
    const auto it = blob_surface_.find(blob);
    if (it == blob_surface_.end()) {
      throw std::runtime_error("compile: blob never materialised: " + blob);
    }
    return it->second;
  }

  /// Append raw bytes to the weight blob; returns the blob-relative offset.
  std::uint64_t append_weight_bytes(std::span<const std::uint8_t> bytes) {
    const std::uint64_t at = align_up(loadable_.weight_blob.size(), 64);
    loadable_.weight_blob.resize(at);
    loadable_.weight_blob.insert(loadable_.weight_blob.end(), bytes.begin(),
                                 bytes.end());
    return at;
  }

  // --- pendings ---------------------------------------------------------------
  Pending* pending_of(const std::string& blob) {
    const auto it = pending_.find(blob);
    return it == pending_.end() ? nullptr : &it->second;
  }
  void rename_pending(const std::string& old_top, const std::string& new_top,
                      const std::string& fused_layer) {
    auto node = pending_.extract(old_top);
    node.key() = new_top;
    node.mapped().top = new_top;
    node.mapped().fused_names += "+" + fused_layer;
    pending_.insert(std::move(node));
  }
  void flush_blob(const std::string& blob) {
    if (auto* p = pending_of(blob)) {
      flush(*p);
      pending_.erase(blob);
    }
  }
  void flush(Pending& p);
  void flush_conv(Pending& p, const nvdla::SurfaceDesc& dst);
  void flush_sdp(Pending& p, const nvdla::SurfaceDesc& dst);

  /// Select the SDP output converter for multiplier M = s_in*s_w/s_out.
  static void select_cvt(double m, std::int32_t& scale, std::uint32_t& shift);

  // --- layer handlers -----------------------------------------------------
  void on_conv(const Layer& layer);
  void on_inner_product(const Layer& layer);
  void on_batch_norm(const Layer& layer);
  void on_scale(const Layer& layer);
  void on_relu(const Layer& layer);
  void on_eltwise(const Layer& layer);
  void on_pool(const Layer& layer);
  void on_lrn(const Layer& layer);
  void on_concat(const Layer& layer);
  void on_softmax(const Layer& layer);

  const Network& net_;
  const NetWeights& weights_;
  const CalibrationTable* calib_;
  CompileOptions opts_;

  Loadable loadable_;
  Addr cursor_ = 0;
  std::map<std::string, nvdla::SurfaceDesc> blob_surface_;
  std::map<std::string, float> scale_override_;
  std::map<std::string, Pending> pending_;
  /// Conv ops whose weight_addr and bias_addr are weight-blob-relative and
  /// need the final weight_base added.
  std::vector<std::size_t> weight_fixups_;
  std::string final_blob_;
};

void Compiler::select_cvt(double m, std::int32_t& scale,
                          std::uint32_t& shift) {
  if (m <= 0.0) {
    scale = 1;
    shift = 0;
    return;
  }
  // Normalise the multiplier into [2^10, 2^14) so the int16 multiplier keeps
  // >=10 bits of precision without overflowing intermediate products.
  shift = 0;
  double scaled = m;
  while (scaled < (1 << 10) && shift < 30) {
    scaled *= 2.0;
    ++shift;
  }
  while (scaled >= (1 << 14) && shift > 0) {
    scaled /= 2.0;
    --shift;
  }
  scale = static_cast<std::int32_t>(std::lround(scaled));
  scale = std::clamp(scale, 1, 32767);
}

void Compiler::on_conv(const Layer& layer) {
  flush_blob(layer.bottoms[0]);
  Pending p;
  p.is_conv = true;
  p.fused_names = layer.name;
  p.input_blob = layer.bottoms[0];
  p.conv = layer.conv;
  const auto& lw = weights_.at(layer.name);
  p.weights = lw.weights;
  p.bias = lw.bias;
  if (p.bias.empty()) p.bias.assign(layer.conv.num_output, 0.0f);
  p.top = layer.top;
  pending_.emplace(layer.top, std::move(p));
}

void Compiler::on_inner_product(const Layer& layer) {
  flush_blob(layer.bottoms[0]);
  const BlobShape& in = net_.blob_shape(layer.bottoms[0]);
  Pending p;
  p.is_conv = true;
  p.fused_names = layer.name;
  p.input_blob = layer.bottoms[0];
  // InnerProduct == convolution whose kernel covers the whole input plane.
  p.conv.num_output = layer.conv.num_output;
  p.conv.kernel_h = in.h;
  p.conv.kernel_w = in.w;
  p.conv.stride_h = p.conv.stride_w = 1;
  p.conv.pad_h = p.conv.pad_w = 0;
  p.conv.groups = 1;
  p.conv.bias_term = layer.conv.bias_term;
  const auto& lw = weights_.at(layer.name);
  p.weights = lw.weights;  // [k][c*h*w] == [k][c][h][w] row-major
  p.bias = lw.bias;
  if (p.bias.empty()) p.bias.assign(layer.conv.num_output, 0.0f);
  p.top = layer.top;
  pending_.emplace(layer.top, std::move(p));
}

void Compiler::on_batch_norm(const Layer& layer) {
  Pending* p = pending_of(layer.bottoms[0]);
  if (p == nullptr || !p->is_conv || p->relu || p->eltwise) {
    throw std::runtime_error(
        strfmt("layer '{}': BatchNorm must directly follow a convolution "
               "(NVDLA lowering constraint)",
               layer.name));
  }
  const auto& lw = weights_.at(layer.name);  // mean / variance
  const std::uint32_t k_count = p->conv.num_output;
  const std::size_t per_k = p->weights.size() / k_count;
  for (std::uint32_t k = 0; k < k_count; ++k) {
    const float inv_std = 1.0f / std::sqrt(lw.bias[k] + layer.bn_epsilon);
    for (std::size_t i = 0; i < per_k; ++i) {
      p->weights[k * per_k + i] *= inv_std;
    }
    p->bias[k] = (p->bias[k] - lw.weights[k]) * inv_std;
  }
  rename_pending(layer.bottoms[0], layer.top, layer.name);
}

void Compiler::on_scale(const Layer& layer) {
  Pending* p = pending_of(layer.bottoms[0]);
  if (p == nullptr || !p->is_conv || p->relu || p->eltwise) {
    throw std::runtime_error(
        strfmt("layer '{}': Scale must directly follow a convolution/"
               "BatchNorm (NVDLA lowering constraint)",
               layer.name));
  }
  const auto& lw = weights_.at(layer.name);  // gamma / beta
  const std::uint32_t k_count = p->conv.num_output;
  const std::size_t per_k = p->weights.size() / k_count;
  for (std::uint32_t k = 0; k < k_count; ++k) {
    for (std::size_t i = 0; i < per_k; ++i) {
      p->weights[k * per_k + i] *= lw.weights[k];
    }
    p->bias[k] = p->bias[k] * lw.weights[k] + lw.bias[k];
  }
  rename_pending(layer.bottoms[0], layer.top, layer.name);
}

void Compiler::on_relu(const Layer& layer) {
  Pending* p = pending_of(layer.bottoms[0]);
  if (p != nullptr && !p->relu) {
    p->relu = true;
    rename_pending(layer.bottoms[0], layer.top, layer.name);
    return;
  }
  // Standalone ReLU over a materialised blob (e.g. after pooling).
  Pending sdp;
  sdp.is_conv = false;
  sdp.fused_names = layer.name;
  sdp.src_blob = layer.bottoms[0];
  sdp.relu = true;
  sdp.top = layer.top;
  surface_of(layer.bottoms[0]);  // force materialisation
  pending_.emplace(layer.top, std::move(sdp));
}

void Compiler::on_eltwise(const Layer& layer) {
  const std::string& a = layer.bottoms[0];
  const std::string& b = layer.bottoms[1];
  // The first operand must be in memory; the second is the candidate for
  // fusion into its producing convolution's SDP tail.
  flush_blob(a);
  Pending* p = pending_of(b);
  if (p != nullptr && p->is_conv && !p->eltwise && !p->relu) {
    p->eltwise = true;
    p->eltwise_blob = a;
    rename_pending(b, layer.top, layer.name);
    return;
  }
  flush_blob(b);
  Pending sdp;
  sdp.is_conv = false;
  sdp.fused_names = layer.name;
  sdp.src_blob = b;
  sdp.eltwise = true;
  sdp.eltwise_blob = a;
  sdp.top = layer.top;
  pending_.emplace(layer.top, std::move(sdp));
}

void Compiler::on_pool(const Layer& layer) {
  const nvdla::SurfaceDesc src = surface_of(layer.bottoms[0]);
  const BlobShape& in = net_.blob_shape(layer.bottoms[0]);
  const BlobShape& out = net_.blob_shape(layer.top);
  nvdla::SurfaceDesc dst = alloc_surface(out);

  HwOp op;
  op.kind = HwOpKind::kPdp;
  op.name = layer.name;
  op.pdp.precision = opts_.precision;
  op.pdp.src = src;
  op.pdp.dst = dst;
  PoolParams pp = layer.pool;
  if (pp.global) {
    pp.kernel_h = in.h;
    pp.kernel_w = in.w;
    pp.stride_h = pp.stride_w = 1;
    pp.pad_h = pp.pad_w = 0;
  }
  op.pdp.kernel_w = pp.kernel_w;
  op.pdp.kernel_h = pp.kernel_h;
  op.pdp.stride_x = pp.stride_w;
  op.pdp.stride_y = pp.stride_h;
  op.pdp.pad_left = pp.pad_w;
  op.pdp.pad_top = pp.pad_h;
  op.pdp.pad_right = pp.pad_w;
  op.pdp.pad_bottom = pp.pad_h;
  op.pdp.average = pp.method == PoolParams::Method::kAve;
  loadable_.ops.push_back(std::move(op));

  blob_surface_[layer.top] = dst;
  set_scale(layer.top, scale_of(layer.bottoms[0]));  // pooling keeps scale
}

void Compiler::on_lrn(const Layer& layer) {
  const nvdla::SurfaceDesc src = surface_of(layer.bottoms[0]);
  const BlobShape& out = net_.blob_shape(layer.top);
  nvdla::SurfaceDesc dst = alloc_surface(out);

  HwOp op;
  op.kind = HwOpKind::kCdp;
  op.name = layer.name;
  op.cdp.precision = opts_.precision;
  op.cdp.src = src;
  op.cdp.dst = dst;
  op.cdp.local_size = layer.lrn.local_size;
  op.cdp.alpha_q16 =
      static_cast<std::uint32_t>(std::lround(layer.lrn.alpha * 65536.0));
  op.cdp.beta_q16 =
      static_cast<std::uint32_t>(std::lround(layer.lrn.beta * 65536.0));
  op.cdp.k_q16 =
      static_cast<std::uint32_t>(std::lround(layer.lrn.k * 65536.0));
  op.cdp.in_scale_q16 = static_cast<std::uint32_t>(
      std::lround(static_cast<double>(scale_of(layer.bottoms[0])) * 65536.0));
  loadable_.ops.push_back(std::move(op));

  blob_surface_[layer.top] = dst;
  set_scale(layer.top, scale_of(layer.bottoms[0]));  // CDP requants in place
}

void Compiler::on_concat(const Layer& layer) {
  const BlobShape& out = net_.blob_shape(layer.top);
  const nvdla::SurfaceDesc dst = alloc_surface(out);
  const std::uint32_t cpa = dst.channels_per_atom();

  std::uint32_t c_off = 0;
  for (const auto& bottom : layer.bottoms) {
    const BlobShape& bin = net_.blob_shape(bottom);
    if (c_off % cpa != 0 || bin.c % cpa != 0) {
      throw std::runtime_error(
          strfmt("layer '{}': concat channel offsets must be multiples of "
                 "the atom ({} channels); got offset {} size {}",
                 layer.name, cpa, c_off, bin.c));
    }
    nvdla::SurfaceDesc view = dst;
    view.base = dst.base + (c_off / cpa) * static_cast<Addr>(dst.surf_stride);
    view.dims = {bin.w, bin.h, bin.c};

    if (Pending* p = pending_of(bottom)) {
      p->forced_dst = view;
      flush(*p);
      pending_.erase(bottom);
    } else if (blob_surface_.contains(bottom)) {
      // Already materialised elsewhere: BDMA it into the concat cube.
      const nvdla::SurfaceDesc& src = blob_surface_.at(bottom);
      HwOp op;
      op.kind = HwOpKind::kBdma;
      op.name = layer.name + ":" + bottom;
      op.bdma.src_addr = src.base;
      op.bdma.dst_addr = view.base;
      op.bdma.line_size = static_cast<std::uint32_t>(src.span_bytes());
      op.bdma.line_repeat = 1;
      loadable_.ops.push_back(std::move(op));
      blob_surface_[bottom] = view;
    } else {
      throw std::runtime_error("concat bottom neither pending nor "
                               "materialised: " + bottom);
    }
    c_off += bin.c;
  }
  blob_surface_[layer.top] = dst;
  set_scale(layer.top, scale_of(layer.top));
}

void Compiler::on_softmax(const Layer& layer) {
  surface_of(layer.bottoms[0]);  // materialise logits
  if (layer.top != net_.layers().back().top) {
    throw std::runtime_error("Softmax is only supported as the final layer "
                             "(it runs on the CPU)");
  }
  loadable_.softmax_on_cpu = true;
  final_blob_ = layer.bottoms[0];
}

void Compiler::flush(Pending& p) {
  nvdla::SurfaceDesc dst;
  if (p.forced_dst) {
    dst = *p.forced_dst;
  } else {
    dst = alloc_surface(net_.blob_shape(p.top));
  }
  if (p.is_conv) {
    flush_conv(p, dst);
  } else {
    flush_sdp(p, dst);
  }
  blob_surface_[p.top] = dst;
}

void Compiler::flush_conv(Pending& p, const nvdla::SurfaceDesc& dst) {
  const BlobShape& in_shape = net_.blob_shape(p.input_blob);
  const BlobShape& out_shape = net_.blob_shape(p.top);
  const nvdla::SurfaceDesc input = surface_of(p.input_blob);
  const bool int8 = opts_.precision == nvdla::Precision::kInt8;

  const float s_in = scale_of(p.input_blob);
  // The arithmetic domain of the output: for fused element-wise adds it is
  // the (calibration-unified) operand scale; otherwise the top blob's.
  const float s_out = p.eltwise ? scale_of(p.eltwise_blob) : scale_of(p.top);

  // --- weights -------------------------------------------------------------
  float s_w = 1.0f;
  std::vector<std::uint8_t> packed;
  if (int8) {
    float max_abs = 0.0f;
    for (float w : p.weights) max_abs = std::max(max_abs, std::fabs(w));
    s_w = std::max(max_abs / 127.0f, 1e-6f);
    packed.resize(p.weights.size());
    for (std::size_t i = 0; i < p.weights.size(); ++i) {
      packed[i] = static_cast<std::uint8_t>(saturate_i8(
          static_cast<std::int64_t>(std::lround(p.weights[i] / s_w))));
    }
  } else {
    packed.resize(p.weights.size() * 2);
    for (std::size_t i = 0; i < p.weights.size(); ++i) {
      const std::uint16_t bits = float_to_half_bits(p.weights[i]);
      packed[2 * i] = static_cast<std::uint8_t>(bits);
      packed[2 * i + 1] = static_cast<std::uint8_t>(bits >> 8);
    }
  }
  const std::uint64_t weight_off = append_weight_bytes(packed);

  // --- bias table -----------------------------------------------------------
  std::vector<std::uint8_t> bias_bytes(p.bias.size() * 4);
  if (int8) {
    const double acc_scale = static_cast<double>(s_in) * s_w;
    for (std::size_t k = 0; k < p.bias.size(); ++k) {
      const std::int32_t q = saturate_i32(
          static_cast<std::int64_t>(std::llround(p.bias[k] / acc_scale)));
      std::memcpy(bias_bytes.data() + 4 * k, &q, 4);
    }
  } else {
    for (std::size_t k = 0; k < p.bias.size(); ++k) {
      std::memcpy(bias_bytes.data() + 4 * k, &p.bias[k], 4);
    }
  }
  const std::uint64_t bias_off = append_weight_bytes(bias_bytes);

  // --- descriptor -------------------------------------------------------------
  HwOp op;
  op.kind = HwOpKind::kConv;
  op.name = p.fused_names;
  op.conv.precision = opts_.precision;
  op.conv.input = input;
  op.conv.weight_addr = weight_off;  // fixed up to weight_base later
  op.conv.weight_bytes = static_cast<std::uint32_t>(packed.size());
  op.conv.kernel_w = p.conv.kernel_w;
  op.conv.kernel_h = p.conv.kernel_h;
  op.conv.kernel_c = in_shape.c / p.conv.groups;
  op.conv.kernel_k = p.conv.num_output;
  op.conv.groups = p.conv.groups;
  op.conv.pad_left = p.conv.pad_w;
  op.conv.pad_top = p.conv.pad_h;
  op.conv.pad_right = p.conv.pad_w;
  op.conv.pad_bottom = p.conv.pad_h;
  op.conv.stride_x = p.conv.stride_w;
  op.conv.stride_y = p.conv.stride_h;
  op.conv.pad_value = 0;
  op.conv.out_w = out_shape.w;
  op.conv.out_h = out_shape.h;

  op.sdp.in_precision = opts_.precision;
  op.sdp.out_precision = opts_.precision;
  op.sdp.dims = {out_shape.w, out_shape.h, out_shape.c};
  op.sdp.src = nvdla::SurfaceDesc{};  // flying mode (base 0)
  op.sdp.dst = dst;
  op.sdp.bias_enable = true;
  op.sdp.relu_enable = p.relu;
  op.sdp.eltwise_enable = p.eltwise;
  op.sdp.bias_addr = bias_off;  // weight-blob relative; fixed up later
  if (int8) {
    const double m =
        static_cast<double>(s_in) * s_w / static_cast<double>(s_out);
    std::int32_t cvt_scale;
    std::uint32_t cvt_shift;
    select_cvt(m, cvt_scale, cvt_shift);
    op.sdp.cvt_scale = cvt_scale;
    op.sdp.cvt_shift = cvt_shift;
  } else {
    op.sdp.cvt_scale = 1;
    op.sdp.cvt_shift = 0;
  }

  if (p.eltwise) {
    // X1 channel: the residual operand cube (already in memory at the
    // calibration-unified scale, so the post-CVT add is scale-consistent).
    const nvdla::SurfaceDesc& elt = surface_of(p.eltwise_blob);
    op.sdp.operand_addr = elt.base;
    op.sdp.operand_line_stride = elt.line_stride;
    op.sdp.operand_surf_stride = elt.surf_stride;
    op.sdp.operand_per_element = true;
  }
  weight_fixups_.push_back(loadable_.ops.size());
  loadable_.ops.push_back(std::move(op));
  set_scale(p.top, s_out);
}

void Compiler::flush_sdp(Pending& p, const nvdla::SurfaceDesc& dst) {
  const nvdla::SurfaceDesc src = surface_of(p.src_blob);
  HwOp op;
  op.kind = HwOpKind::kSdp;
  op.name = p.fused_names;
  op.sdp.in_precision = opts_.precision;
  op.sdp.out_precision = opts_.precision;
  op.sdp.dims = src.dims;
  op.sdp.src = src;
  op.sdp.dst = dst;
  op.sdp.bias_enable = false;
  op.sdp.relu_enable = p.relu;
  op.sdp.eltwise_enable = p.eltwise;
  op.sdp.cvt_scale = 1;
  op.sdp.cvt_shift = 0;
  if (p.eltwise) {
    const nvdla::SurfaceDesc& elt = surface_of(p.eltwise_blob);
    op.sdp.operand_addr = elt.base;
    op.sdp.operand_line_stride = elt.line_stride;
    op.sdp.operand_surf_stride = elt.surf_stride;
    op.sdp.operand_per_element = true;
  }
  loadable_.ops.push_back(std::move(op));
  set_scale(p.top, scale_of(p.src_blob));
}

Loadable Compiler::run() {
  loadable_.network_name = net_.name();
  loadable_.precision = opts_.precision;
  loadable_.atom_bytes = opts_.atom_bytes;
  cursor_ = opts_.arena_base;

  // Input cube placement.
  const BlobShape& in_shape = net_.input_shape();
  loadable_.input_surface = alloc_surface(in_shape);
  blob_surface_[net_.input_blob()] = loadable_.input_surface;
  loadable_.input_scale = scale_of(net_.input_blob());

  final_blob_ = net_.layers().empty() ? net_.input_blob()
                                      : net_.layers().back().top;
  for (const auto& layer : net_.layers()) {
    switch (layer.kind) {
      case LayerKind::kInput: break;
      case LayerKind::kConvolution: on_conv(layer); break;
      case LayerKind::kInnerProduct: on_inner_product(layer); break;
      case LayerKind::kBatchNorm: on_batch_norm(layer); break;
      case LayerKind::kScale: on_scale(layer); break;
      case LayerKind::kReLU: on_relu(layer); break;
      case LayerKind::kEltwise: on_eltwise(layer); break;
      case LayerKind::kPooling: on_pool(layer); break;
      case LayerKind::kLrn: on_lrn(layer); break;
      case LayerKind::kConcat: on_concat(layer); break;
      case LayerKind::kSoftmax: on_softmax(layer); break;
    }
  }
  // Materialise whatever is still pending (normally just the final layer).
  while (!pending_.empty()) {
    auto it = pending_.begin();
    flush(it->second);
    pending_.erase(it);
  }

  const std::string output_blob =
      loadable_.softmax_on_cpu ? final_blob_ : net_.layers().back().top;
  loadable_.output_surface = surface_of(output_blob);
  loadable_.output_scale = scale_of(output_blob);

  // Place the weight blob after all activations and fix up offsets.
  loadable_.weight_base = cursor_;
  cursor_ = align_up(cursor_ + loadable_.weight_blob.size(), 64);
  loadable_.arena_end = cursor_;
  for (const std::size_t index : weight_fixups_) {
    HwOp& op = loadable_.ops[index];
    op.conv.weight_addr += loadable_.weight_base;
    op.sdp.bias_addr += loadable_.weight_base;
  }
  return loadable_;
}

}  // namespace

Loadable compile(const Network& network, const NetWeights& weights,
                 const CalibrationTable* calibration,
                 CompileOptions options) {
  Compiler compiler(network, weights, calibration, options);
  return compiler.run();
}

}  // namespace nvsoc::compiler
