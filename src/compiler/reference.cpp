#include "compiler/reference.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nvsoc::compiler {

namespace {

using Tensor = std::vector<float>;

std::size_t idx(const BlobShape& s, std::uint32_t c, std::uint32_t h,
                std::uint32_t w) {
  return (static_cast<std::size_t>(c) * s.h + h) * s.w + w;
}

Tensor conv_forward(const Layer& layer, const BlobShape& in_shape,
                    const BlobShape& out_shape, const Tensor& in,
                    const LayerWeights& lw) {
  const auto& p = layer.conv;
  const std::uint32_t cg = in_shape.c / p.groups;
  const std::uint32_t kg = p.num_output / p.groups;
  Tensor out(out_shape.elements(), 0.0f);
  for (std::uint32_t k = 0; k < p.num_output; ++k) {
    const std::uint32_t g = k / kg;
    for (std::uint32_t oy = 0; oy < out_shape.h; ++oy) {
      for (std::uint32_t ox = 0; ox < out_shape.w; ++ox) {
        float sum = p.bias_term ? lw.bias[k] : 0.0f;
        for (std::uint32_t c = 0; c < cg; ++c) {
          for (std::uint32_t r = 0; r < p.kernel_h; ++r) {
            const std::int64_t iy =
                static_cast<std::int64_t>(oy) * p.stride_h - p.pad_h + r;
            if (iy < 0 || iy >= in_shape.h) continue;
            for (std::uint32_t s = 0; s < p.kernel_w; ++s) {
              const std::int64_t ix =
                  static_cast<std::int64_t>(ox) * p.stride_w - p.pad_w + s;
              if (ix < 0 || ix >= in_shape.w) continue;
              const float v = in[idx(in_shape, g * cg + c,
                                     static_cast<std::uint32_t>(iy),
                                     static_cast<std::uint32_t>(ix))];
              const float wt =
                  lw.weights[((static_cast<std::size_t>(k) * cg + c) *
                                  p.kernel_h + r) * p.kernel_w + s];
              sum += v * wt;
            }
          }
        }
        out[idx(out_shape, k, oy, ox)] = sum;
      }
    }
  }
  return out;
}

Tensor inner_product_forward(const Layer& layer, const BlobShape& in_shape,
                             const Tensor& in, const LayerWeights& lw) {
  const std::uint32_t k_count = layer.conv.num_output;
  const std::size_t fan_in = in_shape.elements();
  Tensor out(k_count, 0.0f);
  for (std::uint32_t k = 0; k < k_count; ++k) {
    float sum = layer.conv.bias_term ? lw.bias[k] : 0.0f;
    const float* row = lw.weights.data() + static_cast<std::size_t>(k) * fan_in;
    for (std::size_t i = 0; i < fan_in; ++i) sum += row[i] * in[i];
    out[k] = sum;
  }
  return out;
}

Tensor pool_forward(const Layer& layer, const BlobShape& in_shape,
                    const BlobShape& out_shape, const Tensor& in) {
  PoolParams p = layer.pool;
  if (p.global) {
    p.kernel_h = in_shape.h;
    p.kernel_w = in_shape.w;
    p.stride_h = p.stride_w = 1;
    p.pad_h = p.pad_w = 0;
  }
  Tensor out(out_shape.elements(), 0.0f);
  for (std::uint32_t c = 0; c < out_shape.c; ++c) {
    for (std::uint32_t oy = 0; oy < out_shape.h; ++oy) {
      for (std::uint32_t ox = 0; ox < out_shape.w; ++ox) {
        float agg = p.method == PoolParams::Method::kMax
                        ? -std::numeric_limits<float>::max()
                        : 0.0f;
        std::uint32_t count = 0;
        for (std::uint32_t r = 0; r < p.kernel_h; ++r) {
          for (std::uint32_t s = 0; s < p.kernel_w; ++s) {
            const std::int64_t iy =
                static_cast<std::int64_t>(oy) * p.stride_h - p.pad_h + r;
            const std::int64_t ix =
                static_cast<std::int64_t>(ox) * p.stride_w - p.pad_w + s;
            if (iy < 0 || iy >= in_shape.h || ix < 0 || ix >= in_shape.w) {
              continue;
            }
            const float v = in[idx(in_shape, c, static_cast<std::uint32_t>(iy),
                                   static_cast<std::uint32_t>(ix))];
            if (p.method == PoolParams::Method::kMax) {
              agg = std::max(agg, v);
            } else {
              agg += v;
            }
            ++count;
          }
        }
        out[idx(out_shape, c, oy, ox)] =
            count == 0 ? 0.0f
                       : (p.method == PoolParams::Method::kMax ? agg
                                                               : agg / count);
      }
    }
  }
  return out;
}

Tensor lrn_forward(const Layer& layer, const BlobShape& shape,
                   const Tensor& in) {
  const auto& p = layer.lrn;
  const int half = static_cast<int>(p.local_size / 2);
  Tensor out(in.size());
  for (std::uint32_t c = 0; c < shape.c; ++c) {
    for (std::uint32_t y = 0; y < shape.h; ++y) {
      for (std::uint32_t x = 0; x < shape.w; ++x) {
        float sumsq = 0.0f;
        for (int dc = -half; dc <= half; ++dc) {
          const int cc = static_cast<int>(c) + dc;
          if (cc < 0 || cc >= static_cast<int>(shape.c)) continue;
          const float v = in[idx(shape, static_cast<std::uint32_t>(cc), y, x)];
          sumsq += v * v;
        }
        const float denom =
            std::pow(p.k + p.alpha / static_cast<float>(p.local_size) * sumsq,
                     p.beta);
        out[idx(shape, c, y, x)] = in[idx(shape, c, y, x)] / denom;
      }
    }
  }
  return out;
}

}  // namespace

std::map<std::string, std::vector<float>> ReferenceExecutor::run(
    std::span<const float> input) const {
  if (input.size() != network_.input_shape().elements()) {
    throw std::runtime_error("reference: input size mismatch");
  }
  std::map<std::string, Tensor> blobs;
  blobs[network_.input_blob()] = Tensor(input.begin(), input.end());

  for (const auto& layer : network_.layers()) {
    const BlobShape& out_shape = network_.blob_shape(layer.top);
    const Tensor& in0 = blobs.at(layer.bottoms.at(0));
    const BlobShape& in_shape = network_.blob_shape(layer.bottoms.at(0));
    Tensor out;
    switch (layer.kind) {
      case LayerKind::kInput:
        out = in0;
        break;
      case LayerKind::kConvolution:
        out = conv_forward(layer, in_shape, out_shape, in0,
                           weights_.at(layer.name));
        break;
      case LayerKind::kInnerProduct:
        out = inner_product_forward(layer, in_shape, in0,
                                    weights_.at(layer.name));
        break;
      case LayerKind::kPooling:
        out = pool_forward(layer, in_shape, out_shape, in0);
        break;
      case LayerKind::kReLU:
        out = in0;
        for (auto& v : out) v = std::max(v, 0.0f);
        break;
      case LayerKind::kBatchNorm: {
        const auto& lw = weights_.at(layer.name);
        out.resize(in0.size());
        for (std::uint32_t c = 0; c < in_shape.c; ++c) {
          const float mean = lw.weights[c];
          const float inv_std =
              1.0f / std::sqrt(lw.bias[c] + layer.bn_epsilon);
          for (std::uint32_t y = 0; y < in_shape.h; ++y) {
            for (std::uint32_t x = 0; x < in_shape.w; ++x) {
              const std::size_t i = idx(in_shape, c, y, x);
              out[i] = (in0[i] - mean) * inv_std;
            }
          }
        }
        break;
      }
      case LayerKind::kScale: {
        const auto& lw = weights_.at(layer.name);
        out.resize(in0.size());
        for (std::uint32_t c = 0; c < in_shape.c; ++c) {
          for (std::uint32_t y = 0; y < in_shape.h; ++y) {
            for (std::uint32_t x = 0; x < in_shape.w; ++x) {
              const std::size_t i = idx(in_shape, c, y, x);
              out[i] = in0[i] * lw.weights[c] + lw.bias[c];
            }
          }
        }
        break;
      }
      case LayerKind::kEltwise: {
        const Tensor& in1 = blobs.at(layer.bottoms.at(1));
        out.resize(in0.size());
        for (std::size_t i = 0; i < in0.size(); ++i) out[i] = in0[i] + in1[i];
        break;
      }
      case LayerKind::kConcat: {
        out.reserve(out_shape.elements());
        for (const auto& bottom : layer.bottoms) {
          const Tensor& t = blobs.at(bottom);
          out.insert(out.end(), t.begin(), t.end());
        }
        break;
      }
      case LayerKind::kLrn:
        out = lrn_forward(layer, in_shape, in0);
        break;
      case LayerKind::kSoftmax: {
        out = in0;
        const float maxv = *std::max_element(out.begin(), out.end());
        float sum = 0.0f;
        for (auto& v : out) {
          v = std::exp(v - maxv);
          sum += v;
        }
        for (auto& v : out) v /= sum;
        break;
      }
    }
    blobs[layer.top] = std::move(out);
  }
  return blobs;
}

std::vector<float> ReferenceExecutor::run_to(std::span<const float> input,
                                             const std::string& blob) const {
  auto blobs = run(input);
  const std::string target =
      blob.empty() ? network_.layers().back().top : blob;
  return std::move(blobs.at(target));
}

std::size_t argmax(std::span<const float> values) {
  return static_cast<std::size_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

}  // namespace nvsoc::compiler
