// The compiled-network artifact ("loadable", after the NVDLA compiler's
// output format): the ordered list of hardware-layer descriptors, the packed
// parameter blob, the DRAM placement of every tensor, and the input/output
// quantisation metadata. Serialisable, so compiled networks can be stored
// and shipped — the role ONNC loadables play in the paper's future work §2.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nvdla/ops.hpp"

namespace nvsoc::compiler {

enum class HwOpKind : std::uint8_t {
  kConv = 0,   ///< convolution pipeline + fused SDP tail
  kSdp,        ///< standalone SDP (element-wise / ReLU-only)
  kPdp,        ///< pooling
  kCdp,        ///< LRN
  kBdma,       ///< memory copy
};

const char* hw_op_kind_name(HwOpKind kind);

struct HwOp {
  HwOpKind kind = HwOpKind::kConv;
  /// Source IR layer(s), for diagnostics ("conv1+bn1+scale1+relu1").
  std::string name;
  nvdla::ConvOp conv;  ///< kConv
  nvdla::SdpOp sdp;    ///< kConv (tail) and kSdp
  nvdla::PdpOp pdp;    ///< kPdp
  nvdla::CdpOp cdp;    ///< kCdp
  nvdla::BdmaOp bdma;  ///< kBdma
};

struct Loadable {
  std::string network_name;
  nvdla::Precision precision = nvdla::Precision::kInt8;
  std::uint32_t atom_bytes = 8;

  std::vector<HwOp> ops;

  /// Packed parameters (quantised weights + bias tables), to be placed at
  /// `weight_base` in DRAM before execution.
  std::vector<std::uint8_t> weight_blob;
  Addr weight_base = 0;

  nvdla::SurfaceDesc input_surface;
  nvdla::SurfaceDesc output_surface;
  /// real = scale * stored (1.0 on the FP16 path).
  float input_scale = 1.0f;
  float output_scale = 1.0f;
  /// The final Softmax runs on the CPU (NVDLA has no softmax unit).
  bool softmax_on_cpu = false;

  /// One past the highest DRAM byte used by any tensor.
  std::uint64_t arena_end = 0;

  // --- runtime helpers ----------------------------------------------------
  /// Quantise/pack a planar [c][h][w] float image into the input surface
  /// byte layout (the "input .bin" the paper preloads into DRAM).
  std::vector<std::uint8_t> pack_input(std::span<const float> image) const;
  /// Decode raw output-surface bytes into planar float values (applying the
  /// output scale; softmax applied if softmax_on_cpu).
  std::vector<float> unpack_output(std::span<const std::uint8_t> raw) const;

  // --- serialisation -------------------------------------------------------
  void serialize(std::ostream& os) const;
  static Loadable deserialize(std::istream& is);
  std::vector<std::uint8_t> to_bytes() const;
  static Loadable from_bytes(std::span<const std::uint8_t> bytes);
};

}  // namespace nvsoc::compiler
