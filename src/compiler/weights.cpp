#include "compiler/weights.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace nvsoc::compiler {

const LayerWeights& NetWeights::at(const std::string& layer) const {
  const auto it = by_layer_.find(layer);
  if (it == by_layer_.end()) {
    throw std::runtime_error("no weights for layer " + layer);
  }
  return it->second;
}

LayerWeights& NetWeights::at(const std::string& layer) {
  const auto it = by_layer_.find(layer);
  if (it == by_layer_.end()) {
    throw std::runtime_error("no weights for layer " + layer);
  }
  return it->second;
}

NetWeights NetWeights::synthetic(const Network& network, std::uint64_t seed) {
  NetWeights out;
  Rng rng(seed);
  for (const auto& layer : network.layers()) {
    LayerWeights lw;
    switch (layer.kind) {
      case LayerKind::kConvolution: {
        const BlobShape& in = network.blob_shape(layer.bottoms[0]);
        const std::uint64_t fan_in =
            static_cast<std::uint64_t>(in.c / layer.conv.groups) *
            layer.conv.kernel_h * layer.conv.kernel_w;
        const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
        lw.weights.resize(static_cast<std::size_t>(layer.conv.num_output) *
                          fan_in);
        for (auto& w : lw.weights) w = rng.next_gaussian() * stddev;
        if (layer.conv.bias_term) {
          lw.bias.resize(layer.conv.num_output);
          for (auto& b : lw.bias) b = rng.next_gaussian() * 0.01f;
        }
        break;
      }
      case LayerKind::kInnerProduct: {
        const BlobShape& in = network.blob_shape(layer.bottoms[0]);
        const std::uint64_t fan_in = in.elements();
        const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
        lw.weights.resize(static_cast<std::size_t>(layer.conv.num_output) *
                          fan_in);
        for (auto& w : lw.weights) w = rng.next_gaussian() * stddev;
        if (layer.conv.bias_term) {
          lw.bias.resize(layer.conv.num_output);
          for (auto& b : lw.bias) b = rng.next_gaussian() * 0.01f;
        }
        break;
      }
      case LayerKind::kBatchNorm: {
        const std::uint32_t c = network.blob_shape(layer.bottoms[0]).c;
        lw.weights.resize(c);  // running mean
        lw.bias.resize(c);     // running variance
        for (auto& m : lw.weights) m = rng.next_gaussian() * 0.05f;
        for (auto& v : lw.bias) {
          v = 0.8f + 0.4f * rng.next_float();  // variance in [0.8, 1.2)
        }
        break;
      }
      case LayerKind::kScale: {
        const std::uint32_t c = network.blob_shape(layer.bottoms[0]).c;
        lw.weights.resize(c);  // gamma
        lw.bias.resize(c);     // beta
        for (auto& g : lw.weights) g = 0.9f + 0.2f * rng.next_float();
        for (auto& b : lw.bias) b = rng.next_gaussian() * 0.05f;
        break;
      }
      default:
        continue;  // parameter-free layer
    }
    out.set(layer.name, std::move(lw));
  }
  return out;
}

std::vector<float> synthetic_input(const BlobShape& shape,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(shape.elements());
  for (auto& v : out) v = rng.next_float() * 2.0f - 1.0f;
  return out;
}

}  // namespace nvsoc::compiler
