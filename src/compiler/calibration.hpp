// INT8 calibration-table generation.
//
// The paper names the lack of INT8 calibration tables as the main limit on
// nv_small model coverage and lists generating them as future work §1. This
// module implements that step: activation ranges are collected by running
// the FP32 reference executor on calibration inputs; each blob gets a
// symmetric per-tensor scale (max-abs / 127). Blobs joined by element-wise
// adds or channel concatenation must share a scale (they meet in one
// arithmetic domain / one memory cube), so their groups are unified to the
// maximum.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "compiler/network.hpp"
#include "compiler/weights.hpp"

namespace nvsoc::compiler {

class CalibrationTable {
 public:
  /// Scale such that real_value ~= scale * int8_value.
  float blob_scale(const std::string& blob) const;
  void set_blob_scale(const std::string& blob, float scale);
  bool has_blob(const std::string& blob) const {
    return scales_.contains(blob);
  }

  const std::map<std::string, float>& all() const { return scales_; }

  /// Text round-trip ("<blob> <scale>" per line), the distributable
  /// calibration-table artifact.
  std::string to_text() const;
  static CalibrationTable from_text(const std::string& text);

 private:
  std::map<std::string, float> scales_;
};

/// Generate a calibration table from one or more calibration inputs.
CalibrationTable calibrate(const Network& network, const NetWeights& weights,
                           std::span<const std::vector<float>> inputs);

/// Convenience overload for a single input.
CalibrationTable calibrate(const Network& network, const NetWeights& weights,
                           std::span<const float> input);

}  // namespace nvsoc::compiler
