#include "compiler/loadable.hpp"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/bitutil.hpp"
#include "nvdla/tensor.hpp"

namespace nvsoc::compiler {

const char* hw_op_kind_name(HwOpKind kind) {
  switch (kind) {
    case HwOpKind::kConv: return "conv";
    case HwOpKind::kSdp: return "sdp";
    case HwOpKind::kPdp: return "pdp";
    case HwOpKind::kCdp: return "cdp";
    case HwOpKind::kBdma: return "bdma";
  }
  return "unknown";
}

std::vector<std::uint8_t> Loadable::pack_input(
    std::span<const float> image) const {
  const auto& dims = input_surface.dims;
  if (image.size() != dims.elements()) {
    throw std::runtime_error("pack_input: image size mismatch");
  }
  nvdla::CubeBuffer cube(input_surface);
  std::size_t i = 0;
  for (std::uint32_t c = 0; c < dims.c; ++c) {
    for (std::uint32_t h = 0; h < dims.h; ++h) {
      for (std::uint32_t w = 0; w < dims.w; ++w, ++i) {
        if (precision == nvdla::Precision::kInt8) {
          cube.set_i8(c, h, w,
                      saturate_i8(static_cast<std::int64_t>(
                          std::lround(image[i] / input_scale))));
        } else {
          cube.set(c, h, w, image[i]);
        }
      }
    }
  }
  return std::vector<std::uint8_t>(cube.bytes().begin(), cube.bytes().end());
}

std::vector<float> Loadable::unpack_output(
    std::span<const std::uint8_t> raw) const {
  nvdla::CubeBuffer cube(output_surface);
  if (raw.size() < cube.bytes().size()) {
    throw std::runtime_error("unpack_output: raw bytes too small");
  }
  std::memcpy(cube.bytes().data(), raw.data(), cube.bytes().size());
  const auto& dims = output_surface.dims;
  std::vector<float> out(dims.elements());
  std::size_t i = 0;
  for (std::uint32_t c = 0; c < dims.c; ++c) {
    for (std::uint32_t h = 0; h < dims.h; ++h) {
      for (std::uint32_t w = 0; w < dims.w; ++w, ++i) {
        float v = cube.get(c, h, w);
        if (precision == nvdla::Precision::kInt8) v *= output_scale;
        out[i] = v;
      }
    }
  }
  if (softmax_on_cpu) {
    float maxv = out[0];
    for (float v : out) maxv = std::max(maxv, v);
    float sum = 0.0f;
    for (auto& v : out) {
      v = std::exp(v - maxv);
      sum += v;
    }
    for (auto& v : out) v /= sum;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Serialisation: simple tagged binary format, little endian, magic "NVSL".
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kMagic = 0x4C53564Eu;  // "NVSL"
constexpr std::uint32_t kVersion = 2;

template <typename T>
void put(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("loadable: truncated stream");
  return value;
}

void put_string(std::ostream& os, const std::string& s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const auto n = get<std::uint32_t>(is);
  std::string s(n, '\0');
  is.read(s.data(), n);
  if (!is) throw std::runtime_error("loadable: truncated string");
  return s;
}

void put_surface(std::ostream& os, const nvdla::SurfaceDesc& d) {
  put(os, d.base);
  put(os, d.dims.w);
  put(os, d.dims.h);
  put(os, d.dims.c);
  put(os, d.line_stride);
  put(os, d.surf_stride);
  put<std::uint8_t>(os, static_cast<std::uint8_t>(d.precision));
  put(os, d.atom_bytes);
}

nvdla::SurfaceDesc get_surface(std::istream& is) {
  nvdla::SurfaceDesc d;
  d.base = get<Addr>(is);
  d.dims.w = get<std::uint32_t>(is);
  d.dims.h = get<std::uint32_t>(is);
  d.dims.c = get<std::uint32_t>(is);
  d.line_stride = get<std::uint32_t>(is);
  d.surf_stride = get<std::uint32_t>(is);
  d.precision = static_cast<nvdla::Precision>(get<std::uint8_t>(is));
  d.atom_bytes = get<std::uint32_t>(is);
  return d;
}

}  // namespace

void Loadable::serialize(std::ostream& os) const {
  put(os, kMagic);
  put(os, kVersion);
  put_string(os, network_name);
  put<std::uint8_t>(os, static_cast<std::uint8_t>(precision));
  put(os, atom_bytes);
  put(os, weight_base);
  put(os, input_scale);
  put(os, output_scale);
  put<std::uint8_t>(os, softmax_on_cpu ? 1 : 0);
  put(os, arena_end);
  put_surface(os, input_surface);
  put_surface(os, output_surface);

  put<std::uint32_t>(os, static_cast<std::uint32_t>(weight_blob.size()));
  os.write(reinterpret_cast<const char*>(weight_blob.data()),
           static_cast<std::streamsize>(weight_blob.size()));

  put<std::uint32_t>(os, static_cast<std::uint32_t>(ops.size()));
  for (const auto& op : ops) {
    put<std::uint8_t>(os, static_cast<std::uint8_t>(op.kind));
    put_string(os, op.name);
    // ConvOp
    put<std::uint8_t>(os, static_cast<std::uint8_t>(op.conv.precision));
    put_surface(os, op.conv.input);
    put(os, op.conv.weight_addr);
    put(os, op.conv.weight_bytes);
    put(os, op.conv.kernel_w);
    put(os, op.conv.kernel_h);
    put(os, op.conv.kernel_c);
    put(os, op.conv.kernel_k);
    put(os, op.conv.groups);
    put(os, op.conv.pad_left);
    put(os, op.conv.pad_top);
    put(os, op.conv.pad_right);
    put(os, op.conv.pad_bottom);
    put(os, op.conv.stride_x);
    put(os, op.conv.stride_y);
    put(os, op.conv.pad_value);
    put(os, op.conv.out_w);
    put(os, op.conv.out_h);
    // SdpOp
    put<std::uint8_t>(os, static_cast<std::uint8_t>(op.sdp.in_precision));
    put<std::uint8_t>(os, static_cast<std::uint8_t>(op.sdp.out_precision));
    put(os, op.sdp.dims.w);
    put(os, op.sdp.dims.h);
    put(os, op.sdp.dims.c);
    put_surface(os, op.sdp.src);
    put_surface(os, op.sdp.dst);
    put<std::uint8_t>(os, op.sdp.bias_enable ? 1 : 0);
    put<std::uint8_t>(os, op.sdp.relu_enable ? 1 : 0);
    put<std::uint8_t>(os, op.sdp.eltwise_enable ? 1 : 0);
    put(os, op.sdp.bias_addr);
    put(os, op.sdp.operand_addr);
    put(os, op.sdp.operand_line_stride);
    put(os, op.sdp.operand_surf_stride);
    put<std::uint8_t>(os, op.sdp.operand_per_element ? 1 : 0);
    put(os, op.sdp.cvt_scale);
    put(os, op.sdp.cvt_shift);
    // PdpOp
    put<std::uint8_t>(os, static_cast<std::uint8_t>(op.pdp.precision));
    put_surface(os, op.pdp.src);
    put_surface(os, op.pdp.dst);
    put(os, op.pdp.kernel_w);
    put(os, op.pdp.kernel_h);
    put(os, op.pdp.stride_x);
    put(os, op.pdp.stride_y);
    put(os, op.pdp.pad_left);
    put(os, op.pdp.pad_top);
    put(os, op.pdp.pad_right);
    put(os, op.pdp.pad_bottom);
    put<std::uint8_t>(os, op.pdp.average ? 1 : 0);
    // CdpOp
    put<std::uint8_t>(os, static_cast<std::uint8_t>(op.cdp.precision));
    put_surface(os, op.cdp.src);
    put_surface(os, op.cdp.dst);
    put(os, op.cdp.local_size);
    put(os, op.cdp.alpha_q16);
    put(os, op.cdp.beta_q16);
    put(os, op.cdp.k_q16);
    put(os, op.cdp.in_scale_q16);
    // BdmaOp
    put(os, op.bdma.src_addr);
    put(os, op.bdma.dst_addr);
    put(os, op.bdma.line_size);
    put(os, op.bdma.line_repeat);
    put(os, op.bdma.src_stride);
    put(os, op.bdma.dst_stride);
  }
}

Loadable Loadable::deserialize(std::istream& is) {
  if (get<std::uint32_t>(is) != kMagic) {
    throw std::runtime_error("loadable: bad magic");
  }
  if (get<std::uint32_t>(is) != kVersion) {
    throw std::runtime_error("loadable: version mismatch");
  }
  Loadable l;
  l.network_name = get_string(is);
  l.precision = static_cast<nvdla::Precision>(get<std::uint8_t>(is));
  l.atom_bytes = get<std::uint32_t>(is);
  l.weight_base = get<Addr>(is);
  l.input_scale = get<float>(is);
  l.output_scale = get<float>(is);
  l.softmax_on_cpu = get<std::uint8_t>(is) != 0;
  l.arena_end = get<std::uint64_t>(is);
  l.input_surface = get_surface(is);
  l.output_surface = get_surface(is);

  const auto blob_size = get<std::uint32_t>(is);
  l.weight_blob.resize(blob_size);
  is.read(reinterpret_cast<char*>(l.weight_blob.data()), blob_size);
  if (!is) throw std::runtime_error("loadable: truncated weight blob");

  const auto num_ops = get<std::uint32_t>(is);
  l.ops.resize(num_ops);
  for (auto& op : l.ops) {
    op.kind = static_cast<HwOpKind>(get<std::uint8_t>(is));
    op.name = get_string(is);
    op.conv.precision = static_cast<nvdla::Precision>(get<std::uint8_t>(is));
    op.conv.input = get_surface(is);
    op.conv.weight_addr = get<Addr>(is);
    op.conv.weight_bytes = get<std::uint32_t>(is);
    op.conv.kernel_w = get<std::uint32_t>(is);
    op.conv.kernel_h = get<std::uint32_t>(is);
    op.conv.kernel_c = get<std::uint32_t>(is);
    op.conv.kernel_k = get<std::uint32_t>(is);
    op.conv.groups = get<std::uint32_t>(is);
    op.conv.pad_left = get<std::uint32_t>(is);
    op.conv.pad_top = get<std::uint32_t>(is);
    op.conv.pad_right = get<std::uint32_t>(is);
    op.conv.pad_bottom = get<std::uint32_t>(is);
    op.conv.stride_x = get<std::uint32_t>(is);
    op.conv.stride_y = get<std::uint32_t>(is);
    op.conv.pad_value = get<std::int32_t>(is);
    op.conv.out_w = get<std::uint32_t>(is);
    op.conv.out_h = get<std::uint32_t>(is);
    op.sdp.in_precision = static_cast<nvdla::Precision>(get<std::uint8_t>(is));
    op.sdp.out_precision =
        static_cast<nvdla::Precision>(get<std::uint8_t>(is));
    op.sdp.dims.w = get<std::uint32_t>(is);
    op.sdp.dims.h = get<std::uint32_t>(is);
    op.sdp.dims.c = get<std::uint32_t>(is);
    op.sdp.src = get_surface(is);
    op.sdp.dst = get_surface(is);
    op.sdp.bias_enable = get<std::uint8_t>(is) != 0;
    op.sdp.relu_enable = get<std::uint8_t>(is) != 0;
    op.sdp.eltwise_enable = get<std::uint8_t>(is) != 0;
    op.sdp.bias_addr = get<Addr>(is);
    op.sdp.operand_addr = get<Addr>(is);
    op.sdp.operand_line_stride = get<std::uint32_t>(is);
    op.sdp.operand_surf_stride = get<std::uint32_t>(is);
    op.sdp.operand_per_element = get<std::uint8_t>(is) != 0;
    op.sdp.cvt_scale = get<std::int32_t>(is);
    op.sdp.cvt_shift = get<std::uint32_t>(is);
    op.pdp.precision = static_cast<nvdla::Precision>(get<std::uint8_t>(is));
    op.pdp.src = get_surface(is);
    op.pdp.dst = get_surface(is);
    op.pdp.kernel_w = get<std::uint32_t>(is);
    op.pdp.kernel_h = get<std::uint32_t>(is);
    op.pdp.stride_x = get<std::uint32_t>(is);
    op.pdp.stride_y = get<std::uint32_t>(is);
    op.pdp.pad_left = get<std::uint32_t>(is);
    op.pdp.pad_top = get<std::uint32_t>(is);
    op.pdp.pad_right = get<std::uint32_t>(is);
    op.pdp.pad_bottom = get<std::uint32_t>(is);
    op.pdp.average = get<std::uint8_t>(is) != 0;
    op.cdp.precision = static_cast<nvdla::Precision>(get<std::uint8_t>(is));
    op.cdp.src = get_surface(is);
    op.cdp.dst = get_surface(is);
    op.cdp.local_size = get<std::uint32_t>(is);
    op.cdp.alpha_q16 = get<std::uint32_t>(is);
    op.cdp.beta_q16 = get<std::uint32_t>(is);
    op.cdp.k_q16 = get<std::uint32_t>(is);
    op.cdp.in_scale_q16 = get<std::uint32_t>(is);
    op.bdma.src_addr = get<Addr>(is);
    op.bdma.dst_addr = get<Addr>(is);
    op.bdma.line_size = get<std::uint32_t>(is);
    op.bdma.line_repeat = get<std::uint32_t>(is);
    op.bdma.src_stride = get<std::uint32_t>(is);
    op.bdma.dst_stride = get<std::uint32_t>(is);
  }
  return l;
}

std::vector<std::uint8_t> Loadable::to_bytes() const {
  std::ostringstream os(std::ios::binary);
  serialize(os);
  const std::string s = os.str();
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

Loadable Loadable::from_bytes(std::span<const std::uint8_t> bytes) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
      std::ios::binary);
  return deserialize(is);
}

}  // namespace nvsoc::compiler
