#include "compiler/prototxt.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/strfmt.hpp"

namespace nvsoc::compiler {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer for the protobuf text format subset Caffe uses.
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kString, kNumber, kColon, kLBrace, kRBrace, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0.0;
  std::size_t line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token next() {
    skip_ws_and_comments();
    Token tok;
    tok.line = line_;
    if (pos_ >= text_.size()) return tok;  // kEnd
    const char c = text_[pos_];
    if (c == ':') { ++pos_; tok.kind = TokKind::kColon; return tok; }
    if (c == '{') { ++pos_; tok.kind = TokKind::kLBrace; return tok; }
    if (c == '}') { ++pos_; tok.kind = TokKind::kRBrace; return tok; }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        tok.text.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) {
        throw PrototxtError(strfmt("line {}: unterminated string", line_));
      }
      ++pos_;
      tok.kind = TokKind::kString;
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+' || c == '.') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      tok.text = text_.substr(start, pos_ - start);
      try {
        tok.number = std::stod(tok.text);
      } catch (const std::exception&) {
        throw PrototxtError(strfmt("line {}: bad number '{}'", line_,
                                   tok.text));
      }
      tok.kind = TokKind::kNumber;
      return tok;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      tok.text = text_.substr(start, pos_ - start);
      tok.kind = TokKind::kIdent;
      return tok;
    }
    throw PrototxtError(strfmt("line {}: unexpected character '{}'", line_, c));
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') { ++line_; ++pos_; continue; }
      if (std::isspace(static_cast<unsigned char>(c))) { ++pos_; continue; }
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

// ---------------------------------------------------------------------------
// Generic message tree (field -> scalar values and sub-messages).
// ---------------------------------------------------------------------------

struct Message {
  std::multimap<std::string, std::string> scalars;  // strings/idents/numbers
  std::multimap<std::string, Message> children;
  std::size_t line = 0;

  std::optional<std::string> scalar(const std::string& key) const {
    const auto it = scalars.find(key);
    if (it == scalars.end()) return std::nullopt;
    return it->second;
  }
  std::vector<std::string> all(const std::string& key) const {
    std::vector<std::string> out;
    const auto [lo, hi] = scalars.equal_range(key);
    for (auto it = lo; it != hi; ++it) out.push_back(it->second);
    return out;
  }
  const Message* child(const std::string& key) const {
    const auto it = children.find(key);
    return it == children.end() ? nullptr : &it->second;
  }
  std::uint32_t u32(const std::string& key, std::uint32_t fallback) const {
    const auto v = scalar(key);
    return v ? static_cast<std::uint32_t>(std::stoul(*v)) : fallback;
  }
  float f32(const std::string& key, float fallback) const {
    const auto v = scalar(key);
    return v ? std::stof(*v) : fallback;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) { advance(); }

  Message parse_top() {
    Message top;
    while (current_.kind != TokKind::kEnd) parse_field(top);
    return top;
  }

 private:
  void advance() { current_ = lexer_.next(); }

  void expect(TokKind kind, const char* what) {
    if (current_.kind != kind) {
      throw PrototxtError(strfmt("line {}: expected {}", current_.line, what));
    }
  }

  void parse_field(Message& into) {
    expect(TokKind::kIdent, "field name");
    const std::string key = current_.text;
    const std::size_t line = current_.line;
    advance();
    if (current_.kind == TokKind::kColon) {
      advance();
      if (current_.kind == TokKind::kLBrace) {  // `field: { ... }` form
        Message child = parse_message();
        child.line = line;
        into.children.emplace(key, std::move(child));
        return;
      }
      if (current_.kind != TokKind::kString &&
          current_.kind != TokKind::kNumber &&
          current_.kind != TokKind::kIdent) {
        throw PrototxtError(strfmt("line {}: expected value for '{}'",
                                   current_.line, key));
      }
      into.scalars.emplace(key, current_.text);
      advance();
      return;
    }
    expect(TokKind::kLBrace, "':' or '{'");
    Message child = parse_message();
    child.line = line;
    into.children.emplace(key, std::move(child));
  }

  Message parse_message() {
    expect(TokKind::kLBrace, "'{'");
    advance();
    Message msg;
    while (current_.kind != TokKind::kRBrace) {
      if (current_.kind == TokKind::kEnd) {
        throw PrototxtError("unexpected end of input inside message");
      }
      parse_field(msg);
    }
    advance();  // consume '}'
    return msg;
  }

  Lexer lexer_;
  Token current_;
};

// ---------------------------------------------------------------------------
// Message tree -> Network
// ---------------------------------------------------------------------------

[[noreturn]] void fail_layer(const Message& layer, const std::string& msg) {
  throw PrototxtError(strfmt("line {}: {}", layer.line, msg));
}

BlobShape input_shape_of(const Message& top) {
  // Form 1: `input_shape { dim: 1 dim: 3 dim: 224 dim: 224 }`
  // (possibly inside an explicit Input layer's input_param).
  const auto dims_from = [](const Message& shape) {
    const auto dims = shape.all("dim");
    if (dims.size() != 4) {
      throw PrototxtError("input_shape must have 4 dims (N C H W)");
    }
    return BlobShape{static_cast<std::uint32_t>(std::stoul(dims[1])),
                     static_cast<std::uint32_t>(std::stoul(dims[2])),
                     static_cast<std::uint32_t>(std::stoul(dims[3]))};
  };
  if (const Message* shape = top.child("input_shape")) {
    return dims_from(*shape);
  }
  // Form 2: top-level `input_dim:` repeated 4 times.
  const auto dims = top.all("input_dim");
  if (dims.size() == 4) {
    return BlobShape{static_cast<std::uint32_t>(std::stoul(dims[1])),
                     static_cast<std::uint32_t>(std::stoul(dims[2])),
                     static_cast<std::uint32_t>(std::stoul(dims[3]))};
  }
  // Form 3: a layer { type: "Input" input_param { shape { dim... } } }.
  const auto [lo, hi] = top.children.equal_range("layer");
  for (auto it = lo; it != hi; ++it) {
    if (it->second.scalar("type").value_or("") != "Input") continue;
    if (const Message* param = it->second.child("input_param")) {
      if (const Message* shape = param->child("shape")) {
        return dims_from(*shape);
      }
    }
  }
  throw PrototxtError(
      "no input declaration found (input_shape / input_dim / Input layer)");
}

std::string input_blob_of(const Message& top) {
  if (const auto name = top.scalar("input")) return *name;
  const auto [lo, hi] = top.children.equal_range("layer");
  for (auto it = lo; it != hi; ++it) {
    if (it->second.scalar("type").value_or("") == "Input") {
      return it->second.scalar("top").value_or("data");
    }
  }
  return "data";
}

}  // namespace

Network parse_prototxt(const std::string& text) {
  Parser parser(text);
  const Message top = parser.parse_top();

  Network net(top.scalar("name").value_or("network"), input_shape_of(top),
              input_blob_of(top));

  // Caffe allows in-place layers (top == bottom) and deploy-time no-ops
  // (Dropout); `alias` maps prototxt blob names to IR blob names.
  std::map<std::string, std::string> alias;
  const auto resolve = [&](const std::string& blob) {
    const auto it = alias.find(blob);
    return it == alias.end() ? blob : it->second;
  };

  const auto [lo, hi] = top.children.equal_range("layer");
  for (auto it = lo; it != hi; ++it) {
    const Message& layer = it->second;
    const std::string type = layer.scalar("type").value_or("");
    const std::string name =
        layer.scalar("name").value_or(strfmt("layer_{}", layer.line));
    if (type == "Input") continue;

    std::vector<std::string> bottoms;
    for (const auto& b : layer.all("bottom")) bottoms.push_back(resolve(b));
    const std::string top_blob = layer.scalar("top").value_or(name);

    // Deploy-time no-ops: alias the top to the (resolved) bottom.
    if (type == "Dropout" || type == "Split") {
      if (bottoms.empty()) fail_layer(layer, type + " needs a bottom");
      alias[top_blob] = bottoms[0];
      continue;
    }
    if (bottoms.empty() && type != "Input") {
      fail_layer(layer, "layer '" + name + "' has no bottom");
    }

    std::string produced;
    if (type == "Convolution") {
      const Message* p = layer.child("convolution_param");
      if (p == nullptr) fail_layer(layer, "missing convolution_param");
      ConvParams conv;
      conv.num_output = p->u32("num_output", 0);
      const std::uint32_t k = p->u32("kernel_size", 1);
      conv.kernel_h = p->u32("kernel_h", k);
      conv.kernel_w = p->u32("kernel_w", k);
      const std::uint32_t s = p->u32("stride", 1);
      conv.stride_h = p->u32("stride_h", s);
      conv.stride_w = p->u32("stride_w", s);
      const std::uint32_t pad = p->u32("pad", 0);
      conv.pad_h = p->u32("pad_h", pad);
      conv.pad_w = p->u32("pad_w", pad);
      conv.groups = p->u32("group", 1);
      conv.bias_term = p->scalar("bias_term").value_or("true") != "false";
      produced = net.add_conv(name, bottoms.at(0), conv);
    } else if (type == "InnerProduct") {
      const Message* p = layer.child("inner_product_param");
      if (p == nullptr) fail_layer(layer, "missing inner_product_param");
      const bool bias = p->scalar("bias_term").value_or("true") != "false";
      produced = net.add_inner_product(name, bottoms.at(0),
                                       p->u32("num_output", 0), bias);
    } else if (type == "Pooling") {
      const Message* p = layer.child("pooling_param");
      if (p == nullptr) fail_layer(layer, "missing pooling_param");
      PoolParams pool;
      const std::string method = p->scalar("pool").value_or("MAX");
      if (method == "MAX") pool.method = PoolParams::Method::kMax;
      else if (method == "AVE") pool.method = PoolParams::Method::kAve;
      else fail_layer(layer, "unsupported pooling method " + method);
      pool.global = p->scalar("global_pooling").value_or("false") == "true";
      const std::uint32_t k = p->u32("kernel_size", 2);
      pool.kernel_h = p->u32("kernel_h", k);
      pool.kernel_w = p->u32("kernel_w", k);
      const std::uint32_t s = p->u32("stride", 1);
      pool.stride_h = p->u32("stride_h", s);
      pool.stride_w = p->u32("stride_w", s);
      const std::uint32_t pad = p->u32("pad", 0);
      pool.pad_h = p->u32("pad_h", pad);
      pool.pad_w = p->u32("pad_w", pad);
      produced = net.add_pool(name, bottoms.at(0), pool);
    } else if (type == "ReLU") {
      produced = net.add_relu(name, bottoms.at(0));
    } else if (type == "BatchNorm") {
      produced = net.add_batch_norm(name, bottoms.at(0));
    } else if (type == "Scale") {
      produced = net.add_scale(name, bottoms.at(0));
    } else if (type == "Eltwise") {
      if (const Message* p = layer.child("eltwise_param")) {
        const std::string op = p->scalar("operation").value_or("SUM");
        if (op != "SUM") fail_layer(layer, "only Eltwise SUM is supported");
      }
      if (bottoms.size() != 2) {
        fail_layer(layer, "Eltwise needs exactly 2 bottoms");
      }
      produced = net.add_eltwise_sum(name, bottoms[0], bottoms[1]);
    } else if (type == "Concat") {
      produced = net.add_concat(name, bottoms);
    } else if (type == "LRN") {
      LrnParams lrn;
      if (const Message* p = layer.child("lrn_param")) {
        lrn.local_size = p->u32("local_size", 5);
        lrn.alpha = p->f32("alpha", 1e-4f);
        lrn.beta = p->f32("beta", 0.75f);
        lrn.k = p->f32("k", 1.0f);
      }
      produced = net.add_lrn(name, bottoms.at(0), lrn);
    } else if (type == "Softmax") {
      produced = net.add_softmax(name, bottoms.at(0));
    } else {
      fail_layer(layer, "unsupported layer type '" + type + "'");
    }

    // In-place or renamed tops: future references to `top_blob` must see
    // the IR blob this layer produced.
    if (top_blob != produced) alias[top_blob] = produced;
  }
  return net;
}

// ---------------------------------------------------------------------------
// Network -> prototxt text
// ---------------------------------------------------------------------------

std::string write_prototxt(const Network& net) {
  std::ostringstream os;
  os << "name: \"" << net.name() << "\"\n";
  os << "input: \"" << net.input_blob() << "\"\n";
  os << "input_shape { dim: 1 dim: " << net.input_shape().c << " dim: "
     << net.input_shape().h << " dim: " << net.input_shape().w << " }\n";

  for (const auto& layer : net.layers()) {
    os << "layer {\n";
    os << "  name: \"" << layer.name << "\"\n";
    os << "  type: \"" << layer_kind_name(layer.kind) << "\"\n";
    for (const auto& bottom : layer.bottoms) {
      os << "  bottom: \"" << bottom << "\"\n";
    }
    os << "  top: \"" << layer.top << "\"\n";
    switch (layer.kind) {
      case LayerKind::kConvolution:
        os << "  convolution_param {\n";
        os << "    num_output: " << layer.conv.num_output << "\n";
        os << "    kernel_h: " << layer.conv.kernel_h << "\n";
        os << "    kernel_w: " << layer.conv.kernel_w << "\n";
        os << "    stride_h: " << layer.conv.stride_h << "\n";
        os << "    stride_w: " << layer.conv.stride_w << "\n";
        os << "    pad_h: " << layer.conv.pad_h << "\n";
        os << "    pad_w: " << layer.conv.pad_w << "\n";
        if (layer.conv.groups > 1) {
          os << "    group: " << layer.conv.groups << "\n";
        }
        if (!layer.conv.bias_term) os << "    bias_term: false\n";
        os << "  }\n";
        break;
      case LayerKind::kInnerProduct:
        os << "  inner_product_param { num_output: "
           << layer.conv.num_output;
        if (!layer.conv.bias_term) os << " bias_term: false";
        os << " }\n";
        break;
      case LayerKind::kPooling:
        os << "  pooling_param { pool: "
           << (layer.pool.method == PoolParams::Method::kMax ? "MAX" : "AVE");
        if (layer.pool.global) {
          os << " global_pooling: true";
        } else {
          os << " kernel_h: " << layer.pool.kernel_h << " kernel_w: "
             << layer.pool.kernel_w << " stride_h: " << layer.pool.stride_h
             << " stride_w: " << layer.pool.stride_w;
          if (layer.pool.pad_h || layer.pool.pad_w) {
            os << " pad_h: " << layer.pool.pad_h << " pad_w: "
               << layer.pool.pad_w;
          }
        }
        os << " }\n";
        break;
      case LayerKind::kEltwise:
        os << "  eltwise_param { operation: SUM }\n";
        break;
      case LayerKind::kLrn:
        os << "  lrn_param { local_size: " << layer.lrn.local_size
           << " alpha: " << layer.lrn.alpha << " beta: " << layer.lrn.beta
           << " k: " << layer.lrn.k << " }\n";
        break;
      default:
        break;
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace nvsoc::compiler
