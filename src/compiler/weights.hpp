// Trained-parameter container plus a deterministic synthetic initialiser.
//
// Substitution note (DESIGN.md §2): the paper uses Caffe model-zoo weights;
// offline we generate deterministic He-initialised weights instead. All
// correctness claims are FP32-reference-vs-NVDLA comparisons on the same
// parameters, so the substitution does not weaken validation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compiler/network.hpp"

namespace nvsoc::compiler {

struct LayerWeights {
  /// Convolution/InnerProduct: [k][c/groups][kh][kw] row-major.
  /// BatchNorm: running mean (size C). Scale: gamma (size C).
  std::vector<float> weights;
  /// Convolution/InnerProduct: bias (size K).
  /// BatchNorm: running variance (size C). Scale: beta (size C).
  std::vector<float> bias;
};

class NetWeights {
 public:
  const LayerWeights& at(const std::string& layer) const;
  LayerWeights& at(const std::string& layer);
  bool contains(const std::string& layer) const {
    return by_layer_.contains(layer);
  }
  void set(const std::string& layer, LayerWeights weights) {
    by_layer_[layer] = std::move(weights);
  }

  const std::map<std::string, LayerWeights>& all() const { return by_layer_; }

  /// Deterministic synthetic parameters for every parameterised layer:
  /// He-scaled Gaussians for conv/FC weights, near-identity BatchNorm/Scale.
  static NetWeights synthetic(const Network& network, std::uint64_t seed);

 private:
  std::map<std::string, LayerWeights> by_layer_;
};

/// A deterministic synthetic input image in planar [c][h][w] order with
/// values in [-1, 1] (stands in for the preprocessed test image the paper
/// loads into DRAM).
std::vector<float> synthetic_input(const BlobShape& shape,
                                   std::uint64_t seed);

}  // namespace nvsoc::compiler
