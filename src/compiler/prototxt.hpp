// Caffe .prototxt front-end.
//
// The paper's flow starts from "arbitrary Caffe-based neural networks";
// this module reads the deploy-prototxt text format (the protobuf
// text-format subset Caffe uses) into the network IR and writes IR back
// out, so real model descriptions can be dropped into the toolflow and the
// built-in zoo can be exported for inspection.
//
// Supported layer types: Input (or top-level input/input_dim/input_shape),
// Convolution, InnerProduct, Pooling, ReLU, BatchNorm, Scale, Eltwise
// (SUM), Concat, LRN, Softmax, and Dropout (a deploy-time no-op that is
// skipped with blob aliasing). Caffe's in-place layers (top == bottom) are
// handled by blob renaming.
#pragma once

#include <stdexcept>
#include <string>

#include "compiler/network.hpp"

namespace nvsoc::compiler {

class PrototxtError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse prototxt text into a Network. Throws PrototxtError with a line
/// number on malformed input or unsupported layers.
Network parse_prototxt(const std::string& text);

/// Render a Network as deploy-prototxt text (round-trips through
/// parse_prototxt, modulo in-place blob naming).
std::string write_prototxt(const Network& network);

}  // namespace nvsoc::compiler
