// FP32 reference executor over the network IR.
//
// Serves three roles:
//   * ground truth when validating NVDLA INT8/FP16 output,
//   * activation-range provider for INT8 calibration (future-work feature
//     §1 of the paper),
//   * the "golden model" examples compare against.
// Tensors are planar [c][h][w] float vectors.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "compiler/network.hpp"
#include "compiler/weights.hpp"

namespace nvsoc::compiler {

class ReferenceExecutor {
 public:
  ReferenceExecutor(const Network& network, const NetWeights& weights)
      : network_(network), weights_(weights) {}

  /// Run the whole network; returns every blob's activation tensor
  /// (including the input blob).
  std::map<std::string, std::vector<float>> run(
      std::span<const float> input) const;

  /// Convenience: just the named blob (default: last layer's top).
  std::vector<float> run_to(std::span<const float> input,
                            const std::string& blob = "") const;

 private:
  const Network& network_;
  const NetWeights& weights_;
};

/// Index of the maximum element (classification result).
std::size_t argmax(std::span<const float> values);

}  // namespace nvsoc::compiler
