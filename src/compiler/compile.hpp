// The NVDLA compiler: lowers a Caffe-style network into a Loadable.
//
// Responsibilities (mirroring the real nvdla_compiler the paper's flow
// invokes):
//   * graph fusion: BatchNorm/Scale folded into the preceding convolution's
//     weights, ReLU fused into the SDP tail, residual element-wise adds
//     fused as the SDP X-operand, InnerProduct lowered to a full-spatial
//     convolution, Concat lowered to channel-offset destination aliasing;
//   * INT8 quantisation from a calibration table (symmetric per-tensor),
//     per-layer weight scales and SDP output-converter (scale, shift)
//     selection, int32 bias tables; or the FP16 path for nv_full;
//   * DRAM placement of the input cube, every activation cube and the
//     packed parameter blob.
#pragma once

#include "compiler/calibration.hpp"
#include "compiler/loadable.hpp"
#include "compiler/network.hpp"
#include "compiler/weights.hpp"
#include "nvdla/config.hpp"

namespace nvsoc::compiler {

struct CompileOptions {
  nvdla::Precision precision = nvdla::Precision::kInt8;
  std::uint32_t atom_bytes = 8;  ///< from the target NvdlaConfig
  Addr arena_base = 0;           ///< DRAM-relative base of all placements

  static CompileOptions for_config(const nvdla::NvdlaConfig& config,
                                   nvdla::Precision precision) {
    CompileOptions o;
    o.precision = precision;
    o.atom_bytes = config.atom_bytes;
    return o;
  }
};

/// Compile `network` for NVDLA. `calibration` is required for the INT8
/// path and ignored for FP16. Throws std::runtime_error on unsupported
/// graph patterns (e.g. standalone BatchNorm with no preceding conv).
Loadable compile(const Network& network, const NetWeights& weights,
                 const CalibrationTable* calibration, CompileOptions options);

}  // namespace nvsoc::compiler
