// Caffe-style network intermediate representation.
//
// The paper's toolflow starts from a trained Caffe model (prototxt +
// caffemodel). This IR captures the layer vocabulary those models use
// (Convolution, InnerProduct, Pooling, ReLU, BatchNorm, Scale, Eltwise,
// Concat, LRN, Softmax) with Caffe semantics, plus shape inference. Model
// builders in src/models construct LeNet-5, ResNet-18/50, MobileNet,
// GoogleNet and AlexNet directly in this IR.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace nvsoc::compiler {

enum class LayerKind : std::uint8_t {
  kInput = 0,
  kConvolution,
  kInnerProduct,
  kPooling,
  kReLU,
  kBatchNorm,
  kScale,
  kEltwise,   // element-wise sum
  kConcat,    // channel concatenation
  kLrn,
  kSoftmax,
};

const char* layer_kind_name(LayerKind kind);

/// Blob shape in Caffe NCHW order with N == 1 (single-image inference).
struct BlobShape {
  std::uint32_t c = 0;
  std::uint32_t h = 0;
  std::uint32_t w = 0;

  std::uint64_t elements() const {
    return static_cast<std::uint64_t>(c) * h * w;
  }
  friend bool operator==(const BlobShape&, const BlobShape&) = default;
};

struct ConvParams {
  std::uint32_t num_output = 0;
  std::uint32_t kernel_h = 1, kernel_w = 1;
  std::uint32_t stride_h = 1, stride_w = 1;
  std::uint32_t pad_h = 0, pad_w = 0;
  std::uint32_t groups = 1;
  bool bias_term = true;
};

struct PoolParams {
  enum class Method : std::uint8_t { kMax = 0, kAve = 1 };
  Method method = Method::kMax;
  std::uint32_t kernel_h = 2, kernel_w = 2;
  std::uint32_t stride_h = 2, stride_w = 2;
  std::uint32_t pad_h = 0, pad_w = 0;
  bool global = false;  ///< global pooling: kernel covers the full plane
};

struct LrnParams {
  std::uint32_t local_size = 5;
  float alpha = 1e-4f;
  float beta = 0.75f;
  float k = 1.0f;
};

struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kInput;
  std::vector<std::string> bottoms;  ///< input blob names
  std::string top;                   ///< output blob name

  ConvParams conv;    ///< kConvolution / kInnerProduct (num_output only)
  PoolParams pool;    ///< kPooling
  LrnParams lrn;      ///< kLrn
  float bn_epsilon = 1e-5f;  ///< kBatchNorm
};

/// A network: ordered layers plus the input blob declaration. Blob names
/// are unique; layers are topologically ordered by construction.
class Network {
 public:
  Network(std::string name, BlobShape input_shape,
          std::string input_blob = "data");

  const std::string& name() const { return name_; }
  const BlobShape& input_shape() const { return input_shape_; }
  const std::string& input_blob() const { return input_blob_; }

  // --- builders (return the output blob name for chaining) ---------------
  std::string add_conv(const std::string& name, const std::string& bottom,
                       ConvParams params);
  std::string add_inner_product(const std::string& name,
                                const std::string& bottom,
                                std::uint32_t num_output,
                                bool bias_term = true);
  std::string add_pool(const std::string& name, const std::string& bottom,
                       PoolParams params);
  /// In-place ReLU (Caffe convention: top == bottom allowed; we keep a
  /// distinct top name for graph clarity).
  std::string add_relu(const std::string& name, const std::string& bottom);
  std::string add_batch_norm(const std::string& name,
                             const std::string& bottom);
  std::string add_scale(const std::string& name, const std::string& bottom);
  std::string add_eltwise_sum(const std::string& name, const std::string& a,
                              const std::string& b);
  std::string add_concat(const std::string& name,
                         const std::vector<std::string>& bottoms);
  std::string add_lrn(const std::string& name, const std::string& bottom,
                      LrnParams params);
  std::string add_softmax(const std::string& name, const std::string& bottom);

  const std::vector<Layer>& layers() const { return layers_; }
  const Layer& layer(const std::string& name) const;

  /// Number of Caffe layers including the input declaration (the counting
  /// convention behind the "Layers" column of Table II).
  std::size_t layer_count() const { return layers_.size() + 1; }

  /// Shape of any blob (input or a layer top). Computed on construction.
  const BlobShape& blob_shape(const std::string& blob) const;
  bool has_blob(const std::string& blob) const;

  /// Producing layer of a blob (nullopt for the input blob).
  std::optional<std::string> producer_of(const std::string& blob) const;

  /// Parameter count (conv/FC weights + biases + BN/Scale params).
  std::uint64_t parameter_count() const;
  /// Caffe .caffemodel equivalent size: parameters in fp32.
  std::uint64_t model_size_bytes() const { return parameter_count() * 4; }

 private:
  Layer& append(Layer layer);
  void infer_shape(const Layer& layer);

  std::string name_;
  BlobShape input_shape_;
  std::string input_blob_;
  std::vector<Layer> layers_;
  std::map<std::string, BlobShape> blob_shapes_;
  std::map<std::string, std::string> blob_producer_;
};

}  // namespace nvsoc::compiler
