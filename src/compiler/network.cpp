#include "compiler/network.hpp"

#include <stdexcept>

#include "common/strfmt.hpp"

namespace nvsoc::compiler {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput: return "Input";
    case LayerKind::kConvolution: return "Convolution";
    case LayerKind::kInnerProduct: return "InnerProduct";
    case LayerKind::kPooling: return "Pooling";
    case LayerKind::kReLU: return "ReLU";
    case LayerKind::kBatchNorm: return "BatchNorm";
    case LayerKind::kScale: return "Scale";
    case LayerKind::kEltwise: return "Eltwise";
    case LayerKind::kConcat: return "Concat";
    case LayerKind::kLrn: return "LRN";
    case LayerKind::kSoftmax: return "Softmax";
  }
  return "Unknown";
}

Network::Network(std::string name, BlobShape input_shape,
                 std::string input_blob)
    : name_(std::move(name)),
      input_shape_(input_shape),
      input_blob_(std::move(input_blob)) {
  blob_shapes_[input_blob_] = input_shape_;
}

Layer& Network::append(Layer layer) {
  for (const auto& bottom : layer.bottoms) {
    if (!blob_shapes_.contains(bottom)) {
      throw std::runtime_error(strfmt("layer '{}': unknown bottom blob '{}'",
                                      layer.name, bottom));
    }
  }
  if (blob_shapes_.contains(layer.top)) {
    throw std::runtime_error(
        strfmt("layer '{}': top blob '{}' already exists", layer.name,
               layer.top));
  }
  for (const auto& existing : layers_) {
    if (existing.name == layer.name) {
      throw std::runtime_error("duplicate layer name " + layer.name);
    }
  }
  infer_shape(layer);
  blob_producer_[layer.top] = layer.name;
  layers_.push_back(std::move(layer));
  return layers_.back();
}

void Network::infer_shape(const Layer& layer) {
  const auto bottom_shape = [&](std::size_t i) -> const BlobShape& {
    return blob_shapes_.at(layer.bottoms.at(i));
  };
  BlobShape out;
  switch (layer.kind) {
    case LayerKind::kInput:
      out = input_shape_;
      break;
    case LayerKind::kConvolution: {
      const BlobShape& in = bottom_shape(0);
      if (in.c % layer.conv.groups != 0) {
        throw std::runtime_error(strfmt(
            "layer '{}': channels {} not divisible by groups {}", layer.name,
            in.c, layer.conv.groups));
      }
      if (layer.conv.num_output % layer.conv.groups != 0) {
        throw std::runtime_error(strfmt(
            "layer '{}': num_output {} not divisible by groups {}",
            layer.name, layer.conv.num_output, layer.conv.groups));
      }
      if (in.h + 2 * layer.conv.pad_h < layer.conv.kernel_h ||
          in.w + 2 * layer.conv.pad_w < layer.conv.kernel_w) {
        throw std::runtime_error(
            strfmt("layer '{}': kernel larger than padded input",
                   layer.name));
      }
      out.c = layer.conv.num_output;
      out.h = (in.h + 2 * layer.conv.pad_h - layer.conv.kernel_h) /
                  layer.conv.stride_h + 1;
      out.w = (in.w + 2 * layer.conv.pad_w - layer.conv.kernel_w) /
                  layer.conv.stride_w + 1;
      break;
    }
    case LayerKind::kInnerProduct:
      out = BlobShape{layer.conv.num_output, 1, 1};
      break;
    case LayerKind::kPooling: {
      const BlobShape& in = bottom_shape(0);
      PoolParams p = layer.pool;
      if (p.global) {
        out = BlobShape{in.c, 1, 1};
        break;
      }
      // Caffe pooling uses ceil-mode output sizing.
      out.c = in.c;
      out.h = static_cast<std::uint32_t>(
                  (in.h + 2 * p.pad_h - p.kernel_h + p.stride_h - 1) /
                  p.stride_h) + 1;
      out.w = static_cast<std::uint32_t>(
                  (in.w + 2 * p.pad_w - p.kernel_w + p.stride_w - 1) /
                  p.stride_w) + 1;
      // Caffe clips windows that start entirely in padding.
      if ((out.h - 1) * p.stride_h >= in.h + p.pad_h) --out.h;
      if ((out.w - 1) * p.stride_w >= in.w + p.pad_w) --out.w;
      break;
    }
    case LayerKind::kReLU:
    case LayerKind::kBatchNorm:
    case LayerKind::kScale:
    case LayerKind::kLrn:
    case LayerKind::kSoftmax:
      out = bottom_shape(0);
      break;
    case LayerKind::kEltwise: {
      const BlobShape& a = bottom_shape(0);
      const BlobShape& b = bottom_shape(1);
      if (!(a == b)) {
        throw std::runtime_error(
            strfmt("layer '{}': eltwise operand shapes differ", layer.name));
      }
      out = a;
      break;
    }
    case LayerKind::kConcat: {
      out = bottom_shape(0);
      out.c = 0;
      for (std::size_t i = 0; i < layer.bottoms.size(); ++i) {
        const BlobShape& in = bottom_shape(i);
        if (in.h != bottom_shape(0).h || in.w != bottom_shape(0).w) {
          throw std::runtime_error(
              strfmt("layer '{}': concat spatial dims differ", layer.name));
        }
        out.c += in.c;
      }
      break;
    }
  }
  blob_shapes_[layer.top] = out;
}

std::string Network::add_conv(const std::string& name,
                              const std::string& bottom, ConvParams params) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kConvolution;
  layer.bottoms = {bottom};
  layer.top = name;
  layer.conv = params;
  return append(std::move(layer)).top;
}

std::string Network::add_inner_product(const std::string& name,
                                       const std::string& bottom,
                                       std::uint32_t num_output,
                                       bool bias_term) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kInnerProduct;
  layer.bottoms = {bottom};
  layer.top = name;
  layer.conv.num_output = num_output;
  layer.conv.bias_term = bias_term;
  return append(std::move(layer)).top;
}

std::string Network::add_pool(const std::string& name,
                              const std::string& bottom, PoolParams params) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kPooling;
  layer.bottoms = {bottom};
  layer.top = name;
  layer.pool = params;
  return append(std::move(layer)).top;
}

std::string Network::add_relu(const std::string& name,
                              const std::string& bottom) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kReLU;
  layer.bottoms = {bottom};
  layer.top = name;
  return append(std::move(layer)).top;
}

std::string Network::add_batch_norm(const std::string& name,
                                    const std::string& bottom) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kBatchNorm;
  layer.bottoms = {bottom};
  layer.top = name;
  return append(std::move(layer)).top;
}

std::string Network::add_scale(const std::string& name,
                               const std::string& bottom) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kScale;
  layer.bottoms = {bottom};
  layer.top = name;
  return append(std::move(layer)).top;
}

std::string Network::add_eltwise_sum(const std::string& name,
                                     const std::string& a,
                                     const std::string& b) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kEltwise;
  layer.bottoms = {a, b};
  layer.top = name;
  return append(std::move(layer)).top;
}

std::string Network::add_concat(const std::string& name,
                                const std::vector<std::string>& bottoms) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kConcat;
  layer.bottoms = bottoms;
  layer.top = name;
  return append(std::move(layer)).top;
}

std::string Network::add_lrn(const std::string& name,
                             const std::string& bottom, LrnParams params) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kLrn;
  layer.bottoms = {bottom};
  layer.top = name;
  layer.lrn = params;
  return append(std::move(layer)).top;
}

std::string Network::add_softmax(const std::string& name,
                                 const std::string& bottom) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kSoftmax;
  layer.bottoms = {bottom};
  layer.top = name;
  return append(std::move(layer)).top;
}

const Layer& Network::layer(const std::string& name) const {
  for (const auto& l : layers_) {
    if (l.name == name) return l;
  }
  throw std::runtime_error("no such layer: " + name);
}

const BlobShape& Network::blob_shape(const std::string& blob) const {
  const auto it = blob_shapes_.find(blob);
  if (it == blob_shapes_.end()) {
    throw std::runtime_error("no such blob: " + blob);
  }
  return it->second;
}

bool Network::has_blob(const std::string& blob) const {
  return blob_shapes_.contains(blob);
}

std::optional<std::string> Network::producer_of(const std::string& blob) const {
  const auto it = blob_producer_.find(blob);
  if (it == blob_producer_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t Network::parameter_count() const {
  std::uint64_t count = 0;
  for (const auto& layer : layers_) {
    switch (layer.kind) {
      case LayerKind::kConvolution: {
        const BlobShape& in = blob_shape(layer.bottoms[0]);
        const std::uint64_t weights =
            static_cast<std::uint64_t>(layer.conv.num_output) *
            (in.c / layer.conv.groups) * layer.conv.kernel_h *
            layer.conv.kernel_w;
        count += weights + (layer.conv.bias_term ? layer.conv.num_output : 0);
        break;
      }
      case LayerKind::kInnerProduct: {
        const BlobShape& in = blob_shape(layer.bottoms[0]);
        count += static_cast<std::uint64_t>(layer.conv.num_output) *
                     in.elements() +
                 (layer.conv.bias_term ? layer.conv.num_output : 0);
        break;
      }
      case LayerKind::kBatchNorm: {
        count += 2ull * blob_shape(layer.bottoms[0]).c;  // mean + variance
        break;
      }
      case LayerKind::kScale: {
        count += 2ull * blob_shape(layer.bottoms[0]).c;  // gamma + beta
        break;
      }
      default:
        break;
    }
  }
  return count;
}

}  // namespace nvsoc::compiler
