#include "compiler/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "compiler/reference.hpp"

namespace nvsoc::compiler {

namespace {
constexpr float kMinScale = 1e-6f;
}

float CalibrationTable::blob_scale(const std::string& blob) const {
  const auto it = scales_.find(blob);
  if (it == scales_.end()) {
    throw std::runtime_error("calibration table has no blob " + blob);
  }
  return it->second;
}

void CalibrationTable::set_blob_scale(const std::string& blob, float scale) {
  scales_[blob] = std::max(scale, kMinScale);
}

std::string CalibrationTable::to_text() const {
  std::ostringstream os;
  os << "# nvsoc INT8 calibration table: blob max-abs/127 scales\n";
  for (const auto& [blob, scale] : scales_) {
    os << blob << ' ' << scale << '\n';
  }
  return os.str();
}

CalibrationTable CalibrationTable::from_text(const std::string& text) {
  CalibrationTable table;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string blob;
    float scale = 0.0f;
    if (!(ls >> blob >> scale)) {
      throw std::runtime_error("bad calibration line: " + line);
    }
    table.set_blob_scale(blob, scale);
  }
  return table;
}

CalibrationTable calibrate(const Network& network, const NetWeights& weights,
                           std::span<const std::vector<float>> inputs) {
  if (inputs.empty()) {
    throw std::runtime_error("calibration needs at least one input");
  }
  ReferenceExecutor reference(network, weights);

  std::map<std::string, float> max_abs;
  for (const auto& input : inputs) {
    const auto blobs = reference.run(input);
    for (const auto& [name, tensor] : blobs) {
      float m = max_abs.contains(name) ? max_abs[name] : 0.0f;
      for (const float v : tensor) m = std::max(m, std::fabs(v));
      max_abs[name] = m;
    }
  }

  CalibrationTable table;
  for (const auto& [name, m] : max_abs) {
    table.set_blob_scale(name, m / 127.0f);
  }

  // Unify scale groups: element-wise operands and their result share one
  // arithmetic domain; concat inputs share the output cube. A following
  // in-place ReLU stores into the same domain, so it joins its bottom's
  // group. Iterate to a fixed point (groups can chain through ReLUs).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& layer : network.layers()) {
      std::vector<std::string> group;
      if (layer.kind == LayerKind::kEltwise ||
          layer.kind == LayerKind::kConcat) {
        group = layer.bottoms;
        group.push_back(layer.top);
      } else if (layer.kind == LayerKind::kReLU) {
        const auto producer = network.producer_of(layer.bottoms[0]);
        if (producer &&
            network.layer(*producer).kind == LayerKind::kEltwise) {
          group = {layer.bottoms[0], layer.top};
        }
      }
      if (group.empty()) continue;
      float unified = 0.0f;
      for (const auto& blob : group) {
        unified = std::max(unified, table.blob_scale(blob));
      }
      for (const auto& blob : group) {
        if (table.blob_scale(blob) != unified) {
          table.set_blob_scale(blob, unified);
          changed = true;
        }
      }
    }
  }
  return table;
}

CalibrationTable calibrate(const Network& network, const NetWeights& weights,
                           std::span<const float> input) {
  std::vector<std::vector<float>> inputs;
  inputs.emplace_back(input.begin(), input.end());
  return calibrate(network, weights, inputs);
}

}  // namespace nvsoc::compiler
