#include "nvdla/engine.hpp"

#include <algorithm>

#include "common/strfmt.hpp"

namespace nvsoc::nvdla {

namespace {

/// Descriptor registers are indexed from page offset 0x0C in word steps.
constexpr std::size_t desc_index(Addr offset) {
  return (offset - 0x0C) / 4;
}

constexpr bool is_desc_offset(Addr offset) {
  return offset >= 0x0C && desc_index(offset) < kGroupRegs;
}

}  // namespace

Nvdla::Nvdla(NvdlaConfig config, AxiTarget& dbb_port)
    : config_(std::move(config)), dbb_(dbb_port, config_) {}

void Nvdla::reset() {
  units_ = {};
  intr_mask_ = 0;
  intr_events_.clear();
  conv_busy_until_ = sdp_busy_until_ = pdp_busy_until_ = cdp_busy_until_ =
      bdma_busy_until_ = 0;
  last_completion_ = 0;
  stats_ = {};
  op_records_.clear();
}

std::uint32_t Nvdla::reg(Unit u, unsigned group, Addr offset) const {
  return unit(u).regs[group][desc_index(offset)];
}

std::uint32_t Nvdla::intr_status_at(Cycle now) const {
  std::uint32_t status = 0;
  for (const auto& event : intr_events_) {
    if (!event.cleared && event.at <= now) status |= 1u << event.bit;
  }
  return status;
}

bool Nvdla::irq_pending(Cycle now) const {
  return (intr_status_at(now) & ~intr_mask_) != 0;
}

std::optional<Cycle> Nvdla::next_completion_after(Cycle now) const {
  std::optional<Cycle> best;
  for (const auto& event : intr_events_) {
    if (event.cleared || event.at <= now) continue;
    if (!best || event.at < *best) best = event.at;
  }
  return best;
}

CsbResponse Nvdla::glb_access(const CsbRequest& req) {
  const Addr offset = req.addr;  // GLB base is 0
  CsbResponse rsp{Status::ok(), 0, req.start + config_.timing.csb_internal};
  if (req.is_write) {
    switch (offset) {
      case glb::kIntrMask:
        intr_mask_ = req.wdata;
        break;
      case glb::kIntrSet:
        // Software-set interrupt (test feature): posts an immediate event
        // for every bit written.
        for (unsigned bit = 0; bit < 32; ++bit) {
          if (req.wdata & (1u << bit)) {
            intr_events_.push_back({bit, req.start, false});
          }
        }
        break;
      case glb::kIntrStatus:
        // W1C: clears only events visible at the write's timestamp.
        for (auto& event : intr_events_) {
          if (!event.cleared && event.at <= req.start &&
              (req.wdata & (1u << event.bit))) {
            event.cleared = true;
          }
        }
        break;
      default:
        break;  // writes to RO/unknown GLB registers are ignored
    }
    return rsp;
  }
  switch (offset) {
    case glb::kHwVersion: rsp.rdata = config_.hw_version(); break;
    case glb::kIntrMask: rsp.rdata = intr_mask_; break;
    case glb::kIntrStatus: rsp.rdata = intr_status_at(req.start); break;
    default: rsp.rdata = 0; break;
  }
  return rsp;
}

CsbResponse Nvdla::csb_access(const CsbRequest& req) {
  CsbResponse rsp;
  // Injected CSB faults (reads only — the classes production watchdogs
  // see): a timeout completes only at the watchdog latency with
  // kDeadlineExceeded; an error response is transient (kUnavailable).
  // Both reach the KMD as an error status, or — on the bare-metal path —
  // ride the bus bridges into a CPU bus-error halt whose detail carries
  // the status name for the typed mapping at the execution boundary.
  if (fault_ != nullptr && !req.is_write) {
    constexpr Cycle kWatchdogCycles = 4096;
    if (fault_->fire(fault::Kind::kCsbTimeout)) {
      ++stats_.csb_reads;
      return CsbResponse{
          Status(StatusCode::kDeadlineExceeded,
                 strfmt("injected CSB read timeout at {:#x} (watchdog after "
                        "{} cycles)",
                        req.addr, kWatchdogCycles)),
          0, req.start + kWatchdogCycles};
    }
    if (fault_->fire(fault::Kind::kCsbError)) {
      ++stats_.csb_reads;
      return CsbResponse{
          Status(StatusCode::kUnavailable,
                 strfmt("injected CSB error response at {:#x}", req.addr)),
          0, req.start + config_.timing.csb_internal};
    }
  }
  const auto owner = unit_for_address(req.addr);
  if (!owner) {
    rsp = CsbResponse{Status(StatusCode::kBusError,
                             strfmt("CSB access to unmapped {:#x}", req.addr)),
                      0, req.start + 1};
  } else if (*owner == Unit::kGlb) {
    rsp = glb_access(req);
  } else {
    UnitState& state = unit(*owner);
    const Addr offset = req.addr - unit_base(*owner);
    rsp = CsbResponse{Status::ok(), 0,
                      req.start + config_.timing.csb_internal};
    if (req.is_write) {
      if (offset == ctrl::kPointer) {
        state.pointer = req.wdata & 1u;
      } else if (offset == ctrl::kOpEnable) {
        if (req.wdata & 1u) {
          const unsigned group = state.pointer;
          state.armed[group] = true;
          try_launch(*owner, group, rsp.complete);
        }
      } else if (is_desc_offset(offset)) {
        state.regs[state.pointer][desc_index(offset)] = req.wdata;
      }
      // Writes to S_STATUS / unknown offsets are ignored (RO).
    } else {
      if (offset == ctrl::kStatus) {
        Cycle busy_until = 0;
        switch (*owner) {
          case Unit::kCdma: case Unit::kCsc: case Unit::kCmac:
          case Unit::kCacc:
            busy_until = conv_busy_until_;
            break;
          case Unit::kSdp: case Unit::kSdpRdma:
            busy_until = sdp_busy_until_;
            break;
          case Unit::kPdp: busy_until = pdp_busy_until_; break;
          case Unit::kCdp: busy_until = cdp_busy_until_; break;
          case Unit::kBdma: busy_until = bdma_busy_until_; break;
          default: break;
        }
        rsp.rdata = req.start < busy_until ? 1u : 0u;
      } else if (offset == ctrl::kPointer) {
        rsp.rdata = state.pointer;
      } else if (offset == ctrl::kOpEnable) {
        rsp.rdata = state.armed[state.pointer] ? 1u : 0u;
      } else if (is_desc_offset(offset)) {
        rsp.rdata = state.regs[state.pointer][desc_index(offset)];
      }
    }
  }

  if (req.is_write) ++stats_.csb_writes; else ++stats_.csb_reads;
  // VP trace line; the toolflow's parser keys on the component name and the
  // iswrite flag, mirroring the NVDLA virtual platform's csb_adaptor log.
  csb_log_.trace("addr=0x{:08x} data=0x{:08x} iswrite={} name={}", req.addr,
                 req.is_write ? req.wdata : rsp.rdata, req.is_write ? 1 : 0,
                 register_name(req.addr));
  return rsp;
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

SurfaceDesc Nvdla::surface_from_regs(Unit u, unsigned group, Addr addr_reg,
                                     Addr line_reg, Addr surf_reg,
                                     CubeDims dims,
                                     Precision precision) const {
  SurfaceDesc d;
  d.base = reg(u, group, addr_reg);
  d.line_stride = reg(u, group, line_reg);
  d.surf_stride = reg(u, group, surf_reg);
  d.dims = dims;
  d.precision = precision;
  d.atom_bytes = config_.atom_bytes;
  return d;
}

ConvOp Nvdla::decode_conv(unsigned group) const {
  ConvOp op;
  op.precision = (reg(Unit::kCdma, group, cdma::kDatainFormat) & 1)
                     ? Precision::kFp16
                     : Precision::kInt8;
  const std::uint32_t size0 = reg(Unit::kCdma, group, cdma::kDatainSize0);
  const CubeDims in_dims{size0 & 0xFFFF, size0 >> 16,
                         reg(Unit::kCdma, group, cdma::kDatainSize1)};
  op.input = surface_from_regs(Unit::kCdma, group, cdma::kDainAddr,
                               cdma::kDainLineStride, cdma::kDainSurfStride,
                               in_dims, op.precision);
  op.weight_addr = reg(Unit::kCdma, group, cdma::kWeightAddr);
  op.weight_bytes = reg(Unit::kCdma, group, cdma::kWeightBytes);
  const std::uint32_t pad = reg(Unit::kCdma, group, cdma::kZeroPadding);
  op.pad_left = pad & 0xFF;
  op.pad_top = (pad >> 8) & 0xFF;
  op.pad_right = (pad >> 16) & 0xFF;
  op.pad_bottom = (pad >> 24) & 0xFF;
  const std::uint32_t stride = reg(Unit::kCdma, group, cdma::kConvStride);
  op.stride_x = std::max(1u, stride & 0xFFFF);
  op.stride_y = std::max(1u, stride >> 16);
  op.pad_value = static_cast<std::int32_t>(
      reg(Unit::kCdma, group, cdma::kPadValue));
  const std::uint32_t ksize = reg(Unit::kCsc, group, csc::kKernelSize);
  op.kernel_w = ksize & 0xFFFF;
  op.kernel_h = ksize >> 16;
  op.kernel_c = reg(Unit::kCsc, group, csc::kKernelChannels);
  op.kernel_k = reg(Unit::kCsc, group, csc::kKernelNumber);
  op.groups = std::max(1u, reg(Unit::kCsc, group, csc::kKernelGroups));
  const std::uint32_t out0 = reg(Unit::kCacc, group, cacc::kDataoutSize0);
  op.out_w = out0 & 0xFFFF;
  op.out_h = out0 >> 16;
  return op;
}

SdpOp Nvdla::decode_sdp(unsigned group) const {
  SdpOp op;
  op.out_precision = (reg(Unit::kSdp, group, sdp::kOutPrecision) & 1)
                         ? Precision::kFp16
                         : Precision::kInt8;
  op.in_precision = op.out_precision;
  op.dims = CubeDims{reg(Unit::kSdp, group, sdp::kCubeWidth),
                     reg(Unit::kSdp, group, sdp::kCubeHeight),
                     reg(Unit::kSdp, group, sdp::kCubeChannel)};
  op.src = surface_from_regs(Unit::kSdp, group, sdp::kSrcBaseAddr,
                             sdp::kSrcLineStride, sdp::kSrcSurfStride, op.dims,
                             op.in_precision);
  op.dst = surface_from_regs(Unit::kSdp, group, sdp::kDstBaseAddr,
                             sdp::kDstLineStride, sdp::kDstSurfStride, op.dims,
                             op.out_precision);
  const std::uint32_t cfg = reg(Unit::kSdp, group, sdp::kOpCfg);
  op.bias_enable = cfg & 1u;
  op.relu_enable = cfg & 2u;
  op.eltwise_enable = cfg & 4u;
  op.operand_addr = reg(Unit::kSdpRdma, group, sdp_rdma::kBrdmaAddr);
  op.operand_line_stride =
      reg(Unit::kSdpRdma, group, sdp_rdma::kBrdmaLineStride);
  op.operand_surf_stride =
      reg(Unit::kSdpRdma, group, sdp_rdma::kBrdmaSurfStride);
  op.operand_per_element =
      reg(Unit::kSdpRdma, group, sdp_rdma::kBrdmaMode) & 1u;
  op.bias_addr = reg(Unit::kSdpRdma, group, sdp_rdma::kBsAddr);
  op.cvt_scale = static_cast<std::int16_t>(
      reg(Unit::kSdp, group, sdp::kCvtScale) & 0xFFFF);
  op.cvt_shift = reg(Unit::kSdp, group, sdp::kCvtShift) & 31u;
  if (op.cvt_scale == 0) op.cvt_scale = 1;
  return op;
}

PdpOp Nvdla::decode_pdp(unsigned group) const {
  PdpOp op;
  op.precision = (reg(Unit::kPdp, group, pdp::kPrecision) & 1)
                     ? Precision::kFp16
                     : Precision::kInt8;
  const CubeDims in_dims{reg(Unit::kPdp, group, pdp::kCubeInWidth),
                         reg(Unit::kPdp, group, pdp::kCubeInHeight),
                         reg(Unit::kPdp, group, pdp::kCubeInChannel)};
  const CubeDims out_dims{reg(Unit::kPdp, group, pdp::kCubeOutWidth),
                          reg(Unit::kPdp, group, pdp::kCubeOutHeight),
                          in_dims.c};
  op.src = surface_from_regs(Unit::kPdp, group, pdp::kSrcBaseAddr,
                             pdp::kSrcLineStride, pdp::kSrcSurfStride, in_dims,
                             op.precision);
  op.dst = surface_from_regs(Unit::kPdp, group, pdp::kDstBaseAddr,
                             pdp::kDstLineStride, pdp::kDstSurfStride,
                             out_dims, op.precision);
  const std::uint32_t kcfg = reg(Unit::kPdp, group, pdp::kKernelCfg);
  op.kernel_w = kcfg & 0xFF;
  op.kernel_h = (kcfg >> 8) & 0xFF;
  op.average = ((kcfg >> 16) & 0xF) == pdp::kModeAvg;
  op.stride_x = std::max(1u, (kcfg >> 20) & 0xF);
  op.stride_y = std::max(1u, (kcfg >> 24) & 0xF);
  const std::uint32_t pad = reg(Unit::kPdp, group, pdp::kPaddingCfg);
  op.pad_left = pad & 0xFF;
  op.pad_top = (pad >> 8) & 0xFF;
  op.pad_right = (pad >> 16) & 0xFF;
  op.pad_bottom = (pad >> 24) & 0xFF;
  return op;
}

CdpOp Nvdla::decode_cdp(unsigned group) const {
  CdpOp op;
  op.precision = (reg(Unit::kCdp, group, cdp::kPrecision) & 1)
                     ? Precision::kFp16
                     : Precision::kInt8;
  const CubeDims dims{reg(Unit::kCdp, group, cdp::kCubeWidth),
                      reg(Unit::kCdp, group, cdp::kCubeHeight),
                      reg(Unit::kCdp, group, cdp::kCubeChannel)};
  op.src = surface_from_regs(Unit::kCdp, group, cdp::kSrcBaseAddr,
                             cdp::kSrcLineStride, cdp::kSrcSurfStride, dims,
                             op.precision);
  op.dst = surface_from_regs(Unit::kCdp, group, cdp::kDstBaseAddr,
                             cdp::kDstLineStride, cdp::kDstSurfStride, dims,
                             op.precision);
  op.local_size = std::max(1u, reg(Unit::kCdp, group, cdp::kLocalSize));
  op.alpha_q16 = reg(Unit::kCdp, group, cdp::kAlphaQ16);
  op.beta_q16 = reg(Unit::kCdp, group, cdp::kBetaQ16);
  op.k_q16 = reg(Unit::kCdp, group, cdp::kKQ16);
  op.in_scale_q16 = reg(Unit::kCdp, group, cdp::kInScaleQ16);
  return op;
}

BdmaOp Nvdla::decode_bdma(unsigned group) const {
  BdmaOp op;
  op.src_addr = reg(Unit::kBdma, group, bdma::kSrcAddr);
  op.dst_addr = reg(Unit::kBdma, group, bdma::kDstAddr);
  op.line_size = reg(Unit::kBdma, group, bdma::kLineSize);
  op.line_repeat = std::max(1u, reg(Unit::kBdma, group, bdma::kLineRepeat));
  op.src_stride = reg(Unit::kBdma, group, bdma::kSrcStride);
  op.dst_stride = reg(Unit::kBdma, group, bdma::kDstStride);
  return op;
}

// ---------------------------------------------------------------------------
// Launch + execution
// ---------------------------------------------------------------------------

void Nvdla::try_launch(Unit enabled_unit, unsigned group, Cycle now) {
  switch (enabled_unit) {
    case Unit::kPdp:
      unit(Unit::kPdp).armed[group] = false;
      run_pdp(group, std::max(now, pdp_busy_until_));
      return;
    case Unit::kCdp:
      unit(Unit::kCdp).armed[group] = false;
      run_cdp(group, std::max(now, cdp_busy_until_));
      return;
    case Unit::kBdma:
      unit(Unit::kBdma).armed[group] = false;
      run_bdma(group, std::max(now, bdma_busy_until_));
      return;
    case Unit::kSdp: {
      // Standalone (memory-source) SDP launches on its own; a flying-mode
      // SDP waits for the convolution chain below.
      const SdpOp op = decode_sdp(group);
      if (!op.flying_mode()) {
        unit(Unit::kSdp).armed[group] = false;
        run_sdp_standalone(group, std::max(now, sdp_busy_until_));
        return;
      }
      break;
    }
    default:
      break;
  }

  // Convolution chain: launches when CDMA, CSC, CMAC, CACC and a
  // flying-mode SDP are all armed on the same group.
  const bool chain_ready =
      unit(Unit::kCdma).armed[group] && unit(Unit::kCsc).armed[group] &&
      unit(Unit::kCmac).armed[group] && unit(Unit::kCacc).armed[group] &&
      unit(Unit::kSdp).armed[group];
  if (chain_ready) {
    for (Unit u : {Unit::kCdma, Unit::kCsc, Unit::kCmac, Unit::kCacc,
                   Unit::kSdp, Unit::kSdpRdma}) {
      unit(u).armed[group] = false;
    }
    run_conv(group, std::max({now, conv_busy_until_, sdp_busy_until_}));
  }
}

void Nvdla::post_interrupt(glb::IntrSource source, unsigned group, Cycle at) {
  const std::uint32_t bit =
      static_cast<std::uint32_t>(source) * 2 + (group & 1);
  intr_events_.push_back({bit, at, false});
}

void Nvdla::record_op(Unit u, Cycle launch, Cycle complete,
                      const OpCost& cost) {
  op_records_.push_back({u, launch, complete, cost});
  last_completion_ = std::max(last_completion_, complete);
}

namespace {

ReplayOp replay_record(ReplayOp::Kind kind, Cycle launch, Cycle complete) {
  ReplayOp op;
  op.kind = kind;
  op.launch = launch;
  op.complete = complete;
  return op;
}

}  // namespace

Cycle Nvdla::run_conv(unsigned group, Cycle start) {
  const ConvOp conv = decode_conv(group);
  const SdpOp sdp_op = decode_sdp(group);

  // Stage input cube and weights through the DBB.
  CubeBuffer input(conv.input);
  Cycle t = dbb_.read(conv.input.base, input.bytes(), start);
  std::vector<std::uint8_t> weights(conv.weight_bytes);
  t = dbb_.read(conv.weight_addr, weights, t);

  std::vector<std::uint8_t> bias_table;
  if (sdp_op.bias_enable) {
    bias_table.resize(static_cast<std::size_t>(sdp_op.dims.c) * 4);
    t = dbb_.read(sdp_op.bias_addr, bias_table, t);
  }
  std::vector<std::uint8_t> eltwise;
  if (sdp_op.eltwise_enable) {
    eltwise.resize(static_cast<std::size_t>(sdp_op.operand_surf_stride) *
                   ceil_div(sdp_op.dims.c,
                            config_.atom_bytes /
                                elem_size_bytes(sdp_op.out_precision)));
    t = dbb_.read(sdp_op.operand_addr, eltwise, t);
  }

  const ConvAccumulators acc = conv_execute(conv, input, weights);
  CubeBuffer out(sdp_op.dst);
  sdp_execute(sdp_op, &acc, nullptr, bias_table, eltwise, out);
  t = dbb_.write(sdp_op.dst.base, out.bytes(), t);

  const std::uint64_t out_bytes = out.bytes().size();
  OpCost cost = conv_cost(config_, conv, out_bytes);
  const Cycle complete = std::max(t, start + cost.total(config_.timing));
  conv_busy_until_ = complete;
  sdp_busy_until_ = complete;
  ++stats_.conv_ops;
  post_interrupt(glb::IntrSource::kCacc, group, complete);
  post_interrupt(glb::IntrSource::kSdp, group, complete);
  record_op(Unit::kCacc, start, complete, cost);
  if (op_recorder_) {
    ReplayOp record = replay_record(ReplayOp::Kind::kConv, start, complete);
    record.conv = conv;
    record.sdp = sdp_op;
    op_recorder_(record);
  }
  return complete;
}

Cycle Nvdla::run_sdp_standalone(unsigned group, Cycle start) {
  const SdpOp op = decode_sdp(group);
  CubeBuffer src(op.src);
  Cycle t = dbb_.read(op.src.base, src.bytes(), start);

  std::vector<std::uint8_t> bias_table;
  if (op.bias_enable) {
    bias_table.resize(static_cast<std::size_t>(op.dims.c) * 4);
    t = dbb_.read(op.bias_addr, bias_table, t);
  }
  std::vector<std::uint8_t> eltwise;
  if (op.eltwise_enable) {
    eltwise.resize(static_cast<std::size_t>(op.operand_surf_stride) *
                   ceil_div(op.dims.c,
                            config_.atom_bytes /
                                elem_size_bytes(op.out_precision)));
    t = dbb_.read(op.operand_addr, eltwise, t);
  }

  CubeBuffer out(op.dst);
  sdp_execute(op, nullptr, &src, bias_table, eltwise, out);
  t = dbb_.write(op.dst.base, out.bytes(), t);

  const OpCost cost = sdp_cost(config_, op);
  const Cycle complete = std::max(t, start + cost.total(config_.timing));
  sdp_busy_until_ = complete;
  ++stats_.sdp_ops;
  post_interrupt(glb::IntrSource::kSdp, group, complete);
  record_op(Unit::kSdp, start, complete, cost);
  if (op_recorder_) {
    ReplayOp record = replay_record(ReplayOp::Kind::kSdp, start, complete);
    record.sdp = op;
    op_recorder_(record);
  }
  return complete;
}

Cycle Nvdla::run_pdp(unsigned group, Cycle start) {
  const PdpOp op = decode_pdp(group);
  CubeBuffer src(op.src);
  Cycle t = dbb_.read(op.src.base, src.bytes(), start);
  CubeBuffer out(op.dst);
  pdp_execute(op, src, out);
  t = dbb_.write(op.dst.base, out.bytes(), t);

  const OpCost cost = pdp_cost(config_, op);
  const Cycle complete = std::max(t, start + cost.total(config_.timing));
  pdp_busy_until_ = complete;
  ++stats_.pdp_ops;
  post_interrupt(glb::IntrSource::kPdp, group, complete);
  record_op(Unit::kPdp, start, complete, cost);
  if (op_recorder_) {
    ReplayOp record = replay_record(ReplayOp::Kind::kPdp, start, complete);
    record.pdp = op;
    op_recorder_(record);
  }
  return complete;
}

Cycle Nvdla::run_cdp(unsigned group, Cycle start) {
  const CdpOp op = decode_cdp(group);
  CubeBuffer src(op.src);
  Cycle t = dbb_.read(op.src.base, src.bytes(), start);
  CubeBuffer out(op.dst);
  cdp_execute(op, src, out);
  t = dbb_.write(op.dst.base, out.bytes(), t);

  const OpCost cost = cdp_cost(config_, op);
  const Cycle complete = std::max(t, start + cost.total(config_.timing));
  cdp_busy_until_ = complete;
  ++stats_.cdp_ops;
  post_interrupt(glb::IntrSource::kCdp, group, complete);
  record_op(Unit::kCdp, start, complete, cost);
  if (op_recorder_) {
    ReplayOp record = replay_record(ReplayOp::Kind::kCdp, start, complete);
    record.cdp = op;
    op_recorder_(record);
  }
  return complete;
}

Cycle Nvdla::run_bdma(unsigned group, Cycle start) {
  const BdmaOp op = decode_bdma(group);
  Cycle t = start;
  std::vector<std::uint8_t> line(op.line_size);
  for (std::uint32_t i = 0; i < op.line_repeat; ++i) {
    t = dbb_.read(op.src_addr + static_cast<Addr>(i) * op.src_stride, line, t);
    t = dbb_.write(op.dst_addr + static_cast<Addr>(i) * op.dst_stride, line,
                   t);
  }
  const OpCost cost = bdma_cost(config_, op);
  const Cycle complete = std::max(t, start + cost.total(config_.timing));
  bdma_busy_until_ = complete;
  ++stats_.bdma_ops;
  post_interrupt(glb::IntrSource::kBdma, group, complete);
  record_op(Unit::kBdma, start, complete, cost);
  if (op_recorder_) {
    ReplayOp record = replay_record(ReplayOp::Kind::kBdma, start, complete);
    record.bdma = op;
    op_recorder_(record);
  }
  return complete;
}

}  // namespace nvsoc::nvdla
