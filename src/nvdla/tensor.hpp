// NVDLA memory-surface layout.
//
// Feature cubes live in DRAM in the NVDLA packed-atom format: channels are
// grouped into atoms of `atom_bytes` (8 B on nv_small, 32 B on nv_full); a
// surface holds one atom-group of channels for the whole HxW plane, lines
// are `line_stride` bytes apart and surfaces `surf_stride` bytes apart.
// Element (c, h, w) lives at
//   base + (c / cpa) * surf_stride + h * line_stride + w * atom_bytes
//        + (c % cpa) * elem_size
// with cpa = atom_bytes / elem_size. Both the compiler (address/stride
// generation) and the engine (functional execution) use this one class, so
// layout agreement is by construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitutil.hpp"
#include "common/fp16.hpp"
#include "common/types.hpp"
#include "nvdla/config.hpp"

namespace nvsoc::nvdla {

struct CubeDims {
  std::uint32_t w = 0;
  std::uint32_t h = 0;
  std::uint32_t c = 0;

  std::uint64_t elements() const {
    return static_cast<std::uint64_t>(w) * h * c;
  }
  friend bool operator==(const CubeDims&, const CubeDims&) = default;
};

/// Descriptor of a cube stored in DRAM in packed-atom surface format.
struct SurfaceDesc {
  Addr base = 0;
  CubeDims dims;
  std::uint32_t line_stride = 0;  ///< bytes between successive lines
  std::uint32_t surf_stride = 0;  ///< bytes between successive surfaces
  Precision precision = Precision::kInt8;
  std::uint32_t atom_bytes = 8;

  std::uint32_t elem_size() const { return elem_size_bytes(precision); }
  std::uint32_t channels_per_atom() const { return atom_bytes / elem_size(); }
  std::uint32_t num_surfaces() const {
    return ceil_div(dims.c, channels_per_atom());
  }
  /// Total bytes spanned in memory (last surface included).
  std::uint64_t span_bytes() const {
    return static_cast<std::uint64_t>(num_surfaces()) * surf_stride;
  }

  /// Byte offset of element (c, h, w) from `base`.
  std::uint64_t offset_of(std::uint32_t c, std::uint32_t h,
                          std::uint32_t w) const {
    const std::uint32_t cpa = channels_per_atom();
    return static_cast<std::uint64_t>(c / cpa) * surf_stride +
           static_cast<std::uint64_t>(h) * line_stride +
           static_cast<std::uint64_t>(w) * atom_bytes + (c % cpa) * elem_size();
  }

  /// Canonical dense layout: line_stride = w*atom, surf_stride = line*h.
  static SurfaceDesc packed(Addr base, CubeDims dims, Precision precision,
                            std::uint32_t atom_bytes) {
    SurfaceDesc d;
    d.base = base;
    d.dims = dims;
    d.precision = precision;
    d.atom_bytes = atom_bytes;
    d.line_stride = dims.w * atom_bytes;
    d.surf_stride = d.line_stride * dims.h;
    return d;
  }
};

/// Host-side staging buffer for one cube: the engine DMAs the full surface
/// span into it, operates element-wise, and DMAs it back.
class CubeBuffer {
 public:
  explicit CubeBuffer(const SurfaceDesc& desc)
      : desc_(desc), bytes_(desc.span_bytes(), 0) {}

  const SurfaceDesc& desc() const { return desc_; }
  std::span<std::uint8_t> bytes() { return bytes_; }
  std::span<const std::uint8_t> bytes() const { return bytes_; }

  std::int8_t get_i8(std::uint32_t c, std::uint32_t h, std::uint32_t w) const {
    return static_cast<std::int8_t>(bytes_[desc_.offset_of(c, h, w)]);
  }
  void set_i8(std::uint32_t c, std::uint32_t h, std::uint32_t w,
              std::int8_t v) {
    bytes_[desc_.offset_of(c, h, w)] = static_cast<std::uint8_t>(v);
  }

  /// Generic accessors: INT8 cubes yield the raw integer as float; FP16
  /// cubes decode the half value.
  float get(std::uint32_t c, std::uint32_t h, std::uint32_t w) const {
    const std::uint64_t off = desc_.offset_of(c, h, w);
    if (desc_.precision == Precision::kInt8) {
      return static_cast<float>(static_cast<std::int8_t>(bytes_[off]));
    }
    const std::uint16_t raw = static_cast<std::uint16_t>(
        bytes_[off] | (bytes_[off + 1] << 8));
    return half_bits_to_float(raw);
  }
  void set(std::uint32_t c, std::uint32_t h, std::uint32_t w, float v) {
    const std::uint64_t off = desc_.offset_of(c, h, w);
    if (desc_.precision == Precision::kInt8) {
      bytes_[off] = static_cast<std::uint8_t>(
          saturate_i8(static_cast<std::int64_t>(v)));
      return;
    }
    const std::uint16_t raw = float_to_half_bits(v);
    bytes_[off] = static_cast<std::uint8_t>(raw);
    bytes_[off + 1] = static_cast<std::uint8_t>(raw >> 8);
  }

 private:
  SurfaceDesc desc_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace nvsoc::nvdla
