// Hardware-layer operation descriptors, decoded from a unit's descriptor
// register group at launch, plus the functional and cycle-model entry
// points implemented in units.cpp.
//
// Dataflow mirrors NVDLA:
//  * Convolution runs through CDMA -> CBUF -> CSC -> CMAC -> CACC and hands
//    its accumulators to the SDP "on the fly"; SDP applies bias, optional
//    element-wise add, ReLU and the output converter, then writes the cube.
//  * SDP can also run standalone (memory source) for element-wise layers.
//  * PDP pools, CDP applies LRN, BDMA copies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nvdla/config.hpp"
#include "nvdla/tensor.hpp"

namespace nvsoc::nvdla {

struct ConvOp {
  Precision precision = Precision::kInt8;
  SurfaceDesc input;
  Addr weight_addr = 0;
  std::uint32_t weight_bytes = 0;
  std::uint32_t kernel_w = 0, kernel_h = 0;
  /// Channels per kernel group and total output kernels. `groups` splits the
  /// input channels (depthwise convolution has groups == input channels and
  /// kernel_c == 1) — grouped convolution is executed as `groups`
  /// channel-sliced passes, mirroring how NVDLA compilers lower it.
  std::uint32_t kernel_c = 0, kernel_k = 0;
  std::uint32_t groups = 1;
  std::uint32_t pad_left = 0, pad_top = 0, pad_right = 0, pad_bottom = 0;
  std::uint32_t stride_x = 1, stride_y = 1;
  std::int32_t pad_value = 0;
  std::uint32_t out_w = 0, out_h = 0;

  std::uint64_t macs() const {
    return static_cast<std::uint64_t>(out_w) * out_h * kernel_k * kernel_c *
           kernel_w * kernel_h;
  }
};

struct SdpOp {
  Precision in_precision = Precision::kInt8;
  Precision out_precision = Precision::kInt8;
  CubeDims dims;          ///< output cube dimensions
  SurfaceDesc src;        ///< src.base == 0 means on-the-fly from CACC
  SurfaceDesc dst;
  bool bias_enable = false;
  bool relu_enable = false;
  bool eltwise_enable = false;
  /// BS channel: per-kernel bias table (int32 on the INT8 path, float32 on
  /// the FP16 path), indexed by output channel.
  Addr bias_addr = 0;
  /// X1 channel: per-element element-wise operand, a cube in the same
  /// surface format as dst. The two channels mirror NVDLA SDP's separate
  /// BS and X RDMA engines, so a fused conv+BN+residual-add uses both.
  Addr operand_addr = 0;
  std::uint32_t operand_line_stride = 0;
  std::uint32_t operand_surf_stride = 0;
  bool operand_per_element = true;
  /// Output converter: int8_out = sat((value * cvt_scale) >> cvt_shift).
  std::int32_t cvt_scale = 1;
  std::uint32_t cvt_shift = 0;

  bool flying_mode() const { return src.base == 0; }
};

struct PdpOp {
  Precision precision = Precision::kInt8;
  SurfaceDesc src;
  SurfaceDesc dst;
  std::uint32_t kernel_w = 1, kernel_h = 1;
  std::uint32_t stride_x = 1, stride_y = 1;
  std::uint32_t pad_left = 0, pad_top = 0, pad_right = 0, pad_bottom = 0;
  bool average = false;  ///< false = max pooling
};

struct CdpOp {
  Precision precision = Precision::kInt8;
  SurfaceDesc src;
  SurfaceDesc dst;
  std::uint32_t local_size = 5;
  /// LRN parameters in Q16.16 fixed point, as programmed via CSB.
  std::uint32_t alpha_q16 = 0;
  std::uint32_t beta_q16 = 0;
  std::uint32_t k_q16 = 1 << 16;
  /// Dequantisation scale of the INT8 input (Q16.16); 0 disables requant.
  std::uint32_t in_scale_q16 = 1 << 16;
};

struct BdmaOp {
  Addr src_addr = 0;
  Addr dst_addr = 0;
  std::uint32_t line_size = 0;
  std::uint32_t line_repeat = 1;
  std::uint32_t src_stride = 0;
  std::uint32_t dst_stride = 0;

  std::uint64_t total_bytes() const {
    return static_cast<std::uint64_t>(line_size) * line_repeat;
  }
};

// ---------------------------------------------------------------------------
// Functional execution (units.cpp)
// ---------------------------------------------------------------------------

/// Convolution accumulators, [k][oh][ow] row-major. INT8 path accumulates in
/// int32 (the CACC width); FP16 path accumulates in float.
struct ConvAccumulators {
  std::vector<std::int32_t> i32;
  std::vector<float> f32;
  std::uint32_t k = 0, h = 0, w = 0;

  std::size_t index(std::uint32_t kk, std::uint32_t y, std::uint32_t x) const {
    return (static_cast<std::size_t>(kk) * h + y) * w + x;
  }
};

/// Run the convolution pipeline on a staged input cube and a raw weight
/// blob laid out [k][c][r][s].
ConvAccumulators conv_execute(const ConvOp& op, const CubeBuffer& input,
                              std::span<const std::uint8_t> weights);

/// Apply the SDP post-processing pipeline. Exactly one of `acc` (flying
/// mode) or `src` (memory mode) is used. `bias_table` holds the BS-channel
/// per-kernel values, `eltwise` the X1-channel cube bytes; either may be
/// empty when the corresponding stage is disabled.
void sdp_execute(const SdpOp& op, const ConvAccumulators* acc,
                 const CubeBuffer* src,
                 std::span<const std::uint8_t> bias_table,
                 std::span<const std::uint8_t> eltwise, CubeBuffer& out);

void pdp_execute(const PdpOp& op, const CubeBuffer& src, CubeBuffer& out);

void cdp_execute(const CdpOp& op, const CubeBuffer& src, CubeBuffer& out);

// ---------------------------------------------------------------------------
// Cycle model (units.cpp); see DESIGN.md §5
// ---------------------------------------------------------------------------

struct OpCost {
  Cycle compute_cycles = 0;
  Cycle dbb_cycles = 0;
  std::uint64_t traffic_bytes = 0;

  Cycle total(const NvdlaTiming& t) const {
    return t.op_overhead + std::max(compute_cycles, dbb_cycles);
  }
};

OpCost conv_cost(const NvdlaConfig& cfg, const ConvOp& op,
                 std::uint64_t output_bytes);
OpCost sdp_cost(const NvdlaConfig& cfg, const SdpOp& op);
OpCost pdp_cost(const NvdlaConfig& cfg, const PdpOp& op);
OpCost cdp_cost(const NvdlaConfig& cfg, const CdpOp& op);
OpCost bdma_cost(const NvdlaConfig& cfg, const BdmaOp& op);

}  // namespace nvsoc::nvdla
