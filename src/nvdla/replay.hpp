// Functional replay of a recorded op schedule — the execution entry points
// of the five op pipelines decoupled from the timed CSB path.
//
// The paper's bare-metal-flow insight, applied as a runtime optimisation:
// for a fixed (network, hardware-tree) pair the CSB programming sequence,
// the decoded op descriptors and the analytic per-op timing are all
// input-independent — only the data payloads differ between images. A
// full cycle-accurate run therefore needs to happen once; every further
// image can *replay* the recorded ops functionally (DMA payload movement
// plus the op math on the new input surfaces) with no register
// programming, no bus arbitration, no trace capture and no µRISC-V ISS.
//
// `ReplayOp` is what the engine records at each launch (see
// Nvdla::set_op_recorder); `replay_op` re-executes one record against a
// byte-addressable memory using the same functional kernels as the timed
// paths, so replayed outputs are bit-identical by construction.
#pragma once

#include <span>
#include <vector>

#include "nvdla/config.hpp"
#include "nvdla/ops.hpp"

namespace nvsoc::nvdla {

/// Byte-addressable memory a replay executes against. Implementations wrap
/// whatever backs the platform (the VP's DRAM model via its zero-time
/// backdoor); no cycles are consumed.
class ReplayMemory {
 public:
  virtual ~ReplayMemory() = default;
  virtual void read(Addr addr, std::span<std::uint8_t> out) const = 0;
  virtual void write(Addr addr, std::span<const std::uint8_t> data) = 0;
};

/// One launched hardware-layer op, decoded from the descriptor registers at
/// its CSB enable, with the completion time the analytic cycle model
/// assigned to it. The payload fields mirror the launch kinds of
/// Nvdla::try_launch: a convolution carries both the conv chain and the
/// flying-mode SDP that consumed its accumulators.
struct ReplayOp {
  enum class Kind { kConv, kSdp, kPdp, kCdp, kBdma };

  Kind kind = Kind::kConv;
  Cycle launch = 0;
  Cycle complete = 0;

  ConvOp conv;  ///< kConv
  SdpOp sdp;    ///< kConv (flying tail) and kSdp (standalone)
  PdpOp pdp;    ///< kPdp
  CdpOp cdp;    ///< kCdp
  BdmaOp bdma;  ///< kBdma
};

/// Execute one recorded op functionally: the same surface staging, DMA byte
/// movement and kernel math as the timed engine paths (run_conv et al.),
/// minus all cycle accounting. Ops must be replayed in recorded (launch)
/// order — they chain through memory.
void replay_op(const NvdlaConfig& config, const ReplayOp& op,
               ReplayMemory& mem);

/// The exact byte ranges one recorded op touches when replayed — decoded
/// from the same descriptor fields replay_op stages from, so the ranges
/// are correct by construction against the replay above (each kind's
/// reads/writes mirror its replay_* body, bdma's strided lines included).
/// Consumers (the replay engine's surface-aware arena reset) use these to
/// prove which memory a schedule rewrites every image.
struct ReplayAccess {
  struct Range {
    Addr begin = 0;
    Addr end = 0;  ///< half-open
  };
  std::vector<Range> reads;
  std::vector<Range> writes;
};
ReplayAccess replay_access_ranges(const NvdlaConfig& config,
                                  const ReplayOp& op);

}  // namespace nvsoc::nvdla
