// Functional models and cycle estimators for the NVDLA execution units.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/bitutil.hpp"
#include "common/fp16.hpp"
#include "common/strfmt.hpp"
#include "nvdla/ops.hpp"

namespace nvsoc::nvdla {

namespace {

/// Unpack a staged cube into a planar [c][h][w] array so that convolution
/// inner loops are straight array walks (the packed-atom offset arithmetic
/// would otherwise dominate runtime on ResNet-scale layers).
template <typename T>
std::vector<T> unpack_planar(const CubeBuffer& cube) {
  const auto& d = cube.desc();
  std::vector<T> out(d.dims.elements());
  std::size_t i = 0;
  for (std::uint32_t c = 0; c < d.dims.c; ++c) {
    for (std::uint32_t h = 0; h < d.dims.h; ++h) {
      for (std::uint32_t w = 0; w < d.dims.w; ++w, ++i) {
        if constexpr (std::is_same_v<T, std::int8_t>) {
          out[i] = cube.get_i8(c, h, w);
        } else {
          out[i] = cube.get(c, h, w);
        }
      }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Convolution (CDMA/CBUF/CSC/CMAC/CACC)
// ---------------------------------------------------------------------------

ConvAccumulators conv_execute(const ConvOp& op, const CubeBuffer& input,
                              std::span<const std::uint8_t> weights) {
  const std::uint32_t C = op.kernel_c;  // channels per group
  const std::uint32_t R = op.kernel_h;
  const std::uint32_t S = op.kernel_w;
  const std::uint32_t K = op.kernel_k;
  const std::uint32_t G = std::max(1u, op.groups);
  const std::uint32_t in_h = input.desc().dims.h;
  const std::uint32_t in_w = input.desc().dims.w;
  const std::uint32_t k_per_group = K / G;

  if (input.desc().dims.c != C * G) {
    throw std::runtime_error(
        strfmt("conv: input channels {} != kernel channels {} x groups {}",
               input.desc().dims.c, C, G));
  }
  if (K % G != 0) {
    throw std::runtime_error(
        strfmt("conv: kernels {} not divisible by groups {}", K, G));
  }
  const std::size_t want =
      static_cast<std::size_t>(K) * C * R * S * elem_size_bytes(op.precision);
  if (weights.size() < want) {
    throw std::runtime_error(strfmt("conv: weight blob {} < required {}",
                                    weights.size(), want));
  }

  ConvAccumulators acc;
  acc.k = K;
  acc.h = op.out_h;
  acc.w = op.out_w;

  const auto in_index = [&](std::uint32_t c, std::uint32_t y,
                            std::uint32_t x) {
    return (static_cast<std::size_t>(c) * in_h + y) * in_w + x;
  };
  const auto w_index = [&](std::uint32_t k, std::uint32_t c, std::uint32_t r,
                           std::uint32_t s) {
    return ((static_cast<std::size_t>(k) * C + c) * R + r) * S + s;
  };

  if (op.precision == Precision::kInt8) {
    const std::vector<std::int8_t> in = unpack_planar<std::int8_t>(input);
    const auto* wt = reinterpret_cast<const std::int8_t*>(weights.data());
    acc.i32.assign(static_cast<std::size_t>(K) * op.out_h * op.out_w, 0);
    // Integer accumulation is freely reassociable, so the int8 path can
    // restructure its loops for throughput while staying bit-identical to
    // the reference order. Partial sums fit int32 as long as the tap count
    // cannot push |Σ in·w| past 2^31 (taps · 128·128 < 2^31): every real
    // layer qualifies; the generic int64 walk below is the fallback.
    // (pad_value is an input-domain sample in every real configuration;
    // anything wider falls back to the int64 walk.)
    const std::uint64_t taps = static_cast<std::uint64_t>(C) * R * S;
    const bool i32_safe = taps < (1ull << 31) / (128ull * 128ull) &&
                          op.pad_value >= -128 && op.pad_value <= 127;
    const bool fully_covered_1x1_out =
        op.out_w == 1 && op.out_h == 1 && op.pad_left == 0 &&
        op.pad_top == 0 && R == in_h && S == in_w;
    if (i32_safe && fully_covered_1x1_out) {
      // Fully-connected shape (the whole input cube is one kernel window,
      // no padding): both the planar input slice and the weight row are
      // contiguous, so each output is a straight dot product.
      const std::size_t len = static_cast<std::size_t>(C) * R * S;
      for (std::uint32_t k = 0; k < K; ++k) {
        const std::int8_t* a =
            in.data() + static_cast<std::size_t>((k / k_per_group)) * C * R * S;
        const std::int8_t* b = wt + static_cast<std::size_t>(k) * len;
        std::int32_t sum = 0;
        for (std::size_t i = 0; i < len; ++i) {
          sum += static_cast<std::int32_t>(a[i]) * b[i];
        }
        acc.i32[acc.index(k, 0, 0)] = saturate_i32(sum);
      }
    } else if (i32_safe &&
               static_cast<std::uint64_t>(taps) * op.out_h * op.out_w <=
                   (16u << 20)) {
      // im2col: materialize one contiguous row of taps per output pixel —
      // padding becomes pad_value samples (guaranteed to fit int8 by the
      // i32_safe guard) — so every (kernel, output) pair reduces to a
      // straight dot product of two contiguous int8 rows, which the
      // compiler vectorizes. The patch matrix is built once per group and
      // shared by all of the group's kernels; its size is capped above
      // (16 MiB) to bound staging memory on degenerate shapes.
      const std::size_t crs = static_cast<std::size_t>(C) * R * S;
      const std::size_t outs =
          static_cast<std::size_t>(op.out_h) * op.out_w;
      std::vector<std::int8_t> col(crs * outs);
      const auto pad = static_cast<std::int8_t>(op.pad_value);
      for (std::uint32_t g = 0; g < G; ++g) {
        const std::uint32_t c_base = g * C;
        for (std::uint32_t oy = 0; oy < op.out_h; ++oy) {
          const std::int64_t iy0 =
              static_cast<std::int64_t>(oy) * op.stride_y - op.pad_top;
          for (std::uint32_t ox = 0; ox < op.out_w; ++ox) {
            const std::int64_t ix0 =
                static_cast<std::int64_t>(ox) * op.stride_x - op.pad_left;
            std::int8_t* crow =
                col.data() +
                (static_cast<std::size_t>(oy) * op.out_w + ox) * crs;
            for (std::uint32_t c = 0; c < C; ++c) {
              for (std::uint32_t r = 0; r < R; ++r) {
                const std::int64_t iy = iy0 + r;
                if (iy < 0 || iy >= in_h) {
                  for (std::uint32_t s = 0; s < S; ++s) *crow++ = pad;
                  continue;
                }
                const std::int8_t* in_row =
                    in.data() +
                    in_index(c_base + c, static_cast<std::uint32_t>(iy), 0);
                for (std::uint32_t s = 0; s < S; ++s) {
                  const std::int64_t ix = ix0 + s;
                  *crow++ = (ix < 0 || ix >= in_w)
                                ? pad
                                : in_row[ix];
                }
              }
            }
          }
        }
        for (std::uint32_t k = g * k_per_group; k < (g + 1) * k_per_group;
             ++k) {
          const std::int8_t* w_row = wt + static_cast<std::size_t>(k) * crs;
          std::int32_t* acc_row =
              acc.i32.data() + acc.index(k, 0, 0);
          for (std::size_t j = 0; j < outs; ++j) {
            const std::int8_t* crow = col.data() + j * crs;
            std::int32_t sum = 0;
            for (std::size_t i = 0; i < crs; ++i) {
              sum += static_cast<std::int32_t>(crow[i]) * w_row[i];
            }
            acc_row[j] = saturate_i32(sum);
          }
        }
      }
    } else {
      // Reference walk (kept for pathological tap counts): int64 sums,
      // output element by output element.
      for (std::uint32_t k = 0; k < K; ++k) {
        const std::uint32_t c_base = (k / k_per_group) * C;
        for (std::uint32_t oy = 0; oy < op.out_h; ++oy) {
          const std::int64_t iy0 =
              static_cast<std::int64_t>(oy) * op.stride_y - op.pad_top;
          for (std::uint32_t ox = 0; ox < op.out_w; ++ox) {
            const std::int64_t ix0 =
                static_cast<std::int64_t>(ox) * op.stride_x - op.pad_left;
            std::int64_t sum = 0;
            for (std::uint32_t c = 0; c < C; ++c) {
              for (std::uint32_t r = 0; r < R; ++r) {
                const std::int64_t iy = iy0 + r;
                if (iy < 0 || iy >= in_h) {
                  if (op.pad_value != 0) {
                    for (std::uint32_t s = 0; s < S; ++s) {
                      sum += static_cast<std::int64_t>(op.pad_value) *
                             wt[w_index(k, c, r, s)];
                    }
                  }
                  continue;
                }
                const std::int8_t* in_row =
                    in.data() +
                    in_index(c_base + c, static_cast<std::uint32_t>(iy), 0);
                const std::int8_t* w_row = wt + w_index(k, c, r, 0);
                for (std::uint32_t s = 0; s < S; ++s) {
                  const std::int64_t ix = ix0 + s;
                  if (ix < 0 || ix >= in_w) {
                    sum += static_cast<std::int64_t>(op.pad_value) * w_row[s];
                    continue;
                  }
                  sum += static_cast<std::int64_t>(in_row[ix]) * w_row[s];
                }
              }
            }
            acc.i32[acc.index(k, oy, ox)] = saturate_i32(sum);
          }
        }
      }
    }
  } else {
    const std::vector<float> in = unpack_planar<float>(input);
    const auto* wt_raw = reinterpret_cast<const std::uint16_t*>(weights.data());
    // Pre-decode the fp16 weights once.
    std::vector<float> wt(static_cast<std::size_t>(K) * C * R * S);
    for (std::size_t i = 0; i < wt.size(); ++i) {
      wt[i] = half_bits_to_float(wt_raw[i]);
    }
    const float padf = static_cast<float>(op.pad_value);
    acc.f32.assign(static_cast<std::size_t>(K) * op.out_h * op.out_w, 0.0f);
    for (std::uint32_t k = 0; k < K; ++k) {
      const std::uint32_t c_base = (k / k_per_group) * C;
      for (std::uint32_t oy = 0; oy < op.out_h; ++oy) {
        const std::int64_t iy0 =
            static_cast<std::int64_t>(oy) * op.stride_y - op.pad_top;
        for (std::uint32_t ox = 0; ox < op.out_w; ++ox) {
          const std::int64_t ix0 =
              static_cast<std::int64_t>(ox) * op.stride_x - op.pad_left;
          float sum = 0.0f;
          for (std::uint32_t c = 0; c < C; ++c) {
            for (std::uint32_t r = 0; r < R; ++r) {
              const std::int64_t iy = iy0 + r;
              for (std::uint32_t s = 0; s < S; ++s) {
                const std::int64_t ix = ix0 + s;
                const float v =
                    (iy < 0 || iy >= in_h || ix < 0 || ix >= in_w)
                        ? padf
                        : in[in_index(c_base + c,
                                      static_cast<std::uint32_t>(iy),
                                      static_cast<std::uint32_t>(ix))];
                sum += v * wt[w_index(k, c, r, s)];
              }
            }
          }
          acc.f32[acc.index(k, oy, ox)] = sum;
        }
      }
    }
  }
  return acc;
}

// ---------------------------------------------------------------------------
// SDP
// ---------------------------------------------------------------------------

void sdp_execute(const SdpOp& op, const ConvAccumulators* acc,
                 const CubeBuffer* src,
                 std::span<const std::uint8_t> bias_table,
                 std::span<const std::uint8_t> eltwise, CubeBuffer& out) {
  const bool int8_path = op.out_precision == Precision::kInt8;
  const std::uint32_t K = op.dims.c;

  // BS channel: per-kernel bias table.
  const std::int32_t* bias_i32 = nullptr;
  const float* bias_f32 = nullptr;
  if (op.bias_enable && !bias_table.empty()) {
    if (int8_path) {
      bias_i32 = reinterpret_cast<const std::int32_t*>(bias_table.data());
    } else {
      bias_f32 = reinterpret_cast<const float*>(bias_table.data());
    }
  }
  // X1 channel: per-element operand cube, same layout as dst, based at 0
  // within the fetched blob.
  SurfaceDesc elt_desc = op.dst;
  elt_desc.base = 0;
  elt_desc.line_stride = op.operand_line_stride;
  elt_desc.surf_stride = op.operand_surf_stride;

  if (int8_path) {
    // Hot path (every INT8 hardware layer runs through it): iterate rows
    // with hoisted surface offsets — the packed-atom div/mod runs once per
    // channel instead of once per element — and fold a disabled bias into
    // a zero addend. Identical arithmetic to the per-element reference
    // walk in the FP16 branch below.
    const SurfaceDesc& dst = out.desc();
    std::uint8_t* out_bytes = out.bytes().data();
    const std::uint8_t* src_bytes =
        src != nullptr ? src->bytes().data() : nullptr;
    for (std::uint32_t k = 0; k < K; ++k) {
      const std::int64_t bias =
          (op.bias_enable && bias_i32 != nullptr) ? bias_i32[k] : 0;
      const std::uint64_t dst_k = dst.offset_of(k, 0, 0);
      const std::uint64_t elt_k =
          op.eltwise_enable ? elt_desc.offset_of(k, 0, 0) : 0;
      const std::uint64_t src_k =
          src != nullptr ? src->desc().offset_of(k, 0, 0) : 0;
      for (std::uint32_t y = 0; y < op.dims.h; ++y) {
        const std::int32_t* acc_row =
            acc != nullptr ? acc->i32.data() + acc->index(k, y, 0) : nullptr;
        const std::uint64_t dst_row = dst_k + static_cast<std::uint64_t>(y) *
                                                  dst.line_stride;
        const std::uint64_t elt_row =
            elt_k + static_cast<std::uint64_t>(y) * elt_desc.line_stride;
        const std::uint64_t src_row =
            src != nullptr ? src_k + static_cast<std::uint64_t>(y) *
                                         src->desc().line_stride
                           : 0;
        for (std::uint32_t x = 0; x < op.dims.w; ++x) {
          std::int64_t value =
              acc_row != nullptr
                  ? acc_row[x]
                  : static_cast<std::int8_t>(
                        src_bytes[src_row +
                                  static_cast<std::uint64_t>(x) *
                                      src->desc().atom_bytes]);
          value += bias;
          // Output converter into the INT8 output scale, with rounding.
          if (op.cvt_shift > 0) {
            const std::int64_t scaled = value * op.cvt_scale;
            const std::int64_t rounding = 1ll << (op.cvt_shift - 1);
            value = (scaled + (scaled >= 0 ? rounding : -rounding)) >>
                    op.cvt_shift;
          } else {
            value *= op.cvt_scale;
          }
          if (op.eltwise_enable) {
            value += static_cast<std::int8_t>(
                eltwise[elt_row +
                        static_cast<std::uint64_t>(x) * elt_desc.atom_bytes]);
          }
          if (op.relu_enable && value < 0) value = 0;
          out_bytes[dst_row + static_cast<std::uint64_t>(x) *
                                  dst.atom_bytes] =
              static_cast<std::uint8_t>(saturate_i8(value));
        }
      }
    }
    return;
  }

  for (std::uint32_t k = 0; k < K; ++k) {
    for (std::uint32_t y = 0; y < op.dims.h; ++y) {
      for (std::uint32_t x = 0; x < op.dims.w; ++x) {
        {
          float value;
          if (acc != nullptr) {
            value = acc->f32[acc->index(k, y, x)];
          } else {
            value = src->get(k, y, x);
          }
          if (op.bias_enable && bias_f32 != nullptr) value += bias_f32[k];
          if (op.eltwise_enable) {
            const std::uint64_t off = elt_desc.offset_of(k, y, x);
            const std::uint16_t raw = static_cast<std::uint16_t>(
                eltwise[off] | (eltwise[off + 1] << 8));
            value += half_bits_to_float(raw);
          }
          if (op.relu_enable && value < 0.0f) value = 0.0f;
          out.set(k, y, x, value);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// PDP
// ---------------------------------------------------------------------------

void pdp_execute(const PdpOp& op, const CubeBuffer& src, CubeBuffer& out) {
  const auto& in_dims = src.desc().dims;
  const auto& out_dims = out.desc().dims;
  const bool int8_path = op.precision == Precision::kInt8;

  for (std::uint32_t c = 0; c < out_dims.c; ++c) {
    for (std::uint32_t oy = 0; oy < out_dims.h; ++oy) {
      for (std::uint32_t ox = 0; ox < out_dims.w; ++ox) {
        const std::int64_t iy0 =
            static_cast<std::int64_t>(oy) * op.stride_y - op.pad_top;
        const std::int64_t ix0 =
            static_cast<std::int64_t>(ox) * op.stride_x - op.pad_left;
        if (int8_path) {
          std::int64_t agg = op.average ? 0 : INT64_MIN;
          std::uint32_t count = 0;
          for (std::uint32_t r = 0; r < op.kernel_h; ++r) {
            for (std::uint32_t s = 0; s < op.kernel_w; ++s) {
              const std::int64_t iy = iy0 + r;
              const std::int64_t ix = ix0 + s;
              if (iy < 0 || iy >= in_dims.h || ix < 0 || ix >= in_dims.w) {
                continue;  // exclude padding from both max and average
              }
              const std::int8_t v =
                  src.get_i8(c, static_cast<std::uint32_t>(iy),
                             static_cast<std::uint32_t>(ix));
              if (op.average) {
                agg += v;
              } else {
                agg = std::max<std::int64_t>(agg, v);
              }
              ++count;
            }
          }
          std::int64_t result;
          if (op.average) {
            // Round-to-nearest division by the live window size (the NVDLA
            // PDP recip table behaviour for exclusive padding).
            result = count == 0
                         ? 0
                         : (agg >= 0 ? (agg + count / 2) / count
                                     : -((-agg + count / 2) / count));
          } else {
            result = count == 0 ? 0 : agg;
          }
          out.set_i8(c, oy, ox, saturate_i8(result));
        } else {
          float agg = op.average ? 0.0f : -std::numeric_limits<float>::max();
          std::uint32_t count = 0;
          for (std::uint32_t r = 0; r < op.kernel_h; ++r) {
            for (std::uint32_t s = 0; s < op.kernel_w; ++s) {
              const std::int64_t iy = iy0 + r;
              const std::int64_t ix = ix0 + s;
              if (iy < 0 || iy >= in_dims.h || ix < 0 || ix >= in_dims.w) {
                continue;
              }
              const float v = src.get(c, static_cast<std::uint32_t>(iy),
                                      static_cast<std::uint32_t>(ix));
              if (op.average) {
                agg += v;
              } else {
                agg = std::max(agg, v);
              }
              ++count;
            }
          }
          out.set(c, oy, ox,
                  count == 0 ? 0.0f : (op.average ? agg / count : agg));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CDP (LRN)
// ---------------------------------------------------------------------------

void cdp_execute(const CdpOp& op, const CubeBuffer& src, CubeBuffer& out) {
  const auto& dims = src.desc().dims;
  const float alpha = static_cast<float>(op.alpha_q16) / 65536.0f;
  const float beta = static_cast<float>(op.beta_q16) / 65536.0f;
  const float k = static_cast<float>(op.k_q16) / 65536.0f;
  const float in_scale = static_cast<float>(op.in_scale_q16) / 65536.0f;
  const int half = static_cast<int>(op.local_size / 2);

  for (std::uint32_t c = 0; c < dims.c; ++c) {
    for (std::uint32_t y = 0; y < dims.h; ++y) {
      for (std::uint32_t x = 0; x < dims.w; ++x) {
        float sumsq = 0.0f;
        for (int dc = -half; dc <= half; ++dc) {
          const int cc = static_cast<int>(c) + dc;
          if (cc < 0 || cc >= static_cast<int>(dims.c)) continue;
          float v = src.get(static_cast<std::uint32_t>(cc), y, x);
          if (op.precision == Precision::kInt8) v *= in_scale;
          sumsq += v * v;
        }
        float v = src.get(c, y, x);
        if (op.precision == Precision::kInt8) v *= in_scale;
        const float denom = std::pow(
            k + alpha / static_cast<float>(op.local_size) * sumsq, beta);
        float result = v / denom;
        if (op.precision == Precision::kInt8) {
          result /= in_scale;  // requantise into the same INT8 scale
          out.set_i8(c, y, x,
                     saturate_i8(static_cast<std::int64_t>(std::lround(
                         result))));
        } else {
          out.set(c, y, x, result);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cycle model
// ---------------------------------------------------------------------------

namespace {

Cycle dbb_cycles_for(const NvdlaConfig& cfg, std::uint64_t bytes) {
  const double effective =
      static_cast<double>(cfg.dbb_bytes_per_cycle()) *
      cfg.timing.dbb_efficiency;
  return static_cast<Cycle>(static_cast<double>(bytes) / effective) + 1;
}

}  // namespace

OpCost conv_cost(const NvdlaConfig& cfg, const ConvOp& op,
                 std::uint64_t output_bytes) {
  OpCost cost;
  const std::uint32_t esize = elem_size_bytes(op.precision);
  const std::uint32_t G = std::max(1u, op.groups);
  // FP16 halves the MAC array's channel dimension (two bytes per operand).
  const std::uint32_t atomic_c_eff = std::max(
      1u, op.precision == Precision::kFp16 ? cfg.atomic_c / 2 : cfg.atomic_c);
  // Padding to the MAC array shape happens per channel group — this is what
  // makes depthwise convolution (kernel_c == 1) so inefficient on NVDLA.
  const std::uint64_t c_pad = align_up(op.kernel_c, atomic_c_eff);
  const std::uint64_t k_per_group = std::max(1u, op.kernel_k / G);
  const std::uint64_t k_pad = align_up(k_per_group, cfg.atomic_k);

  double tiles = static_cast<double>(op.out_w) * op.out_h * op.kernel_w *
                 op.kernel_h * (c_pad / atomic_c_eff) *
                 (k_pad / cfg.atomic_k) * G;
  // Grouped/depthwise convolution: the CSC packs a couple of channel groups
  // side by side into one atomic-C slice, partially recovering the padding
  // waste (kernel_c << atomic-C).
  if (G > 1 && op.kernel_c * 2 <= atomic_c_eff) {
    tiles /= std::max(1u, cfg.timing.grouped_channel_packing);
  }
  cost.compute_cycles =
      static_cast<Cycle>(tiles / cfg.timing.mac_efficiency) + 1;

  // Traffic: weights once; input re-streamed once per atomic-K slice when
  // it does not fit in half the convolution buffer.
  const std::uint64_t input_bytes =
      static_cast<std::uint64_t>(op.input.dims.c) * op.input.dims.h *
      op.input.dims.w * esize;
  const std::uint64_t weight_bytes =
      k_pad * G * c_pad * op.kernel_w * op.kernel_h * esize;
  const std::uint64_t k_slices = k_pad / cfg.atomic_k;
  const std::uint64_t cbuf_half = cfg.cbuf_kib * 1024ull / 2;
  const std::uint64_t input_passes = input_bytes <= cbuf_half ? 1 : k_slices;
  cost.traffic_bytes =
      input_bytes * input_passes + weight_bytes + output_bytes;
  cost.dbb_cycles = dbb_cycles_for(cfg, cost.traffic_bytes);
  return cost;
}

OpCost sdp_cost(const NvdlaConfig& cfg, const SdpOp& op) {
  OpCost cost;
  const std::uint32_t esize = elem_size_bytes(op.out_precision);
  const std::uint64_t elems = op.dims.elements();
  std::uint64_t bytes = elems * esize;          // destination write
  if (!op.flying_mode()) bytes += elems * esize;  // memory source read
  if (op.eltwise_enable) bytes += elems * esize;  // operand cube read
  cost.traffic_bytes = bytes;
  // SDP throughput: one output atom per cycle.
  cost.compute_cycles = elems * esize / cfg.atom_bytes + 1;
  cost.dbb_cycles = dbb_cycles_for(cfg, bytes);
  return cost;
}

OpCost pdp_cost(const NvdlaConfig& cfg, const PdpOp& op) {
  OpCost cost;
  const std::uint32_t esize = elem_size_bytes(op.precision);
  const std::uint64_t in_bytes = op.src.dims.elements() * esize;
  const std::uint64_t out_bytes = op.dst.dims.elements() * esize;
  cost.traffic_bytes = in_bytes + out_bytes;
  // The pooling datapath evaluates one window element per lane per cycle
  // across atom_bytes lanes.
  cost.compute_cycles = op.dst.dims.elements() * op.kernel_w * op.kernel_h *
                            esize / cfg.atom_bytes +
                        1;
  cost.dbb_cycles = dbb_cycles_for(cfg, cost.traffic_bytes);
  return cost;
}

OpCost cdp_cost(const NvdlaConfig& cfg, const CdpOp& op) {
  OpCost cost;
  const std::uint32_t esize = elem_size_bytes(op.precision);
  const std::uint64_t elems = op.src.dims.elements();
  cost.traffic_bytes = 2 * elems * esize;
  // The CDP normalisation walks a serial LUT-interpolation path per output
  // element (square, accumulate across local_size, exponent lookup,
  // divide) — the unit is not vectorised across the atom.
  cost.compute_cycles = elems * cfg.timing.cdp_cycles_per_element + 1;
  cost.dbb_cycles = dbb_cycles_for(cfg, cost.traffic_bytes);
  return cost;
}

OpCost bdma_cost(const NvdlaConfig& cfg, const BdmaOp& op) {
  OpCost cost;
  cost.traffic_bytes = 2 * op.total_bytes();
  cost.compute_cycles = 1;
  cost.dbb_cycles = dbb_cycles_for(cfg, cost.traffic_bytes);
  return cost;
}

}  // namespace nvsoc::nvdla
