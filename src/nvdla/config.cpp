#include "nvdla/config.hpp"

namespace nvsoc::nvdla {

NvdlaConfig NvdlaConfig::small() {
  NvdlaConfig c;
  c.name = "nv_small";
  c.atomic_c = 8;
  c.atomic_k = 8;
  c.cbuf_kib = 128;
  c.dbb_width_bits = 64;
  c.supports_fp16 = false;
  c.atom_bytes = 8;
  return c;
}

NvdlaConfig NvdlaConfig::full() {
  NvdlaConfig c;
  c.name = "nv_full";
  c.atomic_c = 64;
  c.atomic_k = 16;
  c.cbuf_kib = 512;
  c.dbb_width_bits = 512;
  c.supports_fp16 = true;
  c.atom_bytes = 32;
  // nv_full calibration (Table III): the wide CBUF/DBB amortise per-layer
  // reconfiguration, and the FP16 datapath sustains a lower MAC efficiency.
  c.timing.op_overhead = 4'000;
  c.timing.mac_efficiency = 0.40;
  c.timing.dbb_efficiency = 0.50;
  return c;
}

}  // namespace nvsoc::nvdla
