// NVDLA data-backbone (DBB) master port.
//
// All functional tensor traffic goes through an AxiTarget (in the SoC this
// is the 64->32 width converter feeding the DRAM arbiter; in the virtual
// platform a direct AXI port on the VP memory), chunked into bursts of the
// configured granule. Every transfer is reported to an optional observer —
// the VP's dbb_adaptor trace hook.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "bus/bus_types.hpp"
#include "fault/fault.hpp"
#include "nvdla/config.hpp"

namespace nvsoc::nvdla {

struct DbbStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bursts = 0;
};

class DbbMaster {
 public:
  /// Observer signature: (is_write, addr, data). Data spans the burst.
  using Observer = std::function<void(bool is_write, Addr addr,
                                      std::span<const std::uint8_t> data)>;

  DbbMaster(AxiTarget& port, const NvdlaConfig& config)
      : port_(port), config_(config) {}

  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Arms deterministic DBB bus-error injection (fault::Kind::kDbbError);
  /// nullptr disarms. Injected errors — like real interconnect error
  /// responses — surface as a StatusError instead of aborting.
  void set_fault_injector(std::shared_ptr<fault::Injector> injector) {
    fault_ = std::move(injector);
  }

  /// Timed burst read/write; returns the completion cycle. A burst that
  /// gets an error response (structural or injected) throws StatusError
  /// carrying the typed status.
  Cycle read(Addr addr, std::span<std::uint8_t> out, Cycle start);
  Cycle write(Addr addr, std::span<const std::uint8_t> data, Cycle start);

  const DbbStats& stats() const { return stats_; }

 private:
  AxiTarget& port_;
  const NvdlaConfig& config_;
  Observer observer_;
  std::shared_ptr<fault::Injector> fault_;
  DbbStats stats_;
};

}  // namespace nvsoc::nvdla
