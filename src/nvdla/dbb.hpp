// NVDLA data-backbone (DBB) master port.
//
// All functional tensor traffic goes through an AxiTarget (in the SoC this
// is the 64->32 width converter feeding the DRAM arbiter; in the virtual
// platform a direct AXI port on the VP memory), chunked into bursts of the
// configured granule. Every transfer is reported to an optional observer —
// the VP's dbb_adaptor trace hook.
#pragma once

#include <functional>
#include <span>

#include "bus/bus_types.hpp"
#include "nvdla/config.hpp"

namespace nvsoc::nvdla {

struct DbbStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bursts = 0;
};

class DbbMaster {
 public:
  /// Observer signature: (is_write, addr, data). Data spans the burst.
  using Observer = std::function<void(bool is_write, Addr addr,
                                      std::span<const std::uint8_t> data)>;

  DbbMaster(AxiTarget& port, const NvdlaConfig& config)
      : port_(port), config_(config) {}

  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Timed burst read/write; returns the completion cycle.
  Cycle read(Addr addr, std::span<std::uint8_t> out, Cycle start);
  Cycle write(Addr addr, std::span<const std::uint8_t> data, Cycle start);

  const DbbStats& stats() const { return stats_; }

 private:
  AxiTarget& port_;
  const NvdlaConfig& config_;
  Observer observer_;
  DbbStats stats_;
};

}  // namespace nvsoc::nvdla
