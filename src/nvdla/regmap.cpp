#include "nvdla/regmap.hpp"

#include "common/strfmt.hpp"

namespace nvsoc::nvdla {

std::optional<Unit> unit_for_address(Addr addr) {
  for (std::size_t i = 0; i < kNumUnits; ++i) {
    const Unit unit = static_cast<Unit>(i);
    const Addr base = unit_base(unit);
    if (addr >= base && addr < base + kUnitPage) return unit;
  }
  return std::nullopt;
}

std::string_view unit_name(Unit unit) {
  switch (unit) {
    case Unit::kGlb: return "glb";
    case Unit::kMcif: return "mcif";
    case Unit::kBdma: return "bdma";
    case Unit::kCdma: return "cdma";
    case Unit::kCsc: return "csc";
    case Unit::kCmac: return "cmac";
    case Unit::kCacc: return "cacc";
    case Unit::kSdpRdma: return "sdp_rdma";
    case Unit::kSdp: return "sdp";
    case Unit::kPdp: return "pdp";
    case Unit::kCdp: return "cdp";
    case Unit::kCount: break;
  }
  return "unknown";
}

namespace {

struct NamedReg {
  Unit unit;
  Addr offset;
  const char* name;
};

constexpr NamedReg kNamedRegs[] = {
    {Unit::kGlb, glb::kHwVersion, "hw_version"},
    {Unit::kGlb, glb::kIntrMask, "s_intr_mask"},
    {Unit::kGlb, glb::kIntrSet, "s_intr_set"},
    {Unit::kGlb, glb::kIntrStatus, "s_intr_status"},
    {Unit::kCdma, cdma::kDatainFormat, "d_datain_format"},
    {Unit::kCdma, cdma::kDatainSize0, "d_datain_size_0"},
    {Unit::kCdma, cdma::kDatainSize1, "d_datain_size_1"},
    {Unit::kCdma, cdma::kDainAddr, "d_dain_addr"},
    {Unit::kCdma, cdma::kDainLineStride, "d_dain_line_stride"},
    {Unit::kCdma, cdma::kDainSurfStride, "d_dain_surf_stride"},
    {Unit::kCdma, cdma::kWeightAddr, "d_weight_addr"},
    {Unit::kCdma, cdma::kWeightBytes, "d_weight_bytes"},
    {Unit::kCdma, cdma::kZeroPadding, "d_zero_padding"},
    {Unit::kCdma, cdma::kConvStride, "d_conv_stride"},
    {Unit::kCdma, cdma::kPadValue, "d_pad_value"},
    {Unit::kCsc, csc::kKernelSize, "d_kernel_size"},
    {Unit::kCsc, csc::kKernelChannels, "d_kernel_channels"},
    {Unit::kCsc, csc::kKernelNumber, "d_kernel_number"},
    {Unit::kCsc, csc::kKernelGroups, "d_kernel_groups"},
    {Unit::kCmac, cmac::kMiscCfg, "d_misc_cfg"},
    {Unit::kCacc, cacc::kDataoutSize0, "d_dataout_size_0"},
    {Unit::kCacc, cacc::kDataoutSize1, "d_dataout_size_1"},
    {Unit::kCacc, cacc::kClipTruncate, "d_clip_truncate"},
    {Unit::kSdpRdma, sdp_rdma::kBrdmaAddr, "d_brdma_addr"},
    {Unit::kSdpRdma, sdp_rdma::kBrdmaLineStride, "d_brdma_line_stride"},
    {Unit::kSdpRdma, sdp_rdma::kBrdmaSurfStride, "d_brdma_surf_stride"},
    {Unit::kSdpRdma, sdp_rdma::kBrdmaMode, "d_brdma_mode"},
    {Unit::kSdpRdma, sdp_rdma::kBrdmaPrecision, "d_brdma_precision"},
    {Unit::kSdpRdma, sdp_rdma::kBsAddr, "d_bs_base_addr"},
    {Unit::kSdp, sdp::kCubeWidth, "d_data_cube_width"},
    {Unit::kSdp, sdp::kCubeHeight, "d_data_cube_height"},
    {Unit::kSdp, sdp::kCubeChannel, "d_data_cube_channel"},
    {Unit::kSdp, sdp::kSrcBaseAddr, "d_src_base_addr"},
    {Unit::kSdp, sdp::kSrcLineStride, "d_src_line_stride"},
    {Unit::kSdp, sdp::kSrcSurfStride, "d_src_surf_stride"},
    {Unit::kSdp, sdp::kDstBaseAddr, "d_dst_base_addr"},
    {Unit::kSdp, sdp::kDstLineStride, "d_dst_line_stride"},
    {Unit::kSdp, sdp::kDstSurfStride, "d_dst_surf_stride"},
    {Unit::kSdp, sdp::kOpCfg, "d_op_cfg"},
    {Unit::kSdp, sdp::kCvtScale, "d_cvt_scale"},
    {Unit::kSdp, sdp::kCvtShift, "d_cvt_shift"},
    {Unit::kSdp, sdp::kOutPrecision, "d_out_precision"},
    {Unit::kPdp, pdp::kCubeInWidth, "d_data_cube_in_width"},
    {Unit::kPdp, pdp::kCubeInHeight, "d_data_cube_in_height"},
    {Unit::kPdp, pdp::kCubeInChannel, "d_data_cube_in_channel"},
    {Unit::kPdp, pdp::kCubeOutWidth, "d_data_cube_out_width"},
    {Unit::kPdp, pdp::kCubeOutHeight, "d_data_cube_out_height"},
    {Unit::kPdp, pdp::kKernelCfg, "d_pooling_kernel_cfg"},
    {Unit::kPdp, pdp::kPaddingCfg, "d_pooling_padding_cfg"},
    {Unit::kPdp, pdp::kSrcBaseAddr, "d_src_base_addr"},
    {Unit::kPdp, pdp::kSrcLineStride, "d_src_line_stride"},
    {Unit::kPdp, pdp::kSrcSurfStride, "d_src_surf_stride"},
    {Unit::kPdp, pdp::kDstBaseAddr, "d_dst_base_addr"},
    {Unit::kPdp, pdp::kDstLineStride, "d_dst_line_stride"},
    {Unit::kPdp, pdp::kDstSurfStride, "d_dst_surf_stride"},
    {Unit::kPdp, pdp::kPrecision, "d_precision"},
    {Unit::kCdp, cdp::kCubeWidth, "d_data_cube_width"},
    {Unit::kCdp, cdp::kCubeHeight, "d_data_cube_height"},
    {Unit::kCdp, cdp::kCubeChannel, "d_data_cube_channel"},
    {Unit::kCdp, cdp::kSrcBaseAddr, "d_src_base_addr"},
    {Unit::kCdp, cdp::kSrcLineStride, "d_src_line_stride"},
    {Unit::kCdp, cdp::kSrcSurfStride, "d_src_surf_stride"},
    {Unit::kCdp, cdp::kDstBaseAddr, "d_dst_base_addr"},
    {Unit::kCdp, cdp::kDstLineStride, "d_dst_line_stride"},
    {Unit::kCdp, cdp::kDstSurfStride, "d_dst_surf_stride"},
    {Unit::kCdp, cdp::kLocalSize, "d_lrn_local_size"},
    {Unit::kCdp, cdp::kAlphaQ16, "d_lrn_alpha"},
    {Unit::kCdp, cdp::kBetaQ16, "d_lrn_beta"},
    {Unit::kCdp, cdp::kKQ16, "d_lrn_k"},
    {Unit::kCdp, cdp::kInScaleQ16, "d_in_scale"},
    {Unit::kCdp, cdp::kPrecision, "d_precision"},
    {Unit::kBdma, bdma::kSrcAddr, "d_src_addr"},
    {Unit::kBdma, bdma::kDstAddr, "d_dst_addr"},
    {Unit::kBdma, bdma::kLineSize, "d_line_size"},
    {Unit::kBdma, bdma::kLineRepeat, "d_line_repeat"},
    {Unit::kBdma, bdma::kSrcStride, "d_src_stride"},
    {Unit::kBdma, bdma::kDstStride, "d_dst_stride"},
};

}  // namespace

std::string register_name(Addr csb_addr) {
  const auto unit = unit_for_address(csb_addr);
  if (!unit) return strfmt("unmapped.{:#x}", csb_addr);
  const Addr offset = csb_addr - unit_base(*unit);
  if (offset == ctrl::kStatus) {
    return strfmt("{}.s_status", unit_name(*unit));
  }
  if (offset == ctrl::kPointer) {
    return strfmt("{}.s_pointer", unit_name(*unit));
  }
  if (offset == ctrl::kOpEnable) {
    return strfmt("{}.d_op_enable", unit_name(*unit));
  }
  for (const auto& reg : kNamedRegs) {
    if (reg.unit == *unit && reg.offset == offset) {
      return strfmt("{}.{}", unit_name(*unit), reg.name);
    }
  }
  return strfmt("{}.+{:#x}", unit_name(*unit), offset);
}

}  // namespace nvsoc::nvdla
