#include "nvdla/replay.hpp"

#include "common/bitutil.hpp"
#include "nvdla/tensor.hpp"

namespace nvsoc::nvdla {

namespace {

/// X1-channel operand staging size — must match the timed paths in
/// engine.cpp exactly so the eltwise cube bytes replayed here are the
/// bytes the engine would have fetched.
std::size_t eltwise_bytes(const NvdlaConfig& config, const SdpOp& op) {
  return static_cast<std::size_t>(op.operand_surf_stride) *
         ceil_div(op.dims.c,
                  config.atom_bytes / elem_size_bytes(op.out_precision));
}

void replay_conv(const NvdlaConfig& config, const ReplayOp& op,
                 ReplayMemory& mem) {
  const ConvOp& conv = op.conv;
  const SdpOp& sdp = op.sdp;

  CubeBuffer input(conv.input);
  mem.read(conv.input.base, input.bytes());
  std::vector<std::uint8_t> weights(conv.weight_bytes);
  mem.read(conv.weight_addr, weights);

  std::vector<std::uint8_t> bias_table;
  if (sdp.bias_enable) {
    bias_table.resize(static_cast<std::size_t>(sdp.dims.c) * 4);
    mem.read(sdp.bias_addr, bias_table);
  }
  std::vector<std::uint8_t> eltwise;
  if (sdp.eltwise_enable) {
    eltwise.resize(eltwise_bytes(config, sdp));
    mem.read(sdp.operand_addr, eltwise);
  }

  const ConvAccumulators acc = conv_execute(conv, input, weights);
  CubeBuffer out(sdp.dst);
  sdp_execute(sdp, &acc, nullptr, bias_table, eltwise, out);
  mem.write(sdp.dst.base, out.bytes());
}

void replay_sdp(const NvdlaConfig& config, const ReplayOp& op,
                ReplayMemory& mem) {
  const SdpOp& sdp = op.sdp;
  CubeBuffer src(sdp.src);
  mem.read(sdp.src.base, src.bytes());

  std::vector<std::uint8_t> bias_table;
  if (sdp.bias_enable) {
    bias_table.resize(static_cast<std::size_t>(sdp.dims.c) * 4);
    mem.read(sdp.bias_addr, bias_table);
  }
  std::vector<std::uint8_t> eltwise;
  if (sdp.eltwise_enable) {
    eltwise.resize(eltwise_bytes(config, sdp));
    mem.read(sdp.operand_addr, eltwise);
  }

  CubeBuffer out(sdp.dst);
  sdp_execute(sdp, nullptr, &src, bias_table, eltwise, out);
  mem.write(sdp.dst.base, out.bytes());
}

void replay_pdp(const ReplayOp& op, ReplayMemory& mem) {
  CubeBuffer src(op.pdp.src);
  mem.read(op.pdp.src.base, src.bytes());
  CubeBuffer out(op.pdp.dst);
  pdp_execute(op.pdp, src, out);
  mem.write(op.pdp.dst.base, out.bytes());
}

void replay_cdp(const ReplayOp& op, ReplayMemory& mem) {
  CubeBuffer src(op.cdp.src);
  mem.read(op.cdp.src.base, src.bytes());
  CubeBuffer out(op.cdp.dst);
  cdp_execute(op.cdp, src, out);
  mem.write(op.cdp.dst.base, out.bytes());
}

void replay_bdma(const ReplayOp& op, ReplayMemory& mem) {
  const BdmaOp& bdma = op.bdma;
  std::vector<std::uint8_t> line(bdma.line_size);
  for (std::uint32_t i = 0; i < bdma.line_repeat; ++i) {
    mem.read(bdma.src_addr + static_cast<Addr>(i) * bdma.src_stride, line);
    mem.write(bdma.dst_addr + static_cast<Addr>(i) * bdma.dst_stride, line);
  }
}

}  // namespace

void replay_op(const NvdlaConfig& config, const ReplayOp& op,
               ReplayMemory& mem) {
  switch (op.kind) {
    case ReplayOp::Kind::kConv: replay_conv(config, op, mem); return;
    case ReplayOp::Kind::kSdp: replay_sdp(config, op, mem); return;
    case ReplayOp::Kind::kPdp: replay_pdp(op, mem); return;
    case ReplayOp::Kind::kCdp: replay_cdp(op, mem); return;
    case ReplayOp::Kind::kBdma: replay_bdma(op, mem); return;
  }
}

namespace {

void add_range(std::vector<ReplayAccess::Range>& ranges, Addr base,
               std::uint64_t bytes) {
  if (bytes == 0) return;
  ranges.push_back({base, base + bytes});
}

/// The SDP side channels (BS bias table, X1 eltwise cube) — shared by the
/// conv flying tail and standalone SDP, sized exactly as the replay reads
/// them.
void add_sdp_side_reads(const NvdlaConfig& config, const SdpOp& sdp,
                        std::vector<ReplayAccess::Range>& reads) {
  if (sdp.bias_enable) {
    add_range(reads, sdp.bias_addr, static_cast<std::uint64_t>(sdp.dims.c) * 4);
  }
  if (sdp.eltwise_enable) {
    add_range(reads, sdp.operand_addr, eltwise_bytes(config, sdp));
  }
}

}  // namespace

ReplayAccess replay_access_ranges(const NvdlaConfig& config,
                                  const ReplayOp& op) {
  ReplayAccess access;
  switch (op.kind) {
    case ReplayOp::Kind::kConv:
      add_range(access.reads, op.conv.input.base, op.conv.input.span_bytes());
      add_range(access.reads, op.conv.weight_addr, op.conv.weight_bytes);
      add_sdp_side_reads(config, op.sdp, access.reads);
      add_range(access.writes, op.sdp.dst.base, op.sdp.dst.span_bytes());
      return access;
    case ReplayOp::Kind::kSdp:
      add_range(access.reads, op.sdp.src.base, op.sdp.src.span_bytes());
      add_sdp_side_reads(config, op.sdp, access.reads);
      add_range(access.writes, op.sdp.dst.base, op.sdp.dst.span_bytes());
      return access;
    case ReplayOp::Kind::kPdp:
      add_range(access.reads, op.pdp.src.base, op.pdp.src.span_bytes());
      add_range(access.writes, op.pdp.dst.base, op.pdp.dst.span_bytes());
      return access;
    case ReplayOp::Kind::kCdp:
      add_range(access.reads, op.cdp.src.base, op.cdp.src.span_bytes());
      add_range(access.writes, op.cdp.dst.base, op.cdp.dst.span_bytes());
      return access;
    case ReplayOp::Kind::kBdma:
      // Strided lines are reported per line, not as a covering span: the
      // bytes between lines are neither read nor written, and claiming
      // them would let the reset planner skip restoring stale data.
      for (std::uint32_t i = 0; i < op.bdma.line_repeat; ++i) {
        add_range(access.reads,
                  op.bdma.src_addr + static_cast<Addr>(i) * op.bdma.src_stride,
                  op.bdma.line_size);
        add_range(access.writes,
                  op.bdma.dst_addr + static_cast<Addr>(i) * op.bdma.dst_stride,
                  op.bdma.line_size);
      }
      return access;
  }
  return access;
}

}  // namespace nvsoc::nvdla
