// NVDLA hardware configurations.
//
// The NVDLA hardware tree is parameterised; the paper uses the two standard
// released configurations:
//   nv_small : 8x8 = 64 INT8 MACs, 128 KiB CBUF, 64-bit DBB, INT8 only
//   nv_full  : 64x16 = 1024 INT8 MACs (FP16 at half rate), 512 KiB CBUF,
//              512-bit DBB, INT8 + FP16
// plus the ability to generate custom parameterisations, which the scaling
// ablation bench exercises.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace nvsoc::nvdla {

enum class Precision : std::uint8_t { kInt8 = 0, kFp16 = 1 };

inline constexpr std::uint32_t elem_size_bytes(Precision p) {
  return p == Precision::kInt8 ? 1 : 2;
}

/// Timing knobs of the analytic cycle model. Defaults carry the nv_small
/// calibration against Table II; NvdlaConfig::full() overrides with the
/// nv_full calibration against Table III. See DESIGN.md §5 for the model
/// and EXPERIMENTS.md for paper-vs-measured.
struct NvdlaTiming {
  /// CSB register file pipeline depth (request to retire).
  Cycle csb_internal = 1;
  /// Fixed per-hardware-layer cost: descriptor latch, CDMA reconfiguration,
  /// CBUF fill/drain and status propagation. Dominant for small layers —
  /// this is what makes LeNet-5 overhead-bound on nv_small (Table II) and
  /// nv_full (Table III's 143k cycles for trivial compute).
  Cycle op_overhead = 25'000;
  /// DMA latency charged once per burst.
  Cycle burst_latency = 12;
  /// Burst granule used by the DMA engines.
  std::uint32_t burst_bytes = 256;
  /// Fraction of theoretical MAC throughput sustained inside a tile
  /// (accounts for CSC scheduling gaps and partial-sum turnaround).
  double mac_efficiency = 0.70;
  /// Fraction of theoretical DBB bandwidth sustained on streaming traffic.
  double dbb_efficiency = 0.65;
  /// CDP (LRN) serial LUT-interpolation cost per element. The CDP walks its
  /// exponent LUT per output element; this serial path is why the
  /// LRN-bearing networks (AlexNet, GoogleNet) dominate Table III despite
  /// modest MAC counts.
  Cycle cdp_cycles_per_element = 32;
  /// Channel groups the CSC packs side by side into one atomic-C slice for
  /// grouped/depthwise convolution (partial mitigation of the padding
  /// waste; 1 = no packing).
  std::uint32_t grouped_channel_packing = 2;

  bool operator==(const NvdlaTiming&) const = default;
};

/// A generated NVDLA hardware configuration.
struct NvdlaConfig {
  std::string name = "nv_small";
  /// MAC array input-channel dimension (atomic-C).
  std::uint32_t atomic_c = 8;
  /// MAC array output-kernel dimension (atomic-K).
  std::uint32_t atomic_k = 8;
  /// Convolution buffer capacity.
  std::uint32_t cbuf_kib = 128;
  /// Data backbone width.
  std::uint32_t dbb_width_bits = 64;
  /// FP16 datapath present (nv_full only).
  bool supports_fp16 = false;
  /// Memory atom: channels are packed into atoms of this many bytes
  /// (the Cx-packed surface format of the NVDLA memory interface).
  std::uint32_t atom_bytes = 8;

  NvdlaTiming timing;

  std::uint32_t num_macs() const { return atomic_c * atomic_k; }
  std::uint32_t dbb_bytes_per_cycle() const { return dbb_width_bits / 8; }

  /// Hardware-version word exposed through GLB (readable sanity marker).
  std::uint32_t hw_version() const {
    return supports_fp16 ? 0x00010003u : 0x00010002u;
  }

  static NvdlaConfig small();
  static NvdlaConfig full();

  bool operator==(const NvdlaConfig&) const = default;
};

}  // namespace nvsoc::nvdla
