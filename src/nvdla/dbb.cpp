#include "nvdla/dbb.hpp"

#include <algorithm>

namespace nvsoc::nvdla {

Cycle DbbMaster::read(Addr addr, std::span<std::uint8_t> out, Cycle start) {
  Cycle now = start;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(config_.timing.burst_bytes, out.size() - done);
    AxiBurstRequest req{.addr = addr + done,
                        .is_write = false,
                        .wdata = {},
                        .rbuf = out.subspan(done, chunk),
                        .start = now + config_.timing.burst_latency};
    const AxiBurstResponse rsp = port_.burst(req);
    rsp.status.expect_ok("DBB read");
    now = rsp.complete;
    if (observer_) {
      observer_(false, addr + done, out.subspan(done, chunk));
    }
    done += chunk;
    ++stats_.bursts;
  }
  stats_.bytes_read += out.size();
  return now;
}

Cycle DbbMaster::write(Addr addr, std::span<const std::uint8_t> data,
                       Cycle start) {
  Cycle now = start;
  std::size_t done = 0;
  while (done < data.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(config_.timing.burst_bytes, data.size() - done);
    AxiBurstRequest req{.addr = addr + done,
                        .is_write = true,
                        .wdata = data.subspan(done, chunk),
                        .rbuf = {},
                        .start = now + config_.timing.burst_latency};
    const AxiBurstResponse rsp = port_.burst(req);
    rsp.status.expect_ok("DBB write");
    now = rsp.complete;
    if (observer_) {
      observer_(true, addr + done, data.subspan(done, chunk));
    }
    done += chunk;
    ++stats_.bursts;
  }
  stats_.bytes_written += data.size();
  return now;
}

}  // namespace nvsoc::nvdla
