#include "nvdla/dbb.hpp"

#include <algorithm>

#include "common/strfmt.hpp"

namespace nvsoc::nvdla {

namespace {

/// Error responses carry the typed status up through the engine to the
/// KMD/SoC boundary instead of aborting the process; injected errors are
/// transient (kUnavailable — a retry re-issues the burst cleanly).
[[noreturn]] void throw_burst_error(const char* what, Addr addr,
                                    const Status& status) {
  throw StatusError(status.code(),
                    strfmt("{} at {:#x}: {}", what, addr, status.message()));
}

}  // namespace

Cycle DbbMaster::read(Addr addr, std::span<std::uint8_t> out, Cycle start) {
  Cycle now = start;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(config_.timing.burst_bytes, out.size() - done);
    if (fault_ != nullptr && fault_->fire(fault::Kind::kDbbError)) {
      throw_burst_error("DBB read", addr + done,
                        Status(StatusCode::kUnavailable,
                               "injected DBB bus error response"));
    }
    AxiBurstRequest req{.addr = addr + done,
                        .is_write = false,
                        .wdata = {},
                        .rbuf = out.subspan(done, chunk),
                        .start = now + config_.timing.burst_latency};
    const AxiBurstResponse rsp = port_.burst(req);
    if (!rsp.status.is_ok()) {
      throw_burst_error("DBB read", addr + done, rsp.status);
    }
    now = rsp.complete;
    if (observer_) {
      observer_(false, addr + done, out.subspan(done, chunk));
    }
    done += chunk;
    ++stats_.bursts;
  }
  stats_.bytes_read += out.size();
  return now;
}

Cycle DbbMaster::write(Addr addr, std::span<const std::uint8_t> data,
                       Cycle start) {
  Cycle now = start;
  std::size_t done = 0;
  while (done < data.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(config_.timing.burst_bytes, data.size() - done);
    if (fault_ != nullptr && fault_->fire(fault::Kind::kDbbError)) {
      throw_burst_error("DBB write", addr + done,
                        Status(StatusCode::kUnavailable,
                               "injected DBB bus error response"));
    }
    AxiBurstRequest req{.addr = addr + done,
                        .is_write = true,
                        .wdata = data.subspan(done, chunk),
                        .rbuf = {},
                        .start = now + config_.timing.burst_latency};
    const AxiBurstResponse rsp = port_.burst(req);
    if (!rsp.status.is_ok()) {
      throw_burst_error("DBB write", addr + done, rsp.status);
    }
    now = rsp.complete;
    if (observer_) {
      observer_(true, addr + done, data.subspan(done, chunk));
    }
    done += chunk;
    ++stats_.bursts;
  }
  stats_.bytes_written += data.size();
  return now;
}

}  // namespace nvsoc::nvdla
