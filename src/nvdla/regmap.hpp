// NVDLA register map (byte offsets within the NVDLA CSB space).
//
// The layout mirrors the NVDLA address assignment: one 4 KiB page per
// functional unit, a common control block at the start of each page
// (S_STATUS / S_POINTER / D_OP_ENABLE) and unit-specific descriptor
// registers after it. The register subset is the one the nvsoc compiler
// programs; names follow the NVDLA hardware manual so VP traces read like
// real nvdla.csb_adaptor logs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace nvsoc::nvdla {

/// Functional units, in address order.
enum class Unit : std::uint8_t {
  kGlb = 0,
  kMcif,
  kBdma,
  kCdma,
  kCsc,
  kCmac,
  kCacc,
  kSdpRdma,
  kSdp,
  kPdp,
  kCdp,
  kCount,
};

inline constexpr std::size_t kNumUnits = static_cast<std::size_t>(Unit::kCount);

/// 4 KiB register page per unit.
inline constexpr Addr kUnitPage = 0x1000;

constexpr Addr unit_base(Unit unit) {
  switch (unit) {
    case Unit::kGlb: return 0x0000;
    case Unit::kMcif: return 0x1000;
    case Unit::kBdma: return 0x3000;
    case Unit::kCdma: return 0x4000;
    case Unit::kCsc: return 0x5000;
    case Unit::kCmac: return 0x6000;
    case Unit::kCacc: return 0x8000;
    case Unit::kSdpRdma: return 0x9000;
    case Unit::kSdp: return 0xA000;
    case Unit::kPdp: return 0xC000;
    case Unit::kCdp: return 0xE000;
    case Unit::kCount: break;
  }
  return 0xF000;
}

/// Map a CSB byte address to the owning unit (by page).
std::optional<Unit> unit_for_address(Addr addr);

std::string_view unit_name(Unit unit);

// ---------------------------------------------------------------------------
// GLB registers
// ---------------------------------------------------------------------------
namespace glb {
inline constexpr Addr kHwVersion = 0x0000;
inline constexpr Addr kIntrMask = 0x0004;
inline constexpr Addr kIntrSet = 0x0008;
inline constexpr Addr kIntrStatus = 0x000C;  // W1C

/// Interrupt bit for a unit's done event: bit = source*2 + group.
enum class IntrSource : std::uint8_t {
  kCacc = 0,  ///< convolution pipeline done
  kSdp = 1,
  kPdp = 2,
  kCdp = 3,
  kBdma = 4,
};
constexpr std::uint32_t intr_bit(IntrSource src, unsigned group) {
  return 1u << (static_cast<unsigned>(src) * 2 + (group & 1));
}
}  // namespace glb

// ---------------------------------------------------------------------------
// Common per-unit control block (offsets within the unit page)
// ---------------------------------------------------------------------------
namespace ctrl {
inline constexpr Addr kStatus = 0x00;     // RO: 0 idle, else busy
inline constexpr Addr kPointer = 0x04;    // bit0: producer register group
inline constexpr Addr kOpEnable = 0x08;   // write 1: launch producer group
}  // namespace ctrl

/// Number of ping-pong register groups per unit.
inline constexpr unsigned kNumGroups = 2;
/// Descriptor registers live at page offsets [0x0C, kGroupRegs*4 + 0x0C).
inline constexpr std::size_t kGroupRegs = 64;

// ---------------------------------------------------------------------------
// Unit descriptor registers (offsets within the unit page)
// ---------------------------------------------------------------------------
namespace cdma {
inline constexpr Addr kDatainFormat = 0x0C;     // 0 int8, 1 fp16
inline constexpr Addr kDatainSize0 = 0x10;      // w | h<<16
inline constexpr Addr kDatainSize1 = 0x14;      // c
inline constexpr Addr kDainAddr = 0x18;
inline constexpr Addr kDainLineStride = 0x1C;
inline constexpr Addr kDainSurfStride = 0x20;
inline constexpr Addr kWeightAddr = 0x24;
inline constexpr Addr kWeightBytes = 0x28;
inline constexpr Addr kZeroPadding = 0x2C;      // l | t<<8 | r<<16 | b<<24
inline constexpr Addr kConvStride = 0x30;       // sx | sy<<16
inline constexpr Addr kPadValue = 0x34;
}  // namespace cdma

namespace csc {
inline constexpr Addr kKernelSize = 0x0C;       // s | r<<16 (width | height)
inline constexpr Addr kKernelChannels = 0x10;   // channels per kernel group
inline constexpr Addr kKernelNumber = 0x14;
/// Channel groups (the compiler's split for grouped/depthwise convolution;
/// plain convolution uses 1).
inline constexpr Addr kKernelGroups = 0x18;
}  // namespace csc

namespace cmac {
inline constexpr Addr kMiscCfg = 0x0C;          // bit0: proc precision
}  // namespace cmac

namespace cacc {
inline constexpr Addr kDataoutSize0 = 0x0C;     // w | h<<16
inline constexpr Addr kDataoutSize1 = 0x10;     // k
inline constexpr Addr kClipTruncate = 0x14;
}  // namespace cacc

namespace sdp_rdma {
inline constexpr Addr kBrdmaAddr = 0x0C;        // X1: eltwise operand cube
inline constexpr Addr kBrdmaLineStride = 0x10;
inline constexpr Addr kBrdmaSurfStride = 0x14;
inline constexpr Addr kBrdmaMode = 0x18;        // 0 per-kernel, 1 per-element
inline constexpr Addr kBrdmaPrecision = 0x1C;   // operand precision
inline constexpr Addr kBsAddr = 0x20;           // BS: per-kernel bias table
}  // namespace sdp_rdma

namespace sdp {
inline constexpr Addr kCubeWidth = 0x0C;
inline constexpr Addr kCubeHeight = 0x10;
inline constexpr Addr kCubeChannel = 0x14;
inline constexpr Addr kSrcBaseAddr = 0x18;      // 0 = on-the-fly from CACC
inline constexpr Addr kSrcLineStride = 0x1C;
inline constexpr Addr kSrcSurfStride = 0x20;
inline constexpr Addr kDstBaseAddr = 0x24;
inline constexpr Addr kDstLineStride = 0x28;
inline constexpr Addr kDstSurfStride = 0x2C;
inline constexpr Addr kOpCfg = 0x30;            // bit0 bias, bit1 relu, bit2 eltwise-add
inline constexpr Addr kCvtScale = 0x34;         // int16 multiplier
inline constexpr Addr kCvtShift = 0x38;         // right shift amount
inline constexpr Addr kOutPrecision = 0x3C;
}  // namespace sdp

namespace pdp {
inline constexpr Addr kCubeInWidth = 0x0C;
inline constexpr Addr kCubeInHeight = 0x10;
inline constexpr Addr kCubeInChannel = 0x14;
inline constexpr Addr kCubeOutWidth = 0x18;
inline constexpr Addr kCubeOutHeight = 0x1C;
inline constexpr Addr kKernelCfg = 0x20;   // kw | kh<<8 | mode<<16 | sx<<20 | sy<<24
inline constexpr Addr kPaddingCfg = 0x24;  // l | t<<8 | r<<16 | b<<24
inline constexpr Addr kSrcBaseAddr = 0x28;
inline constexpr Addr kSrcLineStride = 0x2C;
inline constexpr Addr kSrcSurfStride = 0x30;
inline constexpr Addr kDstBaseAddr = 0x34;
inline constexpr Addr kDstLineStride = 0x38;
inline constexpr Addr kDstSurfStride = 0x3C;
inline constexpr Addr kPrecision = 0x40;
inline constexpr std::uint32_t kModeMax = 0;
inline constexpr std::uint32_t kModeAvg = 1;
}  // namespace pdp

namespace cdp {
inline constexpr Addr kCubeWidth = 0x0C;
inline constexpr Addr kCubeHeight = 0x10;
inline constexpr Addr kCubeChannel = 0x14;
inline constexpr Addr kSrcBaseAddr = 0x18;
inline constexpr Addr kSrcLineStride = 0x1C;
inline constexpr Addr kSrcSurfStride = 0x20;
inline constexpr Addr kDstBaseAddr = 0x24;
inline constexpr Addr kDstLineStride = 0x28;
inline constexpr Addr kDstSurfStride = 0x2C;
inline constexpr Addr kLocalSize = 0x30;
inline constexpr Addr kAlphaQ16 = 0x34;         // alpha * 2^16
inline constexpr Addr kBetaQ16 = 0x38;          // beta * 2^16
inline constexpr Addr kKQ16 = 0x3C;             // k * 2^16
inline constexpr Addr kInScaleQ16 = 0x40;       // input dequant scale * 2^16
inline constexpr Addr kPrecision = 0x44;
}  // namespace cdp

namespace bdma {
inline constexpr Addr kSrcAddr = 0x0C;
inline constexpr Addr kDstAddr = 0x10;
inline constexpr Addr kLineSize = 0x14;
inline constexpr Addr kLineRepeat = 0x18;
inline constexpr Addr kSrcStride = 0x1C;
inline constexpr Addr kDstStride = 0x20;
}  // namespace bdma

/// Human-readable register name ("cdma.d_dain_addr") for VP traces and
/// diagnostics; falls back to "unit.+0xOFF".
std::string register_name(Addr csb_addr);

}  // namespace nvsoc::nvdla
