// The NVDLA engine: CSB-programmable register file, ping-pong register
// groups, launch logic, interrupt unit (GLB) and the functional/cycle
// execution of the five op pipelines.
//
// Execution model. The simulator is transaction-driven: programming happens
// through timed CSB requests; writing D_OP_ENABLE launches the producer
// register group's operation at the enable's completion time. The engine
// performs the op's DMA traffic through its DBB master (so data really
// lands in the SoC DRAM through the width converter and arbiter) and
// computes the op's completion cycle from the analytic cycle model. Status
// and interrupt registers answer reads *as of the request's timestamp*, so
// a bare-metal polling loop on the µRISC-V spins for exactly the modelled
// number of cycles — the mechanism behind Table II.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/log.hpp"
#include "nvdla/config.hpp"
#include "nvdla/dbb.hpp"
#include "nvdla/ops.hpp"
#include "nvdla/regmap.hpp"
#include "nvdla/replay.hpp"

namespace nvsoc::nvdla {

/// One completed (or in-flight) hardware-layer record for benches and
/// EXPERIMENTS.md.
struct OpRecord {
  Unit unit = Unit::kCount;  ///< launching unit (kCacc for the conv chain)
  Cycle launch = 0;
  Cycle complete = 0;
  OpCost cost;

  Cycle duration() const { return complete - launch; }
};

struct EngineStats {
  std::uint64_t csb_reads = 0;
  std::uint64_t csb_writes = 0;
  std::uint64_t conv_ops = 0;
  std::uint64_t sdp_ops = 0;  ///< standalone SDP ops
  std::uint64_t pdp_ops = 0;
  std::uint64_t cdp_ops = 0;
  std::uint64_t bdma_ops = 0;

  std::uint64_t total_ops() const {
    return conv_ops + sdp_ops + pdp_ops + cdp_ops + bdma_ops;
  }
};

class Nvdla final : public CsbTarget {
 public:
  /// `dbb_port`: the memory-side AXI target of the DBB interface.
  Nvdla(NvdlaConfig config, AxiTarget& dbb_port);

  // --- CSB slave ----------------------------------------------------------
  CsbResponse csb_access(const CsbRequest& req) override;

  // --- interrupt line -------------------------------------------------------
  /// Level of the (maskable) interrupt line as of `now`.
  bool irq_pending(Cycle now) const;

  // --- introspection --------------------------------------------------------
  const NvdlaConfig& config() const { return config_; }
  const EngineStats& stats() const { return stats_; }
  const std::vector<OpRecord>& op_records() const { return op_records_; }
  const DbbStats& dbb_stats() const { return dbb_.stats(); }

  /// Completion cycle of the most recently launched op (0 if none).
  Cycle last_completion() const { return last_completion_; }
  /// Earliest op completion strictly after `now`, if any op is in flight.
  std::optional<Cycle> next_completion_after(Cycle now) const;

  /// VP hook: observe every DBB transfer (weights/feature traffic).
  void set_dbb_observer(DbbMaster::Observer observer) {
    dbb_.set_observer(std::move(observer));
  }

  /// Arms deterministic fault injection on the engine's interfaces: CSB
  /// register-read timeouts/error responses here, DBB bus errors in the
  /// forwarded DbbMaster. nullptr disarms.
  void set_fault_injector(std::shared_ptr<fault::Injector> injector) {
    fault_ = injector;
    dbb_.set_fault_injector(std::move(injector));
  }

  /// VP hook: receive every launched op as a ReplayOp (decoded descriptors
  /// + analytic timing), in launch order — the recording side of the
  /// functional replay engine (nvdla/replay.hpp).
  using OpRecorder = std::function<void(const ReplayOp&)>;
  void set_op_recorder(OpRecorder recorder) {
    op_recorder_ = std::move(recorder);
  }

  /// Reset to power-on state (registers cleared, no pending interrupts).
  void reset();

 private:
  struct UnitState {
    std::uint32_t pointer = 0;  ///< producer group select (bit 0)
    std::array<std::array<std::uint32_t, kGroupRegs>, kNumGroups> regs{};
    std::array<bool, kNumGroups> armed{};
  };

  struct IntrEvent {
    std::uint32_t bit = 0;
    Cycle at = 0;
    bool cleared = false;
  };

  UnitState& unit(Unit u) { return units_[static_cast<std::size_t>(u)]; }
  const UnitState& unit(Unit u) const {
    return units_[static_cast<std::size_t>(u)];
  }

  std::uint32_t reg(Unit u, unsigned group, Addr offset) const;

  CsbResponse glb_access(const CsbRequest& req);
  std::uint32_t intr_status_at(Cycle now) const;

  /// Launch checks after an enable write completes at `now` on `group`.
  void try_launch(Unit enabled_unit, unsigned group, Cycle now);

  // Op decoding from a register group.
  ConvOp decode_conv(unsigned group) const;
  SdpOp decode_sdp(unsigned group) const;
  PdpOp decode_pdp(unsigned group) const;
  CdpOp decode_cdp(unsigned group) const;
  BdmaOp decode_bdma(unsigned group) const;

  // Op execution (functional + timing). Returns completion cycle.
  Cycle run_conv(unsigned group, Cycle start);
  Cycle run_sdp_standalone(unsigned group, Cycle start);
  Cycle run_pdp(unsigned group, Cycle start);
  Cycle run_cdp(unsigned group, Cycle start);
  Cycle run_bdma(unsigned group, Cycle start);

  void post_interrupt(glb::IntrSource source, unsigned group, Cycle at);
  void record_op(Unit u, Cycle launch, Cycle complete, const OpCost& cost);

  SurfaceDesc surface_from_regs(Unit u, unsigned group, Addr addr_reg,
                                Addr line_reg, Addr surf_reg, CubeDims dims,
                                Precision precision) const;

  NvdlaConfig config_;
  DbbMaster dbb_;
  std::shared_ptr<fault::Injector> fault_;
  Logger csb_log_{"nvdla.csb_adaptor"};

  std::array<UnitState, kNumUnits> units_{};
  std::uint32_t intr_mask_ = 0;
  std::vector<IntrEvent> intr_events_;

  // Shared-resource busy tracking (the conv chain owns SDP while flying).
  Cycle conv_busy_until_ = 0;
  Cycle sdp_busy_until_ = 0;
  Cycle pdp_busy_until_ = 0;
  Cycle cdp_busy_until_ = 0;
  Cycle bdma_busy_until_ = 0;
  Cycle last_completion_ = 0;

  EngineStats stats_;
  std::vector<OpRecord> op_records_;
  OpRecorder op_recorder_;
};

}  // namespace nvsoc::nvdla
