// The four built-in execution backends.
//
//   "soc"            Fig. 2 — standalone SoC, internal DRAM model
//   "system_top"     Fig. 4 — Zynq-PS preload, SmartConnect, CDC, MIG DDR4
//   "vp"             Fig. 3 — direct virtual-platform execution (no fabric)
//   "linux_baseline" Table II comparator — Linux driver stack of Giri [8]
//
// All four wrap existing machinery (core::execute_on_*, vp::VirtualPlatform,
// baseline::LinuxDriverBaseline); the bare-metal backends are bit-exact
// with the legacy facade calls they replace.
#pragma once

#include "runtime/execution_backend.hpp"

namespace nvsoc::runtime {

/// Fig. 2: the generated bare-metal program runs on the standalone SoC.
///
/// Functional replay is the serving default (`?mode=replay`): the first
/// run per (platform, flow) records the full cycle-accurate execution's
/// input-independent envelope on the prepared model's replay schedule;
/// every later image replays the functional op pipeline only — same
/// outputs, same cycle counts, none of the µRISC-V ISS stepping.
/// `?mode=cycle_accurate` opts a variant back into simulating every image
/// in full (the parity/benchmark comparator), and a session whose replay
/// engine is off (`set_replay_enabled(false)`) stages no schedule, so the
/// default variant falls back to full execution too — the session-level
/// opt-out.
class SocBackend final : public ExecutionBackend {
 public:
  explicit SocBackend(bool replay_mode = true) : replay_mode_(replay_mode) {}

  std::string_view name() const override { return "soc"; }
  std::string_view description() const override {
    return "standalone SoC (Fig. 2, internal DRAM)";
  }
  StatusOr<ExecutionResult> run(const core::PreparedModel& prepared,
                                const RunOptions& options) const override;
  /// In replay mode: eagerly record the input-independent platform
  /// envelope on the prepared model's replay schedule (idempotent; a
  /// cycle-accurate backend stages nothing).
  void stage(const core::PreparedModel& prepared,
             const RunOptions& options) const override;
  /// Understands `?mode=replay|cycle_accurate` on top of the generic keys.
  StatusOr<std::unique_ptr<ExecutionBackend>> configure(
      const BackendSpec& spec) const override;

 private:
  bool replay_mode_ = false;
};

/// Fig. 4: full board set-up — PS preload, SmartConnect switch, CDC, MIG.
/// Replay-by-default with the same `?mode=` opt-out as SocBackend.
class SystemTopBackend final : public ExecutionBackend {
 public:
  explicit SystemTopBackend(bool replay_mode = true)
      : replay_mode_(replay_mode) {}

  std::string_view name() const override { return "system_top"; }
  std::string_view description() const override {
    return "full board set-up (Fig. 4: Zynq-PS preload, SmartConnect, MIG DDR4)";
  }
  StatusOr<ExecutionResult> run(const core::PreparedModel& prepared,
                                const RunOptions& options) const override;
  /// See SocBackend::stage.
  void stage(const core::PreparedModel& prepared,
             const RunOptions& options) const override;
  /// Understands `?mode=replay|cycle_accurate` on top of the generic keys.
  StatusOr<std::unique_ptr<ExecutionBackend>> configure(
      const BackendSpec& spec) const override;

 private:
  bool replay_mode_ = false;
};

/// Fig. 3: run the loadable directly on the virtual platform (the paper's
/// simulation-only path, used for nv_full in Table III).
class VpBackend final : public ExecutionBackend {
 public:
  std::string_view name() const override { return "vp"; }
  std::string_view description() const override {
    return "NVDLA virtual platform (Fig. 3, direct execution)";
  }
  StatusOr<ExecutionResult> run(const core::PreparedModel& prepared,
                                const RunOptions& options) const override;
};

/// Table II comparator: the Linux-kernel driver-stack platform model.
class LinuxBaselineBackend final : public ExecutionBackend {
 public:
  explicit LinuxBaselineBackend(baseline::LinuxPlatformConfig config = {})
      : platform_(config) {}

  std::string_view name() const override { return "linux_baseline"; }
  std::string_view description() const override {
    return "Linux driver-stack platform (Giri et al. [8], 50 MHz)";
  }
  StatusOr<ExecutionResult> run(const core::PreparedModel& prepared,
                                const RunOptions& options) const override;
  /// "linux_baseline@25mhz" re-clocks the modelled platform (CPU + NVDLA
  /// share the clock domain) instead of overriding RunOptions.
  StatusOr<std::unique_ptr<ExecutionBackend>> configure(
      const BackendSpec& spec) const override;

 private:
  baseline::LinuxDriverBaseline platform_;
};

}  // namespace nvsoc::runtime
