#include "runtime/backend_registry.hpp"

#include <algorithm>
#include <utility>

#include "common/strfmt.hpp"
#include "runtime/backends.hpp"

namespace nvsoc::runtime {

namespace {

std::string join_sorted(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

BackendRegistry& BackendRegistry::global() {
  // Populated in place: the variant-cache mutex makes the registry
  // immovable.
  static BackendRegistry registry;
  static const bool initialized = [] {
    registry.add(std::make_unique<SocBackend>()).expect_ok("register soc");
    registry.add(std::make_unique<SystemTopBackend>())
        .expect_ok("register system_top");
    registry.add(std::make_unique<VpBackend>()).expect_ok("register vp");
    registry.add(std::make_unique<LinuxBaselineBackend>())
        .expect_ok("register linux_baseline");
    return true;
  }();
  (void)initialized;
  return registry;
}

Status BackendRegistry::add(std::unique_ptr<ExecutionBackend> backend) {
  if (backend == nullptr) {
    return {StatusCode::kInvalidArgument, "backend must not be null"};
  }
  const std::string key(backend->name());
  const auto [it, inserted] = backends_.emplace(key, std::move(backend));
  (void)it;
  if (!inserted) {
    return {StatusCode::kAlreadyExists,
            strfmt("backend '{}' is already registered", key)};
  }
  return Status::ok();
}

StatusOr<const ExecutionBackend*> BackendRegistry::find(
    const std::string& name) const {
  if (const auto it = backends_.find(name); it != backends_.end()) {
    return it->second.get();
  }

  const auto spec = BackendSpec::parse(name);
  if (!spec.is_ok()) return spec.status();
  const auto base = backends_.find(spec->base);
  if (base == backends_.end()) {
    return Status(StatusCode::kNotFound,
                  strfmt("unknown backend '{}' (known: {})", spec->base,
                         join_sorted(names())));
  }
  if (!spec->configured()) {
    // Degenerate spec like "soc?": no configuration, so the base backend
    // itself is the answer.
    return base->second.get();
  }

  // Variants are cached — and named — by the canonical spec, so reordered
  // spellings ("soc?a=1&b=2" vs "soc?b=2&a=1") share one instance instead
  // of instantiating duplicate backends.
  BackendSpec canon = *spec;
  canon.full = canon.canonical();  // canonical() sorts its own params copy

  MutexLock lock(variants_mutex_);
  if (const auto it = variants_.find(canon.full); it != variants_.end()) {
    return it->second.get();
  }
  auto variant = base->second->configure(canon);
  if (!variant.is_ok()) return variant.status();
  const auto [it, inserted] =
      variants_.emplace(canon.full, std::move(variant).value());
  (void)inserted;
  return it->second.get();
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& [key, unused] : backends_) {
    (void)unused;
    out.push_back(key);
  }
  // std::map already iterates in key order; sort anyway so the contract
  // ("stable, sorted") survives a change of container.
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace nvsoc::runtime
