#include "runtime/backend_registry.hpp"

#include <utility>

#include "common/strfmt.hpp"
#include "runtime/backends.hpp"

namespace nvsoc::runtime {

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry registry = [] {
    BackendRegistry r;
    r.add(std::make_unique<SocBackend>()).expect_ok("register soc");
    r.add(std::make_unique<SystemTopBackend>())
        .expect_ok("register system_top");
    r.add(std::make_unique<VpBackend>()).expect_ok("register vp");
    r.add(std::make_unique<LinuxBaselineBackend>())
        .expect_ok("register linux_baseline");
    return r;
  }();
  return registry;
}

Status BackendRegistry::add(std::unique_ptr<ExecutionBackend> backend) {
  if (backend == nullptr) {
    return {StatusCode::kInvalidArgument, "backend must not be null"};
  }
  const std::string key(backend->name());
  const auto [it, inserted] = backends_.emplace(key, std::move(backend));
  (void)it;
  if (!inserted) {
    return {StatusCode::kAlreadyExists,
            strfmt("backend '{}' is already registered", key)};
  }
  return Status::ok();
}

StatusOr<const ExecutionBackend*> BackendRegistry::find(
    const std::string& name) const {
  const auto it = backends_.find(name);
  if (it == backends_.end()) {
    std::string known;
    for (const auto& [key, unused] : backends_) {
      (void)unused;
      if (!known.empty()) known += ", ";
      known += key;
    }
    return Status(StatusCode::kNotFound,
                  strfmt("unknown backend '{}' (known: {})", name, known));
  }
  return it->second.get();
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& [key, unused] : backends_) {
    (void)unused;
    out.push_back(key);
  }
  return out;
}

}  // namespace nvsoc::runtime
