#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace nvsoc::runtime {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  job_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* task = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ready_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      task = task_;
      count = count_;
    }
    for (;;) {
      std::size_t index;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (next_ >= count) break;
        index = next_++;
      }
      try {
        (*task)(worker, index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (error_ == nullptr || index < error_index_) {
          error_index_ = index;
          error_ = std::current_exception();
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) job_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& task) {
  if (count == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  task_ = &task;
  count_ = count;
  next_ = 0;
  active_ = threads_.size();
  error_ = nullptr;
  error_index_ = 0;
  ++generation_;
  job_ready_.notify_all();
  job_done_.wait(lock, [&] { return active_ == 0; });
  task_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::recommended_workers(std::size_t task_count) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::max<std::size_t>(1, std::min(hw, task_count));
}

}  // namespace nvsoc::runtime
