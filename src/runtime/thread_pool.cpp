#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace nvsoc::runtime {

namespace {

std::atomic<std::uint64_t> g_pools_created{0};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  try {
    for (std::size_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  } catch (...) {
    // Thread exhaustion mid-spawn: the already-running workers are parked
    // in worker_loop and would keep the process alive (and ~vector would
    // terminate on joinable threads) unless they are stopped and joined
    // before the exception escapes.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    job_ready_.notify_all();
    for (auto& thread : threads_) thread.join();
    throw;
  }
  g_pools_created.fetch_add(1, std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  job_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    job_ready_.wait(lock, [&] {
      return stop_ || !queue_.empty() || generation_ != seen_generation;
    });

    // A pending parallel_for job takes priority over queued tasks: the
    // job's barrier waits on every worker, so none may wander off into the
    // queue first.
    if (generation_ != seen_generation) {
      seen_generation = generation_;
      const auto* task = task_;
      const std::size_t count = count_;
      while (next_ < count) {
        const std::size_t index = next_++;
        lock.unlock();
        std::exception_ptr thrown;
        try {
          (*task)(worker, index);
        } catch (...) {
          thrown = std::current_exception();
        }
        lock.lock();
        if (thrown && (error_ == nullptr || index < error_index_)) {
          error_index_ = index;
          error_ = thrown;
        }
      }
      if (--active_ == 0) job_done_.notify_all();
      continue;
    }

    if (!queue_.empty()) {
      std::function<void()> task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();  // a packaged_task: exceptions land in its future
      lock.lock();
      continue;
    }

    // stop_ is honoured only once the queue is drained, so every future
    // handed out by submit() completes before the destructor returns.
    if (stop_) return;
  }
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& task) {
  if (count == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  task_ = &task;
  count_ = count;
  next_ = 0;
  active_ = threads_.size();
  error_ = nullptr;
  error_index_ = 0;
  ++generation_;
  job_ready_.notify_all();
  job_done_.wait(lock, [&] { return active_ == 0; });
  task_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::recommended_workers(std::size_t task_count) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::max<std::size_t>(1, std::min(hw, task_count));
}

std::uint64_t ThreadPool::total_created() {
  return g_pools_created.load(std::memory_order_relaxed);
}

}  // namespace nvsoc::runtime
