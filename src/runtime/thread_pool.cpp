#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace nvsoc::runtime {

namespace {

std::atomic<std::uint64_t> g_pools_created{0};

std::size_t hardware_workers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers, std::size_t max_workers) {
  if (workers == 0) workers = hardware_workers();
  // An explicit initial size is always honoured: the default cap is
  // hardware threads *or* the initial size, whichever is larger; an
  // explicit cap below the initial size clamps the initial spawn instead.
  max_workers_ = max_workers == 0 ? std::max(hardware_workers(), workers)
                                  : std::max<std::size_t>(1, max_workers);
  workers = std::min(workers, max_workers_);
  min_workers_ = workers;
  threads_.reserve(workers);
  try {
    for (std::size_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w, /*seen_generation=*/0); });
      ++live_;
    }
  } catch (...) {
    // Thread exhaustion mid-spawn: the already-running workers are parked
    // in worker_loop and would keep the process alive (and ~vector would
    // terminate on joinable threads) unless they are stopped and joined
    // before the exception escapes.
    {
      MutexLock lock(mutex_);
      stop_ = true;
    }
    job_ready_.notify_all();
    for (auto& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    throw;
  }
  g_pools_created.fetch_add(1, std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  job_ready_.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  join_retired();
}

void ThreadPool::join_retired() const {
  std::vector<std::thread> done;
  {
    MutexLock lock(mutex_);
    done.swap(retired_);
  }
  // Join outside the lock: the threads have already returned from
  // worker_loop, so these joins only wait for OS-level thread teardown.
  for (auto& thread : done) thread.join();
}

std::size_t ThreadPool::worker_count() const {
  join_retired();
  MutexLock lock(mutex_);
  return live_;
}

std::size_t ThreadPool::max_workers() const {
  MutexLock lock(mutex_);
  return max_workers_;
}

void ThreadPool::set_max_workers(std::size_t cap) {
  MutexLock lock(mutex_);
  if (cap == 0) cap = hardware_workers();
  max_workers_ = std::max(cap, live_);
}

void ThreadPool::set_idle_timeout(std::chrono::milliseconds timeout) {
  {
    MutexLock lock(mutex_);
    idle_timeout_ = timeout;
  }
  // Parked workers re-evaluate their wait mode (timed vs untimed) on wakeup.
  job_ready_.notify_all();
}

std::chrono::milliseconds ThreadPool::idle_timeout() const {
  MutexLock lock(mutex_);
  return idle_timeout_;
}

std::uint64_t ThreadPool::workers_reaped() const {
  MutexLock lock(mutex_);
  return reaped_;
}

void ThreadPool::grow_if_pressured_locked() {
  if (queue_.size() <= idle_ || live_ >= max_workers_) return;
  // Reuse the slot of a retired worker when one exists, so worker ids stay
  // dense; otherwise open a new slot.
  std::size_t worker = 0;
  while (worker < threads_.size() && threads_[worker].joinable()) ++worker;
  // Capture the generation at *spawn* time (under the lock): a worker
  // spawned while a parallel_for job is in flight must not join it — the
  // job's barrier counted only the workers that existed when it started.
  const std::uint64_t seen = generation_;
  try {
    if (worker == threads_.size()) threads_.emplace_back();
    threads_[worker] = std::thread([this, worker, seen] {
      worker_loop(worker, seen);
    });
    ++live_;
  } catch (...) {
    // Best-effort growth: under thread exhaustion the queued task simply
    // waits for an existing worker.
  }
}

void ThreadPool::worker_loop(std::size_t worker,
                             std::uint64_t seen_generation) {
  MutexLock lock(mutex_);
  for (;;) {
    ++idle_;
    while (!stop_ && queue_.empty() && generation_ == seen_generation) {
      // Elastic workers (above the construction floor) arm a timed wait
      // when the reaper is enabled; any wakeup — work, a new job, or a
      // set_idle_timeout notify — re-evaluates the mode.
      if (idle_timeout_.count() > 0 && live_ > min_workers_) {
        if (job_ready_.wait_for(mutex_, idle_timeout_) ==
                std::cv_status::timeout &&
            !stop_ && queue_.empty() && generation_ == seen_generation &&
            idle_timeout_.count() > 0 && live_ > min_workers_) {
          // Quiet period elapsed with nothing to do: retire. The handle
          // moves to retired_ under the lock, so the slot is immediately
          // reusable by growth and joins happen off this thread.
          --idle_;
          --live_;
          ++reaped_;
          retired_.push_back(std::move(threads_[worker]));
          return;
        }
      } else {
        job_ready_.wait(mutex_);
      }
    }
    --idle_;

    // A pending parallel_for job takes priority over queued tasks: the
    // job's barrier waits on every worker, so none may wander off into the
    // queue first.
    if (generation_ != seen_generation) {
      seen_generation = generation_;
      const auto* task = task_;
      const std::size_t count = count_;
      while (next_ < count) {
        const std::size_t index = next_++;
        lock.unlock();
        std::exception_ptr thrown;
        try {
          (*task)(worker, index);
        } catch (...) {
          thrown = std::current_exception();
        }
        lock.lock();
        if (thrown && (error_ == nullptr || index < error_index_)) {
          error_index_ = index;
          error_ = thrown;
        }
      }
      if (--active_ == 0) job_done_.notify_all();
      continue;
    }

    if (!queue_.empty()) {
      std::function<void()> task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();  // a packaged_task: exceptions land in its future
      lock.lock();
      continue;
    }

    // stop_ is honoured only once the queue is drained, so every future
    // handed out by submit() completes before the destructor returns.
    if (stop_) return;
  }
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& task) {
  if (count == 0) return;
  MutexLock lock(mutex_);
  task_ = &task;
  count_ = count;
  next_ = 0;
  active_ = live_;
  error_ = nullptr;
  error_index_ = 0;
  ++generation_;
  job_ready_.notify_all();
  while (active_ != 0) job_done_.wait(mutex_);
  task_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::recommended_workers(std::size_t task_count) {
  return std::max<std::size_t>(1, std::min(hardware_workers(), task_count));
}

std::uint64_t ThreadPool::total_created() {
  return g_pools_created.load(std::memory_order_relaxed);
}

}  // namespace nvsoc::runtime
