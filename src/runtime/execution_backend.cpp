// BackendSpec parsing and the generic configured-variant wrapper behind
// ExecutionBackend::configure().
#include "runtime/execution_backend.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <utility>

#include "common/strfmt.hpp"
#include "toolflow/asm_emitter.hpp"

namespace nvsoc::runtime {

namespace {

std::string lowered(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

/// The generic RunOptions adjustments a spec can ask for.
struct FlowOverrides {
  std::optional<Hertz> clock;
  std::optional<toolflow::WaitMode> wait_mode;
  std::optional<bool> validate;
  std::optional<std::uint64_t> dram_bytes;
  std::optional<std::uint64_t> program_memory_bytes;
  std::optional<bool> decode_cache;
  /// Built once per configured variant from `?fault=`: every run through
  /// the variant consumes one shared deterministic decision stream.
  std::shared_ptr<fault::Injector> fault;
};

StatusOr<FlowOverrides> overrides_from_spec(const BackendSpec& spec,
                                            bool apply_clock) {
  FlowOverrides overrides;
  if (apply_clock && !spec.clock.empty()) {
    const auto clock = parse_clock(spec.clock);
    if (!clock.is_ok()) return clock.status();
    overrides.clock = *clock;
  }
  for (const auto& [key, value] : spec.params) {
    if (key == "wait_mode") {
      const std::string v = lowered(value);
      if (v == "polling" || v == "poll") {
        overrides.wait_mode = toolflow::WaitMode::kPoll;
      } else if (v == "wfi" || v == "interrupt") {
        overrides.wait_mode = toolflow::WaitMode::kInterrupt;
      } else {
        return Status(StatusCode::kInvalidArgument,
                      strfmt("backend spec '{}': wait_mode must be "
                             "'polling' or 'wfi', got '{}'",
                             spec.full, value));
      }
    } else if (key == "validate") {
      const std::string v = lowered(value);
      if (v == "on" || v == "true" || v == "1") {
        overrides.validate = true;
      } else if (v == "off" || v == "false" || v == "0") {
        overrides.validate = false;
      } else {
        return Status(StatusCode::kInvalidArgument,
                      strfmt("backend spec '{}': validate must be "
                             "'on' or 'off', got '{}'",
                             spec.full, value));
      }
    } else if (key == "dram") {
      const auto bytes = parse_mem_size(value);
      if (!bytes.is_ok()) {
        return Status(StatusCode::kInvalidArgument,
                      strfmt("backend spec '{}': {}", spec.full,
                             bytes.status().message()));
      }
      overrides.dram_bytes = *bytes;
    } else if (key == "program_memory") {
      const auto bytes = parse_mem_size(value);
      if (!bytes.is_ok()) {
        return Status(StatusCode::kInvalidArgument,
                      strfmt("backend spec '{}': {}", spec.full,
                             bytes.status().message()));
      }
      overrides.program_memory_bytes = *bytes;
    } else if (key == "decode_cache") {
      const std::string v = lowered(value);
      if (v == "on" || v == "true" || v == "1") {
        overrides.decode_cache = true;
      } else if (v == "off" || v == "false" || v == "0") {
        overrides.decode_cache = false;
      } else {
        return Status(StatusCode::kInvalidArgument,
                      strfmt("backend spec '{}': decode_cache must be "
                             "'on' or 'off', got '{}'",
                             spec.full, value));
      }
    } else if (key == "fault") {
      auto plan = fault::Plan::parse(value);
      if (!plan.is_ok()) {
        return Status(StatusCode::kInvalidArgument,
                      strfmt("backend spec '{}': {}", spec.full,
                             plan.status().message()));
      }
      if (plan->any()) {
        overrides.fault = std::make_shared<fault::Injector>(*plan);
      }
    } else {
      return Status(StatusCode::kInvalidArgument,
                    strfmt("backend spec '{}': unknown option '{}' "
                           "(supported: wait_mode, validate, dram, "
                           "program_memory, decode_cache, fault)",
                           spec.full, key));
    }
  }
  return overrides;
}

/// A registry-hosted configured variant: applies the spec's overrides to
/// the RunOptions and delegates to the underlying backend.
class ConfiguredBackend final : public ExecutionBackend {
 public:
  ConfiguredBackend(const ExecutionBackend* base,
                    std::unique_ptr<ExecutionBackend> owned, std::string name,
                    FlowOverrides overrides)
      : base_(base),
        owned_(std::move(owned)),
        name_(std::move(name)),
        overrides_(overrides),
        description_(std::string(base_->description()) +
                     " [configured variant]") {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }

  StatusOr<ExecutionResult> run(const core::PreparedModel& prepared,
                                const RunOptions& options) const override {
    auto result = base_->run(prepared, adjusted(options));
    if (!result.is_ok()) return result.status();
    ExecutionResult value = std::move(result).value();
    value.backend = name_;  // results report the spec that produced them
    return value;
  }

  void stage(const core::PreparedModel& prepared,
             const RunOptions& options) const override {
    // The overrides shape the platform-record key (clock, memory sizes),
    // so the delegate must stage under the same adjusted options run()
    // would execute with.
    base_->stage(prepared, adjusted(options));
  }

 private:
  RunOptions adjusted(const RunOptions& options) const {
    RunOptions adjusted = options;
    if (overrides_.clock) adjusted.flow.soc_clock = *overrides_.clock;
    if (overrides_.wait_mode) adjusted.flow.wait_mode = *overrides_.wait_mode;
    if (overrides_.validate) adjusted.validate = *overrides_.validate;
    if (overrides_.dram_bytes) adjusted.flow.dram_bytes = *overrides_.dram_bytes;
    if (overrides_.program_memory_bytes) {
      adjusted.flow.program_memory_bytes = *overrides_.program_memory_bytes;
    }
    if (overrides_.decode_cache) {
      adjusted.flow.decode_cache = *overrides_.decode_cache;
    }
    if (overrides_.fault != nullptr) adjusted.flow.fault = overrides_.fault;
    return adjusted;
  }

  const ExecutionBackend* base_;            ///< delegate (may == owned_)
  std::unique_ptr<ExecutionBackend> owned_; ///< backend built for this spec
  std::string name_;
  FlowOverrides overrides_;
  std::string description_;
};

}  // namespace

StatusOr<BackendSpec> BackendSpec::parse(const std::string& spec) {
  BackendSpec parsed;
  parsed.full = spec;

  std::string head = spec;
  std::string query;
  if (const auto qmark = head.find('?'); qmark != std::string::npos) {
    query = head.substr(qmark + 1);
    head.resize(qmark);
  }
  if (const auto at = head.find('@'); at != std::string::npos) {
    parsed.clock = lowered(head.substr(at + 1));
    head.resize(at);
    if (parsed.clock.empty()) {
      return Status(StatusCode::kInvalidArgument,
                    strfmt("backend spec '{}': '@' without a clock", spec));
    }
    if (parsed.clock.find('@') != std::string::npos) {
      return Status(StatusCode::kInvalidArgument,
                    strfmt("backend spec '{}': more than one '@' clock",
                           spec));
    }
  }
  parsed.base = head;
  if (parsed.base.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  strfmt("backend spec '{}': empty backend name", spec));
  }

  std::size_t pos = 0;
  while (pos < query.size()) {
    // '?' is tolerated as an option separator alongside '&'
    // ("soc?a=1?b=2" == "soc?a=1&b=2"); both spellings canonicalize to '&'.
    auto amp = query.find_first_of("&?", pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
      return Status(StatusCode::kInvalidArgument,
                    strfmt("backend spec '{}': expected key=value, got '{}'",
                           spec, pair));
    }
    std::string key = pair.substr(0, eq);
    for (const auto& [existing, value] : parsed.params) {
      (void)value;
      if (existing == key) {
        return Status(
            StatusCode::kInvalidArgument,
            strfmt("backend spec '{}': duplicate option '{}'", spec, key));
      }
    }
    parsed.params.emplace_back(std::move(key), pair.substr(eq + 1));
    pos = amp + 1;
  }
  return parsed;
}

std::string BackendSpec::canonical() const {
  std::string out = base;
  if (!clock.empty()) {
    out += '@';
    out += clock;
  }
  auto sorted = params;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    out += i == 0 ? '?' : '&';
    out += sorted[i].first;
    out += '=';
    out += sorted[i].second;
  }
  return out;
}

StatusOr<Hertz> parse_clock(const std::string& token) {
  const std::string t = lowered(token);
  std::size_t digits = 0;
  std::size_t dots = 0;
  while (digits < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[digits])) != 0 ||
          t[digits] == '.')) {
    if (t[digits] == '.') ++dots;
    ++digits;
  }
  const std::string number = t.substr(0, digits);
  const std::string unit = t.substr(digits);
  if (dots > 1) {
    // strtod would silently truncate "1.2.3" to 1.2; reject instead.
    return Status(StatusCode::kInvalidArgument,
                  strfmt("bad clock '{}': malformed number", token));
  }
  double scale = 0.0;
  if (unit == "hz") scale = 1.0;
  else if (unit == "khz") scale = 1e3;
  else if (unit == "mhz") scale = 1e6;
  else if (unit == "ghz") scale = 1e9;
  if (number.empty() || scale == 0.0) {
    return Status(StatusCode::kInvalidArgument,
                  strfmt("bad clock '{}': expected <number><hz|khz|mhz|ghz>",
                         token));
  }
  const double value = std::strtod(number.c_str(), nullptr) * scale;
  if (value < 1.0) {
    return Status(StatusCode::kInvalidArgument,
                  strfmt("bad clock '{}': below 1 Hz", token));
  }
  return static_cast<Hertz>(value);
}

StatusOr<std::uint64_t> parse_mem_size(const std::string& token) {
  const std::string t = lowered(token);
  std::size_t digits = 0;
  std::size_t dots = 0;
  while (digits < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[digits])) != 0 ||
          t[digits] == '.')) {
    if (t[digits] == '.') ++dots;
    ++digits;
  }
  const std::string number = t.substr(0, digits);
  const std::string unit = t.substr(digits);
  if (dots > 1) {
    return Status(StatusCode::kInvalidArgument,
                  strfmt("bad size '{}': malformed number", token));
  }
  double scale = 0.0;
  if (unit == "b") scale = 1.0;
  else if (unit == "kib") scale = 1024.0;
  else if (unit == "mib") scale = 1024.0 * 1024.0;
  else if (unit == "gib") scale = 1024.0 * 1024.0 * 1024.0;
  if (number.empty() || scale == 0.0) {
    return Status(StatusCode::kInvalidArgument,
                  strfmt("bad size '{}': expected <number><b|kib|mib|gib>",
                         token));
  }
  const double value = std::strtod(number.c_str(), nullptr) * scale;
  if (value < 1.0) {
    return Status(StatusCode::kInvalidArgument,
                  strfmt("bad size '{}': below 1 byte", token));
  }
  // Bound before the cast: double -> uint64 is UB past 2^64, and nothing
  // in the simulator wants an exbibyte window anyway.
  if (value > static_cast<double>(1ull << 60)) {
    return Status(StatusCode::kInvalidArgument,
                  strfmt("bad size '{}': larger than 1 EiB", token));
  }
  return static_cast<std::uint64_t>(value);
}

std::string spec_vocabulary_help() {
  return
      "backend specs: base[@clock][?key=value[&key=value]...]\n"
      "  @<clock>                    SoC clock override, e.g. @25mhz "
      "(hz|khz|mhz|ghz)\n"
      "  ?wait_mode=polling|wfi      how the bare-metal program waits for "
      "layer completion\n"
      "  ?validate=on|off            pre-execution artifact validation\n"
      "  ?dram=<size>                DRAM window, e.g. 1gib (b|kib|mib|gib)\n"
      "  ?program_memory=<size>      BRAM program-memory capacity, e.g. "
      "2mib\n"
      "  ?decode_cache=on|off        ISS decoded-block cache on the "
      "cycle-accurate path\n"
      "                              (bit-identical cycles; off = "
      "per-instruction oracle)\n"
      "  ?mode=replay|cycle_accurate soc/system_top only: replay the "
      "recorded schedule\n"
      "                              functionally on repeat images (skips "
      "the ISS/KMD)\n"
      "  ?fault=<plan>               deterministic fault injection: "
      "kind:rate terms joined\n"
      "                              by '+', e.g. "
      "fault=csb_timeout:0.1+flip:0.05+seed:7\n"
      "                              (kinds: flip, csb_timeout, csb_error, "
      "dbb_error,\n"
      "                              stall, staging, replay)\n"
      "examples: linux_baseline@25mhz, soc?wait_mode=polling, "
      "soc?mode=replay,\n"
      "          system_top?dram=1gib&program_memory=2mib\n";
}

StatusOr<std::unique_ptr<ExecutionBackend>> make_configured_backend(
    const ExecutionBackend* base, std::unique_ptr<ExecutionBackend> owned,
    const BackendSpec& spec, bool apply_clock) {
  const auto overrides = overrides_from_spec(spec, apply_clock);
  if (!overrides.is_ok()) return overrides.status();
  if (owned != nullptr) base = owned.get();
  return std::unique_ptr<ExecutionBackend>(std::make_unique<ConfiguredBackend>(
      base, std::move(owned), spec.full, *overrides));
}

StatusOr<std::unique_ptr<ExecutionBackend>> ExecutionBackend::configure(
    const BackendSpec& spec) const {
  return make_configured_backend(this, nullptr, spec, /*apply_clock=*/true);
}

}  // namespace nvsoc::runtime
