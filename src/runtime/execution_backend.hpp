// ExecutionBackend — the pluggable execution layer of the runtime API.
//
// The paper's flow is inherently multi-target: the same compiled network
// runs on the virtual platform (Fig. 3), the standalone SoC (Fig. 2), the
// full board set-up (Fig. 4) and the Linux-stack comparator platform
// (Table II). A backend takes the staged artifacts of a PreparedModel and
// executes (or models) one inference on its platform, reporting a
// backend-independent ExecutionResult. Failures at this boundary —
// inconsistent artifacts, program-memory overflow, execution faults — come
// back as StatusOr, never as exceptions.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "baseline/linux_baseline.hpp"
#include "common/status.hpp"
#include "core/bare_metal_flow.hpp"

namespace nvsoc::runtime {

/// Per-run knobs shared by every backend.
struct RunOptions {
  core::FlowConfig flow;  ///< clocks, NVDLA config, memory sizes, wait mode
  /// Check artifact consistency (loadable vs trace vs program, program
  /// memory capacity) before executing instead of running garbage.
  bool validate = true;
};

/// Backend-independent view of one inference execution.
struct ExecutionResult {
  std::string backend;  ///< registry name that produced the result
  std::string model;
  Cycle cycles = 0;     ///< platform cycles at `clock`
  Hertz clock = 0;
  double ms = 0.0;
  std::vector<float> output;
  std::size_t predicted_class = 0;
  /// Platform-specific detail, present where it applies.
  std::optional<core::SocExecution> soc;  ///< SocBackend / SystemTopBackend
  std::optional<baseline::LinuxRunEstimate> linux_estimate;
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  virtual StatusOr<ExecutionResult> run(const core::PreparedModel& prepared,
                                        const RunOptions& options) const = 0;
};

/// Consistency checks shared by the backends. `requires_program` is true
/// for the bare-metal platforms (they consume the generated machine code);
/// the VP and baseline backends only need the compiled loadable + trace.
Status validate_prepared(const core::PreparedModel& prepared,
                         const RunOptions& options, bool requires_program);

}  // namespace nvsoc::runtime
