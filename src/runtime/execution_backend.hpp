// ExecutionBackend — the pluggable execution layer of the runtime API.
//
// The paper's flow is inherently multi-target: the same compiled network
// runs on the virtual platform (Fig. 3), the standalone SoC (Fig. 2), the
// full board set-up (Fig. 4) and the Linux-stack comparator platform
// (Table II). A backend takes the staged artifacts of a PreparedModel and
// executes (or models) one inference on its platform, reporting a
// backend-independent ExecutionResult. Failures at this boundary —
// inconsistent artifacts, program-memory overflow, execution faults — come
// back as StatusOr, never as exceptions.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "baseline/linux_baseline.hpp"
#include "common/status.hpp"
#include "core/bare_metal_flow.hpp"

namespace nvsoc::runtime {

/// A parsed string-keyed backend spec. Registries accept configured
/// variants of their backends by name, so a CLI flag alone can select
/// both the platform and its operating point:
///
///   "linux_baseline@25mhz"            clock override
///   "soc?wait_mode=polling"           key/value options
///   "system_top@50mhz?validate=off"   both
///
/// Grammar: `base[@clock][?key=value[&key=value]...]` (a repeated `?` is
/// tolerated as an option separator: `soc?a=1?b=2` == `soc?a=1&b=2`).
///
/// Malformed specs — empty base, `@` without a clock (or with a second
/// `@`), a dangling `key`/`key=`/`=value` pair, the same option key given
/// twice — all fail kInvalidArgument with a message prefixed
/// `backend spec '<spec>':`. A trailing bare `?` is tolerated and
/// canonicalizes away (the spec is then just the base name).
struct BackendSpec {
  std::string full;   ///< as parsed; registries rewrite it to canonical()
                      ///< before configure(), so a hosted variant's name()
                      ///< is the canonical spelling, not the caller's
  std::string base;   ///< registry name of the backend to configure
  std::string clock;  ///< `@` token lowercased ("25mhz"), empty when absent
  std::vector<std::pair<std::string, std::string>> params;  ///< `?k=v&k=v`

  /// True when the spec carries any configuration beyond the base name.
  bool configured() const { return !clock.empty() || !params.empty(); }

  /// The spec re-serialized in canonical form: base, then the (lowercased)
  /// clock, then the options sorted by key — so equivalent spellings like
  /// `soc?validate=off&wait_mode=polling` and
  /// `soc?wait_mode=polling&validate=off` serialize identically.
  /// Registries key their variant cache on this, not on the raw spelling.
  /// (Option *values* are not normalized: `wait_mode=poll` and
  /// `wait_mode=polling` stay distinct cache entries.)
  std::string canonical() const;

  static StatusOr<BackendSpec> parse(const std::string& spec);
};

/// Parse a clock token ("25mhz", "1ghz", "100000khz", "50hz"); the unit is
/// case-insensitive and required.
StatusOr<Hertz> parse_clock(const std::string& token);

/// Parse a memory-size token ("1gib", "2mib", "512kib", "4096b"); binary
/// (IEC) units, case-insensitive and required. Used by the `?dram=` and
/// `?program_memory=` spec options.
StatusOr<std::uint64_t> parse_mem_size(const std::string& token);

/// Human-readable summary of the configured-variant spec grammar and every
/// supported option key — for the examples' `--help` output.
std::string spec_vocabulary_help();

/// Per-run knobs shared by every backend.
struct RunOptions {
  core::FlowConfig flow;  ///< clocks, NVDLA config, memory sizes, wait mode
  /// Check artifact consistency (loadable vs trace vs program, program
  /// memory capacity) before executing instead of running garbage.
  bool validate = true;
  /// Wall-clock budget for one request, measured from enqueue (0 = none).
  /// Backends do not read this — the session enforces it at its task
  /// boundaries (dequeue, post-staging, between retry attempts) and
  /// answers kDeadlineExceeded for an expired request.
  std::uint32_t deadline_ms = 0;
};

/// Backend-independent view of one inference execution.
struct ExecutionResult {
  std::string backend;  ///< registry name that produced the result
  std::string model;
  Cycle cycles = 0;     ///< platform cycles at `clock`
  Hertz clock = 0;
  double ms = 0.0;
  std::vector<float> output;
  std::size_t predicted_class = 0;
  /// Platform-specific detail, present where it applies.
  std::optional<core::SocExecution> soc;  ///< SocBackend / SystemTopBackend
  std::optional<baseline::LinuxRunEstimate> linux_estimate;
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  virtual StatusOr<ExecutionResult> run(const core::PreparedModel& prepared,
                                        const RunOptions& options) const = 0;

  /// Optional staging hook, called off the serving hot path (prepare_async,
  /// the session's async staging pipeline) once the shared artifacts exist:
  /// pre-compute anything the first run() would otherwise pay for lazily.
  /// The SoC backends' `?mode=replay` variants use it to record the
  /// input-independent platform envelope eagerly, so the one full
  /// cycle-accurate recording run never stalls the first pooled batch.
  /// Must be idempotent and thread-safe; the default does nothing.
  virtual void stage(const core::PreparedModel& prepared,
                     const RunOptions& options) const {
    (void)prepared;
    (void)options;
  }

  /// Build a configured variant of this backend from a parsed spec — the
  /// registry calls this to host names like "soc?wait_mode=polling". The
  /// base implementation understands the generic keys every backend
  /// accepts and wraps `this` (which must outlive the variant):
  ///   @<clock>             override RunOptions::flow.soc_clock
  ///   ?wait_mode=polling|wfi   require/override the flow wait mode
  ///   ?validate=on|off     toggle pre-execution artifact validation
  ///   ?dram=<size>         override the DRAM window (e.g. 1gib)
  ///   ?program_memory=<size>   override the BRAM program memory capacity
  /// Unknown keys are kInvalidArgument. Backends with their own knobs
  /// (LinuxBaselineBackend's platform clock, the SoC backends'
  /// ?mode=replay) override this.
  virtual StatusOr<std::unique_ptr<ExecutionBackend>> configure(
      const BackendSpec& spec) const;
};

/// Consistency checks shared by the backends. `requires_program` is true
/// for the bare-metal platforms (they consume the generated machine code);
/// the VP and baseline backends only need the compiled loadable + trace.
Status validate_prepared(const core::PreparedModel& prepared,
                         const RunOptions& options, bool requires_program);

/// Implementation helper for configure() overrides: wrap a backend in a
/// variant named `spec.full` that applies the generic-key overrides (the
/// `@` clock when `apply_clock`, `?wait_mode=`, `?validate=`) to the
/// RunOptions before delegating. When `owned` is non-null the variant owns
/// it and delegates to it; otherwise it delegates to `base`, which must
/// outlive the variant (the registry keeps both).
StatusOr<std::unique_ptr<ExecutionBackend>> make_configured_backend(
    const ExecutionBackend* base, std::unique_ptr<ExecutionBackend> owned,
    const BackendSpec& spec, bool apply_clock);

}  // namespace nvsoc::runtime
