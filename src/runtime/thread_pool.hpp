// Elastic worker pool for data-parallel batch execution and streaming
// task submission.
//
// Each backend run builds its own SoC/VP instance, so independent images
// parallelise cleanly; what the pool adds is dynamic load balancing (a
// shared index counter — image costs vary with polling-loop alignment) and
// a stable worker id so callers can keep per-worker state (e.g. one
// PreparedModel copy per worker instead of per image).
//
// Two execution paths share the same workers:
//   parallel_for(count, task)  one blocking, load-balanced job (batch
//                              barrier semantics)
//   submit(fn) -> future       a queued task that runs as soon as any
//                              worker is free (streaming arrivals — no
//                              barrier, results collected via futures)
//
// Pools are meant to live as long as their owning session/process: workers
// start once and are reused across every job and submitted task. The pool
// is *elastic*: the construction-time worker count is only the starting
// size, and submit() grows the pool — up to max_workers() — whenever tasks
// queue up with no idle worker to take them, so a pool sized by an early
// small batch still scales to later bursty arrivals.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace nvsoc::runtime {

class ThreadPool {
 public:
  /// `workers` == 0 picks one worker per hardware thread (at least 1); the
  /// value is the *initial* size only (see class comment). `max_workers`
  /// caps elastic growth: 0 picks hardware threads, but never less than
  /// the initial size, so an explicit `workers` request is always honoured.
  /// Exception-safe: if spawning thread k throws (std::system_error under
  /// thread exhaustion), the k-1 already-running workers are signalled and
  /// joined before the exception escapes.
  explicit ThreadPool(std::size_t workers = 0, std::size_t max_workers = 0);

  /// Drains every queued submit() task (their futures all complete), then
  /// stops and joins the workers. Must not run concurrently with
  /// parallel_for.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current worker count (grows under queue pressure, never shrinks).
  std::size_t worker_count() const;
  /// The elastic-growth cap.
  std::size_t max_workers() const;
  /// Raise (or, down to the current worker count, lower) the growth cap;
  /// 0 resets it to hardware threads. The pool never drops workers, so the
  /// effective cap is max(cap, worker_count()).
  void set_max_workers(std::size_t cap);

  /// Run task(worker, index) for every index in [0, count), dynamically
  /// load-balanced across the workers; blocks until every index has
  /// completed. `worker` is in [0, worker_count()) and identifies the
  /// executing thread. If tasks throw, every index still executes and the
  /// exception of the lowest failing index is rethrown here. One job at a
  /// time: parallel_for must not be re-entered from a task. Queued
  /// submit() tasks already running delay the job's completion; queued
  /// tasks not yet started wait until the job finishes (workers spawned by
  /// elastic growth mid-job may pick them up early — they never join a job
  /// that started before them).
  void parallel_for(
      std::size_t count,
      const std::function<void(std::size_t worker, std::size_t index)>& task);

  /// Enqueue `fn` to run on the first free worker; returns the future for
  /// its result. The task's value — or the exception it threw — travels
  /// through the future, so submit() itself never observes task failures.
  /// Thread-safe against concurrent submit() calls. If every worker is
  /// busy and the cap allows, a new worker is spawned for the queued task
  /// (growth is best-effort: under thread exhaustion the task simply waits
  /// for an existing worker).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
      grow_if_pressured_locked();
    }
    job_ready_.notify_one();
    return future;
  }

  /// Worker count for a batch of `task_count` items: one per hardware
  /// thread, but never more than there are items.
  static std::size_t recommended_workers(std::size_t task_count);

  /// How many ThreadPools this process has constructed — lets tests assert
  /// that a serving session builds exactly one pool for its lifetime
  /// instead of one per batch. Elastic growth adds workers to an existing
  /// pool and does not count here.
  static std::uint64_t total_created();

 private:
  /// `seen_generation` is the parallel_for generation at *spawn* time:
  /// construction workers pass 0; growth workers pass the live value so
  /// they never join a job whose barrier did not count them.
  void worker_loop(std::size_t worker, std::uint64_t seen_generation);
  /// Spawn one more worker when tasks are queued with no idle worker and
  /// the cap allows. Caller holds mutex_. Best-effort: spawn failures are
  /// swallowed (the queued task waits for an existing worker instead).
  void grow_if_pressured_locked();

  std::vector<std::thread> threads_;

  mutable std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  std::deque<std::function<void()>> queue_;  ///< submit() tasks, FIFO
  const std::function<void(std::size_t, std::size_t)>* task_ = nullptr;
  std::size_t max_workers_ = 0;  ///< elastic-growth cap
  std::size_t idle_ = 0;         ///< workers parked in the wait
  std::size_t count_ = 0;        ///< indices in the current job
  std::size_t next_ = 0;         ///< next unclaimed index
  std::size_t active_ = 0;       ///< workers still inside the current job
  std::uint64_t generation_ = 0; ///< bumped per job so workers run it once
  bool stop_ = false;

  std::size_t error_index_;      ///< lowest index that threw (valid if set)
  std::exception_ptr error_;
};

}  // namespace nvsoc::runtime
