// Fixed-size worker pool for data-parallel batch execution.
//
// Each backend run builds its own SoC/VP instance, so independent images
// parallelise cleanly; what the pool adds is dynamic load balancing (a
// shared index counter — image costs vary with polling-loop alignment) and
// a stable worker id so callers can keep per-worker state (e.g. one
// PreparedModel copy per worker instead of per image).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nvsoc::runtime {

class ThreadPool {
 public:
  /// `workers` == 0 picks one worker per hardware thread (at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Run task(worker, index) for every index in [0, count), dynamically
  /// load-balanced across the workers; blocks until every index has
  /// completed. `worker` is in [0, worker_count()) and identifies the
  /// executing thread. If tasks throw, every index still executes and the
  /// exception of the lowest failing index is rethrown here. One job at a
  /// time: parallel_for must not be re-entered from a task.
  void parallel_for(
      std::size_t count,
      const std::function<void(std::size_t worker, std::size_t index)>& task);

  /// Worker count for a batch of `task_count` items: one per hardware
  /// thread, but never more than there are items.
  static std::size_t recommended_workers(std::size_t task_count);

 private:
  void worker_loop(std::size_t worker);

  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  const std::function<void(std::size_t, std::size_t)>* task_ = nullptr;
  std::size_t count_ = 0;        ///< indices in the current job
  std::size_t next_ = 0;         ///< next unclaimed index
  std::size_t active_ = 0;       ///< workers still inside the current job
  std::uint64_t generation_ = 0; ///< bumped per job so workers run it once
  bool stop_ = false;

  std::size_t error_index_;      ///< lowest index that threw (valid if set)
  std::exception_ptr error_;
};

}  // namespace nvsoc::runtime
