// Elastic worker pool for data-parallel batch execution and streaming
// task submission.
//
// Each backend run builds its own SoC/VP instance, so independent images
// parallelise cleanly; what the pool adds is dynamic load balancing (a
// shared index counter — image costs vary with polling-loop alignment) and
// a stable worker id so callers can keep per-worker state (e.g. one
// PreparedModel copy per worker instead of per image).
//
// Two execution paths share the same workers:
//   parallel_for(count, task)  one blocking, load-balanced job (batch
//                              barrier semantics)
//   submit(fn) -> future       a queued task that runs as soon as any
//                              worker is free (streaming arrivals — no
//                              barrier, results collected via futures)
//
// Pools are meant to live as long as their owning session/process: workers
// start once and are reused across every job and submitted task. The pool
// is *elastic*: the construction-time worker count is only the starting
// size, and submit() grows the pool — up to max_workers() — whenever tasks
// queue up with no idle worker to take them, so a pool sized by an early
// small batch still scales to later bursty arrivals. With an idle timeout
// set (set_idle_timeout; off by default), elastic workers that stay idle
// past the timeout retire back down to the construction-time floor, so a
// long-lived serving pool returns its burst threads to the host between
// traffic peaks instead of parking them forever.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace nvsoc::runtime {

class ThreadPool {
 public:
  /// `workers` == 0 picks one worker per hardware thread (at least 1); the
  /// value is the *initial* size only (see class comment). `max_workers`
  /// caps elastic growth: 0 picks hardware threads, but never less than
  /// the initial size, so an explicit `workers` request is always honoured.
  /// Exception-safe: if spawning thread k throws (std::system_error under
  /// thread exhaustion), the k-1 already-running workers are signalled and
  /// joined before the exception escapes.
  explicit ThreadPool(std::size_t workers = 0, std::size_t max_workers = 0);

  /// Drains every queued submit() task (their futures all complete), then
  /// stops and joins the workers. Must not run concurrently with
  /// parallel_for.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current live worker count: grows under queue pressure, shrinks back
  /// toward the construction-time floor when an idle timeout is set.
  /// Joins any already-retired worker threads as a side effect, so the
  /// count never includes threads that have left the pool.
  std::size_t worker_count() const;
  /// The elastic-growth cap.
  std::size_t max_workers() const;
  /// Raise (or, down to the current worker count, lower) the growth cap;
  /// 0 resets it to hardware threads. The pool never drops workers below
  /// the cap on its own — only the idle reaper retires them.
  void set_max_workers(std::size_t cap);

  /// Idle-timeout reaper for elastic workers: a worker above the
  /// construction-time floor that sees no work for `timeout` retires (its
  /// thread exits and is joined). Zero — the default — disables reaping.
  /// Takes effect immediately: parked workers are woken to re-arm their
  /// wait. Thread-safe.
  void set_idle_timeout(std::chrono::milliseconds timeout);
  std::chrono::milliseconds idle_timeout() const;
  /// How many elastic workers the idle reaper has retired so far.
  std::uint64_t workers_reaped() const;

  /// Run task(worker, index) for every index in [0, count), dynamically
  /// load-balanced across the workers; blocks until every index has
  /// completed. `worker` identifies the executing thread (ids of retired
  /// workers are reused by later growth). If tasks throw, every index
  /// still executes and the exception of the lowest failing index is
  /// rethrown here. One job at a time: parallel_for must not be re-entered
  /// from a task. Queued submit() tasks already running delay the job's
  /// completion; queued tasks not yet started wait until the job finishes
  /// (workers spawned by elastic growth mid-job may pick them up early —
  /// they never join a job that started before them).
  void parallel_for(
      std::size_t count,
      const std::function<void(std::size_t worker, std::size_t index)>& task);

  /// Enqueue `fn` to run on the first free worker; returns the future for
  /// its result. The task's value — or the exception it threw — travels
  /// through the future, so submit() itself never observes task failures.
  /// Thread-safe against concurrent submit() calls. If every worker is
  /// busy and the cap allows, a new worker is spawned for the queued task
  /// (growth is best-effort: under thread exhaustion the task simply waits
  /// for an existing worker).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
      grow_if_pressured_locked();
    }
    job_ready_.notify_one();
    return future;
  }

  /// Worker count for a batch of `task_count` items: one per hardware
  /// thread, but never more than there are items.
  static std::size_t recommended_workers(std::size_t task_count);

  /// How many ThreadPools this process has constructed — lets tests assert
  /// that a serving session builds exactly one pool for its lifetime
  /// instead of one per batch. Elastic growth adds workers to an existing
  /// pool and does not count here.
  static std::uint64_t total_created();

 private:
  /// `seen_generation` is the parallel_for generation at *spawn* time:
  /// construction workers pass 0; growth workers pass the live value so
  /// they never join a job whose barrier did not count them.
  void worker_loop(std::size_t worker, std::uint64_t seen_generation);
  /// Spawn one more worker when tasks are queued with no idle worker and
  /// the cap allows. Reuses the slot of a retired worker when one exists.
  /// Best-effort: spawn failures are swallowed (the queued task waits for
  /// an existing worker instead).
  void grow_if_pressured_locked() REQUIRES(mutex_);
  /// Join the threads of workers that have already retired (they have left
  /// worker_loop, so the joins return promptly). Must be called without
  /// mutex_ held.
  void join_retired() const;

  mutable Mutex mutex_;
  CondVar job_ready_;
  CondVar job_done_;

  /// Slots for live workers; a retired worker's slot holds a moved-from
  /// (non-joinable) handle until growth reuses it. threads_.size() is the
  /// high-water mark, live_ the current worker count.
  std::vector<std::thread> threads_ GUARDED_BY(mutex_);
  /// Handles of retired workers awaiting a join (see join_retired).
  mutable std::vector<std::thread> retired_ GUARDED_BY(mutex_);

  /// submit() tasks, FIFO.
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  const std::function<void(std::size_t, std::size_t)>* task_
      GUARDED_BY(mutex_) = nullptr;
  /// Elastic-growth cap.
  std::size_t max_workers_ GUARDED_BY(mutex_) = 0;
  /// Reaper floor: the construction spawn.
  std::size_t min_workers_ GUARDED_BY(mutex_) = 0;
  /// Workers currently in worker_loop.
  std::size_t live_ GUARDED_BY(mutex_) = 0;
  /// 0 = never reap.
  std::chrono::milliseconds idle_timeout_ GUARDED_BY(mutex_){0};
  /// Workers retired by the idle reaper.
  std::uint64_t reaped_ GUARDED_BY(mutex_) = 0;
  /// Workers parked in the wait.
  std::size_t idle_ GUARDED_BY(mutex_) = 0;
  /// Indices in the current job.
  std::size_t count_ GUARDED_BY(mutex_) = 0;
  /// Next unclaimed index.
  std::size_t next_ GUARDED_BY(mutex_) = 0;
  /// Workers still inside the current job.
  std::size_t active_ GUARDED_BY(mutex_) = 0;
  /// Bumped per job so workers run it once.
  std::uint64_t generation_ GUARDED_BY(mutex_) = 0;
  bool stop_ GUARDED_BY(mutex_) = false;

  /// Lowest index that threw (valid if error_ set).
  std::size_t error_index_ GUARDED_BY(mutex_);
  std::exception_ptr error_ GUARDED_BY(mutex_);
};

}  // namespace nvsoc::runtime
