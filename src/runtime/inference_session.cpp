#include "runtime/inference_session.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/strfmt.hpp"
#include "compiler/calibration.hpp"
#include "compiler/compile.hpp"
#include "runtime/thread_pool.hpp"
#include "toolflow/asm_emitter.hpp"
#include "toolflow/config_file.hpp"
#include "vp/virtual_platform.hpp"

namespace nvsoc::runtime {

namespace {

/// Batch failures carry which image sank the batch (the contract is
/// all-or-nothing, so the index is otherwise lost with the results).
Status image_failure(std::size_t index, const Status& status) {
  return Status(status.code(),
                strfmt("image {}: {}", index, status.message()));
}

bool same_image(const core::PreparedModel& model,
                std::span<const float> image) {
  return model.input.size() == image.size() &&
         std::equal(image.begin(), image.end(), model.input.begin());
}

}  // namespace

// ---------------------------------------------------------------------------
// PendingResult / StagingHandle
// ---------------------------------------------------------------------------

void PendingResult::State::complete(StatusOr<ExecutionResult> value) {
  // The hook fires while the mutex is held: cancel_ready() takes the same
  // lock, so once it returns, a concurrent invocation has finished and no
  // later one can start — the contract that lets a hook's captured owner
  // destroy itself. Hooks are cheap by contract (wake an event loop) and
  // never reenter this PendingResult, so holding the lock is safe; get()
  // waiters wake right after the unlock.
  std::lock_guard<std::mutex> lock(mutex);
  result.emplace(std::move(value));
  std::function<void()> hook = std::move(callback);
  callback = nullptr;
  cv.notify_all();
  if (hook) {
    try {
      hook();
    } catch (...) {
      // The hook runs on a serving worker; its failures must not take the
      // producer task (or the pool) down with it.
    }
  }
}

PendingResult::PendingResult(Status status)
    : state_(std::make_shared<State>()) {
  state_->result.emplace(StatusOr<ExecutionResult>(std::move(status)));
}

bool PendingResult::valid() const { return state_ != nullptr; }

bool PendingResult::ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->result.has_value();
}

StatusOr<ExecutionResult> PendingResult::get() {
  if (state_ == nullptr) {
    return Status(StatusCode::kInvalidArgument,
                  "PendingResult::get() on an empty or already-consumed "
                  "handle (results are one-shot)");
  }
  // Consume the handle up front: after get() the handle is invalid even if
  // the result was an error, matching the one-shot future contract.
  std::shared_ptr<State> state = std::move(state_);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] { return state->result.has_value(); });
  StatusOr<ExecutionResult> result = std::move(*state->result);
  return result;
}

void PendingResult::on_ready(std::function<void()> callback) {
  if (state_ == nullptr || !callback) return;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (!state_->result.has_value()) {
      state_->callback = std::move(callback);
      return;
    }
  }
  // Already ready: fire on the caller, outside the lock.
  try {
    callback();
  } catch (...) {
  }
}

void PendingResult::cancel_ready() {
  if (state_ == nullptr) return;
  // Taking the mutex is the synchronization: complete() invokes the hook
  // with it held, so by the time the lock is ours any in-flight invocation
  // has returned, and clearing the slot stops a future one.
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->callback = nullptr;
}

StagingHandle::StagingHandle(Status status) {
  std::promise<Status> promise;
  future_ = promise.get_future();
  promise.set_value(std::move(status));
}

bool StagingHandle::ready() const {
  return future_.valid() &&
         future_.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
}

Status StagingHandle::wait() {
  if (!future_.valid()) {
    return Status(StatusCode::kInvalidArgument,
                  "StagingHandle::wait() on an empty or already-consumed "
                  "handle (results are one-shot)");
  }
  return future_.get();
}

// ---------------------------------------------------------------------------
// InferenceSession
// ---------------------------------------------------------------------------

InferenceSession::InferenceSession(compiler::Network network,
                                   core::FlowConfig config,
                                   const BackendRegistry* registry)
    : network_(std::move(network)),
      config_(config),
      registry_(registry) {}

InferenceSession::~InferenceSession() = default;

const BackendRegistry& InferenceSession::registry() const {
  return registry_ != nullptr ? *registry_ : BackendRegistry::global();
}

RunOptions InferenceSession::run_options() const {
  RunOptions options;
  options.flow = config_;
  return options;
}

ThreadPool& InferenceSession::pool_locked(std::size_t worker_hint) {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(worker_hint);
    if (pool_idle_timeout_.count() > 0) {
      pool_->set_idle_timeout(pool_idle_timeout_);
    }
  }
  return *pool_;
}

std::size_t InferenceSession::pool_worker_count() const {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  return pool_ != nullptr ? pool_->worker_count() : 0;
}

void InferenceSession::set_pool_idle_timeout(std::chrono::milliseconds timeout) {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  pool_idle_timeout_ = timeout;
  if (pool_ != nullptr) pool_->set_idle_timeout(timeout);
}

const std::vector<float>& InferenceSession::default_input() {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  if (default_input_.empty()) {
    default_input_ =
        compiler::synthetic_input(network_.input_shape(), config_.input_seed);
  }
  return default_input_;
}

Status InferenceSession::check_image_shape(
    std::span<const float> image) const {
  if (image.size() == network_.input_shape().elements()) return Status::ok();
  return Status(StatusCode::kInvalidArgument,
                strfmt("input image has {} elements; network '{}' expects {}",
                       image.size(), network_.name(),
                       network_.input_shape().elements()));
}

std::shared_ptr<const core::FrontendArtifacts>
InferenceSession::build_frontend(
    std::span<const float> calibration_image) const {
  auto frontend = std::make_shared<core::FrontendArtifacts>();
  frontend->model_name = network_.name();
  frontend->nvdla = config_.nvdla;
  frontend->weights =
      compiler::NetWeights::synthetic(network_, config_.weight_seed);
  ++counters_.weights;

  if (config_.precision == nvdla::Precision::kInt8) {
    // Calibrated on the default (synthetic) image, as the legacy flow did.
    frontend->calibration =
        compiler::calibrate(network_, frontend->weights, calibration_image);
    ++counters_.calibration;
  }

  frontend->loadable = compiler::compile(
      network_, frontend->weights,
      config_.precision == nvdla::Precision::kInt8 ? &frontend->calibration
                                                   : nullptr,
      compiler::CompileOptions::for_config(config_.nvdla, config_.precision));
  ++counters_.loadable;
  return frontend;
}

void InferenceSession::ensure_frontend() {
  drain_staging();  // a pooled staging task may be building it right now
  if (prepared_.has_frontend()) return;
  prepared_.frontend = build_frontend(default_input());
}

void InferenceSession::repack_into(core::PreparedModel& prepared,
                                   std::span<const float> image) const {
  if (same_image(prepared, image)) {
    return;  // already packed for exactly this image
  }
  // Shape-check here (the reference executor used to do it implicitly):
  // repack only ever substitutes same-shape images, and the serving paths
  // must report a bad image before the backend chokes on packed garbage.
  if (const Status s = check_image_shape(image); !s.is_ok()) {
    throw std::runtime_error(std::string(s.message()));
  }
  prepared.input.assign(image.begin(), image.end());
  // The FP32 golden output is a validation artifact, not an inference
  // dependency: the serving paths leave it empty and prepare()/prepared()
  // recompute it on demand (ensure_reference).
  prepared.reference_output.clear();
  // The shared trace core — weight-file preload image included — stays
  // untouched: the new image lives only on this per-input surface. The
  // execution paths write the packed input over the preloaded weight
  // surface themselves; preload_weight_file() materializes a patched copy
  // for data-product exports.
  prepared.vp_matches_input = false;
  // Any memoized functional result is stale now; a fresh compute-once memo
  // keeps concurrent consumers of the *new* surface single-computing.
  prepared.vp_refresh = std::make_shared<core::PreparedModel::VpRefreshMemo>();
}

void InferenceSession::set_repack_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  repack_enabled_ = enabled;
}

void InferenceSession::set_replay_enabled(bool enabled) {
  drain_staging();
  if (enabled == replay_enabled_) return;
  replay_enabled_ = enabled;
  if (!enabled) {
    if (prepared_.replay != nullptr) {
      replay_base_ += prepared_.replay->replay_count();
      prepared_.replay.reset();
    }
    return;
  }
  // Re-enabling: the schedule is recorded by a full trace, so force one on
  // the next staging call (config file and program are reused when the CSB
  // stream matches, which it always does for a same-shape image).
  tail_done_ = false;
}

void InferenceSession::ensure_reference() {
  // The reference executor borrows the frozen weights; the frontend core is
  // built once per session, so the reference stays valid for its lifetime.
  if (!reference_.has_value()) {
    reference_.emplace(network_, prepared_.frontend->weights);
  }
  if (!prepared_.reference_output.empty()) return;
  prepared_.reference_output = reference_->run_to(prepared_.input);
}

void InferenceSession::stage_tail_into(core::PreparedModel& model,
                                       std::span<const float> image,
                                       bool record_replay) const {
  // Hoisted shape check: the full-trace path must reject a wrong-size
  // *first* image exactly like the repack path does, instead of packing
  // garbage into Loadable::pack_input / the VP.
  if (const Status s = check_image_shape(image); !s.is_ok()) {
    throw std::runtime_error(std::string(s.message()));
  }
  const bool had_trace = model.has_tail();

  model.input.assign(image.begin(), image.end());
  // The FP32 reference is lazy on this path too (see ensure_reference);
  // clear any previous image's tensor so a later prepare() recomputes it.
  model.reference_output.clear();

  auto tail = std::make_shared<core::TraceArtifacts>();
  vp::VirtualPlatform platform(config_.nvdla);
  tail->vp = platform.run(model.frontend->loadable, model.input);
  ++counters_.trace;

  // The full run just recorded a fresh replay schedule. A replay-disabled
  // session stages no schedule at all, so its snapshots re-simulate in
  // full; the per-image re-traces inside repack-disabled pooled tasks skip
  // it too (their task-local schedule could never be reused).
  model.replay =
      record_replay ? core::make_replay_schedule(tail->vp) : nullptr;

  // When the new trace programs the engine identically (it always does —
  // the register stream is input-independent), the configuration file and
  // program are reused from the previous shared core instead of
  // regenerated. The old core itself is immutable: snapshots handed to
  // in-flight tasks keep it alive and untouched.
  if (had_trace && model.tail->vp.trace.csb == tail->vp.trace.csb) {
    tail->config_file = model.tail->config_file;
    tail->program = model.tail->program;
  } else {
    tail->config_file = toolflow::ConfigFile::from_trace(tail->vp.trace);
    ++counters_.config_file;
    toolflow::AsmOptions asm_options;
    asm_options.wait_mode = config_.wait_mode;
    tail->program = toolflow::generate_program(tail->config_file, asm_options);
    ++counters_.program;
  }

  model.tail = std::move(tail);
  model.vp_matches_input = true;
  model.vp_refresh = std::make_shared<core::PreparedModel::VpRefreshMemo>();
}

void InferenceSession::ensure_tail(std::span<const float> image) {
  ensure_frontend();  // drains any in-flight async staging first
  if (tail_done_ && same_image(prepared_, image)) {
    return;
  }

  // Repack fast path: once one image has been traced, the CSB stream —
  // hence config file and program — is known to be input-independent, so a
  // same-shape image only needs its input-dependent surfaces refreshed.
  if (tail_done_ && repack_enabled_ &&
      prepared_.input.size() == image.size()) {
    tail_done_ = false;  // invalidate while mutating (repack can throw)
    repack_into(prepared_, image);
    ++counters_.repack;
    tail_done_ = true;
    return;
  }

  // Reject a bad shape before invalidating anything: a wrong-size image
  // must not cost a valid staged tail its memo (and the re-trace that
  // would follow).
  if (const Status s = check_image_shape(image); !s.is_ok()) {
    throw std::runtime_error(std::string(s.message()));
  }

  // Invalidate before mutating: if a stage below throws, the next call must
  // not memo-hit on artifacts that belong to a different image.
  tail_done_ = false;
  auto outgoing_schedule = prepared_.replay;
  stage_tail_into(prepared_, image, replay_enabled_);
  // The trace succeeded and replaced the schedule; fold the outgoing
  // schedule's tally into the counters it vanishes from.
  if (outgoing_schedule != nullptr) {
    replay_base_ += outgoing_schedule->replay_count();
  }
  tail_done_ = true;
}

// ---------------------------------------------------------------------------
// Async staging
// ---------------------------------------------------------------------------

void InferenceSession::start_staging_locked(std::span<const float> image) {
  auto latch = std::make_shared<StagingLatch>();
  latch->done = latch->promise.get_future().share();

  // The task owns a private snapshot (sharing whatever immutable cores are
  // already staged) plus copies of the inputs it needs; it touches no
  // session state beyond the atomic counters, and publishes through the
  // latch — the promise/future edge sequences every later read of
  // `staged`.
  core::PreparedModel base = prepared_;
  std::vector<float> calibration_image;
  if (!base.has_frontend()) {
    if (default_input_.empty()) {
      default_input_ = compiler::synthetic_input(network_.input_shape(),
                                                 config_.input_seed);
    }
    calibration_image = default_input_;
  }
  const bool record_replay = replay_enabled_;
  ++counters_.async_stagings;
  pool_locked(0).submit(
      [this, latch, base = std::move(base),
       image = std::vector<float>(image.begin(), image.end()),
       calibration_image = std::move(calibration_image),
       record_replay]() mutable {
        try {
          if (!base.has_frontend()) {
            base.frontend = build_frontend(calibration_image);
          }
          stage_tail_into(base, image, record_replay);
          latch->staged = std::move(base);
          latch->promise.set_value(Status::ok());
        } catch (const std::exception& e) {
          latch->promise.set_value(
              Status(StatusCode::kInvalidArgument, e.what()));
        } catch (...) {
          // The latch promise is the only completion channel (the task's
          // own future is discarded): it must be fulfilled for *any*
          // exception, or every queued arrival would block forever.
          latch->promise.set_value(
              Status(StatusCode::kInternal,
                     "staging task failed with a non-standard exception"));
        }
      });
  staging_ = latch;
}

void InferenceSession::try_adopt_staging_locked() {
  if (staging_ == nullptr ||
      staging_->done.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
    return;
  }
  const Status status = staging_->done.get();
  if (status.is_ok()) {
    auto outgoing_schedule = prepared_.replay;
    // Copy, don't move: tasks already queued behind the latch still read
    // its `staged` model.
    prepared_ = staging_->staged;
    if (outgoing_schedule != nullptr &&
        outgoing_schedule != prepared_.replay) {
      replay_base_ += outgoing_schedule->replay_count();
    }
    tail_done_ = true;
  }
  // A failed staging is simply dropped: the next submit (or session-thread
  // staging call) retries from the pre-staging state.
  staging_.reset();
}

void InferenceSession::drain_staging() {
  std::unique_lock<std::mutex> lock(submit_mutex_);
  while (staging_ != nullptr) {
    auto latch = staging_;
    // Wait on a private future copy (taken under the lock): every other
    // accessor of the latch's shared_future does the same, so no two
    // threads ever wait through one shared_future object.
    std::shared_future<Status> done = latch->done;
    lock.unlock();
    done.wait();
    lock.lock();
    if (staging_ == latch) try_adopt_staging_locked();
  }
}

StageCounters InferenceSession::counters() const {
  StageCounters snapshot;
  snapshot.weights = counters_.weights.load(std::memory_order_relaxed);
  snapshot.calibration = counters_.calibration.load(std::memory_order_relaxed);
  snapshot.loadable = counters_.loadable.load(std::memory_order_relaxed);
  snapshot.trace = counters_.trace.load(std::memory_order_relaxed);
  snapshot.config_file = counters_.config_file.load(std::memory_order_relaxed);
  snapshot.program = counters_.program.load(std::memory_order_relaxed);
  snapshot.repack = counters_.repack.load(std::memory_order_relaxed);
  snapshot.async_stagings =
      counters_.async_stagings.load(std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(submit_mutex_);
  const core::ReplaySchedule* schedule = prepared_.replay.get();
  if (staging_ != nullptr &&
      staging_->done.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready &&
      staging_->staged.replay != nullptr) {
    // Staged but not yet adopted: the latch's schedule is the live one.
    schedule = staging_->staged.replay.get();
  }
  snapshot.replay =
      replay_base_.load(std::memory_order_relaxed) +
      (schedule != nullptr ? schedule->replay_count() : 0);
  return snapshot;
}

// ---------------------------------------------------------------------------
// Staged-artifact accessors
// ---------------------------------------------------------------------------

const compiler::NetWeights& InferenceSession::weights() {
  ensure_frontend();
  return prepared_.frontend->weights;
}

const compiler::CalibrationTable& InferenceSession::calibration() {
  ensure_frontend();
  return prepared_.frontend->calibration;
}

const compiler::Loadable& InferenceSession::loadable() {
  ensure_frontend();
  return prepared_.frontend->loadable;
}

const core::PreparedModel& InferenceSession::prepared() {
  ensure_tail(default_input());
  ensure_reference();
  return prepared_;
}

const core::PreparedModel& InferenceSession::prepare(
    std::span<const float> image) {
  ensure_tail(image);
  ensure_reference();
  return prepared_;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

StatusOr<ExecutionResult> InferenceSession::run(const std::string& backend) {
  return run(backend, default_input());
}

StatusOr<ExecutionResult> InferenceSession::run(const std::string& backend,
                                                std::span<const float> image) {
  const auto found = registry().find(backend);
  if (!found.is_ok()) return found.status();
  try {
    return (*found)->run(prepare(image), run_options());
  } catch (const std::exception& e) {
    // Stage failures (bad image shape, compile errors) keep the StatusOr
    // contract of the run() boundary.
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

PendingResult InferenceSession::submit(const std::string& backend) {
  return submit(backend, default_input());
}

PendingResult InferenceSession::submit(const std::string& backend,
                                       std::span<const float> image) {
  const auto found = registry().find(backend);
  if (!found.is_ok()) return PendingResult(found.status());
  try {
    return submit_with(**found, image, run_options(), 0);
  } catch (const std::exception& e) {
    // Pool construction (std::thread can throw std::system_error under
    // thread exhaustion) stays behind the StatusOr boundary too.
    return PendingResult(Status(StatusCode::kInternal, e.what()));
  }
}

InferenceSession::StagingSource InferenceSession::staging_source_locked(
    std::span<const float> image) {
  StagingSource source;
  if (tail_done_ && staging_ == nullptr) {
    source.snapshot = prepared_;  // staged & adopted: two refcounts + input
    return source;
  }
  // First arrival — or arrivals racing the in-flight staging — queue
  // behind the staging latch instead of tracing on the calling thread.
  if (staging_ == nullptr) start_staging_locked(image);
  source.latch = staging_;
  source.done = staging_->done;  // this task's own future copy
  return source;
}

Status InferenceSession::resolve_staged_model(StagingSource& source,
                                              core::PreparedModel& model) {
  if (source.latch != nullptr) {
    const Status staged = source.done.get();
    if (!staged.is_ok()) return staged;
    model = source.latch->staged;
    return Status::ok();
  }
  model = std::move(source.snapshot);
  return Status::ok();
}

PendingResult InferenceSession::submit_with(const ExecutionBackend& backend,
                                            std::span<const float> image,
                                            const RunOptions& options,
                                            std::size_t worker_hint) {
  // Reject a wrong-size image — first or later — before any staging work,
  // identically to the run()/batch paths.
  if (Status s = check_image_shape(image); !s.is_ok()) {
    return PendingResult(std::move(s));
  }

  // Copy the image before taking the lock: concurrent submitters should
  // serialize on the staging-source selection only, not on O(input) work.
  std::vector<float> image_copy(image.begin(), image.end());

  StagingSource source;
  ThreadPool* pool = nullptr;
  bool repack = true;
  {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    try_adopt_staging_locked();
    pool = &pool_locked(worker_hint);
    source = staging_source_locked(image);
    repack = repack_enabled_;
  }

  // Enqueue outside the lock (FIFO still holds what matters: the staging
  // task, if any, was queued under the lock before this arrival). The task
  // owns everything it touches: a surface snapshot sharing the immutable
  // cores (frontend, trace, replay schedule), its own copy of the image,
  // and per-run options. Repacking in the task skips the FP32 reference —
  // pooled serving replays cheap functional ops only. A repack-disabled
  // session keeps its full-replay-per-image contract by re-tracing
  // *inside* the task instead. The backend is registry-owned and outlives
  // the drain (the pool is the first session member to be destroyed).
  //
  // The result travels through the handle's shared State, not the pool
  // future (discarded): State::complete publishes the value, wakes get()
  // waiters, and fires any on_ready hook from this worker. Every exit path
  // of the task completes the state, so a PendingResult can never be left
  // pending — the ThreadPool destructor's queue drain guarantees the task
  // itself runs even during session teardown.
  auto state = std::make_shared<PendingResult::State>();
  pool->submit(
      [this, &backend, options, repack, state, source = std::move(source),
       image = std::move(image_copy)]() mutable {
        StatusOr<ExecutionResult> outcome = [&]() -> StatusOr<ExecutionResult> {
          try {
            core::PreparedModel model;
            if (Status staged = resolve_staged_model(source, model);
                !staged.is_ok()) {
              return staged;
            }
            if (!same_image(model, image)) {
              if (repack) {
                repack_into(model, image);
              } else {
                stage_tail_into(model, image, /*record_replay=*/false);
              }
            }
            return backend.run(model, options);
          } catch (const std::exception& e) {
            return Status(StatusCode::kInvalidArgument, e.what());
          } catch (...) {
            return Status(StatusCode::kInternal,
                          "pooled inference failed with a non-standard "
                          "exception");
          }
        }();
        state->complete(std::move(outcome));
      });
  return PendingResult(std::move(state));
}

StagingHandle InferenceSession::prepare_async(const std::string& backend) {
  return prepare_async(backend, default_input());
}

StagingHandle InferenceSession::prepare_async(const std::string& backend,
                                              std::span<const float> image) {
  const auto found = registry().find(backend);
  if (!found.is_ok()) return StagingHandle(found.status());
  if (Status s = check_image_shape(image); !s.is_ok()) {
    return StagingHandle(std::move(s));
  }
  const ExecutionBackend* staged_backend = *found;
  const RunOptions options = run_options();
  try {
    StagingSource source;
    ThreadPool* pool = nullptr;
    {
      std::lock_guard<std::mutex> lock(submit_mutex_);
      try_adopt_staging_locked();
      pool = &pool_locked(0);
      source = staging_source_locked(image);
    }
    auto future = pool->submit(
        [source = std::move(source), options,
         staged_backend]() mutable -> Status {
          try {
            core::PreparedModel model;
            if (Status staged = resolve_staged_model(source, model);
                !staged.is_ok()) {
              return staged;
            }
            staged_backend->stage(model, options);
            return Status::ok();
          } catch (const std::exception& e) {
            return Status(StatusCode::kInternal, e.what());
          } catch (...) {
            return Status(StatusCode::kInternal,
                          "staging hook failed with a non-standard "
                          "exception");
          }
        });
    return StagingHandle(std::move(future));
  } catch (const std::exception& e) {
    return StagingHandle(Status(StatusCode::kInternal, e.what()));
  }
}

// ---------------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------------

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch_with(
    const ExecutionBackend& backend,
    const std::vector<std::vector<float>>& images, const RunOptions& options) {
  std::vector<ExecutionResult> results;
  results.reserve(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    try {
      auto result = backend.run(prepare(images[i]), options);
      if (!result.is_ok()) return image_failure(i, result.status());
      results.push_back(std::move(result).value());
    } catch (const std::exception& e) {
      return image_failure(i, Status(StatusCode::kInvalidArgument, e.what()));
    }
  }
  return results;
}

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch(
    const std::string& backend,
    const std::vector<std::vector<float>>& images) {
  const auto found = registry().find(backend);
  if (!found.is_ok()) return found.status();
  return run_batch_with(**found, images, run_options());
}

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch_parallel(
    const std::string& backend,
    const std::vector<std::vector<float>>& images,
    const BatchOptions& options) {
  const auto found = registry().find(backend);
  if (!found.is_ok()) return found.status();
  if (images.empty()) return std::vector<ExecutionResult>{};

  RunOptions per_run = run_options();
  per_run.validate = options.validate;

  std::size_t workers = options.workers != 0
                            ? options.workers
                            : ThreadPool::recommended_workers(images.size());
  workers = std::min(workers, images.size());
  // One worker — or a session with the repack fast path disabled, whose
  // contract is a full VP replay per image — runs the sequential path with
  // the same per-run options.
  if (workers <= 1 || !repack_enabled_) {
    return run_batch_with(**found, images, per_run);
  }

  // Stage the shared artifacts once — as a blocking call, the batch API
  // keeps synchronous staging (and its clean image-0 error attribution);
  // the streaming submit() path is the asynchronous one.
  try {
    ensure_tail(images.front());
  } catch (const std::exception& e) {
    return image_failure(0, Status(StatusCode::kInvalidArgument, e.what()));
  }

  // Size (or re-cap) the session pool: the initial spawn uses the batch's
  // *clamped* worker count — a 2-image batch with workers=8 spawns 2
  // threads, not 8 — and elastic growth up to max_workers handles any
  // later pressure.
  try {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    pool_locked(workers).set_max_workers(options.max_workers);
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }

  std::vector<PendingResult> pending;
  pending.reserve(images.size());
  try {
    for (const auto& image : images) {
      pending.push_back(submit_with(**found, image, per_run, workers));
    }
  } catch (const std::exception& e) {
    // Pool construction failed mid-loop: results already queued are in
    // flight — drain them before surfacing the error, so no task outlives
    // the batch call or silently burns a worker.
    for (auto& handle : pending) (void)handle.get();
    return Status(StatusCode::kInternal, e.what());
  }

  // Collect every result before deciding the outcome: the contract is
  // all-or-nothing with the lowest failing index, not whichever task lost
  // the wall-clock race.
  std::vector<ExecutionResult> results;
  results.reserve(images.size());
  std::size_t error_index = images.size();  // lowest failing image
  Status error_status;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    auto result = pending[i].get();
    if (!result.is_ok()) {
      if (i < error_index) {
        error_index = i;
        error_status = result.status();
      }
      continue;
    }
    results.push_back(std::move(result).value());
  }
  if (error_index != images.size()) {
    return image_failure(error_index, error_status);
  }
  return results;
}

}  // namespace nvsoc::runtime
