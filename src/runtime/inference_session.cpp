#include "runtime/inference_session.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/strfmt.hpp"
#include "compiler/calibration.hpp"
#include "compiler/compile.hpp"
#include "runtime/thread_pool.hpp"
#include "toolflow/asm_emitter.hpp"
#include "toolflow/config_file.hpp"
#include "vp/virtual_platform.hpp"

namespace nvsoc::runtime {

namespace {

/// Batch failures carry which image sank the batch (the contract is
/// all-or-nothing, so the index is otherwise lost with the results).
Status image_failure(std::size_t index, const Status& status) {
  return Status(status.code(),
                strfmt("image {}: {}", index, status.message()));
}

bool same_image(const core::PreparedModel& model,
                std::span<const float> image) {
  return model.input.size() == image.size() &&
         std::equal(image.begin(), image.end(), model.input.begin());
}

/// The spec key that routes a request to a registered model. It is a
/// session-level concern, stripped before the registry ever sees the spec:
/// backends know nothing about the model fleet.
constexpr const char* kModelParam = "model";

}  // namespace

// ---------------------------------------------------------------------------
// PendingResult / StagingHandle
// ---------------------------------------------------------------------------

void PendingResult::State::complete(StatusOr<ExecutionResult> value) {
  // The hook fires while the mutex is held: cancel_ready() takes the same
  // lock, so once it returns, a concurrent invocation has finished and no
  // later one can start — the contract that lets a hook's captured owner
  // destroy itself. Hooks are cheap by contract (wake an event loop) and
  // never reenter this PendingResult, so holding the lock is safe; get()
  // waiters wake right after the unlock.
  MutexLock lock(mutex);
  result.emplace(std::move(value));
  std::function<void()> hook = std::move(callback);
  callback = nullptr;
  cv.notify_all();
  if (hook) {
    try {
      hook();
    } catch (...) {
      // The hook runs on a serving worker; its failures must not take the
      // producer task (or the pool) down with it.
    }
  }
}

PendingResult::PendingResult(Status status)
    : state_(std::make_shared<State>()) {
  state_->result.emplace(StatusOr<ExecutionResult>(std::move(status)));
}

bool PendingResult::valid() const { return state_ != nullptr; }

bool PendingResult::ready() const {
  if (state_ == nullptr) return false;
  MutexLock lock(state_->mutex);
  return state_->result.has_value();
}

StatusOr<ExecutionResult> PendingResult::get() {
  if (state_ == nullptr) {
    return Status(StatusCode::kInvalidArgument,
                  "PendingResult::get() on an empty or already-consumed "
                  "handle (results are one-shot)");
  }
  // Consume the handle up front: after get() the handle is invalid even if
  // the result was an error, matching the one-shot future contract.
  std::shared_ptr<State> state = std::move(state_);
  MutexLock lock(state->mutex);
  while (!state->result.has_value()) state->cv.wait(state->mutex);
  StatusOr<ExecutionResult> result = std::move(*state->result);
  return result;
}

void PendingResult::on_ready(std::function<void()> callback) {
  if (state_ == nullptr || !callback) return;
  {
    MutexLock lock(state_->mutex);
    if (!state_->result.has_value()) {
      state_->callback = std::move(callback);
      return;
    }
  }
  // Already ready: fire on the caller, outside the lock.
  try {
    callback();
  } catch (...) {
  }
}

void PendingResult::cancel_ready() {
  if (state_ == nullptr) return;
  // Taking the mutex is the synchronization: complete() invokes the hook
  // with it held, so by the time the lock is ours any in-flight invocation
  // has returned, and clearing the slot stops a future one.
  MutexLock lock(state_->mutex);
  state_->callback = nullptr;
}

StagingHandle::StagingHandle(Status status) {
  std::promise<Status> promise;
  future_ = promise.get_future();
  promise.set_value(std::move(status));
}

bool StagingHandle::ready() const {
  return future_.valid() &&
         future_.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
}

Status StagingHandle::wait() {
  if (!future_.valid()) {
    return Status(StatusCode::kInvalidArgument,
                  "StagingHandle::wait() on an empty or already-consumed "
                  "handle (results are one-shot)");
  }
  return future_.get();
}

// ---------------------------------------------------------------------------
// InferenceSession — construction and the model fleet
// ---------------------------------------------------------------------------

InferenceSession::InferenceSession(compiler::Network network,
                                   core::FlowConfig config,
                                   const BackendRegistry* registry)
    : registry_(registry),
      checkin_state_(std::make_shared<ReplayCheckinState>()) {
  checkin_state_->session = this;
  std::string name = network.name();
  auto state =
      std::make_unique<ModelState>(name, std::move(network), config);
  default_model_ = state.get();
  models_.emplace(std::move(name), std::move(state));
}

InferenceSession::~InferenceSession() {
  // Flag teardown first: queued tasks still waiting on an unresolved
  // staging latch observe it and resolve their PendingResult with a typed
  // kUnavailable instead of relying on drain ordering.
  shutting_down_.store(true, std::memory_order_release);
  // Detach from the check-in hooks before anything else dies: holding the
  // state mutex waits out any hook mid-call, and hooks firing afterwards
  // (the pool drain during member destruction, or schedules the caller
  // still holds) see the null session and return without touching freed
  // members. The lock must be dropped before members destruct — a hook
  // fired by a draining task blocks on it, and pool_'s destructor would
  // wait on that task.
  {
    MutexLock lock(checkin_state_->mutex);
    checkin_state_->session = nullptr;
  }
}

Status InferenceSession::register_model(std::string name,
                                        compiler::Network network,
                                        core::FlowConfig config) {
  if (name.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "register_model: model name must not be empty");
  }
  MutexLock lock(submit_mutex_);
  if (models_.count(name) != 0) {
    return Status(StatusCode::kAlreadyExists,
                  strfmt("model '{}' is already registered", name));
  }
  auto state =
      std::make_unique<ModelState>(name, std::move(network), config);
  models_.emplace(std::move(name), std::move(state));
  return Status::ok();
}

Status InferenceSession::register_model(std::string name,
                                        compiler::Network network) {
  // The default model's config is immutable after construction; reading it
  // outside the lock is safe.
  return register_model(std::move(name), std::move(network),
                        default_model_->config);
}

std::vector<std::string> InferenceSession::model_names() const {
  MutexLock lock(submit_mutex_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, state] : models_) names.push_back(name);
  return names;
}

const compiler::Network& InferenceSession::network() const {
  return default_model_->network;
}

const core::FlowConfig& InferenceSession::config() const {
  return default_model_->config;
}

const BackendRegistry& InferenceSession::registry() const {
  return registry_ != nullptr ? *registry_ : BackendRegistry::global();
}

RunOptions InferenceSession::run_options(const ModelState& model) const {
  RunOptions options;
  options.flow = model.config;
  options.deadline_ms = default_deadline_ms_.load(std::memory_order_relaxed);
  if (options.flow.fault == nullptr) {
    // The session-level plan arms every model whose own flow config carries
    // no `?fault=` plan; a spec-level `?fault=` override still wins (the
    // configured variant applies it on top of these options).
    MutexLock lock(submit_mutex_);
    options.flow.fault = session_fault_;
  }
  return options;
}

void InferenceSession::set_retry_policy(RetryPolicy policy) {
  MutexLock lock(submit_mutex_);
  retry_policy_ = policy;
}

RetryPolicy InferenceSession::retry_policy() const {
  MutexLock lock(submit_mutex_);
  return retry_policy_;
}

void InferenceSession::set_default_deadline_ms(std::uint32_t deadline_ms) {
  default_deadline_ms_.store(deadline_ms, std::memory_order_relaxed);
}

std::uint32_t InferenceSession::default_deadline_ms() const {
  return default_deadline_ms_.load(std::memory_order_relaxed);
}

Status InferenceSession::set_fault_plan(const std::string& spec) {
  std::shared_ptr<fault::Injector> injector;
  if (!spec.empty()) {
    auto plan = fault::Plan::parse(spec);
    if (!plan.is_ok()) return plan.status();
    if (plan->any()) injector = std::make_shared<fault::Injector>(*plan);
  }
  MutexLock lock(submit_mutex_);
  session_fault_ = std::move(injector);
  return Status::ok();
}

std::shared_ptr<fault::Injector> InferenceSession::fault_injector() const {
  MutexLock lock(submit_mutex_);
  return session_fault_;
}

RobustnessCounters InferenceSession::robustness() const {
  RobustnessCounters snapshot;
  snapshot.retries = robust_.retries.load(std::memory_order_relaxed);
  snapshot.quarantines = robust_.quarantines.load(std::memory_order_relaxed);
  snapshot.restages = robust_.restages.load(std::memory_order_relaxed);
  snapshot.deadline_exceeded =
      robust_.deadline_exceeded.load(std::memory_order_relaxed);
  snapshot.data_loss = robust_.data_loss.load(std::memory_order_relaxed);
  snapshot.staging_faults =
      robust_.staging_faults.load(std::memory_order_relaxed);
  snapshot.shutdown_rejections =
      robust_.shutdown_rejections.load(std::memory_order_relaxed);
  return snapshot;
}

ThreadPool& InferenceSession::pool_locked(std::size_t worker_hint) {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(worker_hint);
    if (pool_idle_timeout_.count() > 0) {
      pool_->set_idle_timeout(pool_idle_timeout_);
    }
  }
  return *pool_;
}

std::size_t InferenceSession::pool_worker_count() const {
  MutexLock lock(submit_mutex_);
  return pool_ != nullptr ? pool_->worker_count() : 0;
}

void InferenceSession::set_pool_idle_timeout(std::chrono::milliseconds timeout) {
  MutexLock lock(submit_mutex_);
  pool_idle_timeout_ = timeout;
  if (pool_ != nullptr) pool_->set_idle_timeout(timeout);
}

const std::vector<float>& InferenceSession::default_input_for(
    ModelState& model) {
  MutexLock lock(submit_mutex_);
  if (model.default_input.empty()) {
    model.default_input = compiler::synthetic_input(
        model.network.input_shape(), model.config.input_seed);
  }
  // The vector is filled once and never reassigned: the reference (and the
  // contents) stay stable after the lock is released.
  return model.default_input;
}

const std::vector<float>& InferenceSession::default_input() {
  return default_input_for(*default_model_);
}

Status InferenceSession::check_image_shape(const ModelState& model,
                                           std::span<const float> image) {
  if (image.size() == model.network.input_shape().elements()) {
    return Status::ok();
  }
  return Status(StatusCode::kInvalidArgument,
                strfmt("input image has {} elements; network '{}' expects {}",
                       image.size(), model.network.name(),
                       model.network.input_shape().elements()));
}

// ---------------------------------------------------------------------------
// Spec resolution
// ---------------------------------------------------------------------------

StatusOr<InferenceSession::ResolvedSpec> InferenceSession::resolve(
    const std::string& spec) {
  auto parsed = BackendSpec::parse(spec);
  if (!parsed.is_ok()) return parsed.status();
  BackendSpec backend_spec = std::move(*parsed);

  // Strip the session-level routing key before the registry sees the spec:
  // "soc?mode=replay&model=resnet18" configures the same backend variant as
  // "soc?mode=replay", routed to the 'resnet18' model.
  std::string model_name;
  const auto model_param = std::find_if(
      backend_spec.params.begin(), backend_spec.params.end(),
      [](const auto& kv) { return kv.first == kModelParam; });
  if (model_param != backend_spec.params.end()) {
    model_name = model_param->second;
    backend_spec.params.erase(model_param);
  }

  const std::string canonical = backend_spec.canonical();
  const auto found = registry().find(canonical);
  if (!found.is_ok()) return found.status();

  ResolvedSpec resolved;
  resolved.backend_ = *found;
  resolved.canonical_ = canonical;

  MutexLock lock(submit_mutex_);
  ModelState* state = default_model_;
  if (!model_name.empty()) {
    const auto it = models_.find(model_name);
    if (it == models_.end()) {
      std::string known;
      for (const auto& [name, unused] : models_) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      return Status(StatusCode::kNotFound,
                    strfmt("backend spec '{}': unknown model '{}' "
                           "(registered: {})",
                           spec, model_name, known));
    }
    state = it->second.get();
  }
  resolved.state_ = state;
  resolved.model_name_ = state->name;

  // The variant row is created on first resolution and pinned for the
  // session lifetime (map nodes are never erased), so the handle may keep a
  // raw pointer.
  auto [it, inserted] =
      variants_.try_emplace(state->name + "|" + canonical);
  if (inserted) {
    it->second.backend_spec = canonical;
    it->second.model = state->name;
  }
  resolved.variant_ = &it->second;
  return resolved;
}

// ---------------------------------------------------------------------------
// Staging (shared helpers)
// ---------------------------------------------------------------------------

std::shared_ptr<const core::FrontendArtifacts>
InferenceSession::build_frontend(
    const ModelState& model, std::span<const float> calibration_image) const {
  auto frontend = std::make_shared<core::FrontendArtifacts>();
  frontend->model_name = model.network.name();
  frontend->nvdla = model.config.nvdla;
  frontend->weights =
      compiler::NetWeights::synthetic(model.network, model.config.weight_seed);
  ++counters_.weights;

  if (model.config.precision == nvdla::Precision::kInt8) {
    // Calibrated on the default (synthetic) image, as the legacy flow did.
    frontend->calibration = compiler::calibrate(
        model.network, frontend->weights, calibration_image);
    ++counters_.calibration;
  }

  frontend->loadable = compiler::compile(
      model.network, frontend->weights,
      model.config.precision == nvdla::Precision::kInt8
          ? &frontend->calibration
          : nullptr,
      compiler::CompileOptions::for_config(model.config.nvdla,
                                           model.config.precision));
  ++counters_.loadable;
  return frontend;
}

void InferenceSession::ensure_frontend(ModelState& model) {
  drain_staging(model);  // a pooled staging task may be building it right now
  if (model.prepared.has_frontend()) return;
  model.prepared.frontend = build_frontend(model, default_input_for(model));
}

void InferenceSession::repack_into(const ModelState& model,
                                   core::PreparedModel& prepared,
                                   std::span<const float> image) const {
  if (same_image(prepared, image)) {
    return;  // already packed for exactly this image
  }
  // Shape-check here (the reference executor used to do it implicitly):
  // repack only ever substitutes same-shape images, and the serving paths
  // must report a bad image before the backend chokes on packed garbage.
  if (const Status s = check_image_shape(model, image); !s.is_ok()) {
    throw std::runtime_error(std::string(s.message()));
  }
  prepared.input.assign(image.begin(), image.end());
  // The FP32 golden output is a validation artifact, not an inference
  // dependency: the serving paths leave it empty and prepare()/prepared()
  // recompute it on demand (ensure_reference).
  prepared.reference_output.clear();
  // The shared trace core — weight-file preload image included — stays
  // untouched: the new image lives only on this per-input surface. The
  // execution paths write the packed input over the preloaded weight
  // surface themselves; preload_weight_file() materializes a patched copy
  // for data-product exports.
  prepared.vp_matches_input = false;
  // Any memoized functional result is stale now; a fresh compute-once memo
  // keeps concurrent consumers of the *new* surface single-computing.
  prepared.vp_refresh = std::make_shared<core::PreparedModel::VpRefreshMemo>();
}

void InferenceSession::set_repack_enabled(bool enabled) {
  MutexLock lock(submit_mutex_);
  repack_enabled_ = enabled;
}

void InferenceSession::set_replay_enabled(bool enabled) {
  drain_all_staging();
  MutexLock lock(submit_mutex_);
  if (enabled == replay_enabled_) return;
  replay_enabled_ = enabled;
  for (auto& [name, state] : models_) {
    ModelState& model = *state;
    if (!enabled) {
      if (model.prepared.replay != nullptr) {
        model.replay_base += model.prepared.replay->replay_count();
        model.prepared.replay.reset();
      }
    } else {
      // Re-enabling: the schedule is recorded by a full trace, so force one
      // on the next staging call (config file and program are reused when
      // the CSB stream matches, which it always does for a same-shape
      // image).
      model.tail_done = false;
    }
    refresh_variants_staged_locked(model);
  }
}

void InferenceSession::ensure_reference(ModelState& model) {
  // The reference executor borrows the frozen weights; the frontend core is
  // built once per model, so the reference stays valid for its lifetime.
  if (!model.reference.has_value()) {
    model.reference.emplace(model.network, model.prepared.frontend->weights);
  }
  if (!model.prepared.reference_output.empty()) return;
  model.prepared.reference_output =
      model.reference->run_to(model.prepared.input);
}

void InferenceSession::stage_tail_into(const ModelState& model,
                                       core::PreparedModel& prepared,
                                       std::span<const float> image,
                                       bool record_replay) const {
  // Hoisted shape check: the full-trace path must reject a wrong-size
  // *first* image exactly like the repack path does, instead of packing
  // garbage into Loadable::pack_input / the VP.
  if (const Status s = check_image_shape(model, image); !s.is_ok()) {
    throw std::runtime_error(std::string(s.message()));
  }
  const bool had_trace = prepared.has_tail();

  prepared.input.assign(image.begin(), image.end());
  // The FP32 reference is lazy on this path too (see ensure_reference);
  // clear any previous image's tensor so a later prepare() recomputes it.
  prepared.reference_output.clear();

  auto tail = std::make_shared<core::TraceArtifacts>();
  vp::VirtualPlatform platform(model.config.nvdla);
  tail->vp = platform.run(prepared.frontend->loadable, prepared.input);
  ++counters_.trace;

  // The full run just recorded a fresh replay schedule. A replay-disabled
  // session stages no schedule at all, so its snapshots re-simulate in
  // full; the per-image re-traces inside repack-disabled pooled tasks skip
  // it too (their task-local schedule could never be reused).
  prepared.replay =
      record_replay ? core::make_replay_schedule(tail->vp) : nullptr;

  // When the new trace programs the engine identically (it always does —
  // the register stream is input-independent), the configuration file and
  // program are reused from the previous shared core instead of
  // regenerated. The old core itself is immutable: snapshots handed to
  // in-flight tasks keep it alive and untouched.
  if (had_trace && prepared.tail->vp.trace.csb == tail->vp.trace.csb) {
    tail->config_file = prepared.tail->config_file;
    tail->program = prepared.tail->program;
  } else {
    tail->config_file = toolflow::ConfigFile::from_trace(tail->vp.trace);
    ++counters_.config_file;
    toolflow::AsmOptions asm_options;
    asm_options.wait_mode = model.config.wait_mode;
    tail->program = toolflow::generate_program(tail->config_file, asm_options);
    ++counters_.program;
  }

  prepared.tail = std::move(tail);
  prepared.vp_matches_input = true;
  prepared.vp_refresh = std::make_shared<core::PreparedModel::VpRefreshMemo>();
}

void InferenceSession::ensure_tail(ModelState& model,
                                   std::span<const float> image) {
  ensure_frontend(model);  // drains any in-flight async staging first
  if (model.tail_done && same_image(model.prepared, image)) {
    return;
  }

  // Snapshot the session knobs once: ensure_tail is a session-thread stage
  // method and must not hold submit_mutex_ across the (slow) trace below.
  bool repack_on = false;
  bool replay_on = false;
  {
    MutexLock lock(submit_mutex_);
    repack_on = repack_enabled_;
    replay_on = replay_enabled_;
  }

  // Repack fast path: once one image has been traced, the CSB stream —
  // hence config file and program — is known to be input-independent, so a
  // same-shape image only needs its input-dependent surfaces refreshed.
  if (model.tail_done && repack_on &&
      model.prepared.input.size() == image.size()) {
    model.tail_done = false;  // invalidate while mutating (repack can throw)
    repack_into(model, model.prepared, image);
    ++counters_.repack;
    model.tail_done = true;
    return;
  }

  // Reject a bad shape before invalidating anything: a wrong-size image
  // must not cost a valid staged tail its memo (and the re-trace that
  // would follow).
  if (const Status s = check_image_shape(model, image); !s.is_ok()) {
    throw std::runtime_error(std::string(s.message()));
  }

  // Invalidate before mutating: if a stage below throws, the next call must
  // not memo-hit on artifacts that belong to a different image.
  model.tail_done = false;
  auto outgoing_schedule = model.prepared.replay;
  stage_tail_into(model, model.prepared, image, replay_on);
  // The trace succeeded and replaced the schedule; fold the outgoing
  // schedule's tally into the counters it vanishes from.
  if (outgoing_schedule != nullptr) {
    model.replay_base += outgoing_schedule->replay_count();
  }
  model.tail_done = true;
  if (model.prepared.replay != nullptr) {
    install_checkin_hook(*model.prepared.replay, model);
  }
}

// ---------------------------------------------------------------------------
// Async staging
// ---------------------------------------------------------------------------

void InferenceSession::note_staging_issued() {
  const std::uint32_t now =
      counters_.staging_in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint32_t peak = counters_.staging_peak.load(std::memory_order_relaxed);
  while (peak < now && !counters_.staging_peak.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void InferenceSession::note_staging_done() {
  counters_.staging_in_flight.fetch_sub(1, std::memory_order_relaxed);
}

void InferenceSession::start_staging_locked(ModelState& model,
                                            std::span<const float> image) {
  auto latch = std::make_shared<StagingLatch>();
  latch->done = latch->promise.get_future().share();

  // The task owns a private snapshot (sharing whatever immutable cores are
  // already staged) plus copies of the inputs it needs; it reads only the
  // model's immutable identity (network, config) beyond the atomic
  // counters, and publishes through the latch — the promise/future edge
  // sequences every later read of `staged`.
  core::PreparedModel base = model.prepared;
  std::vector<float> calibration_image;
  if (!base.has_frontend()) {
    if (model.default_input.empty()) {
      model.default_input = compiler::synthetic_input(
          model.network.input_shape(), model.config.input_seed);
    }
    calibration_image = model.default_input;
  }
  const bool record_replay = replay_enabled_;
  // The staging trace itself always runs fault-free (clean artifacts are
  // what makes injected corruption *detectable*), but the staging task as a
  // control-flow unit can fail: the plan's `staging` kind fails the latch
  // with a typed, retryable kUnavailable.
  auto injector =
      model.config.fault != nullptr ? model.config.fault : session_fault_;
  ++counters_.async_stagings;
  note_staging_issued();
  pool_locked(0).submit(
      [this, latch, state = &model, base = std::move(base),
       image = std::vector<float>(image.begin(), image.end()),
       calibration_image = std::move(calibration_image),
       record_replay, injector = std::move(injector)]() mutable {
        if (injector != nullptr && injector->fire(fault::Kind::kStagingFail)) {
          ++robust_.staging_faults;
          latch->promise.set_value(
              Status(StatusCode::kUnavailable, "injected staging-task failure"));
          note_staging_done();
          return;
        }
        try {
          if (!base.has_frontend()) {
            base.frontend = build_frontend(*state, calibration_image);
          }
          stage_tail_into(*state, base, image, record_replay);
          // Hook the fresh schedule before the latch publishes it: tasks
          // queued behind the latch replay against it before adoption.
          if (base.replay != nullptr) {
            install_checkin_hook(*base.replay, *state);
          }
          latch->staged = std::move(base);
          latch->promise.set_value(Status::ok());
        } catch (const StatusError& e) {
          ++robust_.staging_faults;
          latch->promise.set_value(e.status());
        } catch (const std::exception& e) {
          ++robust_.staging_faults;
          latch->promise.set_value(
              Status(StatusCode::kInvalidArgument, e.what()));
        } catch (...) {
          ++robust_.staging_faults;
          // The latch promise is the only completion channel (the task's
          // own future is discarded): it must be fulfilled for *any*
          // exception, or every queued arrival would block forever.
          latch->promise.set_value(
              Status(StatusCode::kInternal,
                     "staging task failed with a non-standard exception"));
        }
        note_staging_done();
      });
  model.staging = latch;
}

void InferenceSession::try_adopt_staging_locked(ModelState& model) {
  if (model.staging == nullptr ||
      model.staging->done.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
    return;
  }
  const Status status = model.staging->done.get();
  if (status.is_ok()) {
    auto outgoing_schedule = model.prepared.replay;
    // Copy, don't move: tasks already queued behind the latch still read
    // its `staged` model.
    model.prepared = model.staging->staged;
    if (outgoing_schedule != nullptr &&
        outgoing_schedule != model.prepared.replay) {
      model.replay_base += outgoing_schedule->replay_count();
    }
    model.tail_done = true;
  }
  // A failed staging is simply dropped: the next submit (or session-thread
  // staging call) retries from the pre-staging state.
  model.staging.reset();
  refresh_variants_staged_locked(model);
  if (const auto* schedule = live_schedule_locked(model)) {
    install_checkin_hook(*schedule, model);
  }
}

void InferenceSession::try_adopt_all_locked() {
  for (auto& [name, state] : models_) try_adopt_staging_locked(*state);
}

void InferenceSession::drain_staging(ModelState& model) {
  MutexLock lock(submit_mutex_);
  while (model.staging != nullptr) {
    auto latch = model.staging;
    // Wait on a private future copy (taken under the lock): every other
    // accessor of the latch's shared_future does the same, so no two
    // threads ever wait through one shared_future object.
    std::shared_future<Status> done = latch->done;
    lock.unlock();
    done.wait();
    lock.lock();
    if (model.staging == latch) try_adopt_staging_locked(model);
  }
}

void InferenceSession::drain_all_staging() {
  std::vector<ModelState*> all;
  {
    MutexLock lock(submit_mutex_);
    all.reserve(models_.size());
    for (auto& [name, state] : models_) all.push_back(state.get());
  }
  // ModelState nodes are pinned for the session lifetime; draining outside
  // the collection lock is safe.
  for (ModelState* model : all) drain_staging(*model);
}

// ---------------------------------------------------------------------------
// Byte-budgeted replay residency
// ---------------------------------------------------------------------------

const core::ReplaySchedule* InferenceSession::live_schedule_locked(
    const ModelState& model) const {
  if (model.prepared.replay != nullptr) return model.prepared.replay.get();
  if (model.staging != nullptr &&
      model.staging->done.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready &&
      model.staging->staged.replay != nullptr) {
    // Staged but not yet adopted: the latch's schedule is the live one.
    return model.staging->staged.replay.get();
  }
  return nullptr;
}

std::uint64_t InferenceSession::model_resident_bytes_locked(
    const ModelState& model) const {
  const core::ReplaySchedule* schedule = live_schedule_locked(model);
  if (schedule == nullptr) return 0;
  return schedule->schedule_bytes() + schedule->resident_arena_bytes();
}

void InferenceSession::note_use_locked(ModelState& model,
                                       VariantState* variant) {
  model.last_used = ++use_tick_;
  if (variant != nullptr) {
    ++variant->requests;
    variant->last_used = use_tick_;
  }
}

void InferenceSession::refresh_variants_staged_locked(
    const ModelState& model) {
  const bool staged = live_schedule_locked(model) != nullptr;
  for (auto& [key, variant] : variants_) {
    if (variant.model == model.name) variant.staged = staged;
  }
}

void InferenceSession::evict_schedule_locked(ModelState& model) {
  if (model.prepared.replay == nullptr) return;
  model.replay_base += model.prepared.replay->replay_count();
  model.prepared.replay.reset();
  // The next use re-stages transparently: one re-trace (config file and
  // program are reused — the CSB stream matches), then back to replaying.
  model.tail_done = false;
  ++counters_.evictions;
  for (auto& [key, variant] : variants_) {
    if (variant.model != model.name) continue;
    if (variant.staged) ++variant.evictions;
    variant.staged = false;
  }
}

void InferenceSession::enforce_budget_locked(ModelState* just_used) {
  if (replay_budget_bytes_ == 0) return;
  const auto total = [&] {
    std::uint64_t bytes = 0;
    for (const auto& [name, state] : models_) {
      bytes += model_resident_bytes_locked(*state);
    }
    return bytes;
  };
  if (total() <= replay_budget_bytes_) return;

  // Cold models (never the one driving this use), least recently used
  // first.
  std::vector<ModelState*> cold;
  for (auto& [name, state] : models_) {
    if (state.get() == just_used) continue;
    if (live_schedule_locked(*state) == nullptr) continue;
    cold.push_back(state.get());
  }
  std::sort(cold.begin(), cold.end(),
            [](const ModelState* a, const ModelState* b) {
              return a->last_used < b->last_used;
            });

  // Pass 1: drop cold models' arenas — a pure cache (cheap to shed, rebuilt
  // by the next replay), so it always goes before any schedule.
  for (ModelState* model : cold) {
    const core::ReplaySchedule* schedule = live_schedule_locked(*model);
    if (schedule != nullptr) schedule->release_arenas();
    if (total() <= replay_budget_bytes_) return;
  }

  // Pass 2: evict cold schedules outright (LRU order). A model whose
  // staging is still in flight is skipped — its schedule is about to be
  // adopted and used.
  for (ModelState* model : cold) {
    if (model->staging != nullptr) continue;
    evict_schedule_locked(*model);
    if (total() <= replay_budget_bytes_) return;
  }

  // Pass 3: the hot model sheds its own idle arenas; its schedule is never
  // evicted (it is in use right now — dropping it would thrash).
  if (just_used != nullptr) {
    const core::ReplaySchedule* schedule = live_schedule_locked(*just_used);
    if (schedule != nullptr) schedule->release_arenas();
  }
}

void InferenceSession::install_checkin_hook(
    const core::ReplaySchedule& schedule, ModelState& model) {
  // The hook captures the shared control block, never `this`: schedules
  // (and their engines) routinely outlive the session inside caller-held
  // PreparedModel snapshots, and must fire a no-op after detach. The
  // ModelState pointer rides along under the same gate (nothing ever
  // erases a model node while the session lives).
  auto state = checkin_state_;
  schedule.set_checkin_hook([state, model = &model] {
    if (state->budget.load(std::memory_order_relaxed) == 0) return;
    MutexLock lock(state->mutex);
    if (state->session == nullptr) return;
    state->session->on_replay_checkin(*model);
  });
}

void InferenceSession::on_replay_checkin(ModelState& model) {
  MutexLock lock(submit_mutex_);
  // Adopt first so a freshly staged schedule counts against the budget it
  // is about to share. The checking-in model is the hot one: the walk
  // sheds cold models first and at most drops this model's idle arenas —
  // including the one this check-in just returned — never its schedule.
  try_adopt_all_locked();
  enforce_budget_locked(&model);
}

void InferenceSession::set_replay_budget_bytes(std::uint64_t budget_bytes) {
  MutexLock lock(submit_mutex_);
  replay_budget_bytes_ = budget_bytes;
  checkin_state_->budget.store(budget_bytes, std::memory_order_relaxed);
  // Enforce immediately so a freshly lowered budget takes effect without
  // waiting for the next request, and (re)attach the check-in hooks —
  // schedules staged before any budget existed get theirs here.
  try_adopt_all_locked();
  for (auto& [name, state] : models_) {
    if (const auto* schedule = live_schedule_locked(*state)) {
      install_checkin_hook(*schedule, *state);
    }
  }
  enforce_budget_locked(nullptr);
}

std::uint64_t InferenceSession::replay_budget_bytes() const {
  MutexLock lock(submit_mutex_);
  return replay_budget_bytes_;
}

std::uint64_t InferenceSession::replay_resident_bytes() const {
  MutexLock lock(submit_mutex_);
  std::uint64_t bytes = 0;
  for (const auto& [name, state] : models_) {
    bytes += model_resident_bytes_locked(*state);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Counters and per-variant stats
// ---------------------------------------------------------------------------

StageCounters InferenceSession::counters() const {
  StageCounters snapshot;
  snapshot.weights = counters_.weights.load(std::memory_order_relaxed);
  snapshot.calibration = counters_.calibration.load(std::memory_order_relaxed);
  snapshot.loadable = counters_.loadable.load(std::memory_order_relaxed);
  snapshot.trace = counters_.trace.load(std::memory_order_relaxed);
  snapshot.config_file = counters_.config_file.load(std::memory_order_relaxed);
  snapshot.program = counters_.program.load(std::memory_order_relaxed);
  snapshot.repack = counters_.repack.load(std::memory_order_relaxed);
  snapshot.async_stagings =
      counters_.async_stagings.load(std::memory_order_relaxed);
  snapshot.staging_in_flight =
      counters_.staging_in_flight.load(std::memory_order_relaxed);
  snapshot.staging_peak =
      counters_.staging_peak.load(std::memory_order_relaxed);
  snapshot.evictions = counters_.evictions.load(std::memory_order_relaxed);

  MutexLock lock(submit_mutex_);
  for (const auto& [name, state] : models_) {
    const core::ReplaySchedule* schedule = live_schedule_locked(*state);
    snapshot.replay += state->replay_base.load(std::memory_order_relaxed) +
                       (schedule != nullptr ? schedule->replay_count() : 0);
  }
  return snapshot;
}

std::vector<VariantStats> InferenceSession::variant_stats() const {
  MutexLock lock(submit_mutex_);
  std::vector<VariantStats> stats;
  stats.reserve(variants_.size());
  // The map key is "model|canonical spec": iteration order is already
  // sorted by (model, spec).
  for (const auto& [key, variant] : variants_) {
    VariantStats row;
    row.backend = variant.backend_spec;
    row.model = variant.model;
    row.staged = variant.staged;
    row.requests = variant.requests;
    row.stagings = variant.stagings;
    row.evictions = variant.evictions;
    const auto it = models_.find(variant.model);
    if (it != models_.end()) {
      row.resident_bytes = model_resident_bytes_locked(*it->second);
    }
    stats.push_back(std::move(row));
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Staged-artifact accessors (default model)
// ---------------------------------------------------------------------------

const compiler::NetWeights& InferenceSession::weights() {
  ensure_frontend(*default_model_);
  return default_model_->prepared.frontend->weights;
}

const compiler::CalibrationTable& InferenceSession::calibration() {
  ensure_frontend(*default_model_);
  return default_model_->prepared.frontend->calibration;
}

const compiler::Loadable& InferenceSession::loadable() {
  ensure_frontend(*default_model_);
  return default_model_->prepared.frontend->loadable;
}

const core::PreparedModel& InferenceSession::prepared() {
  return prepare_in(*default_model_, default_input());
}

const core::PreparedModel& InferenceSession::prepare(
    std::span<const float> image) {
  return prepare_in(*default_model_, image);
}

const core::PreparedModel& InferenceSession::prepare_in(
    ModelState& model, std::span<const float> image) {
  ensure_tail(model, image);
  ensure_reference(model);
  return model.prepared;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

StatusOr<ExecutionResult> InferenceSession::run(const std::string& backend) {
  auto resolved = resolve(backend);
  if (!resolved.is_ok()) return resolved.status();
  return run_resolved(*resolved, default_input_for(*resolved->state_));
}

StatusOr<ExecutionResult> InferenceSession::run(const std::string& backend,
                                                std::span<const float> image) {
  auto resolved = resolve(backend);
  if (!resolved.is_ok()) return resolved.status();
  return run_resolved(*resolved, image);
}

StatusOr<ExecutionResult> InferenceSession::run_resolved(
    const ResolvedSpec& spec, std::span<const float> image) {
  ModelState& model = *spec.state_;
  {
    MutexLock lock(submit_mutex_);
    try_adopt_all_locked();
    note_use_locked(model, spec.variant_);
  }
  try {
    auto result = spec.backend_->run(prepare_in(model, image),
                                     run_options(model));
    MutexLock lock(submit_mutex_);
    if (!result.is_ok() &&
        result.status().code() == StatusCode::kDataLoss) {
      // Detected corruption on the synchronous path: quarantine the shared
      // schedule so the next use restages from the immutable artifacts.
      ++robust_.data_loss;
      if (model.prepared.replay != nullptr) ++robust_.quarantines;
      evict_schedule_locked(model);
    }
    refresh_variants_staged_locked(model);
    enforce_budget_locked(&model);
    return result;
  } catch (const StatusError& e) {
    // Typed failures thrown below the backend boundary (injected faults,
    // watchdog timeouts, corruption detections on the staging path).
    return e.status();
  } catch (const std::exception& e) {
    // Stage failures (bad image shape, compile errors) keep the StatusOr
    // contract of the run() boundary.
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

Status InferenceSession::probe_golden(const std::string& backend) {
  auto resolved = resolve(backend);
  if (!resolved.is_ok()) return resolved.status();
  ModelState& model = *resolved->state_;
  drain_staging(model);
  bool quarantined = false;
  {
    MutexLock lock(submit_mutex_);
    // Canary 1: the staged schedule's ops checksum. A mismatch means the
    // shared in-memory schedule was silently corrupted since recording.
    if (model.prepared.replay != nullptr &&
        !model.prepared.replay->ops_intact()) {
      ++robust_.data_loss;
      ++robust_.quarantines;
      evict_schedule_locked(model);
      quarantined = true;
    }
  }
  // Canary 2: golden-output comparison on the default input. A
  // checksum-quarantined schedule restages transparently inside this run.
  auto result = run_resolved(*resolved, default_input_for(model));
  if (!result.is_ok()) return result.status();
  MutexLock lock(submit_mutex_);
  if (model.golden_output.empty()) {
    model.golden_output = result->output;  // the first probe freezes golden
  } else if (model.golden_output != result->output) {
    ++robust_.data_loss;
    if (model.prepared.replay != nullptr) ++robust_.quarantines;
    evict_schedule_locked(model);
    return Status(StatusCode::kDataLoss,
                  "golden-image probe mismatch: replay schedule quarantined "
                  "for restage on next use");
  }
  if (quarantined) {
    return Status(StatusCode::kDataLoss,
                  "replay-schedule checksum mismatch: schedule quarantined "
                  "and restaged (probe output verified golden)");
  }
  return Status::ok();
}

PendingResult InferenceSession::submit(const std::string& backend) {
  auto resolved = resolve(backend);
  if (!resolved.is_ok()) return PendingResult(resolved.status());
  return submit(*resolved);
}

PendingResult InferenceSession::submit(const std::string& backend,
                                       std::span<const float> image) {
  auto resolved = resolve(backend);
  if (!resolved.is_ok()) return PendingResult(resolved.status());
  return submit(*resolved, image);
}

PendingResult InferenceSession::submit(const ResolvedSpec& spec) {
  if (!spec.valid()) {
    return PendingResult(Status(StatusCode::kInvalidArgument,
                                "submit() on an empty ResolvedSpec"));
  }
  return submit(spec, default_input_for(*spec.state_));
}

PendingResult InferenceSession::submit(const ResolvedSpec& spec,
                                       std::span<const float> image) {
  if (!spec.valid()) {
    return PendingResult(Status(StatusCode::kInvalidArgument,
                                "submit() on an empty ResolvedSpec"));
  }
  try {
    return submit_with(*spec.state_, spec.variant_, *spec.backend_, image,
                       run_options(*spec.state_), 0);
  } catch (const std::exception& e) {
    // Pool construction (std::thread can throw std::system_error under
    // thread exhaustion) stays behind the StatusOr boundary too.
    return PendingResult(Status(StatusCode::kInternal, e.what()));
  }
}

InferenceSession::StagingSource InferenceSession::staging_source_locked(
    ModelState& model, std::span<const float> image) {
  StagingSource source;
  if (model.tail_done && model.staging == nullptr) {
    // staged & adopted: two refcounts + input
    source.snapshot = model.prepared;
    return source;
  }
  // First arrival — or arrivals racing the in-flight staging — queue
  // behind the staging latch instead of tracing on the calling thread.
  if (model.staging == nullptr) start_staging_locked(model, image);
  source.latch = model.staging;
  source.done = model.staging->done;  // this task's own future copy
  return source;
}

Status InferenceSession::resolve_staged_model(StagingSource& source,
                                              core::PreparedModel& model) {
  if (source.latch != nullptr) {
    const Status staged = source.done.get();
    if (!staged.is_ok()) return staged;
    model = source.latch->staged;
    return Status::ok();
  }
  model = std::move(source.snapshot);
  return Status::ok();
}

PendingResult InferenceSession::submit_with(ModelState& model,
                                            VariantState* variant,
                                            const ExecutionBackend& backend,
                                            std::span<const float> image,
                                            const RunOptions& options,
                                            std::size_t worker_hint) {
  // Reject a wrong-size image — first or later — before any staging work,
  // identically to the run()/batch paths.
  if (Status s = check_image_shape(model, image); !s.is_ok()) {
    return PendingResult(std::move(s));
  }

  // Copy the image before taking the lock: concurrent submitters should
  // serialize on the staging-source selection only, not on O(input) work.
  std::vector<float> image_copy(image.begin(), image.end());

  // The deadline clock starts at enqueue: queueing delay counts against
  // the request, so an aged-out request sheds at dequeue without running.
  const auto enqueued = std::chrono::steady_clock::now();

  StagingSource source;
  ThreadPool* pool = nullptr;
  bool repack = true;
  RetryPolicy retry;
  {
    MutexLock lock(submit_mutex_);
    try_adopt_all_locked();
    note_use_locked(model, variant);
    pool = &pool_locked(worker_hint);
    source = staging_source_locked(model, image);
    repack = repack_enabled_;
    retry = retry_policy_;
    // Enforce on use, after adoption: freshly staged schedules count, and
    // the model serving this request is evicted last.
    enforce_budget_locked(&model);
  }

  // Enqueue outside the lock (FIFO still holds what matters: the staging
  // task, if any, was queued under the lock before this arrival). The task
  // owns everything it touches: a surface snapshot sharing the immutable
  // cores (frontend, trace, replay schedule), its own copy of the image,
  // and per-run options. Repacking in the task skips the FP32 reference —
  // pooled serving replays cheap functional ops only. A repack-disabled
  // session keeps its full-replay-per-image contract by re-tracing
  // *inside* the task instead. The backend is registry-owned and the
  // ModelState map-pinned; both outlive the drain (the pool is the first
  // session member to be destroyed).
  //
  // The result travels through the handle's shared State, not the pool
  // future (discarded): State::complete publishes the value, wakes get()
  // waiters, and fires any on_ready hook from this worker. Every exit path
  // of the task completes the state, so a PendingResult can never be left
  // pending — the ThreadPool destructor's queue drain guarantees the task
  // itself runs even during session teardown.
  auto state = std::make_shared<PendingResult::State>();
  pool->submit(
      [this, model_state = &model, &backend, options, repack, retry, state,
       source = std::move(source), image = std::move(image_copy),
       enqueued]() mutable {
        state->complete(run_submitted(*model_state, backend, options, repack,
                                      retry, source, image, enqueued));
      });
  return PendingResult(std::move(state));
}

StatusOr<ExecutionResult> InferenceSession::run_submitted(
    ModelState& model, const ExecutionBackend& backend,
    const RunOptions& options, bool repack, RetryPolicy retry,
    StagingSource& source, std::span<const float> image,
    std::chrono::steady_clock::time_point enqueued) {
  const auto expired = [&] {
    return options.deadline_ms != 0 &&
           std::chrono::steady_clock::now() - enqueued >=
               std::chrono::milliseconds(options.deadline_ms);
  };
  const auto deadline_error = [&](const char* where) {
    ++robust_.deadline_exceeded;
    return Status(StatusCode::kDeadlineExceeded,
                  strfmt("request exceeded its {} ms deadline {}",
                         options.deadline_ms, where));
  };
  // Deadline gate 1: dequeue. A request that aged out in the pool queue is
  // shed here without paying for an execution nobody is waiting for.
  if (expired()) return deadline_error("waiting in the pool queue");
  // Teardown gate: at session shutdown a request still queued behind an
  // unresolved staging latch answers a typed error instead of relying on
  // drain ordering.
  if (shutting_down_.load(std::memory_order_acquire) &&
      source.latch != nullptr &&
      source.done.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
    ++robust_.shutdown_rejections;
    return Status(StatusCode::kUnavailable,
                  "session is shutting down; the request was still queued "
                  "behind its model's staging latch");
  }

  core::PreparedModel prepared;
  bool ready = false;
  const std::uint32_t max_attempts =
      std::max<std::uint32_t>(1, retry.max_attempts);
  for (std::uint32_t attempt = 1;; ++attempt) {
    StatusOr<ExecutionResult> result = [&]() -> StatusOr<ExecutionResult> {
      try {
        if (!ready) {
          if (attempt == 1) {
            if (Status staged = resolve_staged_model(source, prepared);
                !staged.is_ok()) {
              return staged;
            }
          } else if (Status rebuilt = rebuild_inline(model, prepared, image);
                     !rebuilt.is_ok()) {
            return rebuilt;
          }
          ready = true;
        }
        // Deadline gate 2: the staging latch (or an inline rebuild) may
        // have taken arbitrarily long.
        if (expired()) return deadline_error("behind the staging latch");
        if (!same_image(prepared, image)) {
          if (repack) {
            repack_into(model, prepared, image);
          } else {
            stage_tail_into(model, prepared, image,
                            /*record_replay=*/false);
          }
        }
        return backend.run(prepared, options);
      } catch (const StatusError& e) {
        return e.status();
      } catch (const std::exception& e) {
        return Status(StatusCode::kInvalidArgument, e.what());
      } catch (...) {
        return Status(StatusCode::kInternal,
                      "pooled inference failed with a non-standard "
                      "exception");
      }
    }();
    if (result.is_ok()) return result;
    const StatusCode code = result.status().code();
    if (code == StatusCode::kDataLoss) {
      // Detected corruption: quarantine the shared schedule so no later
      // request serves from it. This task's snapshot still pins the
      // quarantined core, so a retry must rebuild inline (ready = false)
      // from the immutable artifacts rather than reuse the snapshot.
      ++robust_.data_loss;
      MutexLock lock(submit_mutex_);
      if (model.prepared.replay != nullptr) ++robust_.quarantines;
      evict_schedule_locked(model);
      ready = false;
    }
    if (!is_transient(code) || attempt >= max_attempts || expired()) {
      return result;
    }
    ++robust_.retries;
    if (retry.backoff_ms != 0) {
      // Linear backoff on the worker. kUnavailable retries reuse the
      // snapshot — the injector's decision stream has advanced — while
      // kDataLoss retries re-trace first (above).
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry.backoff_ms) * attempt);
    }
  }
}

Status InferenceSession::rebuild_inline(ModelState& model,
                                        core::PreparedModel& prepared,
                                        std::span<const float> image) {
  try {
    if (!prepared.has_frontend()) {
      std::vector<float> calibration_image;
      {
        MutexLock lock(submit_mutex_);
        if (model.prepared.has_frontend()) {
          // Reuse the session's immutable frontend core (refcount bump).
          prepared.frontend = model.prepared.frontend;
        } else {
          if (model.default_input.empty()) {
            model.default_input = compiler::synthetic_input(
                model.network.input_shape(), model.config.input_seed);
          }
          calibration_image = model.default_input;
        }
      }
      if (!prepared.has_frontend()) {
        prepared.frontend = build_frontend(model, calibration_image);
      }
    }
    // Never serve from a quarantined schedule: drop the snapshot's pin and
    // re-trace in this task. No staging latch is enqueued — queueing one
    // from inside a pool task would deadlock a single-worker pool — and no
    // task-local schedule is recorded (it could never be shared); the
    // session restages its own schedule on the model's next use.
    prepared.replay.reset();
    stage_tail_into(model, prepared, image, /*record_replay=*/false);
    ++robust_.restages;
    return Status::ok();
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }
}

StagingHandle InferenceSession::prepare_async(const std::string& backend) {
  auto resolved = resolve(backend);
  if (!resolved.is_ok()) return StagingHandle(resolved.status());
  return prepare_async_resolved(*resolved,
                                default_input_for(*resolved->state_));
}

StagingHandle InferenceSession::prepare_async(const std::string& backend,
                                              std::span<const float> image) {
  auto resolved = resolve(backend);
  if (!resolved.is_ok()) return StagingHandle(resolved.status());
  return prepare_async_resolved(*resolved, image);
}

std::vector<StagingHandle> InferenceSession::prepare_async(
    const std::vector<std::string>& backends) {
  // One pool pass for the whole fleet: every call below only *enqueues*
  // (staging latch and stage() hook both run on the pool), so N variants'
  // stagings are all in flight before any handle is waited on — specs
  // sharing a model dedup the trace behind its latch.
  std::vector<StagingHandle> handles;
  handles.reserve(backends.size());
  for (const auto& backend : backends) {
    handles.push_back(prepare_async(backend));
  }
  return handles;
}

StagingHandle InferenceSession::prepare_async_resolved(
    const ResolvedSpec& spec, std::span<const float> image) {
  ModelState& model = *spec.state_;
  if (Status s = check_image_shape(model, image); !s.is_ok()) {
    return StagingHandle(std::move(s));
  }
  const ExecutionBackend* staged_backend = spec.backend_;
  VariantState* variant = spec.variant_;
  const RunOptions options = run_options(model);
  try {
    StagingSource source;
    ThreadPool* pool = nullptr;
    {
      MutexLock lock(submit_mutex_);
      try_adopt_all_locked();
      pool = &pool_locked(0);
      source = staging_source_locked(model, image);
    }
    // Issued-at-enqueue: a vector prepare pushes staging_in_flight to the
    // fleet size before any task completes — the concurrency evidence.
    note_staging_issued();
    try {
      auto future = pool->submit(
        [this, source = std::move(source), options, staged_backend,
         model_state = &model, variant]() mutable -> Status {
          Status outcome = [&]() -> Status {
            try {
              core::PreparedModel prepared;
              if (Status staged = resolve_staged_model(source, prepared);
                  !staged.is_ok()) {
                return staged;
              }
              staged_backend->stage(prepared, options);
              return Status::ok();
            } catch (const StatusError& e) {
              return e.status();
            } catch (const std::exception& e) {
              return Status(StatusCode::kInternal, e.what());
            } catch (...) {
              return Status(StatusCode::kInternal,
                            "staging hook failed with a non-standard "
                            "exception");
            }
          }();
          if (outcome.is_ok()) {
            MutexLock lock(submit_mutex_);
            try_adopt_staging_locked(*model_state);
            ++variant->stagings;
            refresh_variants_staged_locked(*model_state);
          }
          note_staging_done();
          return outcome;
        });
      return StagingHandle(std::move(future));
    } catch (...) {
      // The enqueue threw after note_staging_issued(): the task will never
      // run, so balance the in-flight tally here before reporting.
      note_staging_done();
      throw;
    }
  } catch (const std::exception& e) {
    return StagingHandle(Status(StatusCode::kInternal, e.what()));
  }
}

// ---------------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------------

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch_with(
    ModelState& model, const ExecutionBackend& backend,
    const std::vector<std::vector<float>>& images, const RunOptions& options) {
  std::vector<ExecutionResult> results;
  results.reserve(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    try {
      auto result = backend.run(prepare_in(model, images[i]), options);
      if (!result.is_ok()) return image_failure(i, result.status());
      results.push_back(std::move(result).value());
    } catch (const StatusError& e) {
      return image_failure(i, e.status());
    } catch (const std::exception& e) {
      return image_failure(i, Status(StatusCode::kInvalidArgument, e.what()));
    }
  }
  return results;
}

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch(
    const std::string& backend,
    const std::vector<std::vector<float>>& images) {
  auto resolved = resolve(backend);
  if (!resolved.is_ok()) return resolved.status();
  {
    MutexLock lock(submit_mutex_);
    try_adopt_all_locked();
    note_use_locked(*resolved->state_, resolved->variant_);
  }
  return run_batch_with(*resolved->state_, *resolved->backend_, images,
                        run_options(*resolved->state_));
}

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch_parallel(
    const std::string& backend,
    const std::vector<std::vector<float>>& images,
    const BatchOptions& options) {
  auto resolved = resolve(backend);
  if (!resolved.is_ok()) return resolved.status();
  if (images.empty()) return std::vector<ExecutionResult>{};
  ModelState& model = *resolved->state_;

  RunOptions per_run = run_options(model);
  per_run.validate = options.validate;
  if (options.deadline_ms != 0) per_run.deadline_ms = options.deadline_ms;

  std::size_t workers = options.workers != 0
                            ? options.workers
                            : ThreadPool::recommended_workers(images.size());
  workers = std::min(workers, images.size());
  // One worker — or a session with the repack fast path disabled, whose
  // contract is a full VP replay per image — runs the sequential path with
  // the same per-run options.
  if (workers <= 1 || !repack_enabled()) {
    {
      MutexLock lock(submit_mutex_);
      try_adopt_all_locked();
      note_use_locked(model, resolved->variant_);
    }
    return run_batch_with(model, *resolved->backend_, images, per_run);
  }

  // Stage the shared artifacts once — as a blocking call, the batch API
  // keeps synchronous staging (and its clean image-0 error attribution);
  // the streaming submit() path is the asynchronous one.
  try {
    ensure_tail(model, images.front());
  } catch (const std::exception& e) {
    return image_failure(0, Status(StatusCode::kInvalidArgument, e.what()));
  }

  // Size (or re-cap) the session pool: the initial spawn uses the batch's
  // *clamped* worker count — a 2-image batch with workers=8 spawns 2
  // threads, not 8 — and elastic growth up to max_workers handles any
  // later pressure.
  try {
    MutexLock lock(submit_mutex_);
    pool_locked(workers).set_max_workers(options.max_workers);
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }

  std::vector<PendingResult> pending;
  pending.reserve(images.size());
  try {
    for (const auto& image : images) {
      pending.push_back(submit_with(model, resolved->variant_,
                                    *resolved->backend_, image, per_run,
                                    workers));
    }
  } catch (const std::exception& e) {
    // Pool construction failed mid-loop: results already queued are in
    // flight — drain them before surfacing the error, so no task outlives
    // the batch call or silently burns a worker.
    for (auto& handle : pending) (void)handle.get();
    return Status(StatusCode::kInternal, e.what());
  }

  // Collect every result before deciding the outcome: the contract is
  // all-or-nothing with the lowest failing index, not whichever task lost
  // the wall-clock race.
  std::vector<ExecutionResult> results;
  results.reserve(images.size());
  std::size_t error_index = images.size();  // lowest failing image
  Status error_status;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    auto result = pending[i].get();
    if (!result.is_ok()) {
      if (i < error_index) {
        error_index = i;
        error_status = result.status();
      }
      continue;
    }
    results.push_back(std::move(result).value());
  }
  if (error_index != images.size()) {
    return image_failure(error_index, error_status);
  }
  return results;
}

}  // namespace nvsoc::runtime
