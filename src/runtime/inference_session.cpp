#include "runtime/inference_session.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/strfmt.hpp"
#include "compiler/calibration.hpp"
#include "compiler/compile.hpp"
#include "runtime/thread_pool.hpp"
#include "toolflow/asm_emitter.hpp"
#include "toolflow/config_file.hpp"
#include "vp/virtual_platform.hpp"

namespace nvsoc::runtime {

namespace {

/// Batch failures carry which image sank the batch (the contract is
/// all-or-nothing, so the index is otherwise lost with the results).
Status image_failure(std::size_t index, const Status& status) {
  return Status(status.code(),
                strfmt("image {}: {}", index, status.message()));
}

}  // namespace

// ---------------------------------------------------------------------------
// PendingResult
// ---------------------------------------------------------------------------

PendingResult::PendingResult(Status status) {
  std::promise<StatusOr<ExecutionResult>> promise;
  future_ = promise.get_future();
  promise.set_value(StatusOr<ExecutionResult>(std::move(status)));
}

bool PendingResult::ready() const {
  return future_.valid() &&
         future_.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
}

StatusOr<ExecutionResult> PendingResult::get() {
  if (!future_.valid()) {
    return Status(StatusCode::kInvalidArgument,
                  "PendingResult::get() on an empty or already-consumed "
                  "handle (results are one-shot)");
  }
  return future_.get();
}

// ---------------------------------------------------------------------------
// InferenceSession
// ---------------------------------------------------------------------------

InferenceSession::InferenceSession(compiler::Network network,
                                   core::FlowConfig config,
                                   const BackendRegistry* registry)
    : network_(std::move(network)),
      config_(config),
      registry_(registry) {}

InferenceSession::~InferenceSession() = default;

const BackendRegistry& InferenceSession::registry() const {
  return registry_ != nullptr ? *registry_ : BackendRegistry::global();
}

RunOptions InferenceSession::run_options() const {
  RunOptions options;
  options.flow = config_;
  return options;
}

ThreadPool& InferenceSession::pool(std::size_t worker_hint) {
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(worker_hint);
  return *pool_;
}

const std::vector<float>& InferenceSession::default_input() {
  if (default_input_.empty()) {
    default_input_ =
        compiler::synthetic_input(network_.input_shape(), config_.input_seed);
  }
  return default_input_;
}

void InferenceSession::ensure_frontend() {
  if (prepared_.has_frontend()) return;

  auto frontend = std::make_shared<core::FrontendArtifacts>();
  frontend->model_name = network_.name();
  frontend->nvdla = config_.nvdla;
  frontend->weights =
      compiler::NetWeights::synthetic(network_, config_.weight_seed);
  ++counters_.weights;

  if (config_.precision == nvdla::Precision::kInt8) {
    // Calibrated on the default (synthetic) image, as the legacy flow did.
    frontend->calibration = compiler::calibrate(
        network_, frontend->weights,
        std::span<const float>(default_input()));
    ++counters_.calibration;
  }

  frontend->loadable = compiler::compile(
      network_, frontend->weights,
      config_.precision == nvdla::Precision::kInt8 ? &frontend->calibration
                                                   : nullptr,
      compiler::CompileOptions::for_config(config_.nvdla, config_.precision));
  ++counters_.loadable;

  prepared_.frontend = std::move(frontend);
  // The reference executor borrows the frozen weights; the frontend core is
  // built once per session, so the reference stays valid for its lifetime.
  reference_.emplace(network_, prepared_.frontend->weights);
}

void InferenceSession::repack_into(core::PreparedModel& prepared,
                                   std::span<const float> image) const {
  if (prepared.input.size() == image.size() &&
      std::equal(image.begin(), image.end(), prepared.input.begin())) {
    return;  // already packed for exactly this image
  }
  // Shape-check here (the reference executor used to do it implicitly):
  // repack only ever substitutes same-shape images, and the serving paths
  // must report a bad image before the backend chokes on packed garbage.
  if (image.size() != network_.input_shape().elements()) {
    throw std::runtime_error(
        strfmt("input image has {} elements; network '{}' expects {}",
               image.size(), network_.name(),
               network_.input_shape().elements()));
  }
  prepared.input.assign(image.begin(), image.end());
  // The FP32 golden output is a validation artifact, not an inference
  // dependency: the serving paths leave it empty and prepare()/prepared()
  // recompute it on demand (ensure_reference).
  prepared.reference_output.clear();
  // The shared trace core — weight-file preload image included — stays
  // untouched: the new image lives only on this per-input surface. The
  // execution paths write the packed input over the preloaded weight
  // surface themselves; preload_weight_file() materializes a patched copy
  // for data-product exports.
  prepared.vp_matches_input = false;
  // Any memoized functional result is stale now; a fresh compute-once memo
  // keeps concurrent consumers of the *new* surface single-computing.
  prepared.vp_refresh = std::make_shared<core::PreparedModel::VpRefreshMemo>();
}

void InferenceSession::set_replay_enabled(bool enabled) {
  if (enabled == replay_enabled_) return;
  replay_enabled_ = enabled;
  if (!enabled) {
    if (prepared_.replay != nullptr) {
      replay_base_ += prepared_.replay->replay_count();
      prepared_.replay.reset();
    }
    return;
  }
  // Re-enabling: the schedule is recorded by a full trace, so force one on
  // the next staging call (config file and program are reused when the CSB
  // stream matches, which it always does for a same-shape image).
  tail_done_ = false;
}

void InferenceSession::ensure_reference() {
  if (!prepared_.reference_output.empty()) return;
  prepared_.reference_output = reference_->run_to(prepared_.input);
}

void InferenceSession::ensure_tail(std::span<const float> image) {
  ensure_frontend();
  if (tail_done_ && prepared_.input.size() == image.size() &&
      std::equal(image.begin(), image.end(), prepared_.input.begin())) {
    return;
  }

  // Repack fast path: once one image has been traced, the CSB stream —
  // hence config file and program — is known to be input-independent, so a
  // same-shape image only needs its input-dependent surfaces refreshed.
  if (tail_done_ && repack_enabled_ &&
      prepared_.input.size() == image.size()) {
    tail_done_ = false;  // invalidate while mutating (repack can throw)
    repack_into(prepared_, image);
    ++counters_.repack;
    tail_done_ = true;
    return;
  }

  // Invalidate before mutating: if a stage below throws, the next call must
  // not memo-hit on artifacts that belong to a different image.
  const bool had_trace = prepared_.has_tail();
  tail_done_ = false;

  prepared_.input.assign(image.begin(), image.end());
  // The FP32 reference is lazy on this path too (see ensure_reference);
  // clear any previous image's tensor so a later prepare() recomputes it.
  prepared_.reference_output.clear();

  auto tail = std::make_shared<core::TraceArtifacts>();
  vp::VirtualPlatform platform(config_.nvdla);
  tail->vp = platform.run(prepared_.frontend->loadable, prepared_.input);
  ++counters_.trace;

  // The full run just recorded a fresh replay schedule; fold the outgoing
  // schedule's tally into the counters before replacing it. A
  // replay-disabled session stages no schedule at all, so its snapshots
  // re-simulate in full.
  if (prepared_.replay != nullptr) {
    replay_base_ += prepared_.replay->replay_count();
  }
  prepared_.replay =
      replay_enabled_ ? core::make_replay_schedule(tail->vp) : nullptr;

  // When the new trace programs the engine identically (it always does —
  // the register stream is input-independent), the configuration file and
  // program are reused from the previous shared core instead of
  // regenerated. The old core itself is immutable: snapshots handed to
  // in-flight tasks keep it alive and untouched.
  if (had_trace && prepared_.tail->vp.trace.csb == tail->vp.trace.csb) {
    tail->config_file = prepared_.tail->config_file;
    tail->program = prepared_.tail->program;
  } else {
    tail->config_file = toolflow::ConfigFile::from_trace(tail->vp.trace);
    ++counters_.config_file;
    toolflow::AsmOptions asm_options;
    asm_options.wait_mode = config_.wait_mode;
    tail->program = toolflow::generate_program(tail->config_file, asm_options);
    ++counters_.program;
  }

  prepared_.tail = std::move(tail);
  prepared_.vp_matches_input = true;
  prepared_.vp_refresh = std::make_shared<core::PreparedModel::VpRefreshMemo>();
  tail_done_ = true;
}

StageCounters InferenceSession::counters() const {
  StageCounters snapshot = counters_;
  snapshot.replay =
      replay_base_ +
      (prepared_.replay != nullptr ? prepared_.replay->replay_count() : 0);
  return snapshot;
}

const compiler::NetWeights& InferenceSession::weights() {
  ensure_frontend();
  return prepared_.frontend->weights;
}

const compiler::CalibrationTable& InferenceSession::calibration() {
  ensure_frontend();
  return prepared_.frontend->calibration;
}

const compiler::Loadable& InferenceSession::loadable() {
  ensure_frontend();
  return prepared_.frontend->loadable;
}

const core::PreparedModel& InferenceSession::prepared() {
  ensure_tail(default_input());
  ensure_reference();
  return prepared_;
}

const core::PreparedModel& InferenceSession::prepare(
    std::span<const float> image) {
  ensure_tail(image);
  ensure_reference();
  return prepared_;
}

StatusOr<ExecutionResult> InferenceSession::run(const std::string& backend) {
  return run(backend, default_input());
}

StatusOr<ExecutionResult> InferenceSession::run(const std::string& backend,
                                                std::span<const float> image) {
  const auto found = registry().find(backend);
  if (!found.is_ok()) return found.status();
  try {
    return (*found)->run(prepare(image), run_options());
  } catch (const std::exception& e) {
    // Stage failures (bad image shape, compile errors) keep the StatusOr
    // contract of the run() boundary.
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

PendingResult InferenceSession::submit(const std::string& backend) {
  return submit(backend, default_input());
}

PendingResult InferenceSession::submit(const std::string& backend,
                                       std::span<const float> image) {
  const auto found = registry().find(backend);
  if (!found.is_ok()) return PendingResult(found.status());
  try {
    return submit_to(**found, image, run_options(), 0);
  } catch (const std::exception& e) {
    // Pool construction (std::thread can throw std::system_error under
    // thread exhaustion) stays behind the StatusOr boundary too.
    return PendingResult(Status(StatusCode::kInternal, e.what()));
  }
}

PendingResult InferenceSession::submit_to(const ExecutionBackend& backend,
                                          std::span<const float> image,
                                          const RunOptions& options,
                                          std::size_t worker_hint) {
  try {
    // First arrival stages the shared cores (frontend + one VP trace) on
    // the calling thread; every later same-shape arrival skips straight to
    // the pool and repacks there. A repack-disabled session keeps its
    // full-replay-per-image contract by re-tracing here instead.
    if (!tail_done_ || !repack_enabled_) ensure_tail(image);
  } catch (const std::exception& e) {
    return PendingResult(Status(StatusCode::kInvalidArgument, e.what()));
  }

  // The task owns everything it touches: a surface snapshot sharing the
  // immutable cores (frontend, trace, replay schedule), its own copy of
  // the image, and per-run options. Repacking in the task skips the FP32
  // reference — pooled serving replays cheap functional ops only. The
  // backend is registry-owned and outlives the drain (the pool is the
  // first session member to be destroyed).
  core::PreparedModel snapshot = prepared_;
  auto future = pool(worker_hint).submit(
      [this, &backend, options, snapshot = std::move(snapshot),
       image = std::vector<float>(image.begin(), image.end())]() mutable
          -> StatusOr<ExecutionResult> {
        try {
          repack_into(snapshot, image);
          return backend.run(snapshot, options);
        } catch (const std::exception& e) {
          return Status(StatusCode::kInvalidArgument, e.what());
        }
      });
  return PendingResult(std::move(future));
}

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch_with(
    const ExecutionBackend& backend,
    const std::vector<std::vector<float>>& images, const RunOptions& options) {
  std::vector<ExecutionResult> results;
  results.reserve(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    try {
      auto result = backend.run(prepare(images[i]), options);
      if (!result.is_ok()) return image_failure(i, result.status());
      results.push_back(std::move(result).value());
    } catch (const std::exception& e) {
      return image_failure(i, Status(StatusCode::kInvalidArgument, e.what()));
    }
  }
  return results;
}

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch(
    const std::string& backend,
    const std::vector<std::vector<float>>& images) {
  const auto found = registry().find(backend);
  if (!found.is_ok()) return found.status();
  return run_batch_with(**found, images, run_options());
}

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch_parallel(
    const std::string& backend,
    const std::vector<std::vector<float>>& images,
    const BatchOptions& options) {
  const auto found = registry().find(backend);
  if (!found.is_ok()) return found.status();
  if (images.empty()) return std::vector<ExecutionResult>{};

  RunOptions per_run = run_options();
  per_run.validate = options.validate;

  std::size_t workers = options.workers != 0
                            ? options.workers
                            : ThreadPool::recommended_workers(images.size());
  workers = std::min(workers, images.size());
  // One worker — or a session with the repack fast path disabled, whose
  // contract is a full VP replay per image — runs the sequential path with
  // the same per-run options.
  if (workers <= 1 || !repack_enabled_) {
    return run_batch_with(**found, images, per_run);
  }

  // Stage the shared artifacts once, on the calling thread: the frontend
  // plus one full trace (the input-independent tail). Pooled tasks only
  // repack their snapshots.
  try {
    ensure_tail(images.front());
  } catch (const std::exception& e) {
    return image_failure(0, Status(StatusCode::kInvalidArgument, e.what()));
  }

  std::vector<PendingResult> pending;
  pending.reserve(images.size());
  try {
    for (const auto& image : images) {
      pending.push_back(submit_to(**found, image, per_run, options.workers));
    }
  } catch (const std::exception& e) {
    // Pool construction failed on the first submit_to, before anything was
    // queued — nothing is in flight.
    return Status(StatusCode::kInternal, e.what());
  }

  // Collect every result before deciding the outcome: the contract is
  // all-or-nothing with the lowest failing index, not whichever task lost
  // the wall-clock race.
  std::vector<ExecutionResult> results;
  results.reserve(images.size());
  std::size_t error_index = images.size();  // lowest failing image
  Status error_status;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    auto result = pending[i].get();
    if (!result.is_ok()) {
      if (i < error_index) {
        error_index = i;
        error_status = result.status();
      }
      continue;
    }
    results.push_back(std::move(result).value());
  }
  if (error_index != images.size()) {
    return image_failure(error_index, error_status);
  }
  return results;
}

}  // namespace nvsoc::runtime
