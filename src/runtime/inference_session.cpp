#include "runtime/inference_session.hpp"

#include <algorithm>
#include <utility>

#include "compiler/calibration.hpp"
#include "compiler/compile.hpp"
#include "toolflow/asm_emitter.hpp"
#include "toolflow/config_file.hpp"
#include "vp/virtual_platform.hpp"

namespace nvsoc::runtime {

InferenceSession::InferenceSession(compiler::Network network,
                                   core::FlowConfig config,
                                   const BackendRegistry* registry)
    : network_(std::move(network)),
      config_(config),
      registry_(registry) {}

const BackendRegistry& InferenceSession::registry() const {
  return registry_ != nullptr ? *registry_ : BackendRegistry::global();
}

RunOptions InferenceSession::run_options() const {
  RunOptions options;
  options.flow = config_;
  return options;
}

const std::vector<float>& InferenceSession::default_input() {
  if (default_input_.empty()) {
    default_input_ =
        compiler::synthetic_input(network_.input_shape(), config_.input_seed);
  }
  return default_input_;
}

void InferenceSession::ensure_frontend() {
  if (frontend_done_) return;

  prepared_.model_name = network_.name();
  prepared_.nvdla = config_.nvdla;
  prepared_.weights =
      compiler::NetWeights::synthetic(network_, config_.weight_seed);
  ++counters_.weights;
  reference_.emplace(network_, prepared_.weights);

  if (config_.precision == nvdla::Precision::kInt8) {
    // Calibrated on the default (synthetic) image, as the legacy flow did.
    prepared_.calibration = compiler::calibrate(
        network_, prepared_.weights,
        std::span<const float>(default_input()));
    ++counters_.calibration;
  }

  prepared_.loadable = compiler::compile(
      network_, prepared_.weights,
      config_.precision == nvdla::Precision::kInt8 ? &prepared_.calibration
                                                   : nullptr,
      compiler::CompileOptions::for_config(config_.nvdla, config_.precision));
  ++counters_.loadable;

  frontend_done_ = true;
}

void InferenceSession::ensure_tail(std::span<const float> image) {
  ensure_frontend();
  if (tail_done_ && prepared_.input.size() == image.size() &&
      std::equal(image.begin(), image.end(), prepared_.input.begin())) {
    return;
  }

  // Invalidate before mutating: if a stage below throws, the next call must
  // not memo-hit on artifacts that belong to a different image.
  const bool had_trace = tail_done_;
  tail_done_ = false;

  prepared_.input.assign(image.begin(), image.end());
  prepared_.reference_output = reference_->run_to(prepared_.input);

  // Keep the previous CSB stream: when the new trace programs the engine
  // identically (it always does — the register stream is input-independent),
  // the configuration file and program are reused instead of regenerated.
  std::vector<vp::CsbRecord> previous_csb;
  if (had_trace) previous_csb = std::move(prepared_.vp.trace.csb);

  vp::VirtualPlatform platform(config_.nvdla);
  prepared_.vp = platform.run(prepared_.loadable, prepared_.input);
  ++counters_.trace;

  if (!had_trace || previous_csb != prepared_.vp.trace.csb) {
    prepared_.config_file =
        toolflow::ConfigFile::from_trace(prepared_.vp.trace);
    ++counters_.config_file;
    toolflow::AsmOptions asm_options;
    asm_options.wait_mode = config_.wait_mode;
    prepared_.program =
        toolflow::generate_program(prepared_.config_file, asm_options);
    ++counters_.program;
  }

  tail_done_ = true;
}

const compiler::NetWeights& InferenceSession::weights() {
  ensure_frontend();
  return prepared_.weights;
}

const compiler::CalibrationTable& InferenceSession::calibration() {
  ensure_frontend();
  return prepared_.calibration;
}

const compiler::Loadable& InferenceSession::loadable() {
  ensure_frontend();
  return prepared_.loadable;
}

const core::PreparedModel& InferenceSession::prepared() {
  ensure_tail(default_input());
  return prepared_;
}

const core::PreparedModel& InferenceSession::prepare(
    std::span<const float> image) {
  ensure_tail(image);
  return prepared_;
}

StatusOr<ExecutionResult> InferenceSession::run(const std::string& backend) {
  return run(backend, default_input());
}

StatusOr<ExecutionResult> InferenceSession::run(const std::string& backend,
                                                std::span<const float> image) {
  const auto found = registry().find(backend);
  if (!found.ok()) return found.status();
  try {
    return (*found)->run(prepare(image), run_options());
  } catch (const std::exception& e) {
    // Stage failures (bad image shape, compile errors) keep the StatusOr
    // contract of the run() boundary.
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch(
    const std::string& backend,
    const std::vector<std::vector<float>>& images) {
  const auto found = registry().find(backend);
  if (!found.ok()) return found.status();
  std::vector<ExecutionResult> results;
  results.reserve(images.size());
  for (const auto& image : images) {
    try {
      auto result = (*found)->run(prepare(image), run_options());
      if (!result.ok()) return result.status();
      results.push_back(std::move(result).value());
    } catch (const std::exception& e) {
      return Status(StatusCode::kInvalidArgument, e.what());
    }
  }
  return results;
}

}  // namespace nvsoc::runtime
