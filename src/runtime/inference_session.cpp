#include "runtime/inference_session.hpp"

#include <algorithm>
#include <mutex>
#include <optional>
#include <utility>

#include "common/strfmt.hpp"
#include "compiler/calibration.hpp"
#include "compiler/compile.hpp"
#include "runtime/thread_pool.hpp"
#include "toolflow/asm_emitter.hpp"
#include "toolflow/config_file.hpp"
#include "vp/virtual_platform.hpp"

namespace nvsoc::runtime {

namespace {

/// Batch failures carry which image sank the batch (the contract is
/// all-or-nothing, so the index is otherwise lost with the results).
Status image_failure(std::size_t index, const Status& status) {
  return Status(status.code(),
                strfmt("image {}: {}", index, status.message()));
}

}  // namespace

InferenceSession::InferenceSession(compiler::Network network,
                                   core::FlowConfig config,
                                   const BackendRegistry* registry)
    : network_(std::move(network)),
      config_(config),
      registry_(registry) {}

const BackendRegistry& InferenceSession::registry() const {
  return registry_ != nullptr ? *registry_ : BackendRegistry::global();
}

RunOptions InferenceSession::run_options() const {
  RunOptions options;
  options.flow = config_;
  return options;
}

const std::vector<float>& InferenceSession::default_input() {
  if (default_input_.empty()) {
    default_input_ =
        compiler::synthetic_input(network_.input_shape(), config_.input_seed);
  }
  return default_input_;
}

void InferenceSession::ensure_frontend() {
  if (frontend_done_) return;

  prepared_.model_name = network_.name();
  prepared_.nvdla = config_.nvdla;
  prepared_.weights =
      compiler::NetWeights::synthetic(network_, config_.weight_seed);
  ++counters_.weights;
  reference_.emplace(network_, prepared_.weights);

  if (config_.precision == nvdla::Precision::kInt8) {
    // Calibrated on the default (synthetic) image, as the legacy flow did.
    prepared_.calibration = compiler::calibrate(
        network_, prepared_.weights,
        std::span<const float>(default_input()));
    ++counters_.calibration;
  }

  prepared_.loadable = compiler::compile(
      network_, prepared_.weights,
      config_.precision == nvdla::Precision::kInt8 ? &prepared_.calibration
                                                   : nullptr,
      compiler::CompileOptions::for_config(config_.nvdla, config_.precision));
  ++counters_.loadable;

  frontend_done_ = true;
}

void InferenceSession::repack_into(core::PreparedModel& prepared,
                                   std::span<const float> image) const {
  if (prepared.input.size() == image.size() &&
      std::equal(image.begin(), image.end(), prepared.input.begin())) {
    return;  // already packed for exactly this image
  }
  prepared.input.assign(image.begin(), image.end());
  prepared.reference_output = reference_->run_to(prepared.input);
  // The weight file is the DRAM preload image; its only input-dependent
  // bytes are the input surface. Everything else (trace, config file,
  // program, weights) is untouched — the VP is not re-executed.
  const auto packed = prepared.loadable.pack_input(prepared.input);
  prepared.vp.weights.overwrite(prepared.loadable.input_surface.base, packed);
  prepared.vp_matches_input = false;
  prepared.vp_refresh.reset();  // any memoized re-simulation is stale now
}

void InferenceSession::ensure_tail(std::span<const float> image) {
  ensure_frontend();
  if (tail_done_ && prepared_.input.size() == image.size() &&
      std::equal(image.begin(), image.end(), prepared_.input.begin())) {
    return;
  }

  // Repack fast path: once one image has been traced, the CSB stream —
  // hence config file and program — is known to be input-independent, so a
  // same-shape image only needs its input-dependent surfaces refreshed.
  if (tail_done_ && repack_enabled_ &&
      prepared_.input.size() == image.size()) {
    tail_done_ = false;  // invalidate while mutating (repack can throw)
    repack_into(prepared_, image);
    ++counters_.repack;
    tail_done_ = true;
    return;
  }

  // Invalidate before mutating: if a stage below throws, the next call must
  // not memo-hit on artifacts that belong to a different image.
  const bool had_trace = tail_done_;
  tail_done_ = false;

  prepared_.input.assign(image.begin(), image.end());
  prepared_.reference_output = reference_->run_to(prepared_.input);

  // Keep the previous CSB stream: when the new trace programs the engine
  // identically (it always does — the register stream is input-independent),
  // the configuration file and program are reused instead of regenerated.
  std::vector<vp::CsbRecord> previous_csb;
  if (had_trace) previous_csb = std::move(prepared_.vp.trace.csb);

  vp::VirtualPlatform platform(config_.nvdla);
  prepared_.vp = platform.run(prepared_.loadable, prepared_.input);
  prepared_.vp_matches_input = true;
  prepared_.vp_refresh.reset();
  ++counters_.trace;

  if (!had_trace || previous_csb != prepared_.vp.trace.csb) {
    prepared_.config_file =
        toolflow::ConfigFile::from_trace(prepared_.vp.trace);
    ++counters_.config_file;
    toolflow::AsmOptions asm_options;
    asm_options.wait_mode = config_.wait_mode;
    prepared_.program =
        toolflow::generate_program(prepared_.config_file, asm_options);
    ++counters_.program;
  }

  tail_done_ = true;
}

const compiler::NetWeights& InferenceSession::weights() {
  ensure_frontend();
  return prepared_.weights;
}

const compiler::CalibrationTable& InferenceSession::calibration() {
  ensure_frontend();
  return prepared_.calibration;
}

const compiler::Loadable& InferenceSession::loadable() {
  ensure_frontend();
  return prepared_.loadable;
}

const core::PreparedModel& InferenceSession::prepared() {
  ensure_tail(default_input());
  return prepared_;
}

const core::PreparedModel& InferenceSession::prepare(
    std::span<const float> image) {
  ensure_tail(image);
  return prepared_;
}

StatusOr<ExecutionResult> InferenceSession::run(const std::string& backend) {
  return run(backend, default_input());
}

StatusOr<ExecutionResult> InferenceSession::run(const std::string& backend,
                                                std::span<const float> image) {
  const auto found = registry().find(backend);
  if (!found.is_ok()) return found.status();
  try {
    return (*found)->run(prepare(image), run_options());
  } catch (const std::exception& e) {
    // Stage failures (bad image shape, compile errors) keep the StatusOr
    // contract of the run() boundary.
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch_with(
    const ExecutionBackend& backend,
    const std::vector<std::vector<float>>& images, const RunOptions& options) {
  std::vector<ExecutionResult> results;
  results.reserve(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    try {
      auto result = backend.run(prepare(images[i]), options);
      if (!result.is_ok()) return image_failure(i, result.status());
      results.push_back(std::move(result).value());
    } catch (const std::exception& e) {
      return image_failure(i, Status(StatusCode::kInvalidArgument, e.what()));
    }
  }
  return results;
}

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch(
    const std::string& backend,
    const std::vector<std::vector<float>>& images) {
  const auto found = registry().find(backend);
  if (!found.is_ok()) return found.status();
  return run_batch_with(**found, images, run_options());
}

StatusOr<std::vector<ExecutionResult>> InferenceSession::run_batch_parallel(
    const std::string& backend,
    const std::vector<std::vector<float>>& images,
    const BatchOptions& options) {
  const auto found = registry().find(backend);
  if (!found.is_ok()) return found.status();
  if (images.empty()) return std::vector<ExecutionResult>{};

  RunOptions per_run = run_options();
  per_run.validate = options.validate;

  std::size_t workers = options.workers != 0
                            ? options.workers
                            : ThreadPool::recommended_workers(images.size());
  workers = std::min(workers, images.size());
  // One worker — or a session with the repack fast path disabled, whose
  // contract is a full VP replay per image — runs the sequential path with
  // the same per-run options.
  if (workers <= 1 || !repack_enabled_) {
    return run_batch_with(**found, images, per_run);
  }

  // Stage the shared artifacts once, on the calling thread: the frontend
  // plus one full trace (the input-independent tail). Workers only repack.
  try {
    ensure_tail(images.front());
  } catch (const std::exception& e) {
    return image_failure(0, Status(StatusCode::kInvalidArgument, e.what()));
  }

  std::vector<std::optional<ExecutionResult>> slots(images.size());
  std::mutex error_mutex;
  std::size_t error_index = images.size();  // lowest failing image
  Status error_status;
  const auto record_failure = [&](std::size_t index, const Status& status) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (index < error_index) {
      error_index = index;
      error_status = status;
    }
  };

  // Pool construction (std::thread can throw std::system_error under
  // thread exhaustion) and the pool's lowest-index rethrow of non-Status
  // task failures stay behind the StatusOr boundary too.
  try {
    ThreadPool pool(workers);
    // Each worker owns one PreparedModel copy (its tail state), repacked
    // per image; the session's prepared_ is never touched while workers
    // run.
    std::vector<std::optional<core::PreparedModel>> tails(pool.worker_count());
    pool.parallel_for(
        images.size(), [&](std::size_t worker, std::size_t index) {
          try {
            auto& tail = tails[worker];
            if (!tail.has_value()) tail = prepared_;  // copy may throw (OOM)
            repack_into(*tail, images[index]);
            auto result = (*found)->run(*tail, per_run);
            if (!result.is_ok()) {
              record_failure(index, result.status());
              return;
            }
            slots[index] = std::move(result).value();
          } catch (const std::exception& e) {
            record_failure(index,
                           Status(StatusCode::kInvalidArgument, e.what()));
          }
        });
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }

  if (error_index != images.size()) {
    return image_failure(error_index, error_status);
  }
  std::vector<ExecutionResult> results;
  results.reserve(images.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace nvsoc::runtime
