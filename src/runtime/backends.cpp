#include "runtime/backends.hpp"

#include <utility>

#include "common/strfmt.hpp"
#include "compiler/reference.hpp"
#include "vp/virtual_platform.hpp"

namespace nvsoc::runtime {

Status validate_prepared(const core::PreparedModel& prepared,
                         const RunOptions& options, bool requires_program) {
  if (prepared.loadable.ops.empty()) {
    return {StatusCode::kInvalidArgument,
            "prepared model has no compiled loadable (run the compile stage "
            "first)"};
  }
  if (prepared.loadable.output_surface.span_bytes() == 0) {
    return {StatusCode::kInvalidArgument,
            "loadable declares an empty output surface"};
  }
  if (!requires_program) return Status::ok();

  if (!(prepared.nvdla == options.flow.nvdla)) {
    return {StatusCode::kInvalidArgument,
            strfmt("hardware configuration mismatch: the prepared model's "
                   "trace was captured on '{}' but the run requests '{}' — "
                   "re-prepare for the requested NVDLA tree",
                   prepared.nvdla.name, options.flow.nvdla.name)};
  }
  if (prepared.config_file.commands.size() != prepared.vp.trace.csb.size()) {
    return {StatusCode::kInvalidArgument,
            strfmt("loadable/trace mismatch: configuration file has {} "
                   "commands but the VP trace has {} CSB records — the "
                   "config file was not generated from this trace",
                   prepared.config_file.commands.size(),
                   prepared.vp.trace.csb.size())};
  }
  if (prepared.program.image.bytes.empty()) {
    return {StatusCode::kInvalidArgument,
            "prepared model has no bare-metal program (machine code image "
            "is empty)"};
  }
  if (prepared.program.image.bytes.size() > options.flow.program_memory_bytes) {
    return {StatusCode::kOutOfRange,
            strfmt("program-memory overflow: machine code is {} bytes but "
                   "the SoC's program memory holds {} bytes",
                   prepared.program.image.bytes.size(),
                   options.flow.program_memory_bytes)};
  }
  return Status::ok();
}

namespace {

ExecutionResult from_soc_execution(const ExecutionBackend& backend,
                                   const core::PreparedModel& prepared,
                                   const RunOptions& options,
                                   core::SocExecution exec) {
  ExecutionResult result;
  result.backend = backend.name();
  result.model = prepared.model_name;
  result.cycles = exec.cycles;
  result.clock = options.flow.soc_clock;
  result.ms = exec.ms;
  result.output = exec.output;
  result.predicted_class = exec.predicted_class;
  result.soc = std::move(exec);
  return result;
}

}  // namespace

StatusOr<ExecutionResult> SocBackend::run(const core::PreparedModel& prepared,
                                          const RunOptions& options) const {
  if (options.validate) {
    if (Status s = validate_prepared(prepared, options, true); !s.is_ok())
      return s;
  }
  try {
    return from_soc_execution(*this, prepared, options,
                              core::execute_on_soc(prepared, options.flow));
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }
}

StatusOr<ExecutionResult> SystemTopBackend::run(
    const core::PreparedModel& prepared, const RunOptions& options) const {
  if (options.validate) {
    if (Status s = validate_prepared(prepared, options, true); !s.is_ok())
      return s;
  }
  try {
    return from_soc_execution(
        *this, prepared, options,
        core::execute_on_system_top(prepared, options.flow));
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }
}

StatusOr<ExecutionResult> VpBackend::run(const core::PreparedModel& prepared,
                                         const RunOptions& options) const {
  if (options.validate) {
    if (Status s = validate_prepared(prepared, options, false); !s.is_ok())
      return s;
  }
  try {
    ExecutionResult result;
    result.backend = name();
    result.model = prepared.model_name;
    result.clock = options.flow.soc_clock;
    if (prepared.vp.total_cycles != 0 &&
        prepared.nvdla == options.flow.nvdla) {
      // The prepared model's trace stage is exactly this platform's run for
      // this input and hardware tree (the VP is deterministic); reuse it
      // instead of re-simulating.
      result.cycles = prepared.vp.total_cycles;
      result.output = prepared.vp.output;
    } else {
      vp::VirtualPlatform platform(options.flow.nvdla);
      const vp::VpRunResult vp_result =
          platform.run(prepared.loadable, prepared.input);
      result.cycles = vp_result.total_cycles;
      result.output = vp_result.output;
    }
    result.ms = cycles_to_ms(result.cycles, options.flow.soc_clock);
    result.predicted_class = compiler::argmax(result.output);
    return result;
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }
}

StatusOr<ExecutionResult> LinuxBaselineBackend::run(
    const core::PreparedModel& prepared, const RunOptions& options) const {
  if (options.validate) {
    if (Status s = validate_prepared(prepared, options, false); !s.is_ok())
      return s;
  }
  if (prepared.vp.total_cycles == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "linux_baseline needs the VP trace stage (accelerator "
                  "cycle count) of the prepared model");
  }
  try {
    const baseline::LinuxRunEstimate estimate =
        platform_.estimate(prepared.loadable, prepared.vp.total_cycles);
    ExecutionResult result;
    result.backend = name();
    result.model = prepared.model_name;
    result.cycles = estimate.total_cycles;
    result.clock = platform_.config().clock;
    result.ms = estimate.ms;
    // Same NVDLA, same loadable: the accelerator result is functionally
    // identical to the VP run; only the software envelope differs.
    result.output = prepared.vp.output;
    result.predicted_class = compiler::argmax(result.output);
    result.linux_estimate = estimate;
    return result;
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }
}

}  // namespace nvsoc::runtime
