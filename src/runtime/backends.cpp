#include "runtime/backends.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/strfmt.hpp"
#include "compiler/reference.hpp"
#include "vp/virtual_platform.hpp"

namespace nvsoc::runtime {

Status validate_prepared(const core::PreparedModel& prepared,
                         const RunOptions& options, bool requires_program) {
  if (!prepared.has_frontend() || prepared.loadable().ops.empty()) {
    return {StatusCode::kInvalidArgument,
            "prepared model has no compiled loadable (run the compile stage "
            "first)"};
  }
  if (prepared.loadable().output_surface.span_bytes() == 0) {
    return {StatusCode::kInvalidArgument,
            "loadable declares an empty output surface"};
  }
  if (!requires_program) return Status::ok();

  if (!prepared.has_tail()) {
    return {StatusCode::kInvalidArgument,
            "prepared model has no trace stage (virtual-platform trace, "
            "configuration file and program are missing)"};
  }

  if (!(prepared.nvdla() == options.flow.nvdla)) {
    return {StatusCode::kInvalidArgument,
            strfmt("hardware configuration mismatch: the prepared model's "
                   "trace was captured on '{}' but the run requests '{}' — "
                   "re-prepare for the requested NVDLA tree",
                   prepared.nvdla().name, options.flow.nvdla.name)};
  }
  if (prepared.config_file().commands.size() !=
      prepared.vp().trace.csb.size()) {
    return {StatusCode::kInvalidArgument,
            strfmt("loadable/trace mismatch: configuration file has {} "
                   "commands but the VP trace has {} CSB records — the "
                   "config file was not generated from this trace",
                   prepared.config_file().commands.size(),
                   prepared.vp().trace.csb.size())};
  }
  if (prepared.program().image.bytes.empty()) {
    return {StatusCode::kInvalidArgument,
            "prepared model has no bare-metal program (machine code image "
            "is empty)"};
  }
  if (prepared.program().wait_mode != options.flow.wait_mode) {
    return {StatusCode::kInvalidArgument,
            strfmt("wait-mode mismatch: the bare-metal program was "
                   "generated for '{}' but the run requests '{}' — "
                   "re-prepare with the requested wait mode",
                   prepared.program().wait_mode == toolflow::WaitMode::kPoll
                       ? "polling"
                       : "wfi",
                   options.flow.wait_mode == toolflow::WaitMode::kPoll
                       ? "polling"
                       : "wfi")};
  }
  if (prepared.program().image.bytes.size() >
      options.flow.program_memory_bytes) {
    return {StatusCode::kOutOfRange,
            strfmt("program-memory overflow: machine code is {} bytes but "
                   "the SoC's program memory holds {} bytes",
                   prepared.program().image.bytes.size(),
                   options.flow.program_memory_bytes)};
  }
  return Status::ok();
}

namespace {

/// Functional VP result for a repacked input, memoized per input surface
/// (compute-once, thread-safe: concurrent pooled tasks sharing a surface
/// block on the first computation instead of double-simulating). With a
/// recorded schedule this is a functional replay — no KMD, no trace
/// capture — reporting the schedule's input-independent cycle count;
/// without one it falls back to a full VP re-run. Both are deterministic,
/// so the result is bit-exact with what a full per-image re-simulation
/// would have produced.
const core::PreparedModel::VpRefresh& refreshed_vp(
    const core::PreparedModel& prepared, const RunOptions& options) {
  return prepared.vp_refresh->get_or_compute(
      [&]() -> core::PreparedModel::VpRefresh {
        if (prepared.has_replay()) {
          return {prepared.replay_schedule().vp_total_cycles,
                  core::replay_output(prepared, options.flow.fault.get())};
        }
        vp::VirtualPlatform platform(prepared.nvdla());
        platform.set_fault_injector(options.flow.fault);
        vp::VpRunResult fresh =
            platform.run(prepared.loadable(), prepared.input);
        return {fresh.total_cycles, std::move(fresh.output)};
      });
}

ExecutionResult from_soc_execution(const ExecutionBackend& backend,
                                   const core::PreparedModel& prepared,
                                   const RunOptions& options,
                                   core::SocExecution exec) {
  ExecutionResult result;
  result.backend = backend.name();
  result.model = prepared.model_name();
  result.cycles = exec.cycles;
  result.clock = options.flow.soc_clock;
  result.ms = exec.ms;
  result.output = exec.output;
  result.predicted_class = exec.predicted_class;
  result.soc = std::move(exec);
  return result;
}

/// Extract `?mode=` from a spec, leaving the generic keys for the shared
/// configure machinery. Returns the replay flag (defaulted to `current`
/// when the key is absent).
StatusOr<bool> take_mode(BackendSpec& spec, bool current) {
  bool replay = current;
  std::vector<std::pair<std::string, std::string>> rest;
  for (const auto& [key, value] : spec.params) {
    if (key != "mode") {
      rest.emplace_back(key, value);
      continue;
    }
    std::string v = value;
    std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    if (v == "replay") {
      replay = true;
    } else if (v == "cycle_accurate") {
      replay = false;
    } else {
      return Status(StatusCode::kInvalidArgument,
                    strfmt("backend spec '{}': mode must be 'replay' or "
                           "'cycle_accurate', got '{}'",
                           spec.full, value));
    }
  }
  spec.params = std::move(rest);
  return replay;
}

/// Shared configure() body of the two SoC-platform backends: strip
/// `?mode=`, rebuild the backend when the mode flips, and hand the
/// remaining generic keys to the common wrapper. (The base
/// ExecutionBackend::configure is exactly the `owned == nullptr` case.)
template <typename BackendT>
StatusOr<std::unique_ptr<ExecutionBackend>> configure_soc_style(
    const ExecutionBackend& base, bool current_replay,
    const BackendSpec& spec) {
  BackendSpec stripped = spec;
  const auto replay = take_mode(stripped, current_replay);
  if (!replay.is_ok()) return replay.status();
  if (*replay == current_replay) {
    return make_configured_backend(&base, nullptr, stripped,
                                   /*apply_clock=*/true);
  }
  return make_configured_backend(nullptr, std::make_unique<BackendT>(*replay),
                                 stripped, /*apply_clock=*/true);
}

}  // namespace

StatusOr<ExecutionResult> SocBackend::run(const core::PreparedModel& prepared,
                                          const RunOptions& options) const {
  if (!prepared.has_frontend() || !prepared.has_tail()) {
    return Status(StatusCode::kInvalidArgument,
                  "prepared model is missing its staged artifact cores");
  }
  if (options.validate) {
    if (Status s = validate_prepared(prepared, options, true); !s.is_ok())
      return s;
  }
  try {
    // Replay mode needs the recorded schedule; a prepared model without
    // one (hand-built artifacts) still executes in full.
    core::SocExecution exec = replay_mode_ && prepared.has_replay()
                                  ? core::replay_on_soc(prepared, options.flow)
                                  : core::execute_on_soc(prepared,
                                                         options.flow);
    return from_soc_execution(*this, prepared, options, std::move(exec));
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }
}

void SocBackend::stage(const core::PreparedModel& prepared,
                       const RunOptions& options) const {
  if (!replay_mode_ || !prepared.has_replay() || !prepared.has_tail()) return;
  core::record_replay_envelope_on_soc(prepared, options.flow);
}

StatusOr<std::unique_ptr<ExecutionBackend>> SocBackend::configure(
    const BackendSpec& spec) const {
  return configure_soc_style<SocBackend>(*this, replay_mode_, spec);
}

StatusOr<ExecutionResult> SystemTopBackend::run(
    const core::PreparedModel& prepared, const RunOptions& options) const {
  if (!prepared.has_frontend() || !prepared.has_tail()) {
    return Status(StatusCode::kInvalidArgument,
                  "prepared model is missing its staged artifact cores");
  }
  if (options.validate) {
    if (Status s = validate_prepared(prepared, options, true); !s.is_ok())
      return s;
  }
  try {
    core::SocExecution exec =
        replay_mode_ && prepared.has_replay()
            ? core::replay_on_system_top(prepared, options.flow)
            : core::execute_on_system_top(prepared, options.flow);
    return from_soc_execution(*this, prepared, options, std::move(exec));
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }
}

void SystemTopBackend::stage(const core::PreparedModel& prepared,
                             const RunOptions& options) const {
  if (!replay_mode_ || !prepared.has_replay() || !prepared.has_tail()) return;
  core::record_replay_envelope_on_system_top(prepared, options.flow);
}

StatusOr<std::unique_ptr<ExecutionBackend>> SystemTopBackend::configure(
    const BackendSpec& spec) const {
  return configure_soc_style<SystemTopBackend>(*this, replay_mode_, spec);
}

StatusOr<ExecutionResult> VpBackend::run(const core::PreparedModel& prepared,
                                         const RunOptions& options) const {
  if (!prepared.has_frontend()) {
    return Status(StatusCode::kInvalidArgument,
                  "prepared model is missing its staged artifact cores");
  }
  if (options.validate) {
    if (Status s = validate_prepared(prepared, options, false); !s.is_ok())
      return s;
  }
  try {
    ExecutionResult result;
    result.backend = name();
    result.model = prepared.model_name();
    result.clock = options.flow.soc_clock;
    if (prepared.has_tail() && prepared.vp().total_cycles != 0 &&
        prepared.nvdla() == options.flow.nvdla) {
      if (prepared.vp_matches_input) {
        // The prepared model's trace stage is exactly this platform's run
        // for this input and hardware tree (the VP is deterministic);
        // reuse it instead of re-simulating.
        result.cycles = prepared.vp().total_cycles;
        result.output = prepared.vp().output;
      } else {
        // Repacked input: for this backend the simulation IS the
        // execution, so one re-run is the cost of the inference — and it
        // is memoized on the model so repeats stay free.
        const auto& fresh = refreshed_vp(prepared, options);
        result.cycles = fresh.total_cycles;
        result.output = fresh.output;
      }
    } else {
      vp::VirtualPlatform platform(options.flow.nvdla);
      platform.set_fault_injector(options.flow.fault);
      const vp::VpRunResult vp_result =
          platform.run(prepared.loadable(), prepared.input);
      result.cycles = vp_result.total_cycles;
      result.output = vp_result.output;
    }
    result.ms = cycles_to_ms(result.cycles, options.flow.soc_clock);
    result.predicted_class = compiler::argmax(result.output);
    return result;
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }
}

StatusOr<ExecutionResult> LinuxBaselineBackend::run(
    const core::PreparedModel& prepared, const RunOptions& options) const {
  if (!prepared.has_frontend()) {
    return Status(StatusCode::kInvalidArgument,
                  "prepared model is missing its staged artifact cores");
  }
  if (options.validate) {
    if (Status s = validate_prepared(prepared, options, false); !s.is_ok())
      return s;
  }
  if (!prepared.has_tail() || prepared.vp().total_cycles == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "linux_baseline needs the VP trace stage (accelerator "
                  "cycle count) of the prepared model");
  }
  try {
    Cycle accelerator_cycles = prepared.vp().total_cycles;
    std::vector<float> output = prepared.vp().output;
    if (!prepared.vp_matches_input) {
      // Repacked input: the cached VP run describes the traced image, not
      // this one. Use the memoized re-simulation on the prepared hardware
      // tree for the functional result.
      const auto& fresh = refreshed_vp(prepared, options);
      accelerator_cycles = fresh.total_cycles;
      output = fresh.output;
    }
    const baseline::LinuxRunEstimate estimate =
        platform_.estimate(prepared.loadable(), accelerator_cycles);
    ExecutionResult result;
    result.backend = name();
    result.model = prepared.model_name();
    result.cycles = estimate.total_cycles;
    result.clock = platform_.config().clock;
    result.ms = estimate.ms;
    // Same NVDLA, same loadable: the accelerator result is functionally
    // identical to the VP run; only the software envelope differs.
    result.output = std::move(output);
    result.predicted_class = compiler::argmax(result.output);
    result.linux_estimate = estimate;
    return result;
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  }
}

StatusOr<std::unique_ptr<ExecutionBackend>> LinuxBaselineBackend::configure(
    const BackendSpec& spec) const {
  // The `@` clock configures the modelled platform itself (its CPU and
  // NVDLA share one clock domain), not the RunOptions: build a re-clocked
  // instance, then let the generic wrapper apply the remaining keys.
  if (spec.clock.empty()) {
    return ExecutionBackend::configure(spec);
  }
  const auto clock = parse_clock(spec.clock);
  if (!clock.is_ok()) return clock.status();
  baseline::LinuxPlatformConfig config = platform_.config();
  config.clock = *clock;
  return make_configured_backend(nullptr,
                                 std::make_unique<LinuxBaselineBackend>(config),
                                 spec, /*apply_clock=*/false);
}

}  // namespace nvsoc::runtime
