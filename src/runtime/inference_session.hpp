// InferenceSession — the staged, memoized runtime API over the paper flow
// (successor of the monolithic core::prepare_model facade).
//
// The offline flow of Fig. 1 is split into explicit stages:
//
//   input-independent (computed once per session):
//     network -> synthetic/trained weights -> INT8 calibration -> loadable
//   input-dependent (computed per distinct image):
//     -> virtual-platform trace -> configuration file -> bare-metal program
//
// Every stage is lazy and memoized, so repeated run() calls on the same
// image recompute nothing, and run_batch() over N images compiles weights,
// calibration and the loadable exactly once. The configuration file and
// program are additionally reused across images whose traces produce the
// same CSB stream — which is every image, since only register addresses
// and status values are baked into the program — so a batch pays one VP
// replay per image and nothing else.
//
// Execution is delegated to a named ExecutionBackend from a
// BackendRegistry; all runtime error paths (unknown backend, program-memory
// overflow, loadable/trace mismatch) report through StatusOr.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "compiler/reference.hpp"
#include "runtime/backend_registry.hpp"

namespace nvsoc::runtime {

/// How many times each stage has actually executed (memoization evidence).
struct StageCounters {
  std::uint32_t weights = 0;
  std::uint32_t calibration = 0;
  std::uint32_t loadable = 0;
  std::uint32_t trace = 0;        ///< VP execution + weight-file capture
  std::uint32_t config_file = 0;
  std::uint32_t program = 0;
};

class InferenceSession {
 public:
  /// `registry` defaults to BackendRegistry::global(); pass a custom one to
  /// restrict or extend the backend set.
  explicit InferenceSession(compiler::Network network,
                            core::FlowConfig config = {},
                            const BackendRegistry* registry = nullptr);

  // Staged artifacts hold internal references; sessions are pinned.
  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  const compiler::Network& network() const { return network_; }
  const core::FlowConfig& config() const { return config_; }
  const StageCounters& counters() const { return counters_; }

  /// The default input: a synthetic image from config.input_seed (the
  /// calibration image, matching the legacy prepare_model flow).
  const std::vector<float>& default_input();

  // --- staged artifacts (lazy, memoized) -----------------------------------
  const compiler::NetWeights& weights();
  const compiler::CalibrationTable& calibration();
  const compiler::Loadable& loadable();

  /// All artifacts for the default input.
  const core::PreparedModel& prepared();
  /// All artifacts for `image`: input-independent stages are reused; the
  /// input-dependent tail is memoized while the image stays the same. The
  /// reference is invalidated by the next prepare()/run() call.
  const core::PreparedModel& prepare(std::span<const float> image);

  // --- execution -----------------------------------------------------------
  /// Run one inference on the named backend with the default input.
  StatusOr<ExecutionResult> run(const std::string& backend);
  StatusOr<ExecutionResult> run(const std::string& backend,
                                std::span<const float> image);
  /// Run every image through the named backend. Input-independent stages
  /// execute at most once for the whole batch.
  StatusOr<std::vector<ExecutionResult>> run_batch(
      const std::string& backend,
      const std::vector<std::vector<float>>& images);

 private:
  const BackendRegistry& registry() const;
  RunOptions run_options() const;
  void ensure_frontend();                         ///< weights..loadable
  void ensure_tail(std::span<const float> image); ///< trace..program

  compiler::Network network_;
  core::FlowConfig config_;
  const BackendRegistry* registry_;
  StageCounters counters_;

  bool frontend_done_ = false;
  bool tail_done_ = false;
  std::vector<float> default_input_;
  std::optional<compiler::ReferenceExecutor> reference_;
  core::PreparedModel prepared_;
};

}  // namespace nvsoc::runtime
