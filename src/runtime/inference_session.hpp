// InferenceSession — the staged, memoized runtime API over the paper flow
// (successor of the monolithic core::prepare_model facade).
//
// The offline flow of Fig. 1 is split into explicit stages:
//
//   input-independent (computed once per session):
//     network -> synthetic/trained weights -> INT8 calibration -> loadable
//   input-dependent (computed per distinct image):
//     -> virtual-platform trace -> configuration file -> bare-metal program
//
// Every stage is lazy and memoized, so repeated run() calls on the same
// image recompute nothing, and run_batch() over N images compiles weights,
// calibration and the loadable exactly once. Because the CSB register
// stream — hence the configuration file and bare-metal program — is
// input-independent, images after the first take the *repack-input* fast
// path: only the input-dependent surfaces (input tensor, FP32 reference,
// the input region of the weight-file preload image) are refreshed, and
// the virtual platform is not re-executed. A whole batch therefore pays
// for exactly one VP replay (assertable via StageCounters::trace/repack).
//
// run_batch_parallel() executes a batch across a ThreadPool: the memoized
// frontend artifacts are staged once and shared read-only, each worker
// gets its own tail state (a PreparedModel copy it repacks per image), and
// each backend run builds its own SoC/VP instance. Results keep image
// order; failures report the lowest failing image index.
//
// Execution is delegated to a named ExecutionBackend from a
// BackendRegistry; all runtime error paths (unknown backend, program-memory
// overflow, loadable/trace mismatch) report through StatusOr.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "compiler/reference.hpp"
#include "runtime/backend_registry.hpp"

namespace nvsoc::runtime {

/// How many times each stage has actually executed (memoization evidence).
struct StageCounters {
  std::uint32_t weights = 0;
  std::uint32_t calibration = 0;
  std::uint32_t loadable = 0;
  std::uint32_t trace = 0;        ///< full VP execution + weight-file capture
  std::uint32_t config_file = 0;
  std::uint32_t program = 0;
  /// Repack-input fast path: a new image was substituted into the staged
  /// artifacts without re-executing the virtual platform. Counts the
  /// session's own tail state only; worker-local repacks inside
  /// run_batch_parallel are not session state and are not counted.
  std::uint32_t repack = 0;
};

/// Knobs for run_batch_parallel().
struct BatchOptions {
  /// Worker threads; 0 picks one per hardware thread, clamped to the batch
  /// size. 1 degrades to the sequential run_batch path.
  std::size_t workers = 0;
  /// Forwarded to RunOptions::validate for every image.
  bool validate = true;
};

class InferenceSession {
 public:
  /// `registry` defaults to BackendRegistry::global(); pass a custom one to
  /// restrict or extend the backend set.
  explicit InferenceSession(compiler::Network network,
                            core::FlowConfig config = {},
                            const BackendRegistry* registry = nullptr);

  // Staged artifacts hold internal references; sessions are pinned.
  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  const compiler::Network& network() const { return network_; }
  const core::FlowConfig& config() const { return config_; }
  const StageCounters& counters() const { return counters_; }

  /// The repack-input fast path is on by default; disabling it forces the
  /// legacy full VP replay per image (kept for parity testing — outputs
  /// must be bit-exact either way). With repack disabled,
  /// run_batch_parallel degrades to the sequential path: the parallel
  /// workers exist precisely to share the one traced tail.
  void set_repack_enabled(bool enabled) { repack_enabled_ = enabled; }
  bool repack_enabled() const { return repack_enabled_; }

  /// The default input: a synthetic image from config.input_seed (the
  /// calibration image, matching the legacy prepare_model flow).
  const std::vector<float>& default_input();

  // --- staged artifacts (lazy, memoized) -----------------------------------
  const compiler::NetWeights& weights();
  const compiler::CalibrationTable& calibration();
  const compiler::Loadable& loadable();

  /// All artifacts for the default input.
  const core::PreparedModel& prepared();
  /// All artifacts for `image`: input-independent stages are reused; the
  /// input-dependent tail is memoized while the image stays the same. The
  /// reference is invalidated by the next prepare()/run() call.
  const core::PreparedModel& prepare(std::span<const float> image);

  // --- execution -----------------------------------------------------------
  /// Run one inference on the named backend with the default input.
  StatusOr<ExecutionResult> run(const std::string& backend);
  StatusOr<ExecutionResult> run(const std::string& backend,
                                std::span<const float> image);
  /// Run every image through the named backend, sequentially. Input-
  /// independent stages execute at most once for the whole batch.
  ///
  /// The batch is all-or-nothing: on the first failing image the whole
  /// call returns that image's Status — annotated with the image index —
  /// and every completed result is discarded. Callers that need partial
  /// results should submit images individually via run().
  StatusOr<std::vector<ExecutionResult>> run_batch(
      const std::string& backend,
      const std::vector<std::vector<float>>& images);

  /// run_batch across a ThreadPool. The memoized frontend (weights,
  /// calibration, loadable) and the input-independent tail (trace, config
  /// file, program) are staged once on the calling thread and shared
  /// read-only; each worker repacks images into its own PreparedModel copy
  /// and every backend run builds its own SoC/VP instance. Results are in
  /// image order and bit-exact with the sequential path; the same
  /// all-or-nothing contract applies, reporting the lowest failing image
  /// index (not whichever worker failed first on the wall clock).
  StatusOr<std::vector<ExecutionResult>> run_batch_parallel(
      const std::string& backend,
      const std::vector<std::vector<float>>& images,
      const BatchOptions& options = {});

 private:
  const BackendRegistry& registry() const;
  RunOptions run_options() const;
  /// Sequential batch body shared by run_batch and the degenerate
  /// run_batch_parallel cases (one worker, repack disabled), so per-batch
  /// options like BatchOptions::validate survive the fallback.
  StatusOr<std::vector<ExecutionResult>> run_batch_with(
      const ExecutionBackend& backend,
      const std::vector<std::vector<float>>& images,
      const RunOptions& options);
  void ensure_frontend();                         ///< weights..loadable
  void ensure_tail(std::span<const float> image); ///< trace..program
  /// Substitute `image` into `prepared` without re-running the VP: input
  /// tensor, FP32 reference, and the input region of the weight-file
  /// preload image. Marks the cached VP result as not matching the input.
  void repack_into(core::PreparedModel& prepared,
                   std::span<const float> image) const;

  compiler::Network network_;
  core::FlowConfig config_;
  const BackendRegistry* registry_;
  StageCounters counters_;

  bool frontend_done_ = false;
  bool tail_done_ = false;
  bool repack_enabled_ = true;
  std::vector<float> default_input_;
  std::optional<compiler::ReferenceExecutor> reference_;
  core::PreparedModel prepared_;
};

}  // namespace nvsoc::runtime
