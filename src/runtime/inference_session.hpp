// InferenceSession — the staged, memoized serving engine over the paper
// flow (successor of the monolithic core::prepare_model facade).
//
// The offline flow of Fig. 1 is split into explicit stages:
//
//   input-independent (computed once per model):
//     network -> synthetic/trained weights -> INT8 calibration -> loadable
//   input-dependent (computed per distinct image):
//     -> virtual-platform trace -> configuration file -> bare-metal program
//
// Every stage is lazy and memoized, so repeated run() calls on the same
// image recompute nothing, and run_batch() over N images compiles weights,
// calibration and the loadable exactly once. Because the CSB register
// stream — hence the configuration file and bare-metal program — is
// input-independent, images after the first take the *repack-input* fast
// path: only the input-dependent surfaces (input tensor, FP32 reference)
// are refreshed on the model's small per-input surface, and the virtual
// platform is not re-executed. A whole batch therefore pays for exactly
// one VP replay (assertable via StageCounters::trace/repack).
//
// Multi-model, multi-variant: one session serves a *fleet*. The
// constructor registers its network as the default model; register_model()
// adds more, each with its own staged-artifact state and staging latch —
// so distinct models stage concurrently on the shared pool instead of
// queueing behind one staging slot. A backend spec may carry `?model=NAME`
// to route a request to a registered model ("soc?model=resnet18"); without
// it, the default model serves. Each distinct (model, canonical backend
// spec) pair is a *variant* with its own request/staging/eviction tallies
// (variant_stats()), while variants of one model share its staged cores.
//
// Memory model: the staged artifacts live in three immutable shared cores
// (core::FrontendArtifacts for weights/calibration/loadable,
// core::TraceArtifacts for trace/config file/program,
// core::ReplaySchedule for the functional replay) behind shared_ptr<const>.
// Copying a PreparedModel — what every parallel worker does — bumps
// refcounts and copies the input-sized vectors only; the multi-MB
// weight-file and program bytes are never duplicated.
//
// Byte-budgeted residency: a long-lived server would otherwise hold every
// model's replay schedule and per-worker arenas forever.
// set_replay_budget_bytes() bounds the total (schedule bytes + resident
// arena bytes across models); when a use pushes the total over budget,
// least-recently-used models shed their arenas first (pure cache: cheap to
// drop, rebuilt by the next replay), then their schedules (re-staged
// transparently — one re-trace — on next use), and as a last resort the
// hot model sheds its own idle arenas. Eviction is best-effort bounded:
// snapshots held by in-flight tasks keep dropped cores alive until those
// tasks drain.
//
// Concurrency model: the session owns one lazily-created ThreadPool that
// lives for the rest of the session — every submit() call and every
// run_batch_parallel() batch reuses the same workers (exactly one pool is
// ever constructed per session, assertable via ThreadPool::total_created).
// The pool is elastic: the first pooled call sizes the initial spawn, and
// queue pressure grows it up to BatchOptions::max_workers (default:
// hardware threads).
//
//   submit(backend, image) -> PendingResult
//     streaming arrivals, fully asynchronous: no VP trace ever runs on the
//     calling thread. The first arrival for a model enqueues a *staging
//     task* (one VP trace + replay-schedule recording) behind that model's
//     staging latch; later arrivals enqueue behind it instead of blocking,
//     and once the staged artifacts exist submits snapshot the shared
//     pointers and copy the image. Results come back through
//     PendingResult::get() as StatusOr — task exceptions never escape the
//     future. Calls overlap freely; there is no batch barrier.
//
//   resolve(spec) -> ResolvedSpec
//     parse + canonicalize + registry-configure + model-route once, and
//     reuse the handle for every later submit of the same raw spec — the
//     server caches these per connection so pipelined frames skip
//     re-canonicalization.
//
//   prepare_async(backend, image) -> StagingHandle
//     front-load the whole staging pipeline off the serving path: the
//     shared artifacts stage in the pool, then the backend's own stage()
//     hook runs (the replay-mode SoC variants record their
//     input-independent platform envelope there), so not even the first
//     pooled batch pays a one-time stall. The vector overload stages a
//     whole fleet in one pool pass: per-model latches dedup the shared
//     work, and every variant's stage() hook runs as its own pool task.
//
//   run_batch_parallel(backend, images, options)
//     a thin wrapper over submit-and-collect that keeps the batch
//     contract: results in image order, all-or-nothing, failures report
//     the lowest failing image index.
//
// Thread-safety: submit(), resolve(), prepare_async(), register_model(),
// counters(), variant_stats() and the budget accessors may be called
// concurrently with each other (and with in-flight pooled work). The
// remaining session methods are single-owner (stage memoization), but any
// of them may run while pooled tasks are in flight: tasks only touch their
// own snapshot and the shared immutable cores, and the session adopts the
// async-staged artifacts before touching its own state. Destroying the
// session drains in-flight work first: every PendingResult and
// StagingHandle already handed out still completes.
//
// Execution is delegated to a named ExecutionBackend from a
// BackendRegistry; all runtime error paths (unknown backend, program-memory
// overflow, loadable/trace mismatch) report through StatusOr.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "compiler/reference.hpp"
#include "runtime/backend_registry.hpp"

namespace nvsoc::runtime {

class ThreadPool;

/// How many times each stage has actually executed (memoization evidence).
struct StageCounters {
  std::uint32_t weights = 0;
  std::uint32_t calibration = 0;
  std::uint32_t loadable = 0;
  std::uint32_t trace = 0;        ///< full VP execution + weight-file capture
  std::uint32_t config_file = 0;
  std::uint32_t program = 0;
  /// Repack-input fast path: a new image was substituted into the staged
  /// artifacts without re-executing the virtual platform. Counts the
  /// session's own per-input surface only; the private snapshots repacked
  /// inside pooled tasks are not session state and are not counted.
  std::uint32_t repack = 0;
  /// Functional replays executed against the session's recorded replay
  /// schedules (skipping KMD, trace capture and — on the replay-mode SoC
  /// backends — the µRISC-V ISS), summed across every registered model.
  /// Unlike `repack`, this counts every consumer of the shared schedules:
  /// the session's own runs and the pooled snapshot runs alike.
  std::uint32_t replay = 0;
  /// Staging tasks handed to the pool by submit()/prepare_async() — bumped
  /// at enqueue time, on the calling thread, so a test can assert the
  /// async path was taken the moment submit() returns. The trace itself is
  /// counted by `trace` when the pool executes it. Per-model latches mean
  /// concurrent variants of distinct models each contribute one.
  std::uint32_t async_stagings = 0;
  /// Staging pipeline elements (shared-artifact latch tasks *and*
  /// per-variant stage() hook tasks) currently in flight — issued but not
  /// finished. Concurrency evidence for the variant tier.
  std::uint32_t staging_in_flight = 0;
  /// High-water mark of staging_in_flight over the session lifetime: a
  /// vector prepare of N variants pushes this to N (the enqueues outrun
  /// any single staging task), proving the stagings overlapped.
  std::uint32_t staging_peak = 0;
  /// Replay schedules dropped by the byte-budget eviction policy (each
  /// re-stages transparently — one re-trace — on its model's next use).
  std::uint32_t evictions = 0;
};

/// Knobs for run_batch_parallel().
struct BatchOptions {
  /// Worker threads; 0 picks one per hardware thread. 1 (or a one-image
  /// batch on a one-thread host) degrades to the sequential run_batch
  /// path. The session's pool is created on first use and reused for the
  /// session lifetime; the first pooled call's value (clamped to its batch
  /// size) sizes the initial spawn, and later pressure grows the pool
  /// elastically up to `max_workers`.
  std::size_t workers = 0;
  /// Elastic-growth cap for the session pool; 0 picks one per hardware
  /// thread. Applied to the session pool on every batch call (never
  /// dropping below the workers already running).
  std::size_t max_workers = 0;
  /// Forwarded to RunOptions::validate for every image.
  bool validate = true;
  /// Per-request wall-clock deadline forwarded to RunOptions::deadline_ms
  /// for every image (0 inherits the session default). Enforced at the
  /// session's task boundaries; an expired request answers
  /// kDeadlineExceeded instead of running.
  std::uint32_t deadline_ms = 0;
};

/// Bounded automatic retry of *transient* failures (is_transient codes:
/// kUnavailable, kDataLoss) inside pooled submit tasks. Non-transient
/// failures — bad arguments, validation, deadline expiry — never retry.
/// A kDataLoss failure additionally quarantines the model's replay
/// schedule and restages inline before the retry attempt, so the retry
/// never re-serves from a corrupted artifact.
struct RetryPolicy {
  /// Total attempts per request, first try included (1 = no retry).
  std::uint32_t max_attempts = 1;
  /// Linear backoff between attempts: attempt n sleeps n*backoff_ms first
  /// (0 = retry immediately). Sleeps on the pool worker, so size it for
  /// the configured worker count.
  std::uint32_t backoff_ms = 0;
};

/// Robustness evidence: how often the hardened serving paths fired.
/// Snapshot semantics like StageCounters; see robustness().
struct RobustnessCounters {
  std::uint64_t retries = 0;      ///< re-attempts after transient failures
  std::uint64_t quarantines = 0;  ///< schedules dropped after corruption
  std::uint64_t restages = 0;     ///< inline re-stagings after quarantine
  std::uint64_t deadline_exceeded = 0;  ///< requests expired at a boundary
  std::uint64_t data_loss = 0;          ///< corruption detections observed
  std::uint64_t staging_faults = 0;     ///< failed staging tasks (injected
                                        ///< or real) surfaced through latches
  std::uint64_t shutdown_rejections = 0;  ///< requests typed out at teardown
};

/// Per-variant serving statistics (one row per distinct (model, canonical
/// backend spec) pair the session has resolved). Variants of one model
/// share its staged cores, so `staged`/`resident_bytes`/`evictions` move
/// together for same-model variants while `requests`/`stagings` stay
/// per-variant.
struct VariantStats {
  std::string backend;  ///< canonical backend spec (without `?model=`)
  std::string model;    ///< registered model name the variant routes to
  /// The model's replay schedule is currently live (recorded and not
  /// evicted) — requests replay functionally instead of re-tracing.
  bool staged = false;
  std::uint64_t requests = 0;   ///< run()/submit() calls routed here
  std::uint64_t stagings = 0;   ///< completed prepare_async stage() hooks
  std::uint64_t evictions = 0;  ///< budget evictions that unstaged this
  /// Schedule + resident arena bytes of the variant's model (shared across
  /// its variants; the eviction policy's accounting input).
  std::uint64_t resident_bytes = 0;
};

/// A future-like handle to one submitted inference. get() blocks until the
/// pooled task finishes and yields its StatusOr — failures inside the task
/// (bad image shape, backend validation, execution faults) come back as
/// Status, never as exceptions. One-shot: the result is moved out by the
/// first get(). Handles stay valid after the session is destroyed (the
/// session drains in-flight work before dying).
///
/// For event-loop integration, on_ready() registers a completion callback
/// so a server thread never has to park in get(): the callback fires the
/// moment the result exists, and a subsequent get() is then non-blocking.
class PendingResult {
 public:
  PendingResult() = default;

  // Move-only, like the std::future it replaced: the state is one-shot, and
  // two handles silently sharing it would let a second get() observe a
  // moved-from result instead of a compile error.
  PendingResult(const PendingResult&) = delete;
  PendingResult& operator=(const PendingResult&) = delete;
  PendingResult(PendingResult&&) noexcept = default;
  PendingResult& operator=(PendingResult&&) noexcept = default;

  /// False once get() has consumed the result (or for a default-constructed
  /// handle).
  bool valid() const;
  /// Non-blocking: has the submitted inference finished?
  bool ready() const;
  /// Block until the inference finishes and take its result.
  StatusOr<ExecutionResult> get();
  /// Register a completion hook: `callback` runs exactly once, as soon as
  /// the result exists — immediately on the calling thread when the handle
  /// is already ready, otherwise on the pool worker that completes the
  /// inference. The callback must be cheap and non-blocking (it runs on a
  /// serving worker): typical use is waking an event loop which then calls
  /// the now-non-blocking get(). One callback per handle; registering on an
  /// empty/consumed handle is a no-op that never invokes the callback.
  /// Exceptions thrown by the callback are swallowed.
  void on_ready(std::function<void()> callback);
  /// Revoke a registered on_ready hook. On return the hook is guaranteed to
  /// never run afterwards: a hook the producer is firing concurrently has
  /// finished (cancel synchronizes with it through the state mutex), and a
  /// hook still stored is dropped. Lets an owner whose hook captures `this`
  /// destroy itself safely while the inference is still in flight; the
  /// result itself stays collectable via get(). No-op on an empty handle.
  void cancel_ready();

 private:
  friend class InferenceSession;

  /// The channel between the pooled producer task and this handle. The
  /// producer keeps its own shared_ptr, so a completed-then-dropped handle
  /// (e.g. a client that disconnected mid-request) never dangles.
  struct State {
    Mutex mutex;
    CondVar cv;
    std::optional<StatusOr<ExecutionResult>> result GUARDED_BY(mutex);
    /// Pending on_ready hook, if any.
    std::function<void()> callback GUARDED_BY(mutex);

    /// Producer side: publish the result, wake get() waiters, fire the
    /// registered callback. The callback runs *under* the state mutex so
    /// cancel_ready() can synchronize with an in-flight invocation — hooks
    /// must therefore never call back into the same PendingResult.
    void complete(StatusOr<ExecutionResult> value) EXCLUDES(mutex);
  };

  explicit PendingResult(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  /// A submission that failed before reaching the pool (unknown backend,
  /// bad image shape): the handle is born ready with the failure.
  explicit PendingResult(Status status);

  std::shared_ptr<State> state_;
};

/// A future-like handle to one prepare_async() staging run. wait() blocks
/// until the pooled staging (shared artifacts + the backend's stage()
/// hook) finishes and yields its Status. One-shot like PendingResult; stays
/// valid after the session is destroyed.
class StagingHandle {
 public:
  StagingHandle() = default;

  bool valid() const { return future_.valid(); }
  /// Non-blocking: has the staging finished?
  bool ready() const;
  /// Block until staging finishes and take its Status.
  Status wait();

 private:
  friend class InferenceSession;
  explicit StagingHandle(std::future<Status> future)
      : future_(std::move(future)) {}
  explicit StagingHandle(Status status);

  std::future<Status> future_;
};

class InferenceSession {
 private:
  // Declared up front so ResolvedSpec below can hold typed pointers; the
  // definitions live in the private section at the bottom.
  struct ModelState;
  struct VariantState;

 public:
  /// `registry` defaults to BackendRegistry::global(); pass a custom one to
  /// restrict or extend the backend set. The constructor's network becomes
  /// the *default model*, registered under its own name; register_model()
  /// adds more.
  explicit InferenceSession(compiler::Network network,
                            core::FlowConfig config = {},
                            const BackendRegistry* registry = nullptr);

  // Staged artifacts hold internal references; sessions are pinned.
  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Drains in-flight submitted work (PendingResults all complete), then
  /// tears the session down.
  ~InferenceSession();

  /// A resolved backend spec: parse + canonicalize + registry-configure +
  /// `?model=` routing done once. Copyable and cheap; pass it back to
  /// submit()/prepare_async() to skip re-resolution on hot paths (the
  /// server caches these per connection keyed by the raw spec string).
  /// Valid only for the session that resolved it, and only while that
  /// session lives.
  class ResolvedSpec {
   public:
    ResolvedSpec() = default;
    bool valid() const { return backend_ != nullptr; }
    /// Canonical backend spec, `?model=` stripped (the variant-stats key).
    const std::string& canonical() const { return canonical_; }
    /// Registered model name this spec routes to.
    const std::string& model() const { return model_name_; }

   private:
    friend class InferenceSession;
    const ExecutionBackend* backend_ = nullptr;
    ModelState* state_ = nullptr;
    VariantState* variant_ = nullptr;
    std::string canonical_;
    std::string model_name_;
  };

  // --- model fleet ---------------------------------------------------------
  /// Register another model so `?model=NAME` specs can route to it. Each
  /// model owns its full staged-artifact state (frontend, tail, replay
  /// schedule, staging latch), so distinct models stage concurrently on
  /// the shared pool. kAlreadyExists on a duplicate name. Thread-safe.
  Status register_model(std::string name, compiler::Network network,
                        core::FlowConfig config);
  /// Same, inheriting the session's (default model's) flow config.
  Status register_model(std::string name, compiler::Network network);
  /// Registered model names (default model included), sorted.
  std::vector<std::string> model_names() const;

  const compiler::Network& network() const;
  const core::FlowConfig& config() const;
  /// Stage-execution evidence, returned as a snapshot: the stage tallies
  /// are atomics (the async staging task bumps them from the pool) and
  /// `replay` is folded in from every model's live schedule at call time
  /// — safe to call concurrently with submit()/prepare_async() and
  /// in-flight pooled tasks.
  StageCounters counters() const;

  /// Per-variant serving statistics, one row per (model, canonical spec)
  /// pair ever resolved, sorted by (model, spec). Thread-safe.
  std::vector<VariantStats> variant_stats() const;

  /// The repack-input fast path is on by default; disabling it forces the
  /// legacy full VP replay per image (kept for parity testing — outputs
  /// must be bit-exact either way). With repack disabled,
  /// run_batch_parallel degrades to the sequential path, and submit()
  /// re-traces per image *inside* each pooled task (the first arrival
  /// still stages the shared frontend+trace behind the staging latch).
  void set_repack_enabled(bool enabled);
  bool repack_enabled() const {
    MutexLock lock(submit_mutex_);
    return repack_enabled_;
  }

  /// The functional replay engine is on by default; disabling it drops
  /// every model's recorded schedule so repacked images fall back to a
  /// full VP re-simulation (and the — replay-by-default — SoC backends to
  /// full cycle-accurate execution) — bit-exact either way, kept as the
  /// parity/benchmark comparator and as the session-level opt-out pairing
  /// with the backends' `?mode=cycle_accurate` spec knob. Re-enabling
  /// re-records each model's schedule on its next staged trace.
  void set_replay_enabled(bool enabled);
  bool replay_enabled() const {
    MutexLock lock(submit_mutex_);
    return replay_enabled_;
  }

  // --- replay-residency byte budget ---------------------------------------
  /// Bound the bytes replay residency may hold across all models:
  /// schedule bytes + resident arena bytes, summed. 0 (the default) means
  /// unlimited. Enforcement is LRU and runs on use (submit/resolve paths)
  /// and when the budget is (re)set: cold models drop arenas first, then
  /// whole schedules — which re-stage transparently (one re-trace) on
  /// their next use — and the hot model sheds idle arenas last. The bound
  /// is best-effort: snapshots held by in-flight tasks keep dropped cores
  /// alive until those tasks finish. Thread-safe.
  void set_replay_budget_bytes(std::uint64_t budget_bytes);
  std::uint64_t replay_budget_bytes() const;
  /// Current replay residency (schedule + arena bytes across all models,
  /// ready-but-unadopted staging latches included). Thread-safe.
  std::uint64_t replay_resident_bytes() const;

  /// The default input: a synthetic image from config.input_seed (the
  /// calibration image, matching the legacy prepare_model flow).
  const std::vector<float>& default_input();

  // --- staged artifacts (lazy, memoized; default model) --------------------
  const compiler::NetWeights& weights();
  const compiler::CalibrationTable& calibration();
  const compiler::Loadable& loadable();

  /// All artifacts for the default input.
  const core::PreparedModel& prepared();
  /// All artifacts for `image`: input-independent stages are reused; the
  /// input-dependent tail is memoized while the image stays the same. The
  /// reference is invalidated by the next prepare()/run() call.
  const core::PreparedModel& prepare(std::span<const float> image);

  // --- spec resolution -----------------------------------------------------
  /// Parse `spec`, strip its `?model=` key (routing to that registered
  /// model; the default model when absent), and configure the canonical
  /// backend variant in the registry. The returned handle is the fast-path
  /// currency of submit()/prepare_async(). kNotFound for an unknown model
  /// or backend, kInvalidArgument for a malformed spec. Thread-safe.
  StatusOr<ResolvedSpec> resolve(const std::string& spec);

  /// Enqueue the whole staging pipeline on the session pool without
  /// running an inference: the shared artifacts (frontend + one VP trace +
  /// replay schedule) stage behind the routed model's latch — the same one
  /// submit() uses — then the resolved backend's stage() hook runs as its
  /// own pool task (the replay-mode SoC variants record their platform
  /// envelope there). Returns immediately; submits issued meanwhile queue
  /// behind the latch. `image` seeds the first trace when nothing is
  /// staged yet (the model's default input otherwise).
  StagingHandle prepare_async(const std::string& backend);
  StagingHandle prepare_async(const std::string& backend,
                              std::span<const float> image);
  /// Stage a whole fleet in one pool pass: every spec resolves, its
  /// model's latch stages once (specs sharing a model dedup the trace),
  /// and each variant's stage() hook runs as its own pool task — all
  /// enqueued before this returns, so N variants stage concurrently.
  /// Handles are index-aligned with `backends`; per-spec failures come
  /// back through the matching handle, never as exceptions.
  std::vector<StagingHandle> prepare_async(
      const std::vector<std::string>& backends);

  // --- execution -----------------------------------------------------------
  /// Run one inference on the named backend with the default input.
  StatusOr<ExecutionResult> run(const std::string& backend);
  StatusOr<ExecutionResult> run(const std::string& backend,
                                std::span<const float> image);

  /// Enqueue one inference on the session pool and return immediately —
  /// the calling thread never runs a VP trace (first arrival included; see
  /// the class comment). The result arrives through PendingResult::get().
  /// Results keep per-call identity regardless of completion order.
  /// Thread-safe against concurrent submit()/prepare_async()/counters().
  PendingResult submit(const std::string& backend);
  PendingResult submit(const std::string& backend,
                       std::span<const float> image);
  /// The resolved fast path: same semantics, no per-call spec parsing.
  PendingResult submit(const ResolvedSpec& spec);
  PendingResult submit(const ResolvedSpec& spec, std::span<const float> image);

  /// Run every image through the named backend, sequentially. Input-
  /// independent stages execute at most once for the whole batch.
  ///
  /// The batch is all-or-nothing: on the first failing image the whole
  /// call returns that image's Status — annotated with the image index —
  /// and every completed result is discarded. Callers that need partial
  /// results should submit images individually via run() or submit().
  StatusOr<std::vector<ExecutionResult>> run_batch(
      const std::string& backend,
      const std::vector<std::vector<float>>& images);

  /// run_batch across the session ThreadPool: a thin wrapper over
  /// submit-and-collect. The memoized frontend (weights, calibration,
  /// loadable) and the input-independent tail (trace, config file,
  /// program) are staged once and shared read-only; each pooled task
  /// repacks its own PreparedModel snapshot and every backend run builds
  /// its own SoC/VP instance. Results are in image order and bit-exact
  /// with the sequential path; the same all-or-nothing contract applies,
  /// reporting the lowest failing image index (not whichever task failed
  /// first on the wall clock).
  StatusOr<std::vector<ExecutionResult>> run_batch_parallel(
      const std::string& backend,
      const std::vector<std::vector<float>>& images,
      const BatchOptions& options = {});

  /// Workers currently spawned in the session pool (0 before the first
  /// pooled call). The initial spawn is the first pooled call's clamped
  /// worker count; elastic growth can raise it up to the configured cap.
  std::size_t pool_worker_count() const;

  /// Forwarded to ThreadPool::set_idle_timeout on the session pool (applied
  /// on creation if the pool does not exist yet): elastic workers idle past
  /// `timeout` retire back to the pool's initial size. Zero — the default —
  /// disables reaping. Long-lived servers set this so burst threads return
  /// to the host between traffic peaks. Thread-safe.
  void set_pool_idle_timeout(std::chrono::milliseconds timeout);

  // --- robustness ----------------------------------------------------------
  /// Bounded automatic retry for pooled submits (see RetryPolicy). The
  /// default policy never retries. Thread-safe; in-flight tasks keep the
  /// policy they were enqueued with.
  void set_retry_policy(RetryPolicy policy);
  RetryPolicy retry_policy() const;

  /// Session-wide default wall-clock deadline per request (0 = none),
  /// applied when the caller's BatchOptions/RunOptions carry no deadline.
  /// Measured from enqueue; enforced at dequeue, after the staging latch,
  /// and between retry attempts — an expired request answers
  /// kDeadlineExceeded without running. Thread-safe.
  void set_default_deadline_ms(std::uint32_t deadline_ms);
  std::uint32_t default_deadline_ms() const;

  /// Arm (or clear, with an empty/zero-rate spec) a session-level fault
  /// plan (fault::Plan::parse vocabulary, e.g. "flip:1e-6+seed:7"). The
  /// injector arms every model whose own flow config carries no `?fault=`
  /// plan of its own. Staging/trace-recording runs never see it — only
  /// serving executions do, so injected corruption is always detectable
  /// against clean staged artifacts. kInvalidArgument on a bad spec.
  Status set_fault_plan(const std::string& spec);
  /// The armed session injector (null when no plan is set). Thread-safe.
  std::shared_ptr<fault::Injector> fault_injector() const;

  /// Robustness evidence snapshot (retries, quarantines, deadline
  /// expirations, ...). Thread-safe.
  RobustnessCounters robustness() const;

  /// Integrity canary sweep for one variant: verify the staged replay
  /// schedule's ops checksum, then run the model's default input and
  /// compare bit-exactly against the variant's frozen golden output (the
  /// first probe freezes it). Either canary failing quarantines the
  /// model's schedule — the next use restages from the immutable
  /// artifacts — and reports kDataLoss. Servers call this periodically;
  /// it executes one inference synchronously. Thread-safe.
  Status probe_golden(const std::string& backend);

 private:
  /// The async-staging latch: the staging task publishes the staged
  /// artifacts here and flips the future; queued arrivals (and the
  /// adopting session) read `staged` only after `done` is ready, which
  /// sequences the accesses.
  struct StagingLatch {
    std::promise<Status> promise;
    std::shared_future<Status> done;
    core::PreparedModel staged;  ///< valid iff done yields OK
  };

  /// Stage tallies bumped from both the session thread and pooled staging
  /// tasks; counters() snapshots them.
  struct AtomicStageCounters {
    std::atomic<std::uint32_t> weights{0};
    std::atomic<std::uint32_t> calibration{0};
    std::atomic<std::uint32_t> loadable{0};
    std::atomic<std::uint32_t> trace{0};
    std::atomic<std::uint32_t> config_file{0};
    std::atomic<std::uint32_t> program{0};
    std::atomic<std::uint32_t> repack{0};
    std::atomic<std::uint32_t> async_stagings{0};
    std::atomic<std::uint32_t> staging_in_flight{0};
    std::atomic<std::uint32_t> staging_peak{0};
    std::atomic<std::uint32_t> evictions{0};
  };

  /// Robustness tallies bumped from pooled tasks; robustness() snapshots
  /// them.
  struct AtomicRobustnessCounters {
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> quarantines{0};
    std::atomic<std::uint64_t> restages{0};
    std::atomic<std::uint64_t> deadline_exceeded{0};
    std::atomic<std::uint64_t> data_loss{0};
    std::atomic<std::uint64_t> staging_faults{0};
    std::atomic<std::uint64_t> shutdown_rejections{0};
  };

  /// One registered model's full staged-artifact state. Nodes are
  /// heap-pinned (unique_ptr in a node-based map) so ResolvedSpec handles
  /// and pooled tasks may hold ModelState* across registrations; models
  /// are never unregistered.
  struct ModelState {
    ModelState(std::string name_in, compiler::Network network_in,
               core::FlowConfig config_in)
        : name(std::move(name_in)),
          network(std::move(network_in)),
          config(config_in) {}

    std::string name;  ///< registration key (may differ from network name)
    compiler::Network network;
    core::FlowConfig config;
    bool tail_done = false;
    std::vector<float> default_input;
    /// Golden-probe reference: the default input's output, frozen by the
    /// first probe_golden() on this model. Guarded by submit_mutex_.
    std::vector<float> golden_output;
    std::optional<compiler::ReferenceExecutor> reference;
    core::PreparedModel prepared;
    std::shared_ptr<StagingLatch> staging;  ///< non-null while unadopted
    /// Replays accumulated on schedules since replaced or evicted
    /// (counters().replay sums base + live schedule tallies).
    std::atomic<std::uint32_t> replay_base{0};
    std::uint64_t last_used = 0;  ///< LRU tick; guarded by submit_mutex_
  };

  /// Per-(model, canonical spec) serving tallies. Guarded by submit_mutex_;
  /// nodes are map-pinned and never erased, so ResolvedSpec handles stay
  /// valid for the session lifetime.
  struct VariantState {
    std::string backend_spec;  ///< canonical, `?model=` stripped
    std::string model;
    bool staged = false;
    std::uint64_t requests = 0;
    std::uint64_t stagings = 0;
    std::uint64_t evictions = 0;
    std::uint64_t last_used = 0;
  };

  const BackendRegistry& registry() const;
  RunOptions run_options(const ModelState& model) const EXCLUDES(submit_mutex_);
  /// The session-lifetime pool, created on first use (`worker_hint` 0
  /// picks one worker per hardware thread) and reused by every later
  /// pooled call regardless of hint; queue pressure grows it elastically
  /// up to its max_workers cap.
  ThreadPool& pool_locked(std::size_t worker_hint) REQUIRES(submit_mutex_);
  /// Shape-check an image against the model's network before any staging
  /// work, so run(), submit() and the batch paths all reject a wrong-size
  /// image — first or later — with the same kInvalidArgument.
  static Status check_image_shape(const ModelState& model,
                                  std::span<const float> image);
  /// What a pooled task builds its private model from: either the staging
  /// latch (with a per-task shared_future copy — waiting through one
  /// shared object from many threads is not sanctioned by the standard)
  /// or a snapshot of the already-staged session model.
  struct StagingSource {
    std::shared_ptr<StagingLatch> latch;  ///< non-null: staging in flight
    std::shared_future<Status> done;      ///< this task's own future copy
    core::PreparedModel snapshot;         ///< used when latch is null
  };
  /// Pick the task's staging source for `model`, starting its staging task
  /// first if nothing is staged or staging (the future copy must be taken
  /// under the lock).
  StagingSource staging_source_locked(ModelState& model,
                                      std::span<const float> image)
      REQUIRES(submit_mutex_);
  /// Task-side half: wait for the source and materialize the model.
  static Status resolve_staged_model(StagingSource& source,
                                     core::PreparedModel& model);
  /// Stage-if-needed + enqueue: the body shared by submit() and
  /// run_batch_parallel(). Locks submit_mutex_. Throws only for
  /// pool-construction failure; staging and task failures come back inside
  /// the PendingResult. `variant` (nullable) collects per-variant tallies.
  PendingResult submit_with(ModelState& model, VariantState* variant,
                            const ExecutionBackend& backend,
                            std::span<const float> image,
                            const RunOptions& options,
                            std::size_t worker_hint);
  /// The pooled submit task body: deadline gates (dequeue, post-staging,
  /// between attempts), the teardown typed-error gate, and the bounded
  /// retry loop with kDataLoss quarantine + inline restage. `image` is the
  /// task's own copy; `enqueued` anchors the deadline.
  StatusOr<ExecutionResult> run_submitted(
      ModelState& model, const ExecutionBackend& backend,
      const RunOptions& options, bool repack, RetryPolicy retry,
      StagingSource& source, std::span<const float> image,
      std::chrono::steady_clock::time_point enqueued);
  /// Rebuild a task-private prepared model from the immutable artifacts,
  /// inline in the current pool task — never through a staging latch
  /// (enqueueing one from inside a task deadlocks a single-worker pool).
  /// Used after a kDataLoss quarantine (the snapshot still pins the
  /// quarantined schedule) and after a failed staging latch.
  Status rebuild_inline(ModelState& model, core::PreparedModel& prepared,
                        std::span<const float> image);
  /// Enqueue `model`'s staging task (frontend if missing + one VP trace +
  /// replay-schedule recording, all on a private model that the latch
  /// publishes). The caller has checked that nothing is staged or staging
  /// for this model.
  void start_staging_locked(ModelState& model, std::span<const float> image)
      REQUIRES(submit_mutex_);
  /// Adopt a *ready* staging latch into `model` (non-blocking; no-op when
  /// staging is absent or still running).
  void try_adopt_staging_locked(ModelState& model) REQUIRES(submit_mutex_);
  /// try_adopt_staging_locked across every model — the submit paths run it
  /// so budget enforcement sees freshly staged schedules.
  void try_adopt_all_locked() REQUIRES(submit_mutex_);
  /// Block until `model`'s in-flight staging finishes and adopt it — the
  /// sync point every session-thread stage accessor passes through before
  /// touching model.prepared.
  void drain_staging(ModelState& model) EXCLUDES(submit_mutex_);
  /// drain_staging across every model (set_replay_enabled, teardown-ish
  /// paths).
  void drain_all_staging();
  /// Record a use for LRU purposes and collect variant tallies.
  void note_use_locked(ModelState& model, VariantState* variant)
      REQUIRES(submit_mutex_);
  /// Align every variant of `model` with its live-schedule state (variants
  /// of one model share its schedule, so they stage and unstage together).
  void refresh_variants_staged_locked(const ModelState& model)
      REQUIRES(submit_mutex_);
  /// run()'s body after spec resolution.
  StatusOr<ExecutionResult> run_resolved(const ResolvedSpec& spec,
                                         std::span<const float> image);
  /// prepare_async()'s body after spec resolution.
  StagingHandle prepare_async_resolved(const ResolvedSpec& spec,
                                       std::span<const float> image);
  /// The model's live schedule: adopted, or sitting in a ready latch.
  const core::ReplaySchedule* live_schedule_locked(const ModelState& model)
      const REQUIRES(submit_mutex_);
  /// Schedule + arena bytes for one model (0 without a live schedule).
  std::uint64_t model_resident_bytes_locked(const ModelState& model) const
      REQUIRES(submit_mutex_);
  /// LRU byte-budget enforcement (see set_replay_budget_bytes).
  /// `just_used` (nullable) is the model driving the current use and is
  /// evicted last (arenas only, never its schedule).
  void enforce_budget_locked(ModelState* just_used) REQUIRES(submit_mutex_);
  /// Shared control block between the session and the replay-engine
  /// check-in hooks it installs. Hooks capture the shared_ptr, never the
  /// session: a schedule (and its engine) outliving the session fires a
  /// no-op once ~InferenceSession has detached, and the detach itself
  /// waits out any hook mid-flight (it holds `mutex` while calling in).
  struct ReplayCheckinState {
    Mutex mutex;
    /// Null once detached.
    InferenceSession* session GUARDED_BY(mutex) = nullptr;
    /// Lock-free mirror of replay_budget_bytes_, so the per-image hook
    /// costs one relaxed load while no budget is set.
    std::atomic<std::uint64_t> budget{0};
  };
  /// Attach the budget-enforcement check-in hook to `schedule`'s engine.
  /// `model` is the schedule's owner (map-pinned for the session
  /// lifetime): its check-ins count as uses of that model, so the budget
  /// walk never evicts the schedule a replay just ran on. Touches only
  /// checkin_state_ (set once in the constructor), so any thread —
  /// staging tasks included — may call it, locked or not.
  void install_checkin_hook(const core::ReplaySchedule& schedule,
                            ModelState& model);
  /// Hook body: adopt ready stagings and re-enforce the byte budget with
  /// `model` as the hot model. Runs on the replaying worker right after
  /// its arena check-in, so a run's own arena growth is reclaimed at
  /// arena return, not on the next submit.
  void on_replay_checkin(ModelState& model) EXCLUDES(submit_mutex_);
  /// Drop `model`'s replay schedule (folding its replay tally), force a
  /// re-trace on next use, and mark its staged variants evicted.
  void evict_schedule_locked(ModelState& model) REQUIRES(submit_mutex_);
  /// Staging-concurrency accounting: bump in-flight (and the peak
  /// high-water mark) when a staging pipeline task is issued...
  void note_staging_issued();
  /// ...and drop it when the task finishes (any exit path).
  void note_staging_done();
  /// Sequential batch body shared by run_batch and the degenerate
  /// run_batch_parallel cases (one worker, repack disabled), so per-batch
  /// options like BatchOptions::validate survive the fallback.
  StatusOr<std::vector<ExecutionResult>> run_batch_with(
      ModelState& model, const ExecutionBackend& backend,
      const std::vector<std::vector<float>>& images,
      const RunOptions& options);
  /// Build the input-independent frontend core (weights -> calibration ->
  /// loadable) for `model`. Pure apart from the atomic counters, so the
  /// pooled staging task can run it off-thread; `calibration_image` is the
  /// model's default input (the legacy calibration image).
  std::shared_ptr<const core::FrontendArtifacts> build_frontend(
      const ModelState& model, std::span<const float> calibration_image) const;
  void ensure_frontend(ModelState& model);  ///< weights..loadable
  void ensure_tail(ModelState& model,
                   std::span<const float> image);  ///< trace..program
  /// Fill the FP32 golden output for the model's current input if the
  /// serving paths left it empty (it is a validation artifact, computed on
  /// demand by prepare()/prepared(), never on the replay hot path).
  void ensure_reference(ModelState& model);
  /// The model's default input, synthesized on first use. Returns a
  /// reference into the pinned ModelState (never reassigned once filled).
  const std::vector<float>& default_input_for(ModelState& model);
  /// The full staging pipeline on an arbitrary prepared model: frontend if
  /// missing, then input assign + VP trace + (optionally) replay-schedule
  /// recording + config-file/program reuse-or-regenerate. Shared by the
  /// session's synchronous ensure_tail (prepared == model.prepared), the
  /// pooled staging task, and the repack-disabled per-image re-trace
  /// inside pooled tasks. Reads only the model's immutable identity
  /// (network, config); touches no session state beyond atomic counters.
  void stage_tail_into(const ModelState& model, core::PreparedModel& prepared,
                       std::span<const float> image, bool record_replay) const;
  /// Substitute `image` into `prepared`'s per-input surface without
  /// re-running the VP: input tensor only — the FP32 reference is cleared
  /// for lazy recomputation. Marks the shared trace as not matching the
  /// input (backends that need the functional output replay the recorded
  /// schedule, memoized per surface) and swaps in a fresh compute-once
  /// memo. Safe to call concurrently on distinct surfaces — it only reads
  /// shared immutable state.
  void repack_into(const ModelState& model, core::PreparedModel& prepared,
                   std::span<const float> image) const;
  /// prepare()'s body for an arbitrary model.
  const core::PreparedModel& prepare_in(ModelState& model,
                                        std::span<const float> image);

  const BackendRegistry* registry_;
  mutable AtomicStageCounters counters_;
  mutable AtomicRobustnessCounters robust_;

  /// Guards the submit/staging fast-path state (per-model latches, pool
  /// creation, variant/LRU bookkeeping, the tail_done/prepared reads the
  /// submit paths make) against concurrent submit()/resolve()/
  /// prepare_async()/counters() calls. Declared before the state it guards
  /// so the annotations below may name it.
  mutable Mutex submit_mutex_;

  bool repack_enabled_ GUARDED_BY(submit_mutex_) = true;
  bool replay_enabled_ GUARDED_BY(submit_mutex_) = true;
  /// 0 = unlimited.
  std::uint64_t replay_budget_bytes_ GUARDED_BY(submit_mutex_) = 0;
  RetryPolicy retry_policy_ GUARDED_BY(submit_mutex_);
  std::atomic<std::uint32_t> default_deadline_ms_{0};
  /// Session-level fault injector (null = no plan); tasks capture their
  /// own shared_ptr copy at enqueue.
  std::shared_ptr<fault::Injector> session_fault_ GUARDED_BY(submit_mutex_);
  /// Flipped at the top of ~InferenceSession: queued tasks still waiting
  /// on an unresolved staging latch resolve their PendingResult with a
  /// typed kUnavailable instead of racing the drain.
  std::atomic<bool> shutting_down_{false};
  /// Shared with every installed check-in hook; see ReplayCheckinState.
  /// Set once in the constructor, immutable after — unannotated.
  std::shared_ptr<ReplayCheckinState> checkin_state_;
  /// LRU clock.
  std::uint64_t use_tick_ GUARDED_BY(submit_mutex_) = 0;
  /// 0 = never reap.
  std::chrono::milliseconds pool_idle_timeout_ GUARDED_BY(submit_mutex_){0};
  /// Registered models, default model included. Node-based + unique_ptr:
  /// ModelState addresses are stable for the session lifetime (atomics
  /// inside make the state non-movable anyway). register_model() inserts
  /// under submit_mutex_; nothing ever erases. The map is guarded; the
  /// pinned ModelState nodes carry their own per-field disciplines
  /// (documented on ModelState — a cross-class guard the annotations
  /// cannot express).
  std::map<std::string, std::unique_ptr<ModelState>> models_
      GUARDED_BY(submit_mutex_);
  /// The constructor's network. Set once in the constructor, immutable
  /// after — unannotated.
  ModelState* default_model_ = nullptr;
  /// Per-(model, canonical spec) tallies, keyed "model|spec". Nodes never
  /// erased (ResolvedSpec pins them); the pointed-to VariantState fields
  /// are likewise touched only under submit_mutex_.
  std::map<std::string, VariantState> variants_ GUARDED_BY(submit_mutex_);
  /// Declared last on purpose: destroyed first, so in-flight pooled tasks
  /// (which read the shared cores, the model states and the staging
  /// latches) drain while every other member is still alive.
  std::unique_ptr<ThreadPool> pool_ GUARDED_BY(submit_mutex_);
};

}  // namespace nvsoc::runtime
