// String-keyed registry of execution backends, so examples, benches and
// services select the platform by name ("soc", "system_top", "vp",
// "linux_baseline") — e.g. from a CLI flag — instead of hard-coding one of
// the execute_on_* entry points.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/execution_backend.hpp"

namespace nvsoc::runtime {

class BackendRegistry {
 public:
  /// An empty registry (for tests or custom backend sets).
  BackendRegistry() = default;

  /// The process-wide registry, pre-populated with the four built-ins.
  static BackendRegistry& global();

  /// Register `backend` under its own name(). kAlreadyExists when taken.
  Status add(std::unique_ptr<ExecutionBackend> backend);

  /// Look a backend up by name; kNotFound (listing the known names) when
  /// unknown. The pointer is owned by the registry.
  StatusOr<const ExecutionBackend*> find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::unique_ptr<ExecutionBackend>> backends_;
};

}  // namespace nvsoc::runtime
