// String-keyed registry of execution backends, so examples, benches and
// services select the platform by name ("soc", "system_top", "vp",
// "linux_baseline") — e.g. from a CLI flag — instead of hard-coding one of
// the execute_on_* entry points.
//
// Beyond bare names, find() accepts configured-variant specs
// ("linux_baseline@25mhz", "soc?wait_mode=polling&validate=off"): the spec
// is parsed, the base backend's configure() builds the variant, and the
// registry caches it under the *canonical* spec (options sorted by key,
// clock lowercased) so repeated lookups — and equivalent spellings with
// reordered options — resolve to one stable instance.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "runtime/execution_backend.hpp"

namespace nvsoc::runtime {

class BackendRegistry {
 public:
  /// An empty registry (for tests or custom backend sets).
  BackendRegistry() = default;

  /// The process-wide registry, pre-populated with the four built-ins.
  static BackendRegistry& global();

  /// Register `backend` under its own name(). kAlreadyExists when taken.
  Status add(std::unique_ptr<ExecutionBackend> backend);

  /// Look a backend up by name or configured-variant spec; kNotFound
  /// (listing the known names, sorted) when the base name is unknown,
  /// kInvalidArgument for a malformed spec. The pointer is owned by the
  /// registry and stays valid for its lifetime. Thread-safe.
  StatusOr<const ExecutionBackend*> find(const std::string& name) const;

  /// Registered base names (configured variants excluded), sorted so
  /// `--help` output and error text are stable across platforms.
  std::vector<std::string> names() const;

 private:
  /// Populate-then-read: add() calls finish before the first concurrent
  /// find(), so base backends need no lock (and no annotation).
  std::map<std::string, std::unique_ptr<ExecutionBackend>> backends_;
  mutable Mutex variants_mutex_;
  /// Configured variants built by find(), keyed by the canonical spec.
  /// Mutable + locked: lookups are logically const and must be usable from
  /// concurrent batch workers.
  mutable std::map<std::string, std::unique_ptr<ExecutionBackend>> variants_
      GUARDED_BY(variants_mutex_);
};

}  // namespace nvsoc::runtime
