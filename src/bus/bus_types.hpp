// Transaction-level bus vocabulary.
//
// The simulator is transaction-level with explicit timestamps: a master
// issues a request stamped with its current cycle, and the slave returns the
// absolute cycle at which the response completes. Every fabric component
// (bridge, decoder, arbiter, converter) forwards the request downstream and
// adds its own protocol latency, so end-to-end path costs (e.g. the
// AHB-Lite -> APB -> CSB register-write path central to the paper's
// bare-metal flow) are the sum of per-hop costs, exactly as in the RTL.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>

#include "common/status.hpp"
#include "common/types.hpp"

namespace nvsoc {

/// A single-beat transfer on a 32-bit bus (AHB-Lite or APB data phase).
struct BusRequest {
  Addr addr = 0;
  bool is_write = false;
  Word wdata = 0;
  /// Active byte lanes within the 32-bit word (bit i covers byte i).
  std::uint8_t byte_enable = 0xF;
  /// Master-side cycle at which the transfer is issued.
  Cycle start = 0;
};

struct BusResponse {
  Status status;
  Word rdata = 0;
  /// Absolute cycle at which the transfer completes at the master.
  Cycle complete = 0;
};

/// Memory-mapped slave on a 32-bit bus.
class BusTarget {
 public:
  virtual ~BusTarget() = default;
  virtual BusResponse access(const BusRequest& req) = 0;
  virtual std::string_view name() const = 0;
};

/// Mixin for memories that hold executable code. Anything that caches
/// derived state keyed by code addresses (the ISS decode cache) registers a
/// listener; the memory fires it for every mutation path — bus-side stores,
/// backdoor `load_image`, `.mem` reloads — with the byte range touched, so
/// stale decoded ops can never be dispatched. Listeners run synchronously on
/// the writing thread. The source keeps only a weak reference: when the
/// registering side drops its shared_ptr the registration lapses on its own,
/// so neither the memory nor the listener's owner has to outlive the other.
class CodeWriteSource {
 public:
  using Listener = std::function<void(Addr base, std::uint64_t bytes)>;

  virtual ~CodeWriteSource() = default;
  virtual void add_code_write_listener(std::weak_ptr<Listener> fn) = 0;
};

/// A burst transfer on the 64-bit AXI data backbone (NVDLA DBB).
/// `data` covers the full burst; length must be a multiple of 8 bytes.
struct AxiBurstRequest {
  Addr addr = 0;
  bool is_write = false;
  std::span<const std::uint8_t> wdata;  ///< valid when is_write
  std::span<std::uint8_t> rbuf;         ///< valid when !is_write
  Cycle start = 0;

  std::size_t size_bytes() const {
    return is_write ? wdata.size() : rbuf.size();
  }
};

struct AxiBurstResponse {
  Status status;
  Cycle complete = 0;
};

/// Slave on the 64-bit AXI backbone.
class AxiTarget {
 public:
  virtual ~AxiTarget() = default;
  virtual AxiBurstResponse burst(const AxiBurstRequest& req) = 0;
  virtual std::string_view name() const = 0;
};

/// NVDLA configuration-space-bus request. The CSB is the register interface
/// exposed by the NVDLA core; its native addressing is in 32-bit words, but
/// we carry byte addresses end-to-end and convert at the APB->CSB adapter,
/// matching the NVDLA package's apb2csb RTL.
struct CsbRequest {
  Addr addr = 0;  ///< byte address within the NVDLA register space
  bool is_write = false;
  Word wdata = 0;
  Cycle start = 0;
};

struct CsbResponse {
  Status status;
  Word rdata = 0;
  Cycle complete = 0;
};

/// The NVDLA core's register interface.
class CsbTarget {
 public:
  virtual ~CsbTarget() = default;
  virtual CsbResponse csb_access(const CsbRequest& req) = 0;
};

/// Aggregate transaction counters kept by every fabric component so the
/// Fig. 2 / Fig. 4 benches can print a per-component traffic census.
struct BusStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t errors = 0;

  std::uint64_t transfers() const { return reads + writes; }
  std::uint64_t bytes() const { return bytes_read + bytes_written; }

  void note(const BusRequest& req, const BusResponse& rsp, Cycle min_latency);
  void note_axi(const AxiBurstRequest& req, const AxiBurstResponse& rsp,
                Cycle min_latency);
};

}  // namespace nvsoc
