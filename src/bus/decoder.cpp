#include "bus/decoder.hpp"

#include "common/strfmt.hpp"
#include <stdexcept>

namespace nvsoc {

void SystemBusDecoder::add_region(DecoderRegion region) {
  if (region.target == nullptr) {
    throw std::runtime_error("decoder region '" + region.label +
                             "' has no target");
  }
  if (region.last < region.base) {
    throw std::runtime_error("decoder region '" + region.label +
                             "' has last < base");
  }
  for (const auto& existing : regions_) {
    const bool overlaps =
        region.base <= existing.last && existing.base <= region.last;
    if (overlaps) {
      throw std::runtime_error(
          strfmt("decoder region '{}' [{:#x},{:#x}] overlaps '{}' "
                      "[{:#x},{:#x}]",
                      region.label, region.base, region.last, existing.label,
                      existing.base, existing.last));
    }
  }
  regions_.push_back(std::move(region));
}

const DecoderRegion* SystemBusDecoder::find_region(Addr addr) const {
  for (const auto& region : regions_) {
    if (addr >= region.base && addr <= region.last) return &region;
  }
  return nullptr;
}

BusResponse SystemBusDecoder::access(const BusRequest& req) {
  const DecoderRegion* region = find_region(req.addr);
  if (region == nullptr) {
    BusResponse rsp{Status(StatusCode::kBusError,
                           strfmt("decode error at {:#x}", req.addr)),
                    0, req.start + 1};
    stats_.note(req, rsp, 1);
    return rsp;
  }
  BusRequest downstream = req;
  downstream.start = req.start + decode_cycles_;
  if (region->relative_addressing) downstream.addr = req.addr - region->base;
  BusResponse rsp = region->target->access(downstream);
  stats_.note(req, rsp, decode_cycles_ + 1);
  return rsp;
}

}  // namespace nvsoc
