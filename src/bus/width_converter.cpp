#include "bus/width_converter.hpp"

#include <cstring>
#include "common/strfmt.hpp"

namespace nvsoc {

AxiBurstResponse AxiWidthConverter::burst(const AxiBurstRequest& req) {
  const std::size_t size = req.size_bytes();
  if (size == 0 || (size % 4) != 0 || (req.addr % 4) != 0) {
    AxiBurstResponse rsp{
        Status(StatusCode::kUnaligned,
               strfmt("DBB burst addr={:#x} size={} not 32-bit aligned",
                           req.addr, size)),
        req.start + 1};
    stats_.note_axi(req, rsp, 1);
    return rsp;
  }

  Cycle now = req.start + conversion_cycles_;
  for (std::size_t offset = 0; offset < size; offset += 4) {
    BusRequest beat{.addr = req.addr + offset,
                    .is_write = req.is_write,
                    .wdata = 0,
                    .byte_enable = 0xF,
                    .start = now};
    if (req.is_write) {
      Word w = 0;
      std::memcpy(&w, req.wdata.data() + offset, 4);
      beat.wdata = w;
    }
    BusResponse beat_rsp = downstream_.access(beat);
    if (!beat_rsp.status.is_ok()) {
      AxiBurstResponse rsp{beat_rsp.status, beat_rsp.complete};
      stats_.note_axi(req, rsp, 1);
      return rsp;
    }
    if (!req.is_write) {
      std::memcpy(req.rbuf.data() + offset, &beat_rsp.rdata, 4);
    }
    now = beat_rsp.complete;
  }

  AxiBurstResponse rsp{Status::ok(), now};
  stats_.note_axi(req, rsp, conversion_cycles_ + size / 4);
  return rsp;
}

}  // namespace nvsoc
