// Interface bridges of the NVDLA wrapper (Fig. 2):
//
//   AhbToApbBridge : the open-source ARM AHB-Lite -> APB bridge the paper
//                    reuses. Every APB transfer costs a setup phase plus an
//                    access phase (2 PCLK cycles minimum) on top of the AHB
//                    address/data phases.
//   ApbToCsbAdapter: the apb2csb adapter shipped with the NVDLA package.
//                    Converts APB byte addresses to CSB word addresses and
//                    carries the request/response handshake.
//   AhbToAxiBridge : connects the core's AHB-Lite data port to AXI-compliant
//                    data memory; single-beat transfers with a fixed
//                    protocol-conversion cost.
//
// Together with the system-bus decoder these make NVDLA registers plain
// load/store targets — the mechanism that lets the paper drop the Linux
// driver stack entirely.
#pragma once

#include "bus/bus_types.hpp"

namespace nvsoc {

/// Latency knobs for the bridge models. Defaults follow the ARM APB3
/// protocol (setup + access) and single-stage synchronisers; the ablation
/// bench sweeps these to show the cost of a less tightly coupled config path.
struct BridgeTiming {
  Cycle ahb_address_phase = 1;  ///< AHB address phase
  Cycle apb_setup = 1;          ///< APB SETUP state
  Cycle apb_access = 1;         ///< APB ACCESS state (minimum, no wait states)
  Cycle csb_request = 1;        ///< CSB request queue stage
  Cycle csb_response = 1;       ///< CSB read-data return stage
  Cycle axi_conversion = 2;     ///< AHB->AXI protocol conversion overhead
};

/// AHB-Lite slave that forwards to an APB (32-bit) target.
class AhbToApbBridge final : public BusTarget {
 public:
  AhbToApbBridge(BusTarget& apb_target, BridgeTiming timing = {})
      : apb_(apb_target), timing_(timing) {}

  BusResponse access(const BusRequest& req) override;
  std::string_view name() const override { return "ahb2apb_bridge"; }

  const BusStats& stats() const { return stats_; }

 private:
  BusTarget& apb_;
  BridgeTiming timing_;
  BusStats stats_;
};

/// APB slave that drives the NVDLA CSB. Mirrors nvdla/apb2csb: the APB byte
/// address is translated to the CSB's 32-bit word addressing; reads block
/// until the CSB returns read data.
class ApbToCsbAdapter final : public BusTarget {
 public:
  ApbToCsbAdapter(CsbTarget& csb, BridgeTiming timing = {})
      : csb_(csb), timing_(timing) {}

  BusResponse access(const BusRequest& req) override;
  std::string_view name() const override { return "apb2csb_adapter"; }

  const BusStats& stats() const { return stats_; }

 private:
  CsbTarget& csb_;
  BridgeTiming timing_;
  BusStats stats_;
};

/// AHB-Lite slave that forwards single-beat transfers to an AXI target of
/// 32-bit width (the AXI-compliant data-memory path of Fig. 2).
class AhbToAxiBridge final : public BusTarget {
 public:
  AhbToAxiBridge(BusTarget& axi_target, BridgeTiming timing = {})
      : axi_(axi_target), timing_(timing) {}

  BusResponse access(const BusRequest& req) override;
  std::string_view name() const override { return "ahb2axi_bridge"; }

  const BusStats& stats() const { return stats_; }

 private:
  BusTarget& axi_;
  BridgeTiming timing_;
  BusStats stats_;
};

/// End-to-end CSB register path cost with the given timing, in CPU cycles:
/// the cost of one bare-metal register write as seen by the µRISC-V store
/// instruction. Used by the analytic layer-time model and the ablation bench.
Cycle csb_write_path_cycles(const BridgeTiming& timing);
Cycle csb_read_path_cycles(const BridgeTiming& timing);

}  // namespace nvsoc
