// System-bus decoder (Fig. 2): assigns distinct address spaces to each slave
// device so the µRISC-V core can program NVDLA with plain load/store
// instructions. The paper's map:
//   NVDLA : 0x000000 -- 0x0FFFFF   (all CSB configuration registers)
//   DRAM  : 0x100000 -- 0x200FFFFF (512 MB data memory)
#pragma once

#include <string>
#include <vector>

#include "bus/bus_types.hpp"

namespace nvsoc {

/// One decoded slave region. Addresses are inclusive. Downstream targets see
/// addresses relative to `base` when `relative_addressing` is set (the NVDLA
/// wrapper expects register offsets, DRAM expects absolute SoC addresses).
struct DecoderRegion {
  Addr base = 0;
  Addr last = 0;
  BusTarget* target = nullptr;
  bool relative_addressing = false;
  std::string label;
};

class SystemBusDecoder final : public BusTarget {
 public:
  /// `decode_cycles`: combinational decode modelled as zero by default; a
  /// registered decoder (timing closure variant) costs one cycle per access.
  explicit SystemBusDecoder(Cycle decode_cycles = 0)
      : decode_cycles_(decode_cycles) {}

  /// Registers a region. Throws std::runtime_error on overlap with an
  /// existing region — overlapping decode is a design error in the RTL too.
  void add_region(DecoderRegion region);

  BusResponse access(const BusRequest& req) override;
  std::string_view name() const override { return "system_bus_decoder"; }

  /// Region lookup for tests and the address-map bench.
  const DecoderRegion* find_region(Addr addr) const;
  const std::vector<DecoderRegion>& regions() const { return regions_; }

  const BusStats& stats() const { return stats_; }

 private:
  Cycle decode_cycles_;
  std::vector<DecoderRegion> regions_;
  BusStats stats_;
};

/// The paper's SoC address map constants.
namespace addrmap {
inline constexpr Addr kNvdlaBase = 0x0;
inline constexpr Addr kNvdlaLast = 0xFFFFF;
inline constexpr Addr kDramBase = 0x100000;
inline constexpr Addr kDramLast = 0x200FFFFF;
inline constexpr std::uint64_t kDramBytes = kDramLast - kDramBase + 1;
static_assert(kDramBytes == 512ull * 1024 * 1024,
              "paper maps exactly 512 MB of DRAM data memory");
}  // namespace addrmap

}  // namespace nvsoc
