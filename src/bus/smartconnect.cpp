#include "bus/smartconnect.hpp"

#include "common/bitutil.hpp"

namespace nvsoc {

BusResponse AxiSmartConnect::route(SmartConnectSelect from,
                                   const BusRequest& req) {
  if (from != selected_) {
    ++blocked_;
    return BusResponse{
        Status(StatusCode::kBusError,
               "smartconnect: access through deselected port"),
        0, req.start + 1};
  }
  // SmartConnect adds one cycle of routing latency per transfer.
  BusRequest downstream = req;
  downstream.start = req.start + 1;
  return ddr_.access(downstream);
}

Cycle AxiInterconnectCdc::slow_to_fast(Cycle slow_cycles) const {
  return ceil_div<Cycle>(slow_cycles * fast_clock_, slow_clock_);
}

Cycle AxiInterconnectCdc::fast_to_slow(Cycle fast_cycles) const {
  return ceil_div<Cycle>(fast_cycles * slow_clock_, fast_clock_);
}

BusResponse AxiInterconnectCdc::access(const BusRequest& req) {
  // Back-to-back transfers ride the asynchronous FIFOs already primed by
  // the previous beat and stream at the slow domain's beat rate; an idle
  // restart pays the full two-flop synchroniser in each direction.
  const bool streaming =
      req.start <= last_fast_complete_ + slow_to_fast(1) + 1;
  const Cycle slow_start =
      fast_to_slow(req.start) + (streaming ? 0 : sync_stages_);
  BusRequest downstream = req;
  downstream.start = slow_start;
  BusResponse slow_rsp = slow_.access(downstream);

  // Response crosses back into the fast domain.
  BusResponse rsp = slow_rsp;
  rsp.complete =
      slow_to_fast(slow_rsp.complete + (streaming ? 0 : sync_stages_));
  if (rsp.complete <= req.start) rsp.complete = req.start + 1;
  if (rsp.status.is_ok()) last_fast_complete_ = rsp.complete;
  stats_.note(req, rsp, 1);
  return rsp;
}

}  // namespace nvsoc
