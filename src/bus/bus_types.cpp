#include "bus/bus_types.hpp"

#include <bit>

namespace nvsoc {

namespace {
std::uint64_t active_bytes(std::uint8_t byte_enable) {
  return static_cast<std::uint64_t>(std::popcount(byte_enable));
}
}  // namespace

void BusStats::note(const BusRequest& req, const BusResponse& rsp,
                    Cycle min_latency) {
  if (!rsp.status.is_ok()) {
    ++errors;
    return;
  }
  if (req.is_write) {
    ++writes;
    bytes_written += active_bytes(req.byte_enable);
  } else {
    ++reads;
    bytes_read += 4;
  }
  const Cycle latency = rsp.complete - req.start;
  if (latency > min_latency) stall_cycles += latency - min_latency;
}

void BusStats::note_axi(const AxiBurstRequest& req, const AxiBurstResponse& rsp,
                        Cycle min_latency) {
  if (!rsp.status.is_ok()) {
    ++errors;
    return;
  }
  if (req.is_write) {
    ++writes;
    bytes_written += req.wdata.size();
  } else {
    ++reads;
    bytes_read += req.rbuf.size();
  }
  const Cycle latency = rsp.complete - req.start;
  if (latency > min_latency) stall_cycles += latency - min_latency;
}

}  // namespace nvsoc
