#include "bus/bridges.hpp"

#include "common/strfmt.hpp"

namespace nvsoc {

BusResponse AhbToApbBridge::access(const BusRequest& req) {
  // AHB address phase, then APB SETUP; the downstream target models the
  // ACCESS phase onwards.
  BusRequest downstream = req;
  downstream.start = req.start + timing_.ahb_address_phase + timing_.apb_setup;
  BusResponse rsp = apb_.access(downstream);
  // The AHB data phase completes one cycle after the APB access returns.
  rsp.complete += 1;
  stats_.note(req, rsp, timing_.ahb_address_phase + timing_.apb_setup + 2);
  return rsp;
}

BusResponse ApbToCsbAdapter::access(const BusRequest& req) {
  if ((req.addr & 0x3u) != 0) {
    BusResponse rsp{Status(StatusCode::kUnaligned,
                           strfmt("CSB access at {:#x} not word-aligned",
                                       req.addr)),
                    0, req.start + 1};
    stats_.note(req, rsp, 1);
    return rsp;
  }
  CsbRequest csb_req{.addr = req.addr,
                     .is_write = req.is_write,
                     .wdata = req.wdata,
                     .start = req.start + timing_.apb_access +
                              timing_.csb_request};
  CsbResponse csb_rsp = csb_.csb_access(csb_req);
  BusResponse rsp{csb_rsp.status, csb_rsp.rdata,
                  csb_rsp.complete +
                      (req.is_write ? 0 : timing_.csb_response)};
  stats_.note(req, rsp, timing_.apb_access + timing_.csb_request);
  return rsp;
}

BusResponse AhbToAxiBridge::access(const BusRequest& req) {
  BusRequest downstream = req;
  downstream.start = req.start + timing_.axi_conversion;
  BusResponse rsp = axi_.access(downstream);
  stats_.note(req, rsp, timing_.axi_conversion + 1);
  return rsp;
}

Cycle csb_write_path_cycles(const BridgeTiming& t) {
  // store -> AHB addr phase -> APB setup -> APB access -> CSB request queue
  // -> (posted write retires) -> AHB data phase.
  return t.ahb_address_phase + t.apb_setup + t.apb_access + t.csb_request + 1;
}

Cycle csb_read_path_cycles(const BridgeTiming& t) {
  return t.ahb_address_phase + t.apb_setup + t.apb_access + t.csb_request +
         t.csb_response + 1;
}

}  // namespace nvsoc
