#include "bus/arbiter.hpp"

#include <bit>

namespace nvsoc {

const char* master_name(MasterId id) {
  switch (id) {
    case MasterId::kCpu: return "ahb_master(cpu)";
    case MasterId::kNvdlaDbb: return "dbb_master(nvdla)";
  }
  return "unknown_master";
}

BusResponse DramArbiter::arbitrate(MasterId id, const BusRequest& req) {
  auto& mstats = stats_[static_cast<std::size_t>(id)];

  // Mutual exclusion: a request issued while the downstream port is busy is
  // held in the request phase until grant.
  const Cycle grant = req.start < busy_until_ ? busy_until_ : req.start;
  mstats.wait_cycles += grant - req.start;
  ++mstats.grants;

  BusRequest granted = req;
  granted.start = grant;
  BusResponse rsp = memory_.access(granted);
  if (rsp.status.is_ok()) {
    mstats.bytes += req.is_write
                        ? static_cast<std::uint64_t>(
                              std::popcount(req.byte_enable))
                        : 4u;
    busy_until_ = rsp.complete;
    last_granted_ = id;
  }
  return rsp;
}

}  // namespace nvsoc
