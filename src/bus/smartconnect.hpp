// AXI SmartConnect mux and AXI Interconnect clock-domain crossing models for
// the overall system set-up (Fig. 4).
//
// On the ZCU102 the DRAM is connected either to the Zynq PS (to preload
// weights and input image) or to the SoC (to run inference) — never both.
// The SmartConnect functions as a multiplexer between the two masters.
// An AXI Interconnect between the SoC (300 MHz) and the MIG DDR4 (100 MHz)
// reconciles the frequency mismatch; crossing the domains costs
// synchroniser latency and converts cycle counts between the two clocks.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "bus/bus_types.hpp"

namespace nvsoc {

enum class SmartConnectSelect : std::uint8_t { kZynqPs = 0, kSoc = 1 };

/// Exclusive two-master mux in front of the DDR4 memory. Accessing through
/// the deselected port is a design error (the paper flips the mux between
/// the preload and run phases), reported as a bus error.
class AxiSmartConnect {
 public:
  explicit AxiSmartConnect(BusTarget& ddr_port) : ddr_(ddr_port) {
    zynq_port_.emplace(*this, SmartConnectSelect::kZynqPs);
    soc_port_.emplace(*this, SmartConnectSelect::kSoc);
  }

  void select(SmartConnectSelect sel) { selected_ = sel; }
  SmartConnectSelect selected() const { return selected_; }

  BusTarget& zynq_port() { return *zynq_port_; }
  BusTarget& soc_port() { return *soc_port_; }

  std::uint64_t blocked_accesses() const { return blocked_; }

 private:
  class Port final : public BusTarget {
   public:
    Port(AxiSmartConnect& owner, SmartConnectSelect id)
        : owner_(owner), id_(id) {}
    BusResponse access(const BusRequest& req) override {
      return owner_.route(id_, req);
    }
    std::string_view name() const override {
      return id_ == SmartConnectSelect::kZynqPs ? "smartconnect.zynq_port"
                                                : "smartconnect.soc_port";
    }

   private:
    AxiSmartConnect& owner_;
    SmartConnectSelect id_;
  };

  BusResponse route(SmartConnectSelect from, const BusRequest& req);

  BusTarget& ddr_;
  std::optional<Port> zynq_port_;
  std::optional<Port> soc_port_;
  SmartConnectSelect selected_ = SmartConnectSelect::kZynqPs;
  std::uint64_t blocked_ = 0;
};

/// AXI Interconnect with asynchronous clock-domain crossing. Requests arrive
/// stamped in the fast (SoC) domain; the downstream target runs in the slow
/// (memory) domain. Cycle counts are rescaled by the clock ratio and each
/// crossing pays a two-flop synchroniser in the destination domain.
class AxiInterconnectCdc final : public BusTarget {
 public:
  AxiInterconnectCdc(BusTarget& slow_side, Hertz fast_clock, Hertz slow_clock,
                     Cycle sync_stages = 2)
      : slow_(slow_side),
        fast_clock_(fast_clock),
        slow_clock_(slow_clock),
        sync_stages_(sync_stages) {
    if (fast_clock == 0 || slow_clock == 0) {
      throw std::runtime_error("CDC clocks must be nonzero");
    }
  }

  BusResponse access(const BusRequest& req) override;
  std::string_view name() const override { return "axi_interconnect_cdc"; }

  const BusStats& stats() const { return stats_; }

  /// Fast-domain cycles consumed by one slow-domain cycle (ceil).
  Cycle slow_to_fast(Cycle slow_cycles) const;
  Cycle fast_to_slow(Cycle fast_cycles) const;

 private:
  BusTarget& slow_;
  Hertz fast_clock_;
  Hertz slow_clock_;
  Cycle sync_stages_;
  Cycle last_fast_complete_ = 0;
  BusStats stats_;
};

}  // namespace nvsoc
