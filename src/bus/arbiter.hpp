// DRAM arbiter (Fig. 2): coordinates shared data-memory access between the
// NVDLA DBB interface and the µRISC-V AHB interface, guaranteeing mutual
// exclusion. Transaction-level model: the arbiter keeps the cycle at which
// the memory port frees up; a request arriving while the port is busy is
// stalled until grant. Round-robin tie-break between masters, matching the
// fair arbitration logic of the paper's system bus.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "bus/bus_types.hpp"

namespace nvsoc {

/// Identifies the requesting master for arbitration accounting.
enum class MasterId : std::uint8_t { kCpu = 0, kNvdlaDbb = 1 };

inline constexpr std::size_t kNumMasters = 2;

const char* master_name(MasterId id);

/// Per-master arbitration statistics for the Fig. 2 census bench.
struct ArbiterMasterStats {
  std::uint64_t grants = 0;
  std::uint64_t wait_cycles = 0;
  std::uint64_t bytes = 0;
};

/// Arbitrates a single downstream 32-bit memory port between two masters.
/// Each master gets its own facade (`port(MasterId)`) implementing BusTarget
/// so upstream components stay master-agnostic.
class DramArbiter {
 public:
  explicit DramArbiter(BusTarget& memory) : memory_(memory) {
    ports_[0].emplace(*this, MasterId::kCpu);
    ports_[1].emplace(*this, MasterId::kNvdlaDbb);
  }

  BusTarget& port(MasterId id) {
    return *ports_[static_cast<std::size_t>(id)];
  }

  const ArbiterMasterStats& master_stats(MasterId id) const {
    return stats_[static_cast<std::size_t>(id)];
  }

  /// Cycle at which the downstream memory port becomes idle again.
  Cycle busy_until() const { return busy_until_; }

  /// Total cycles any master spent waiting for grant.
  std::uint64_t total_wait_cycles() const {
    return stats_[0].wait_cycles + stats_[1].wait_cycles;
  }

 private:
  class Port final : public BusTarget {
   public:
    Port(DramArbiter& owner, MasterId id) : owner_(owner), id_(id) {}
    BusResponse access(const BusRequest& req) override {
      return owner_.arbitrate(id_, req);
    }
    std::string_view name() const override { return master_name(id_); }

   private:
    DramArbiter& owner_;
    MasterId id_;
  };

  BusResponse arbitrate(MasterId id, const BusRequest& req);

  BusTarget& memory_;
  std::array<std::optional<Port>, kNumMasters> ports_;
  std::array<ArbiterMasterStats, kNumMasters> stats_{};
  Cycle busy_until_ = 0;
  MasterId last_granted_ = MasterId::kNvdlaDbb;  // so CPU wins the first tie
};

}  // namespace nvsoc
