// AXI data-width converter (Fig. 2): adapts the NVDLA 64-bit data backbone
// (DBB) to the SoC's 32-bit data memory. Every 64-bit beat is split into two
// 32-bit transfers on the downstream port; bursts are cracked beat by beat.
// This is the component that makes nv_small's modest DBB width workable on
// the paper's 32-bit system bus — and the reason DBB traffic costs twice the
// beats it would on a native 64-bit memory (quantified by the Fig. 2 bench).
#pragma once

#include "bus/bus_types.hpp"

namespace nvsoc {

class AxiWidthConverter final : public AxiTarget {
 public:
  /// `downstream` is the 32-bit memory-side port (typically the arbiter's
  /// DBB facade). `conversion_cycles` is the packing/unpacking pipeline
  /// latency added once per burst.
  AxiWidthConverter(BusTarget& downstream, Cycle conversion_cycles = 1)
      : downstream_(downstream), conversion_cycles_(conversion_cycles) {}

  AxiBurstResponse burst(const AxiBurstRequest& req) override;
  std::string_view name() const override { return "axi_dwidth_converter"; }

  const BusStats& stats() const { return stats_; }

 private:
  BusTarget& downstream_;
  Cycle conversion_cycles_;
  BusStats stats_;
};

}  // namespace nvsoc
