// Minimal {}-style string formatter (subset of std::format, which libstdc++
// 12 does not ship). Supports positional-free "{}" placeholders with specs:
//   {}        default formatting
//   {:x} {:X} hex
//   {:#x}     hex with 0x prefix
//   {:08x}    zero-fill to width 8, hex
//   {:d}      decimal
//   {:.3f}    fixed floating point
// "{{" and "}}" escape literal braces.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace nvsoc {

namespace fmt_detail {

inline void apply_spec(std::ostream& os, std::string_view spec) {
  // spec grammar (subset): [0][width][.precision][type]  |  [#][0][width][type]
  std::size_t i = 0;
  bool alt = false;
  if (i < spec.size() && spec[i] == '#') {
    alt = true;
    ++i;
  }
  if (i < spec.size() && spec[i] == '0') {
    os << std::setfill('0');
    ++i;
  }
  std::size_t width = 0;
  while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
    width = width * 10 + static_cast<std::size_t>(spec[i] - '0');
    ++i;
  }
  if (width > 0) os << std::setw(static_cast<int>(width));
  if (i < spec.size() && spec[i] == '.') {
    ++i;
    std::size_t precision = 0;
    while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
      precision = precision * 10 + static_cast<std::size_t>(spec[i] - '0');
      ++i;
    }
    os << std::fixed << std::setprecision(static_cast<int>(precision));
  }
  if (i < spec.size()) {
    switch (spec[i]) {
      case 'x':
        if (alt) os << "0x";
        os << std::hex;
        break;
      case 'X':
        if (alt) os << "0x";
        os << std::hex << std::uppercase;
        break;
      case 'd':
        os << std::dec;
        break;
      case 'f':
        os << std::fixed;
        break;
      default:
        break;  // unknown type chars are ignored
    }
  }
}

template <typename T>
void emit_value(std::ostream& os, std::string_view spec, const T& value) {
  std::ostringstream tmp;
  apply_spec(tmp, spec);
  if constexpr (std::is_same_v<T, bool>) {
    tmp << (value ? "true" : "false");
  } else if constexpr (std::is_same_v<T, char> ||
                       std::is_same_v<T, signed char> ||
                       std::is_same_v<T, unsigned char>) {
    // Hex/decimal specs print chars numerically; default prints the char.
    if (!spec.empty()) {
      tmp << static_cast<int>(value);
    } else {
      tmp << value;
    }
  } else {
    tmp << value;
  }
  os << tmp.str();
}

inline void format_rest(std::ostream& os, std::string_view fmt) {
  std::size_t i = 0;
  while (i < fmt.size()) {
    if (fmt[i] == '{' && i + 1 < fmt.size() && fmt[i + 1] == '{') {
      os << '{';
      i += 2;
    } else if (fmt[i] == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      os << '}';
      i += 2;
    } else if (fmt[i] == '{') {
      throw std::runtime_error("strfmt: more placeholders than arguments: " +
                               std::string(fmt));
    } else {
      os << fmt[i];
      ++i;
    }
  }
}

template <typename T, typename... Rest>
void format_rest(std::ostream& os, std::string_view fmt, const T& value,
                 const Rest&... rest) {
  std::size_t i = 0;
  while (i < fmt.size()) {
    if (fmt[i] == '{' && i + 1 < fmt.size() && fmt[i + 1] == '{') {
      os << '{';
      i += 2;
      continue;
    }
    if (fmt[i] == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      os << '}';
      i += 2;
      continue;
    }
    if (fmt[i] == '{') {
      const std::size_t close = fmt.find('}', i);
      if (close == std::string_view::npos) {
        throw std::runtime_error("strfmt: unterminated placeholder");
      }
      std::string_view spec = fmt.substr(i + 1, close - i - 1);
      if (!spec.empty() && spec.front() == ':') spec.remove_prefix(1);
      emit_value(os, spec, value);
      format_rest(os, fmt.substr(close + 1), rest...);
      return;
    }
    os << fmt[i];
    ++i;
  }
  // Extra arguments beyond the placeholders are ignored (matches common
  // logging practice and keeps call sites resilient).
}

}  // namespace fmt_detail

template <typename... Args>
std::string strfmt(std::string_view fmt, const Args&... args) {
  std::ostringstream os;
  fmt_detail::format_rest(os, fmt, args...);
  return os.str();
}

}  // namespace nvsoc
