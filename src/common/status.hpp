// Lightweight Status / Expected vocabulary for recoverable failures on
// simulator hot paths, where exceptions would distort the timing model's
// structure. Configuration/programmer errors still throw std::runtime_error.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace nvsoc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kUnaligned,
  kNotFound,
  kAlreadyExists,
  kUnsupported,
  kBusError,
  kTimeout,
  kInternal,
  kDeadlineExceeded,  ///< a wall-clock or cycle budget ran out
  kUnavailable,       ///< transient failure; a retry may succeed
  kDataLoss,          ///< corruption detected before a wrong answer shipped
};

/// Human-readable name of a status code.
const char* status_code_name(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// [[nodiscard]] at class level: every function returning a Status returns
/// an error channel, and dropping one on the floor is a swallowed failure —
/// the compiler flags it at the call site (GCC/Clang -Wunused-result,
/// promoted to an error in CI). Intentional drops must say why with a
/// `(void)` cast and a comment.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const;

  /// Throws std::runtime_error when not OK; for callers where failure is a
  /// programming error rather than a modelled condition.
  void expect_ok(const char* context) const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Exception carrying a typed Status through layers whose signatures speak
/// cycles, not StatusOr (the KMD register loop, the DBB burst path, the
/// replay engine). Thrown at the failure site, caught at the backend
/// run()/stage() boundaries — which catch it *before* the generic
/// std::exception net so the code survives instead of collapsing into
/// kInternal/kInvalidArgument.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}
  StatusError(StatusCode code, std::string message)
      : StatusError(Status(code, std::move(message))) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// The transient subset of the taxonomy: codes a bounded automatic retry
/// is allowed to chase. kUnavailable is transient by definition; kDataLoss
/// is retryable because detection happens *before* serving and the retry
/// path re-stages from the frozen artifacts. Deadlines are not retried —
/// the budget is already spent.
inline bool is_transient(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kDataLoss;
}

/// Value-or-status. A minimal expected<T, Status> — the error vocabulary of
/// the runtime API boundary (`runtime::ExecutionBackend`,
/// `runtime::InferenceSession`): recoverable failures (unknown backend,
/// program-memory overflow, loadable/trace mismatch, ...) come back as a
/// non-OK status instead of an exception.
/// [[nodiscard]] like Status: a discarded StatusOr is a discarded result
/// *and* a discarded error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : storage_(std::move(value)) {}           // NOLINT implicit
  StatusOr(Status status) : storage_(std::move(status)) {     // NOLINT implicit
    if (std::get<Status>(storage_).is_ok()) {
      storage_ = Status(StatusCode::kInternal,
                        "StatusOr constructed from an OK status");
    }
  }
  StatusOr(StatusCode code, std::string message)
      : storage_(Status(code == StatusCode::kOk ? StatusCode::kInternal : code,
                        std::move(message))) {}

  /// The one success predicate of the Status vocabulary. (An instance
  /// `ok()` spelling used to exist alongside it; `Status` cannot offer one
  /// — the name is taken by the `Status::ok()` factory — so every call
  /// site uses `is_ok()` for both types.)
  bool is_ok() const { return std::holds_alternative<T>(storage_); }

  const T& value() const& {
    if (!is_ok()) throw std::runtime_error("StatusOr::value on error: " +
                                        std::get<Status>(storage_).to_string());
    return std::get<T>(storage_);
  }
  T&& value() && {
    if (!is_ok()) throw std::runtime_error("StatusOr::value on error: " +
                                        std::get<Status>(storage_).to_string());
    return std::get<T>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }

  template <typename U>
  T value_or(U&& fallback) const& {
    return is_ok() ? std::get<T>(storage_)
                   : static_cast<T>(std::forward<U>(fallback));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(storage_);
  }

 private:
  std::variant<T, Status> storage_;
};
}  // namespace nvsoc
