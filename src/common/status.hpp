// Lightweight Status / Expected vocabulary for recoverable failures on
// simulator hot paths, where exceptions would distort the timing model's
// structure. Configuration/programmer errors still throw std::runtime_error.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace nvsoc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kUnaligned,
  kNotFound,
  kAlreadyExists,
  kUnsupported,
  kBusError,
  kTimeout,
  kInternal,
};

/// Human-readable name of a status code.
const char* status_code_name(StatusCode code);

/// Result of an operation that can fail without a payload.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const;

  /// Throws std::runtime_error when not OK; for callers where failure is a
  /// programming error rather than a modelled condition.
  void expect_ok(const char* context) const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result-or-status. A minimal expected<T, Status>.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}           // NOLINT implicit
  Result(Status status) : storage_(std::move(status)) {}    // NOLINT implicit
  Result(StatusCode code, std::string message)
      : storage_(Status(code, std::move(message))) {}

  bool is_ok() const { return std::holds_alternative<T>(storage_); }

  const T& value() const& {
    if (!is_ok()) throw std::runtime_error("Result::value on error: " +
                                           std::get<Status>(storage_).to_string());
    return std::get<T>(storage_);
  }
  T&& value() && {
    if (!is_ok()) throw std::runtime_error("Result::value on error: " +
                                           std::get<Status>(storage_).to_string());
    return std::get<T>(std::move(storage_));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(storage_);
  }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace nvsoc
