// IEEE-754 binary16 ("half") support for the nv_full NVDLA datapath.
// Storage-only type: arithmetic is performed in float and converted back,
// matching how the NVDLA CMAC FP16 pipeline accumulates in higher precision.
#pragma once

#include <cstdint>

namespace nvsoc {

/// Convert a float to its nearest binary16 bit pattern (round-to-nearest-even,
/// with overflow to infinity and denormal support).
std::uint16_t float_to_half_bits(float value);

/// Convert a binary16 bit pattern to float (exact).
float half_bits_to_float(std::uint16_t bits);

/// A binary16 value. Trivially copyable; 2 bytes, layout-compatible with the
/// NVDLA FP16 memory format.
class Half {
 public:
  Half() = default;
  explicit Half(float value) : bits_(float_to_half_bits(value)) {}

  static Half from_bits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  std::uint16_t bits() const { return bits_; }
  float to_float() const { return half_bits_to_float(bits_); }

  friend bool operator==(Half a, Half b) { return a.bits_ == b.bits_; }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2);

}  // namespace nvsoc
