// Fundamental type aliases shared by every nvsoc module.
#pragma once

#include <cstdint>
#include <cstddef>

namespace nvsoc {

/// Simulation time in clock cycles of the component's own clock domain.
using Cycle = std::uint64_t;

/// Byte address on any bus in the system (32-bit physical address space,
/// widened to 64 bits so intermediate arithmetic cannot overflow).
using Addr = std::uint64_t;

/// 32-bit bus word (AHB-Lite data width of the µRISC-V core).
using Word = std::uint32_t;

/// 64-bit bus word (NVDLA DBB native width).
using DWord = std::uint64_t;

/// Frequency in Hz, used to convert cycle counts into wall-clock time.
using Hertz = std::uint64_t;

inline constexpr Hertz kMHz = 1'000'000;

/// Convert a cycle count at `clock` into seconds.
constexpr double cycles_to_seconds(Cycle cycles, Hertz clock) {
  return static_cast<double>(cycles) / static_cast<double>(clock);
}

/// Convert a cycle count at `clock` into milliseconds.
constexpr double cycles_to_ms(Cycle cycles, Hertz clock) {
  return cycles_to_seconds(cycles, clock) * 1e3;
}

}  // namespace nvsoc
