#include "common/fp16.hpp"

#include <bit>
#include <cstring>

namespace nvsoc {

std::uint16_t float_to_half_bits(float value) {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::int32_t exp = static_cast<std::int32_t>((f >> 23) & 0xFF) - 127;
  std::uint32_t mant = f & 0x007FFFFFu;

  if (exp == 128) {  // Inf or NaN
    if (mant != 0) return static_cast<std::uint16_t>(sign | 0x7E00u);  // qNaN
    return static_cast<std::uint16_t>(sign | 0x7C00u);                 // Inf
  }
  if (exp > 15) {  // overflow -> Inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (exp >= -14) {  // normal half
    // Round mantissa from 23 to 10 bits, round-to-nearest-even.
    std::uint32_t half_exp = static_cast<std::uint32_t>(exp + 15);
    std::uint32_t rounded = mant + 0x00000FFFu + ((mant >> 13) & 1u);
    if (rounded & 0x00800000u) {  // mantissa overflow bumps exponent
      rounded = 0;
      ++half_exp;
      if (half_exp >= 31) return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
    return static_cast<std::uint16_t>(sign | (half_exp << 10) |
                                      (rounded >> 13));
  }
  if (exp >= -25) {  // denormal half
    mant |= 0x00800000u;  // implicit leading 1
    const unsigned shift = static_cast<unsigned>(-exp - 14 + 13);
    std::uint32_t denorm = mant >> shift;
    // Round to nearest even on the dropped bits.
    const std::uint32_t rem_mask = (1u << shift) - 1u;
    const std::uint32_t rem = mant & rem_mask;
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (denorm & 1u))) ++denorm;
    return static_cast<std::uint16_t>(sign | denorm);
  }
  return static_cast<std::uint16_t>(sign);  // underflow -> signed zero
}

float half_bits_to_float(std::uint16_t bits) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000u)
                             << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  std::uint32_t mant = bits & 0x03FFu;

  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // zero
    } else {
      // Denormal: normalise.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x0400u) == 0);
      out = sign | ((127 - 15 - e) << 23) | ((m & 0x03FFu) << 13);
    }
  } else if (exp == 31) {
    out = sign | 0x7F800000u | (mant << 13);  // Inf / NaN
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

}  // namespace nvsoc
