// Bit- and alignment-manipulation helpers used by bus models, the RISC-V
// decoder and the NVDLA register file.
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace nvsoc {

/// True when `value` is a power of two (zero is not).
constexpr bool is_pow2(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Round `value` up to the next multiple of `align` (align must be pow2).
constexpr std::uint64_t align_up(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}

/// Round `value` down to the previous multiple of `align` (align pow2).
constexpr std::uint64_t align_down(std::uint64_t value, std::uint64_t align) {
  return value & ~(align - 1);
}

/// True when `value` is a multiple of `align` (align must be pow2).
constexpr bool is_aligned(std::uint64_t value, std::uint64_t align) {
  return (value & (align - 1)) == 0;
}

/// Extract bits [lo, lo+width) of `value`.
constexpr std::uint32_t bits(std::uint32_t value, unsigned lo, unsigned width) {
  return (value >> lo) & ((width >= 32) ? ~0u : ((1u << width) - 1u));
}

/// Extract the single bit `pos` of `value`.
constexpr std::uint32_t bit(std::uint32_t value, unsigned pos) {
  return (value >> pos) & 1u;
}

/// Sign-extend the low `width` bits of `value` to a signed 32-bit integer.
constexpr std::int32_t sign_extend(std::uint32_t value, unsigned width) {
  const unsigned shift = 32 - width;
  return static_cast<std::int32_t>(value << shift) >> shift;
}

/// Integer ceiling division for non-negative operands.
template <typename T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return (a + b - 1) / b;
}

/// Saturate a wide integer into the signed 8-bit range (NVDLA INT8 output).
constexpr std::int8_t saturate_i8(std::int64_t v) {
  if (v > 127) return 127;
  if (v < -128) return -128;
  return static_cast<std::int8_t>(v);
}

/// Saturate a wide integer into the signed 32-bit range (NVDLA accumulator).
constexpr std::int32_t saturate_i32(std::int64_t v) {
  if (v > INT32_MAX) return INT32_MAX;
  if (v < INT32_MIN) return INT32_MIN;
  return static_cast<std::int32_t>(v);
}

}  // namespace nvsoc
