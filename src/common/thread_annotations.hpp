// Clang thread-safety-analysis annotation macros (the Abseil capability
// model).  Under Clang with -Wthread-safety these expand to attributes the
// static analysis consumes; everywhere else they compile to nothing, so the
// annotated code builds identically under GCC/MSVC.
//
// Vocabulary (see src/common/mutex.hpp for the annotated primitives):
//   CAPABILITY("mutex")   - a type that is a lockable capability
//   SCOPED_CAPABILITY     - an RAII type that acquires/releases a capability
//   GUARDED_BY(mu)        - data member readable/writable only while mu is held
//   PT_GUARDED_BY(mu)     - pointed-to data guarded by mu (the pointer itself
//                           may be read freely)
//   REQUIRES(mu)          - function precondition: caller already holds mu
//   EXCLUDES(mu)          - function precondition: caller must NOT hold mu
//                           (the function takes it internally)
//   ACQUIRE(mu)/RELEASE(mu) - function acquires/releases mu itself
//   TRY_ACQUIRE(ok, mu)   - conditional acquire; holds mu iff it returned ok
//   ASSERT_CAPABILITY(mu) - runtime assertion that mu is held (teaches the
//                           analysis without a lock operation)
//   RETURN_CAPABILITY(mu) - function returns a reference to mu
//   TS_NO_ANALYSIS        - opt this function out of the analysis; every use
//                           must carry a comment saying why it is sound
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define NVSOC_TS_ATTRIBUTE__(x) __attribute__((x))
#else
#define NVSOC_TS_ATTRIBUTE__(x)  // no-op off Clang
#endif

#define CAPABILITY(x) NVSOC_TS_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY NVSOC_TS_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) NVSOC_TS_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) NVSOC_TS_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) NVSOC_TS_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) NVSOC_TS_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  NVSOC_TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  NVSOC_TS_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) NVSOC_TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  NVSOC_TS_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) NVSOC_TS_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  NVSOC_TS_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  NVSOC_TS_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  NVSOC_TS_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  NVSOC_TS_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) NVSOC_TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) NVSOC_TS_ATTRIBUTE__(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  NVSOC_TS_ATTRIBUTE__(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) NVSOC_TS_ATTRIBUTE__(lock_returned(x))

#define TS_NO_ANALYSIS NVSOC_TS_ATTRIBUTE__(no_thread_safety_analysis)
