// Minimal leveled logger. Components log through a named Logger so traces
// can be filtered per subsystem (e.g. "nvdla.csb_adaptor", which the
// toolflow's VP-log parser keys on).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

#include "common/strfmt.hpp"

namespace nvsoc {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration: level threshold and an optional sink override
/// (used by the virtual platform to capture adaptor traces into a file).
class LogConfig {
 public:
  static LogConfig& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  /// Replace the stderr sink. Pass nullptr to restore the default.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  bool sink_installed() const { return static_cast<bool>(sink_); }

  void emit(LogLevel level, std::string_view component,
            std::string_view message);

 private:
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

/// Named logger handle; cheap to copy.
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  const std::string& component() const { return component_; }

  template <typename... Args>
  void trace(std::string_view fmt, const Args&... args) const {
    log(LogLevel::kTrace, fmt, args...);
  }
  template <typename... Args>
  void debug(std::string_view fmt, const Args&... args) const {
    log(LogLevel::kDebug, fmt, args...);
  }
  template <typename... Args>
  void info(std::string_view fmt, const Args&... args) const {
    log(LogLevel::kInfo, fmt, args...);
  }
  template <typename... Args>
  void warn(std::string_view fmt, const Args&... args) const {
    log(LogLevel::kWarn, fmt, args...);
  }
  template <typename... Args>
  void error(std::string_view fmt, const Args&... args) const {
    log(LogLevel::kError, fmt, args...);
  }

 private:
  template <typename... Args>
  void log(LogLevel level, std::string_view fmt, const Args&... args) const {
    auto& cfg = LogConfig::instance();
    // When a sink is installed it must observe every line (the VP trace
    // capture keys on adaptor lines regardless of the console threshold).
    if (level < cfg.level() && !cfg.sink_installed()) return;
    cfg.emit(level, component_, strfmt(fmt, args...));
  }

  std::string component_;
};

}  // namespace nvsoc
