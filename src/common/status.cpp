#include "common/status.hpp"

namespace nvsoc {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnaligned: return "UNALIGNED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kUnsupported: return "UNSUPPORTED";
    case StatusCode::kBusError: return "BUS_ERROR";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::expect_ok(const char* context) const {
  if (is_ok()) return;
  throw std::runtime_error(std::string(context) + ": " + to_string());
}

}  // namespace nvsoc
