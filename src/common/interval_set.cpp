#include "common/interval_set.hpp"

#include <algorithm>

namespace nvsoc {

void IntervalSet::insert(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;
  // Find the first interval that could overlap or touch [begin, end).
  auto it = intervals_.upper_bound(begin);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {  // overlaps or touches from the left
      begin = prev->first;
      end = std::max(end, prev->second);
      it = intervals_.erase(prev);
    }
  }
  while (it != intervals_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = intervals_.erase(it);
  }
  intervals_.emplace(begin, end);
}

bool IntervalSet::covers(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return true;
  auto it = intervals_.upper_bound(begin);
  if (it == intervals_.begin()) return false;
  --it;
  return it->first <= begin && it->second >= end;
}

bool IntervalSet::intersects(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return false;
  auto it = intervals_.upper_bound(begin);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) return true;
  }
  return it != intervals_.end() && it->first < end;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> IntervalSet::gaps(
    std::uint64_t begin, std::uint64_t end) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  std::uint64_t cursor = begin;
  auto it = intervals_.upper_bound(begin);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > cursor) cursor = std::min(prev->second, end);
  }
  while (cursor < end && it != intervals_.end() && it->first < end) {
    if (it->first > cursor) out.emplace_back(cursor, it->first);
    cursor = std::max(cursor, std::min(it->second, end));
    ++it;
  }
  if (cursor < end) out.emplace_back(cursor, end);
  return out;
}

std::uint64_t IntervalSet::covered_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [begin, end] : intervals_) total += end - begin;
  return total;
}

}  // namespace nvsoc
