#include "common/log.hpp"

namespace nvsoc {

LogConfig& LogConfig::instance() {
  static LogConfig config;
  return config;
}

void LogConfig::emit(LogLevel level, std::string_view component,
                     std::string_view message) {
  if (sink_) {
    sink_(level, component, message);
    return;
  }
  if (level < level_) return;
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN", "ERROR", "OFF"};
  std::fprintf(stderr, "[%s] %.*s: %.*s\n",
               kNames[static_cast<int>(level)],
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace nvsoc
