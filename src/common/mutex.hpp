// Annotated lock primitives for Clang thread-safety analysis.
//
// nvsoc::Mutex wraps std::mutex as a CAPABILITY so members can be declared
// GUARDED_BY(mutex_) and helpers REQUIRES(mutex_); MutexLock is the RAII
// scoped capability (relock-capable, for unlock-around-work patterns); CondVar
// is a condition variable whose wait() REQUIRES the caller's Mutex.
//
// CondVar deliberately has NO predicate-wait overload: Clang analyzes lambda
// bodies as separate functions, so a `[&]{ return guarded_; }` predicate
// would be flagged as an unguarded access even though the wait holds the
// lock.  Write the loop explicitly instead:
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(mutex_);
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace nvsoc {

class CondVar;

// A std::mutex the analysis understands.  Prefer MutexLock over manual
// lock()/unlock() pairs; the manual API exists for the rare hand-over-hand
// or adopt patterns.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;  // CondVar::wait needs the native handle
  std::mutex m_;
};

// RAII scoped acquisition of a Mutex.  Supports temporary release via
// unlock()/lock() (the thread-pool worker loop drops the lock around task
// execution); the destructor releases only if currently held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Re-acquire after unlock().  Calling while held is a bug.
  void lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  // Release early (before destruction).  Calling while not held is a bug.
  void unlock() RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_;
};

// Condition variable for use with Mutex.  Every wait requires the caller to
// hold the mutex it names; spurious wakeups are possible, so always wait in
// a `while (!condition)` loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically release mu, block, and re-acquire mu before returning.
  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  // Timed wait; returns std::cv_status::timeout if rel_time elapsed.
  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& rel_time)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(lock, rel_time);
    lock.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nvsoc
