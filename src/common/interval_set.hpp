// Half-open interval set over 64-bit addresses. Used by the toolflow's
// weight extractor to distinguish cold reads (weights / input image) from
// reads of data the accelerator itself produced earlier in the trace.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace nvsoc {

class IntervalSet {
 public:
  /// Insert [begin, end); coalesces with neighbours.
  void insert(std::uint64_t begin, std::uint64_t end);

  /// True when [begin, end) is fully covered.
  bool covers(std::uint64_t begin, std::uint64_t end) const;

  /// True when any byte of [begin, end) is covered.
  bool intersects(std::uint64_t begin, std::uint64_t end) const;

  /// Sub-ranges of [begin, end) NOT covered by the set, in order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> gaps(
      std::uint64_t begin, std::uint64_t end) const;

  std::uint64_t covered_bytes() const;
  std::size_t interval_count() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }

  /// The coalesced [begin, end) intervals, in address order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals() const {
    return {intervals_.begin(), intervals_.end()};
  }

 private:
  std::map<std::uint64_t, std::uint64_t> intervals_;  ///< begin -> end
};

}  // namespace nvsoc
