// Deterministic pseudo-random generator (SplitMix64 + xoshiro256**) used for
// synthetic weights, test vectors and property sweeps. Deterministic across
// platforms so EXPERIMENTS.md numbers are reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace nvsoc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64()); }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
  }

  /// Roughly normal (sum of uniforms), mean 0, std ~1. Good enough for
  /// synthetic weight tensors.
  float next_gaussian() {
    float s = 0.0f;
    for (int i = 0; i < 12; ++i) s += next_float();
    return s - 6.0f;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace nvsoc
