#include "mem/program_memory.hpp"

#include <algorithm>
#include <cstring>
#include "common/strfmt.hpp"
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nvsoc {

ProgramMemory::ProgramMemory(std::uint64_t size_bytes)
    : data_(size_bytes, 0) {
  if (size_bytes == 0 || (size_bytes % 4) != 0) {
    throw std::runtime_error("program memory size must be a nonzero word "
                             "multiple");
  }
}

BusResponse ProgramMemory::access(const BusRequest& req) {
  if (req.addr + 4 > data_.size() || (req.addr & 0x3u) != 0) {
    BusResponse rsp{
        Status(StatusCode::kBusError,
               strfmt("program memory access fault at {:#x}", req.addr)),
        0, req.start + 1};
    stats_.note(req, rsp, 1);
    return rsp;
  }
  BusResponse rsp{Status::ok(), 0, req.start + 1};  // BRAM: 1-cycle access
  if (req.is_write) {
    for (unsigned i = 0; i < 4; ++i) {
      if (req.byte_enable & (1u << i)) {
        data_[req.addr + i] = static_cast<std::uint8_t>(req.wdata >> (8 * i));
      }
    }
    notify_code_write(req.addr, 4);
  } else {
    Word value = 0;
    std::memcpy(&value, data_.data() + req.addr, 4);
    rsp.rdata = value;
  }
  stats_.note(req, rsp, 1);
  return rsp;
}

void ProgramMemory::load_image(Addr base, std::span<const std::uint8_t> image) {
  if (base + image.size() > data_.size()) {
    throw std::runtime_error(
        strfmt("program image at {:#x}+{} exceeds memory of {} bytes",
                    base, image.size(), data_.size()));
  }
  std::memcpy(data_.data() + base, image.data(), image.size());
  notify_code_write(base, image.size());
}

std::size_t ProgramMemory::load_mem_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open .mem file: " + path.string());
  std::stringstream buffer;
  buffer << in.rdbuf();
  return load_mem_text(buffer.str());
}

std::size_t ProgramMemory::load_mem_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  Addr addr = 0;
  std::size_t words = 0;
  Addr lo = 0;
  Addr hi = 0;  // envelope of all words written, reported once at the end
  while (std::getline(in, line)) {
    if (const auto comment = line.find("//"); comment != std::string::npos) {
      line.resize(comment);
    }
    // Trim whitespace.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    std::string token = line.substr(first, last - first + 1);
    if (token.empty()) continue;
    if (token[0] == '@') {
      addr = std::stoull(token.substr(1), nullptr, 16) * 4;  // word address
      continue;
    }
    const Word value = static_cast<Word>(std::stoul(token, nullptr, 16));
    if (addr + 4 > data_.size()) {
      throw std::runtime_error(".mem image exceeds program memory");
    }
    std::memcpy(data_.data() + addr, &value, 4);
    if (words == 0) {
      lo = addr;
      hi = addr + 4;
    } else {
      lo = std::min(lo, addr);
      hi = std::max(hi, addr + 4);
    }
    addr += 4;
    ++words;
  }
  if (words > 0) notify_code_write(lo, hi - lo);
  return words;
}

void ProgramMemory::add_code_write_listener(std::weak_ptr<Listener> fn) {
  listeners_.push_back(std::move(fn));
}

void ProgramMemory::notify_code_write(Addr base, std::uint64_t bytes) {
  std::erase_if(listeners_, [](const auto& weak) { return weak.expired(); });
  for (const auto& weak : listeners_) {
    if (const auto fn = weak.lock()) (*fn)(base, bytes);
  }
}

Word ProgramMemory::word_at(Addr addr) const {
  if (addr + 4 > data_.size()) {
    throw std::runtime_error("word_at out of range");
  }
  Word value = 0;
  std::memcpy(&value, data_.data() + addr, 4);
  return value;
}

}  // namespace nvsoc
