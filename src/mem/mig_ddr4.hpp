// MIG DDR4 memory-controller front-end (Fig. 4). Wraps the raw DRAM array
// with controller behaviour visible at the AXI boundary: a fixed
// command-queue latency per request and periodic refresh windows during
// which the controller stalls new requests (tREFI / tRFC, scaled to the
// 100 MHz user-interface clock of the paper's set-up).
#pragma once

#include "bus/bus_types.hpp"
#include "mem/dram.hpp"

namespace nvsoc {

struct MigTiming {
  Cycle queue_latency = 6;     ///< controller command path (first of a burst)
  Cycle refresh_interval = 780;  ///< tREFI at 100 MHz UI clock (7.8 us)
  Cycle refresh_duration = 35;   ///< tRFC
  /// A request arriving within this window of the previous completion rides
  /// the already-open command pipeline and skips the queue latency.
  Cycle streaming_gap = 2;
};

class MigDdr4 final : public BusTarget {
 public:
  MigDdr4(Dram& dram, MigTiming timing = {}) : dram_(dram), timing_(timing) {}

  BusResponse access(const BusRequest& req) override;
  std::string_view name() const override { return "mig_ddr4"; }

  const BusStats& stats() const { return stats_; }
  std::uint64_t refresh_stall_cycles() const { return refresh_stalls_; }

 private:
  /// If `t` lands inside a refresh window, returns the end of that window.
  Cycle defer_for_refresh(Cycle t) const;

  Dram& dram_;
  MigTiming timing_;
  BusStats stats_;
  Cycle last_complete_ = 0;
  std::uint64_t refresh_stalls_ = 0;
};

}  // namespace nvsoc
