// RISC-V program memory, implemented on the FPGA with block RAMs and loaded
// with machine code generated from the configuration file in .mem format
// (one 32-bit hex word per line, the Vivado $readmemh convention).
// Single-cycle access, as for true dual-port BRAM at the core clock.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bus/bus_types.hpp"

namespace nvsoc {

class ProgramMemory final : public BusTarget {
 public:
  explicit ProgramMemory(std::uint64_t size_bytes);

  BusResponse access(const BusRequest& req) override;
  std::string_view name() const override { return "program_memory"; }

  /// Load a binary image at `base` (backdoor, zero simulated time).
  void load_image(Addr base, std::span<const std::uint8_t> image);

  /// Load a Vivado-style .mem file: '//' comments, optional `@addr` records,
  /// one 32-bit hex word per line. Returns the number of words loaded.
  std::size_t load_mem_file(const std::filesystem::path& path);

  /// Parse .mem text directly (used by the toolflow round-trip tests).
  std::size_t load_mem_text(const std::string& text);

  Word word_at(Addr addr) const;
  std::uint64_t size_bytes() const { return data_.size(); }
  const BusStats& stats() const { return stats_; }

 private:
  std::vector<std::uint8_t> data_;
  BusStats stats_;
};

}  // namespace nvsoc
