// RISC-V program memory, implemented on the FPGA with block RAMs and loaded
// with machine code generated from the configuration file in .mem format
// (one 32-bit hex word per line, the Vivado $readmemh convention).
// Single-cycle access, as for true dual-port BRAM at the core clock.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bus/bus_types.hpp"

namespace nvsoc {

class ProgramMemory final : public BusTarget, public CodeWriteSource {
 public:
  explicit ProgramMemory(std::uint64_t size_bytes);

  BusResponse access(const BusRequest& req) override;
  std::string_view name() const override { return "program_memory"; }

  // CodeWriteSource: every mutation path (bus-side stores, backdoor image
  // loads, .mem reloads) reports the byte range written, so the ISS decode
  // cache stays coherent across program reloads and self-modifying code.
  // Listeners fire synchronously on the writing thread (one simulated SoC
  // owns a ProgramMemory at a time, so no locking); expired registrations
  // are pruned as they are encountered.
  void add_code_write_listener(std::weak_ptr<Listener> fn) override;

  /// Load a binary image at `base` (backdoor, zero simulated time).
  void load_image(Addr base, std::span<const std::uint8_t> image);

  /// Load a Vivado-style .mem file: '//' comments, optional `@addr` records,
  /// one 32-bit hex word per line. Returns the number of words loaded.
  std::size_t load_mem_file(const std::filesystem::path& path);

  /// Parse .mem text directly (used by the toolflow round-trip tests).
  std::size_t load_mem_text(const std::string& text);

  Word word_at(Addr addr) const;
  std::uint64_t size_bytes() const { return data_.size(); }
  const BusStats& stats() const { return stats_; }

 private:
  void notify_code_write(Addr base, std::uint64_t bytes);

  std::vector<std::uint8_t> data_;
  BusStats stats_;
  std::vector<std::weak_ptr<Listener>> listeners_;
};

}  // namespace nvsoc
