// Sparse DRAM model backing the SoC's 512 MB data memory.
//
// Storage is a page map so mapping the full 512 MB window costs only what is
// actually touched. Timing follows a simple open-row model: an access to the
// currently open row costs `row_hit` cycles, switching rows costs
// `row_miss`, and each additional sequential word streams at one word per
// cycle. A byte-level backdoor lets the Zynq-PS loader (Fig. 4) and the
// virtual platform initialise weights and images without consuming simulated
// bus cycles, exactly like preloading DDR through the PS before flipping the
// SmartConnect mux.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bus/bus_types.hpp"

namespace nvsoc {

struct DramTiming {
  Cycle row_hit = 4;    ///< CAS-to-data for an open row
  Cycle row_miss = 12;  ///< precharge + activate + CAS
  std::uint32_t row_bytes = 2048;  ///< row (page) size for the locality model
  /// Back-to-back accesses to the open row stream at one beat per cycle
  /// (DDR burst pipelining): a request issued within `streaming_gap` cycles
  /// of the previous completion pays `streaming_beat` instead of `row_hit`.
  Cycle streaming_gap = 2;
  Cycle streaming_beat = 1;
};

class Dram final : public BusTarget {
 public:
  /// `size_bytes` bounds the addressable window (requests beyond it are bus
  /// errors, as they would fall off the MIG's mapped range).
  explicit Dram(std::uint64_t size_bytes, DramTiming timing = {});

  // --- 32-bit bus port (through arbiter / bridges) ------------------------
  BusResponse access(const BusRequest& req) override;
  std::string_view name() const override { return "dram"; }

  // --- zero-time backdoor (PS preload, VP, test fixtures) -----------------
  void write_bytes(Addr addr, std::span<const std::uint8_t> data);
  void read_bytes(Addr addr, std::span<std::uint8_t> out) const;
  std::uint8_t read_byte(Addr addr) const;
  void fill(Addr addr, std::uint8_t value, std::uint64_t count);

  std::uint64_t size_bytes() const { return size_; }
  std::uint64_t touched_pages() const { return pages_.size(); }
  const BusStats& stats() const { return stats_; }

 private:
  static constexpr std::uint64_t kPageBytes = 4096;

  std::uint8_t* page_for(Addr addr, bool create);
  const std::uint8_t* page_for(Addr addr) const;

  std::uint64_t size_;
  DramTiming timing_;
  std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>> pages_;
  std::uint64_t open_row_ = ~0ull;
  Cycle last_complete_ = 0;
  BusStats stats_;
};

}  // namespace nvsoc
