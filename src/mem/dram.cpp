#include "mem/dram.hpp"

#include <cstring>
#include "common/strfmt.hpp"
#include <stdexcept>

namespace nvsoc {

Dram::Dram(std::uint64_t size_bytes, DramTiming timing)
    : size_(size_bytes), timing_(timing) {
  if (size_bytes == 0) throw std::runtime_error("DRAM size must be nonzero");
}

std::uint8_t* Dram::page_for(Addr addr, bool create) {
  const std::uint64_t page_index = addr / kPageBytes;
  auto it = pages_.find(page_index);
  if (it == pages_.end()) {
    if (!create) return nullptr;
    auto page = std::make_unique<std::uint8_t[]>(kPageBytes);
    std::memset(page.get(), 0, kPageBytes);
    it = pages_.emplace(page_index, std::move(page)).first;
  }
  return it->second.get();
}

const std::uint8_t* Dram::page_for(Addr addr) const {
  const auto it = pages_.find(addr / kPageBytes);
  return it == pages_.end() ? nullptr : it->second.get();
}

BusResponse Dram::access(const BusRequest& req) {
  if (req.addr + 4 > size_) {
    BusResponse rsp{Status(StatusCode::kOutOfRange,
                           strfmt("DRAM access at {:#x} beyond {:#x}",
                                       req.addr, size_)),
                    0, req.start + 1};
    stats_.note(req, rsp, 1);
    return rsp;
  }
  if ((req.addr & 0x3u) != 0) {
    BusResponse rsp{Status(StatusCode::kUnaligned,
                           strfmt("DRAM word access at {:#x} unaligned",
                                       req.addr)),
                    0, req.start + 1};
    stats_.note(req, rsp, 1);
    return rsp;
  }

  const std::uint64_t row = req.addr / timing_.row_bytes;
  Cycle latency;
  if (row != open_row_) {
    latency = timing_.row_miss;
  } else if (last_complete_ > 0 &&
             req.start <= last_complete_ + timing_.streaming_gap) {
    latency = timing_.streaming_beat;  // pipelined burst beat
  } else {
    latency = timing_.row_hit;
  }
  open_row_ = row;

  BusResponse rsp{Status::ok(), 0, req.start + latency};
  last_complete_ = rsp.complete;
  const std::uint64_t in_page = req.addr % kPageBytes;
  if (req.is_write) {
    std::uint8_t* page = page_for(req.addr, /*create=*/true);
    for (unsigned i = 0; i < 4; ++i) {
      if (req.byte_enable & (1u << i)) {
        page[in_page + i] = static_cast<std::uint8_t>(req.wdata >> (8 * i));
      }
    }
  } else {
    const std::uint8_t* page = page_for(req.addr);
    Word value = 0;
    if (page != nullptr) {
      std::memcpy(&value, page + in_page, 4);
    }
    rsp.rdata = value;
  }
  stats_.note(req, rsp, timing_.row_hit);
  return rsp;
}

void Dram::write_bytes(Addr addr, std::span<const std::uint8_t> data) {
  if (addr + data.size() > size_) {
    throw std::runtime_error(
        strfmt("DRAM backdoor write at {:#x}+{} beyond {:#x}", addr,
                    data.size(), size_));
  }
  std::size_t done = 0;
  while (done < data.size()) {
    const Addr cur = addr + done;
    const std::uint64_t in_page = cur % kPageBytes;
    const std::size_t chunk =
        std::min<std::size_t>(data.size() - done, kPageBytes - in_page);
    std::memcpy(page_for(cur, /*create=*/true) + in_page, data.data() + done,
                chunk);
    done += chunk;
  }
}

void Dram::read_bytes(Addr addr, std::span<std::uint8_t> out) const {
  if (addr + out.size() > size_) {
    throw std::runtime_error(
        strfmt("DRAM backdoor read at {:#x}+{} beyond {:#x}", addr,
                    out.size(), size_));
  }
  std::size_t done = 0;
  while (done < out.size()) {
    const Addr cur = addr + done;
    const std::uint64_t in_page = cur % kPageBytes;
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - done, kPageBytes - in_page);
    const std::uint8_t* page = page_for(cur);
    if (page == nullptr) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      std::memcpy(out.data() + done, page + in_page, chunk);
    }
    done += chunk;
  }
}

std::uint8_t Dram::read_byte(Addr addr) const {
  std::uint8_t value = 0;
  read_bytes(addr, {&value, 1});
  return value;
}

void Dram::fill(Addr addr, std::uint8_t value, std::uint64_t count) {
  std::vector<std::uint8_t> chunk(std::min<std::uint64_t>(count, kPageBytes),
                                  value);
  std::uint64_t done = 0;
  while (done < count) {
    const std::uint64_t n = std::min<std::uint64_t>(count - done, chunk.size());
    write_bytes(addr + done, {chunk.data(), n});
    done += n;
  }
}

}  // namespace nvsoc
