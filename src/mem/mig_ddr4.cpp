#include "mem/mig_ddr4.hpp"

namespace nvsoc {

Cycle MigDdr4::defer_for_refresh(Cycle t) const {
  // Refresh occupies [k*tREFI, k*tREFI + tRFC) for every positive integer k.
  if (timing_.refresh_interval == 0) return t;
  const Cycle phase = t % timing_.refresh_interval;
  if (t >= timing_.refresh_interval && phase < timing_.refresh_duration) {
    return t + (timing_.refresh_duration - phase);
  }
  return t;
}

BusResponse MigDdr4::access(const BusRequest& req) {
  const bool streaming =
      last_complete_ > 0 && req.start <= last_complete_ + timing_.streaming_gap;
  Cycle issue = req.start + (streaming ? 0 : timing_.queue_latency);
  const Cycle deferred = defer_for_refresh(issue);
  refresh_stalls_ += deferred - issue;

  BusRequest downstream = req;
  downstream.start = deferred;
  BusResponse rsp = dram_.access(downstream);
  if (rsp.status.is_ok()) last_complete_ = rsp.complete;
  stats_.note(req, rsp, timing_.queue_latency + 1);
  return rsp;
}

}  // namespace nvsoc
