#include "core/bare_metal_flow.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/strfmt.hpp"
#include "vp/replay_engine.hpp"

namespace nvsoc::core {

const SocExecution& ReplaySchedule::platform_record(
    const std::string& key,
    const std::function<SocExecution()>& compute) const {
  PlatformOnce* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(platforms_mutex_);
    auto& entry = platforms_[key];
    if (entry == nullptr) entry = std::make_unique<PlatformOnce>();
    slot = entry.get();
  }
  // The full simulation runs outside the map lock (other keys stay
  // available) but inside the slot's call_once: exactly one recording run
  // per key, with concurrent callers blocking until it lands.
  std::call_once(slot->once, [&] {
    slot->exec = compute();
    // The envelope is input-independent; the recording run's functional
    // results are not part of the record.
    slot->exec.output.clear();
    slot->exec.predicted_class = 0;
  });
  return slot->exec;
}

std::size_t ReplaySchedule::platform_record_count() const {
  std::lock_guard<std::mutex> lock(platforms_mutex_);
  return platforms_.size();
}

vp::ReplayEngine& ReplaySchedule::engine(
    const nvdla::NvdlaConfig& config) const {
  std::call_once(engine_once_, [&] {
    engine_ = std::make_unique<vp::ReplayEngine>(config);
    // Publish and apply any pending hook inside one hook_mutex_ critical
    // section: a concurrent set_checkin_hook either ran before (its hook
    // is in checkin_hook_ and applied here) or runs after (it sees
    // engine_live_ non-null and forwards directly).
    std::lock_guard<std::mutex> lock(hook_mutex_);
    if (checkin_hook_) engine_->set_checkin_hook(checkin_hook_);
    engine_live_.store(engine_.get(), std::memory_order_release);
  });
  return *engine_;
}

void ReplaySchedule::set_checkin_hook(std::function<void()> hook) const {
  std::lock_guard<std::mutex> lock(hook_mutex_);
  checkin_hook_ = std::move(hook);
  if (vp::ReplayEngine* live = engine_live_.load(std::memory_order_acquire)) {
    live->set_checkin_hook(checkin_hook_);
  }
}

std::uint64_t ReplaySchedule::resident_arena_bytes() const {
  const vp::ReplayEngine* live =
      engine_live_.load(std::memory_order_acquire);
  return live != nullptr ? live->resident_bytes() : 0;
}

std::uint64_t ReplaySchedule::release_arenas() const {
  vp::ReplayEngine* live = engine_live_.load(std::memory_order_acquire);
  return live != nullptr ? live->release_free_arenas() : 0;
}

std::shared_ptr<const ReplaySchedule> make_replay_schedule(
    vp::VpRunResult& vp_result) {
  auto schedule = std::make_shared<ReplaySchedule>();
  schedule->ops = std::move(vp_result.replay_ops);
  vp_result.replay_ops.clear();
  schedule->vp_total_cycles = vp_result.total_cycles;
  return schedule;
}

std::vector<float> replay_output(const PreparedModel& prepared) {
  const ReplaySchedule& schedule = prepared.replay_schedule();
  // The schedule-lifetime engine checks a preloaded per-worker arena out,
  // resets only the surfaces the previous image dirtied, and replays —
  // no per-image sparse-DRAM rebuild, no weight-blob re-copy.
  std::vector<float> output = schedule.engine(prepared.nvdla())
                                  .run(prepared.loadable(), schedule.ops,
                                       prepared.input);
  schedule.note_replay();
  return output;
}

PreparedModel prepare_model(const compiler::Network& network,
                            const FlowConfig& config) {
  PreparedModel prepared;
  auto frontend = std::make_shared<FrontendArtifacts>();
  frontend->model_name = network.name();
  frontend->nvdla = config.nvdla;

  // 1. Parameters and calibration input (stand-ins for the trained Caffe
  //    model and test image, per DESIGN.md substitutions).
  frontend->weights =
      compiler::NetWeights::synthetic(network, config.weight_seed);
  prepared.input =
      compiler::synthetic_input(network.input_shape(), config.input_seed);

  // 2. FP32 golden output + INT8 calibration table (future work §1).
  compiler::ReferenceExecutor reference(network, frontend->weights);
  prepared.reference_output = reference.run_to(prepared.input);
  if (config.precision == nvdla::Precision::kInt8) {
    frontend->calibration = compiler::calibrate(
        network, frontend->weights, std::span<const float>(prepared.input));
  }

  // 3. NVDLA compilation.
  frontend->loadable = compiler::compile(
      network, frontend->weights,
      config.precision == nvdla::Precision::kInt8 ? &frontend->calibration
                                                  : nullptr,
      compiler::CompileOptions::for_config(config.nvdla, config.precision));

  // 4. Virtual-platform execution with interface tracing (Fig. 3).
  auto tail = std::make_shared<TraceArtifacts>();
  vp::VirtualPlatform platform(config.nvdla);
  tail->vp = platform.run(frontend->loadable, prepared.input);

  // 5. Trace -> configuration file -> assembly -> machine code (Fig. 1).
  tail->config_file = toolflow::ConfigFile::from_trace(tail->vp.trace);
  toolflow::AsmOptions asm_options;
  asm_options.wait_mode = config.wait_mode;
  tail->program =
      toolflow::generate_program(tail->config_file, asm_options);

  prepared.replay = make_replay_schedule(tail->vp);
  prepared.frontend = std::move(frontend);
  prepared.tail = std::move(tail);
  return prepared;
}

vp::WeightFile PreparedModel::preload_weight_file() const {
  vp::WeightFile patched = tail->vp.weights;
  if (!vp_matches_input) {
    patched.overwrite(loadable().input_surface.base,
                      loadable().pack_input(input));
  }
  return patched;
}

namespace {

SocExecution finish_execution(soc::Soc& soc, Dram& dram,
                              const PreparedModel& prepared,
                              const rv::RunResult& cpu_result) {
  if (cpu_result.reason != rv::HaltReason::kEbreak) {
    throw std::runtime_error(
        std::string("SoC program did not reach ebreak: ") +
        rv::halt_reason_name(cpu_result.reason) + " " + cpu_result.detail);
  }
  SocExecution exec;
  exec.cpu = cpu_result;
  exec.cycles = cpu_result.cycles;
  exec.ms = soc.cycles_to_ms(cpu_result.cycles);

  std::vector<std::uint8_t> raw(prepared.loadable().output_surface.span_bytes());
  dram.read_bytes(prepared.loadable().output_surface.base, raw);
  exec.output = prepared.loadable().unpack_output(raw);
  exec.predicted_class = compiler::argmax(exec.output);
  exec.census = soc.bus_census();
  exec.engine_stats = soc.nvdla().stats();
  return exec;
}

}  // namespace

SocExecution execute_on_soc(const PreparedModel& prepared,
                            const FlowConfig& config) {
  soc::SocConfig soc_config;
  soc_config.clock = config.soc_clock;
  soc_config.nvdla = config.nvdla;
  soc_config.program_memory_bytes = config.program_memory_bytes;
  soc_config.dram_bytes = config.dram_bytes;
  soc_config.cpu.decode_cache = config.decode_cache;
  soc::Soc soc(soc_config);

  // Program memory <- .mem image; DRAM <- weight file + input image.
  soc.program_memory().load_mem_text(prepared.program().mem_text);
  for (const auto& chunk : prepared.vp().weights.chunks) {
    soc.dram().write_bytes(chunk.addr, chunk.bytes);
  }
  const auto input_bytes = prepared.loadable().pack_input(prepared.input);
  soc.dram().write_bytes(prepared.loadable().input_surface.base, input_bytes);

  const rv::RunResult result = soc.run();
  return finish_execution(soc, soc.dram(), prepared, result);
}

SocExecution execute_on_system_top(const PreparedModel& prepared,
                                   const FlowConfig& config) {
  soc::SystemTopConfig top_config;
  top_config.soc.clock = config.soc_clock;
  top_config.soc.nvdla = config.nvdla;
  top_config.soc.program_memory_bytes = config.program_memory_bytes;
  top_config.soc.dram_bytes = config.dram_bytes;
  top_config.soc.cpu.decode_cache = config.decode_cache;
  soc::SystemTop top(top_config);

  // Phase 1: the Zynq PS owns the DDR and preloads weights + input.
  top.switch_to_ps();
  top.ps_preload_weight_file(prepared.vp().weights);
  const auto input_bytes = prepared.loadable().pack_input(prepared.input);
  top.ps_preload_backdoor(prepared.loadable().input_surface.base, input_bytes);

  // Phase 2: flip the SmartConnect and run the SoC.
  top.switch_to_soc();
  top.soc().program_memory().load_mem_text(prepared.program().mem_text);
  const rv::RunResult result = top.soc().run();
  return finish_execution(top.soc(), top.ddr(), prepared, result);
}

namespace {

/// Everything input-independent that shapes a SoC-platform cycle count —
/// the record key of ReplaySchedule::platform_record: the NVDLA tree (it
/// sets the analytic timing), the wait mode, the memory sizes, and the
/// SoC clock. The clock matters on system_top — the CDC rescales DDR
/// latencies by the fabric/MIG clock ratio — so a re-clocked variant must
/// record its own envelope rather than reuse another clock's cycles.
std::string platform_key(const char* kind, const FlowConfig& config) {
  // decode_cache does not change the cycle count, but the recorded envelope
  // carries the CpuStats evidence (block hits, decoded blocks) of the run
  // that produced it, so cached/uncached variants keep distinct records.
  return strfmt("{}|{}|wait={}|pm={}|dram={}|clk={}|dc={}", kind,
                config.nvdla.name,
                config.wait_mode == toolflow::WaitMode::kPoll ? "poll" : "wfi",
                config.program_memory_bytes, config.dram_bytes,
                config.soc_clock, config.decode_cache ? 1 : 0);
}

SocExecution replay_on_platform(
    const PreparedModel& prepared, const FlowConfig& config, const char* kind,
    SocExecution (*execute)(const PreparedModel&, const FlowConfig&)) {
  const ReplaySchedule& schedule = prepared.replay_schedule();
  SocExecution exec = schedule.platform_record(
      platform_key(kind, config), [&] { return execute(prepared, config); });
  // Input-dependent results come from the functional replay; ms is
  // recomputed from the per-key recorded cycle count.
  exec.output = replay_output(prepared);
  exec.predicted_class = compiler::argmax(exec.output);
  exec.ms = cycles_to_ms(exec.cycles, config.soc_clock);
  return exec;
}

}  // namespace

SocExecution replay_on_soc(const PreparedModel& prepared,
                           const FlowConfig& config) {
  return replay_on_platform(prepared, config, "soc", &execute_on_soc);
}

SocExecution replay_on_system_top(const PreparedModel& prepared,
                                  const FlowConfig& config) {
  return replay_on_platform(prepared, config, "system_top",
                            &execute_on_system_top);
}

void record_replay_envelope_on_soc(const PreparedModel& prepared,
                                   const FlowConfig& config) {
  (void)prepared.replay_schedule().platform_record(
      platform_key("soc", config), [&] { return execute_on_soc(prepared,
                                                               config); });
}

void record_replay_envelope_on_system_top(const PreparedModel& prepared,
                                          const FlowConfig& config) {
  (void)prepared.replay_schedule().platform_record(
      platform_key("system_top", config),
      [&] { return execute_on_system_top(prepared, config); });
}

float max_abs_diff(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::runtime_error("max_abs_diff: size mismatch");
  }
  float max_err = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_err = std::max(max_err, std::fabs(a[i] - b[i]));
  }
  return max_err;
}

}  // namespace nvsoc::core
