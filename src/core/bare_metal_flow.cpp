#include "core/bare_metal_flow.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/strfmt.hpp"
#include "vp/replay_engine.hpp"

namespace nvsoc::core {

namespace {

/// FNV-1a over the raw op bytes. The schedule only ever compares a buffer
/// against its own frozen digest, so padding bytes hashing along is fine —
/// they are as stable (and as corruptible) as the payload fields.
std::uint64_t checksum_ops(const std::vector<nvdla::ReplayOp>& ops) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(ops.data());
  const std::size_t size = ops.size() * sizeof(nvdla::ReplayOp);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

bool ReplaySchedule::ops_intact() const {
  return checksum_ops(ops) == ops_checksum;
}

const SocExecution& ReplaySchedule::platform_record(
    const std::string& key,
    const std::function<SocExecution()>& compute) const {
  PlatformOnce* slot = nullptr;
  {
    MutexLock lock(platforms_mutex_);
    auto& entry = platforms_[key];
    if (entry == nullptr) entry = std::make_unique<PlatformOnce>();
    slot = entry.get();
  }
  // The full simulation runs outside the map lock (other keys stay
  // available) but inside the slot's call_once: exactly one recording run
  // per key, with concurrent callers blocking until it lands.
  std::call_once(slot->once, [&] {
    slot->exec = compute();
    // The envelope is input-independent; the recording run's functional
    // results are not part of the record.
    slot->exec.output.clear();
    slot->exec.predicted_class = 0;
  });
  return slot->exec;
}

std::size_t ReplaySchedule::platform_record_count() const {
  MutexLock lock(platforms_mutex_);
  return platforms_.size();
}

vp::ReplayEngine& ReplaySchedule::engine(
    const nvdla::NvdlaConfig& config) const {
  std::call_once(engine_once_, [&] {
    engine_ = std::make_unique<vp::ReplayEngine>(config);
    // Publish and apply any pending hook inside one hook_mutex_ critical
    // section: a concurrent set_checkin_hook either ran before (its hook
    // is in checkin_hook_ and applied here) or runs after (it sees
    // engine_live_ non-null and forwards directly).
    MutexLock lock(hook_mutex_);
    if (checkin_hook_) engine_->set_checkin_hook(checkin_hook_);
    engine_live_.store(engine_.get(), std::memory_order_release);
  });
  return *engine_;
}

void ReplaySchedule::set_checkin_hook(std::function<void()> hook) const {
  MutexLock lock(hook_mutex_);
  checkin_hook_ = std::move(hook);
  if (vp::ReplayEngine* live = engine_live_.load(std::memory_order_acquire)) {
    live->set_checkin_hook(checkin_hook_);
  }
}

std::uint64_t ReplaySchedule::resident_arena_bytes() const {
  const vp::ReplayEngine* live =
      engine_live_.load(std::memory_order_acquire);
  return live != nullptr ? live->resident_bytes() : 0;
}

std::uint64_t ReplaySchedule::release_arenas() const {
  vp::ReplayEngine* live = engine_live_.load(std::memory_order_acquire);
  return live != nullptr ? live->release_free_arenas() : 0;
}

std::shared_ptr<const ReplaySchedule> make_replay_schedule(
    vp::VpRunResult& vp_result) {
  auto schedule = std::make_shared<ReplaySchedule>();
  schedule->ops = std::move(vp_result.replay_ops);
  vp_result.replay_ops.clear();
  schedule->vp_total_cycles = vp_result.total_cycles;
  schedule->ops_checksum = checksum_ops(schedule->ops);
  return schedule;
}

std::vector<float> replay_output(const PreparedModel& prepared,
                                 fault::Injector* injector) {
  const ReplaySchedule& schedule = prepared.replay_schedule();
  // The schedule-lifetime engine checks a preloaded per-worker arena out,
  // resets only the surfaces the previous image dirtied, and replays —
  // no per-image sparse-DRAM rebuild, no weight-blob re-copy.
  std::vector<float> output = schedule.engine(prepared.nvdla())
                                  .run(prepared.loadable(), schedule.ops,
                                       prepared.input, injector);
  schedule.note_replay();
  return output;
}

PreparedModel prepare_model(const compiler::Network& network,
                            const FlowConfig& config) {
  PreparedModel prepared;
  auto frontend = std::make_shared<FrontendArtifacts>();
  frontend->model_name = network.name();
  frontend->nvdla = config.nvdla;

  // 1. Parameters and calibration input (stand-ins for the trained Caffe
  //    model and test image, per DESIGN.md substitutions).
  frontend->weights =
      compiler::NetWeights::synthetic(network, config.weight_seed);
  prepared.input =
      compiler::synthetic_input(network.input_shape(), config.input_seed);

  // 2. FP32 golden output + INT8 calibration table (future work §1).
  compiler::ReferenceExecutor reference(network, frontend->weights);
  prepared.reference_output = reference.run_to(prepared.input);
  if (config.precision == nvdla::Precision::kInt8) {
    frontend->calibration = compiler::calibrate(
        network, frontend->weights, std::span<const float>(prepared.input));
  }

  // 3. NVDLA compilation.
  frontend->loadable = compiler::compile(
      network, frontend->weights,
      config.precision == nvdla::Precision::kInt8 ? &frontend->calibration
                                                  : nullptr,
      compiler::CompileOptions::for_config(config.nvdla, config.precision));

  // 4. Virtual-platform execution with interface tracing (Fig. 3).
  auto tail = std::make_shared<TraceArtifacts>();
  vp::VirtualPlatform platform(config.nvdla);
  tail->vp = platform.run(frontend->loadable, prepared.input);

  // 5. Trace -> configuration file -> assembly -> machine code (Fig. 1).
  tail->config_file = toolflow::ConfigFile::from_trace(tail->vp.trace);
  toolflow::AsmOptions asm_options;
  asm_options.wait_mode = config.wait_mode;
  tail->program =
      toolflow::generate_program(tail->config_file, asm_options);

  prepared.replay = make_replay_schedule(tail->vp);
  prepared.frontend = std::move(frontend);
  prepared.tail = std::move(tail);
  return prepared;
}

vp::WeightFile PreparedModel::preload_weight_file() const {
  vp::WeightFile patched = tail->vp.weights;
  if (!vp_matches_input) {
    patched.overwrite(loadable().input_surface.base,
                      loadable().pack_input(input));
  }
  return patched;
}

namespace {

SocExecution finish_execution(soc::Soc& soc, Dram& dram,
                              const PreparedModel& prepared,
                              const rv::RunResult& cpu_result) {
  if (cpu_result.reason != rv::HaltReason::kEbreak) {
    const std::string what =
        std::string("SoC program did not reach ebreak: ") +
        rv::halt_reason_name(cpu_result.reason) + " " + cpu_result.detail;
    // Typed failure surface. Budget exhaustion (injected ISS stalls,
    // runaway programs) is a deadline. A bus-error halt carries the CSB/
    // DBB layer's status text in the halt detail (the CPU embeds
    // rsp.status.to_string()), so the typed code injected deep in the
    // platform is recovered here instead of collapsing to kInternal.
    if (cpu_result.reason == rv::HaltReason::kInstructionLimit) {
      throw StatusError(StatusCode::kDeadlineExceeded, what);
    }
    if (cpu_result.reason == rv::HaltReason::kBusError) {
      if (cpu_result.detail.find("DEADLINE_EXCEEDED") != std::string::npos) {
        throw StatusError(StatusCode::kDeadlineExceeded, what);
      }
      if (cpu_result.detail.find("UNAVAILABLE") != std::string::npos) {
        throw StatusError(StatusCode::kUnavailable, what);
      }
      throw StatusError(StatusCode::kBusError, what);
    }
    throw std::runtime_error(what);
  }
  SocExecution exec;
  exec.cpu = cpu_result;
  exec.cycles = cpu_result.cycles;
  exec.ms = soc.cycles_to_ms(cpu_result.cycles);

  std::vector<std::uint8_t> raw(prepared.loadable().output_surface.span_bytes());
  dram.read_bytes(prepared.loadable().output_surface.base, raw);
  exec.output = prepared.loadable().unpack_output(raw);
  exec.predicted_class = compiler::argmax(exec.output);
  exec.census = soc.bus_census();
  exec.engine_stats = soc.nvdla().stats();
  return exec;
}

/// Serving-copy weight corruption: flips a deterministic bit of the
/// preloaded DRAM weight image (the shared chunks stay immutable), so the
/// verify pass below detects it before the run can produce an answer.
void inject_weight_flips(Dram& dram, const vp::WeightFile& weights,
                         fault::Injector& injector) {
  std::uint64_t total = 0;
  for (const auto& chunk : weights.chunks) total += chunk.bytes.size();
  const auto corruption = injector.fire_corruption(total);
  if (!corruption) return;
  std::uint64_t off = corruption->offset;
  for (const auto& chunk : weights.chunks) {
    if (off < chunk.bytes.size()) {
      std::uint8_t byte = 0;
      dram.read_bytes(chunk.addr + off, std::span<std::uint8_t>(&byte, 1));
      byte ^= static_cast<std::uint8_t>(1u << corruption->bit);
      dram.write_bytes(chunk.addr + off,
                       std::span<const std::uint8_t>(&byte, 1));
      return;
    }
    off -= chunk.bytes.size();
  }
}

/// Post-preload integrity check: the DRAM weight image must match the
/// immutable chunks bit for bit, or the run refuses to start (kDataLoss) —
/// the no-wrong-answers guarantee for the cycle-accurate platforms.
void verify_weight_image(const Dram& dram, const vp::WeightFile& weights) {
  std::vector<std::uint8_t> readback;
  for (const auto& chunk : weights.chunks) {
    readback.resize(chunk.bytes.size());
    dram.read_bytes(chunk.addr, readback);
    if (!std::equal(readback.begin(), readback.end(), chunk.bytes.begin(),
                    chunk.bytes.end())) {
      throw StatusError(
          StatusCode::kDataLoss,
          strfmt("weight image corruption detected at DRAM {:#x} ({} bytes)",
                 chunk.addr, chunk.bytes.size()));
    }
  }
}

/// Instruction budget for one cycle-accurate run: the configured cap,
/// tightened to a small allowance when an injected ISS stall fires — the
/// run then halts at kInstructionLimit and surfaces kDeadlineExceeded.
std::uint64_t run_budget(const FlowConfig& config) {
  std::uint64_t budget = config.run_instruction_budget != 0
                             ? config.run_instruction_budget
                             : UINT64_MAX;
  if (config.fault != nullptr && config.fault->fire(fault::Kind::kIssStall)) {
    constexpr std::uint64_t kStallBudget = 20'000;
    budget = std::min(budget, kStallBudget);
  }
  return budget;
}

}  // namespace

SocExecution execute_on_soc(const PreparedModel& prepared,
                            const FlowConfig& config) {
  soc::SocConfig soc_config;
  soc_config.clock = config.soc_clock;
  soc_config.nvdla = config.nvdla;
  soc_config.program_memory_bytes = config.program_memory_bytes;
  soc_config.dram_bytes = config.dram_bytes;
  soc_config.cpu.decode_cache = config.decode_cache;
  soc_config.fault = config.fault;
  soc::Soc soc(soc_config);

  // Program memory <- .mem image; DRAM <- weight file + input image.
  soc.program_memory().load_mem_text(prepared.program().mem_text);
  for (const auto& chunk : prepared.vp().weights.chunks) {
    soc.dram().write_bytes(chunk.addr, chunk.bytes);
  }
  if (config.fault != nullptr) {
    inject_weight_flips(soc.dram(), prepared.vp().weights, *config.fault);
    verify_weight_image(soc.dram(), prepared.vp().weights);
  }
  const auto input_bytes = prepared.loadable().pack_input(prepared.input);
  soc.dram().write_bytes(prepared.loadable().input_surface.base, input_bytes);

  const rv::RunResult result = soc.run(run_budget(config));
  return finish_execution(soc, soc.dram(), prepared, result);
}

SocExecution execute_on_system_top(const PreparedModel& prepared,
                                   const FlowConfig& config) {
  soc::SystemTopConfig top_config;
  top_config.soc.clock = config.soc_clock;
  top_config.soc.nvdla = config.nvdla;
  top_config.soc.program_memory_bytes = config.program_memory_bytes;
  top_config.soc.dram_bytes = config.dram_bytes;
  top_config.soc.cpu.decode_cache = config.decode_cache;
  top_config.soc.fault = config.fault;
  soc::SystemTop top(top_config);

  // Phase 1: the Zynq PS owns the DDR and preloads weights + input.
  top.switch_to_ps();
  top.ps_preload_weight_file(prepared.vp().weights);
  if (config.fault != nullptr) {
    inject_weight_flips(top.ddr(), prepared.vp().weights, *config.fault);
    verify_weight_image(top.ddr(), prepared.vp().weights);
  }
  const auto input_bytes = prepared.loadable().pack_input(prepared.input);
  top.ps_preload_backdoor(prepared.loadable().input_surface.base, input_bytes);

  // Phase 2: flip the SmartConnect and run the SoC.
  top.switch_to_soc();
  top.soc().program_memory().load_mem_text(prepared.program().mem_text);
  const rv::RunResult result = top.soc().run(run_budget(config));
  return finish_execution(top.soc(), top.ddr(), prepared, result);
}

namespace {

/// Everything input-independent that shapes a SoC-platform cycle count —
/// the record key of ReplaySchedule::platform_record: the NVDLA tree (it
/// sets the analytic timing), the wait mode, the memory sizes, and the
/// SoC clock. The clock matters on system_top — the CDC rescales DDR
/// latencies by the fabric/MIG clock ratio — so a re-clocked variant must
/// record its own envelope rather than reuse another clock's cycles.
std::string platform_key(const char* kind, const FlowConfig& config) {
  // decode_cache does not change the cycle count, but the recorded envelope
  // carries the CpuStats evidence (block hits, decoded blocks) of the run
  // that produced it, so cached/uncached variants keep distinct records.
  // Fault-armed variants key their own envelopes too: their recording runs
  // may carry injected watchdog latencies or truncated budgets, which must
  // never leak into a fault-free variant's record (or vice versa).
  return strfmt("{}|{}|wait={}|pm={}|dram={}|clk={}|dc={}|fault={}|budget={}",
                kind, config.nvdla.name,
                config.wait_mode == toolflow::WaitMode::kPoll ? "poll" : "wfi",
                config.program_memory_bytes, config.dram_bytes,
                config.soc_clock, config.decode_cache ? 1 : 0,
                config.fault != nullptr ? config.fault->plan().to_string()
                                        : "none",
                config.run_instruction_budget);
}

SocExecution replay_on_platform(
    const PreparedModel& prepared, const FlowConfig& config, const char* kind,
    SocExecution (*execute)(const PreparedModel&, const FlowConfig&)) {
  const ReplaySchedule& schedule = prepared.replay_schedule();
  SocExecution exec = schedule.platform_record(
      platform_key(kind, config), [&] { return execute(prepared, config); });
  // Input-dependent results come from the functional replay; ms is
  // recomputed from the per-key recorded cycle count.
  exec.output = replay_output(prepared, config.fault.get());
  exec.predicted_class = compiler::argmax(exec.output);
  exec.ms = cycles_to_ms(exec.cycles, config.soc_clock);
  return exec;
}

}  // namespace

SocExecution replay_on_soc(const PreparedModel& prepared,
                           const FlowConfig& config) {
  return replay_on_platform(prepared, config, "soc", &execute_on_soc);
}

SocExecution replay_on_system_top(const PreparedModel& prepared,
                                  const FlowConfig& config) {
  return replay_on_platform(prepared, config, "system_top",
                            &execute_on_system_top);
}

void record_replay_envelope_on_soc(const PreparedModel& prepared,
                                   const FlowConfig& config) {
  (void)prepared.replay_schedule().platform_record(
      platform_key("soc", config), [&] { return execute_on_soc(prepared,
                                                               config); });
}

void record_replay_envelope_on_system_top(const PreparedModel& prepared,
                                          const FlowConfig& config) {
  (void)prepared.replay_schedule().platform_record(
      platform_key("system_top", config),
      [&] { return execute_on_system_top(prepared, config); });
}

float max_abs_diff(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::runtime_error("max_abs_diff: size mismatch");
  }
  float max_err = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_err = std::max(max_err, std::fabs(a[i] - b[i]));
  }
  return max_err;
}

}  // namespace nvsoc::core
