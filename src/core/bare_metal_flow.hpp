// Eager facade over the complete paper flow — the internal machinery the
// runtime API wraps. New code should program against `src/runtime/`
// (InferenceSession for staged/memoized preparation, BackendRegistry /
// ExecutionBackend for execution): it adds lazy stage reuse, batching and
// StatusOr error reporting on top of these entry points.
//
// Offline (Fig. 1): network -> synthetic/trained weights -> INT8
// calibration -> NVDLA compiler -> virtual-platform execution with CSB/DBB
// tracing -> configuration file -> RISC-V assembly -> machine code + weight
// file.
//
// Online (Fig. 2/4): preload DRAM with the weight file and input image,
// load program memory with the machine code, release the µRISC-V core, and
// read the result cube back when it hits ebreak.
//
// This is the API the examples and benches program against.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>  // std::once_flag / std::call_once
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "compiler/calibration.hpp"
#include "compiler/compile.hpp"
#include "compiler/network.hpp"
#include "compiler/reference.hpp"
#include "compiler/weights.hpp"
#include "fault/fault.hpp"
#include "soc/soc.hpp"
#include "soc/system_top.hpp"
#include "toolflow/asm_emitter.hpp"
#include "toolflow/config_file.hpp"
#include "vp/replay_engine.hpp"
#include "vp/virtual_platform.hpp"

namespace nvsoc::core {

struct FlowConfig {
  nvdla::NvdlaConfig nvdla = nvdla::NvdlaConfig::small();
  nvdla::Precision precision = nvdla::Precision::kInt8;
  std::uint64_t weight_seed = 42;
  std::uint64_t input_seed = 7;
  Hertz soc_clock = 100 * kMHz;  ///< Table II operating point
  /// How the generated program waits for layer completion: busy-polling
  /// (the paper's flow) or WFI + the NVDLA interrupt line (extension).
  toolflow::WaitMode wait_mode = toolflow::WaitMode::kPoll;
  /// BRAM program memory capacity (runtime backends reject machine code
  /// that overflows it before execution).
  std::uint64_t program_memory_bytes = 4 * 1024 * 1024;
  std::uint64_t dram_bytes = 512ull * 1024 * 1024;
  /// ISS decoded-block cache on the cycle-accurate path. Cycle counts and
  /// outputs are bit-identical either way; `false` forces the
  /// per-instruction oracle (`?decode_cache=off` on the backend spec).
  bool decode_cache = true;
  /// Deterministic fault injection for the serving path (`?fault=` on the
  /// backend spec). Armed per configured variant; nullptr (the default)
  /// means a fault-free platform. Staging/trace-recording runs never see
  /// the injector — corruption is only injected where detection exists.
  std::shared_ptr<fault::Injector> fault;
  /// Upper bound on retired instructions per cycle-accurate SoC run
  /// (0 = unlimited). Exhaustion halts the ISS with kInstructionLimit,
  /// surfaced as a typed kDeadlineExceeded — the mechanism behind injected
  /// ISS stalls and runaway-program containment.
  std::uint64_t run_instruction_budget = 0;
};

/// Input-independent artifacts of the offline frontend: network-level
/// products computed once per (network, config) and never mutated again.
/// Shared read-only — behind shared_ptr<const> — between every
/// PreparedModel that derives from them, so batch workers copy pointers,
/// not the multi-MB weight tensors.
struct FrontendArtifacts {
  std::string model_name;
  /// Hardware tree the flow targets (consumers check it against their own
  /// configuration before reusing downstream artifacts).
  nvdla::NvdlaConfig nvdla;
  compiler::NetWeights weights;
  compiler::CalibrationTable calibration;
  compiler::Loadable loadable;
};

/// Artifacts of one virtual-platform trace. The CSB register stream is
/// input-independent, so the configuration file, the bare-metal program
/// and the weight-file preload image captured here serve *every* image of
/// the session, not just the one that was traced. Immutable once built and
/// shared read-only like FrontendArtifacts; `vp.output`/`vp.total_cycles`
/// describe the traced image specifically (see
/// PreparedModel::vp_matches_input).
struct TraceArtifacts {
  vp::VpRunResult vp;                   ///< VP execution + traces
  toolflow::ConfigFile config_file;
  toolflow::BareMetalProgram program;   ///< assembly + machine code
};

/// Result of running the bare-metal program on the SoC model. CPU-side
/// counters (instructions, stalls, decode-cache evidence) live in
/// `cpu.stats` — the RunResult snapshot is the single source of truth.
struct SocExecution {
  rv::RunResult cpu;
  Cycle cycles = 0;
  double ms = 0.0;
  std::vector<float> output;
  std::size_t predicted_class = 0;
  soc::SocBusCensus census;
  nvdla::EngineStats engine_stats;
};

/// The recorded replay schedule of one (network, hardware-tree) pair — the
/// third immutable core next to FrontendArtifacts/TraceArtifacts, shared
/// via shared_ptr<const> by every PreparedModel snapshot of a session.
///
/// The schedule is input-independent (the paper's bare-metal-flow insight:
/// same CSB programming, same analytic timing for every image), so after
/// the one full cycle-accurate run that recorded it, any image can be
/// served by replaying `ops` functionally and reporting the recorded
/// cycles — bit-identical to a full re-run, without the ISS, the KMD, bus
/// arbitration or trace capture.
struct ReplaySchedule {
  /// Decoded functional ops in launch order, with analytic timing.
  std::vector<nvdla::ReplayOp> ops;
  /// KMD-driven VP execution time (driver start to last acknowledged
  /// interrupt) — what the `vp` backend reports per image.
  Cycle vp_total_cycles = 0;
  /// Integrity canary: FNV-1a over the recorded op bytes, frozen by
  /// make_replay_schedule. ops_intact() recomputes and compares — the
  /// session's golden probe quarantines a schedule whose ops were
  /// silently corrupted in memory.
  std::uint64_t ops_checksum = 0;
  bool ops_intact() const;

  /// Input-independent full-platform execution envelopes for the
  /// `?mode=replay` SoC backends, recorded by the first cycle-accurate run
  /// per platform key (backend kind + flow knobs that shape the cycle
  /// count). `compute` runs at most once per key; concurrent pooled
  /// workers block until the record exists. The stored SocExecution
  /// carries cycles and platform stats only — output/predicted_class are
  /// input-dependent and left to the functional replay.
  const SocExecution& platform_record(
      const std::string& key,
      const std::function<SocExecution()>& compute) const;

  /// How many platform envelopes have been recorded on this schedule
  /// (tests use it to assert that prepare_async staged the `?mode=replay`
  /// envelope eagerly, off the serving path).
  std::size_t platform_record_count() const;

  /// The schedule's session-lifetime functional replay engine: built once
  /// (thread-safe), it keeps one preloaded arena per concurrently
  /// replaying worker and resets — not rebuilds — them between images
  /// (see vp/replay_engine.hpp). A schedule serves exactly one compiled
  /// network, so the engine's arenas always match the caller's loadable.
  vp::ReplayEngine& engine(const nvdla::NvdlaConfig& config) const;

  /// How many functional replays executed against this schedule (all
  /// consumers: session runs and pooled snapshots alike).
  std::uint32_t replay_count() const {
    return replays_.load(std::memory_order_relaxed);
  }
  void note_replay() const {
    replays_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- byte accounting (the session's replay-budget eviction input) --------

  /// Heap bytes of the recorded schedule itself. The op descriptors are
  /// fixed-size PODs (no heap members), so the ops vector's capacity bounds
  /// the footprint — this is the cost of keeping a cold variant *staged*
  /// after its arenas are dropped.
  std::uint64_t schedule_bytes() const {
    return sizeof(ReplaySchedule) + ops.capacity() * sizeof(nvdla::ReplayOp);
  }

  /// Bytes currently held by the replay engine's arenas (0 until the first
  /// replay builds one). Never constructs the engine — accounting a cold
  /// schedule must not make it warmer.
  std::uint64_t resident_arena_bytes() const;

  /// Drop every checked-in replay arena, returning the bytes freed.
  /// Replays in flight keep their checked-out arenas (they return to the
  /// pool afterwards, reclaimable by a later call); the schedule and its
  /// engine survive, and the next replay rebuilds an arena from the
  /// loadable transparently. The session's byte-budget eviction drops
  /// these before it ever considers dropping the schedule itself.
  std::uint64_t release_arenas() const;

  /// Install (nullptr clears) the engine's post-check-in hook (see
  /// vp::ReplayEngine::set_checkin_hook). Applied to the live engine if
  /// one exists and remembered for an engine built later, so the session
  /// can attach its budget-enforcement callback before the first replay.
  /// Thread-safe.
  void set_checkin_hook(std::function<void()> hook) const;

 private:
  struct PlatformOnce {
    std::once_flag once;
    SocExecution exec;
  };
  mutable Mutex platforms_mutex_;
  /// Node-based on purpose: records keep a stable address once created.
  mutable std::map<std::string, std::unique_ptr<PlatformOnce>> platforms_
      GUARDED_BY(platforms_mutex_);
  mutable std::once_flag engine_once_;
  /// Written only inside the engine_once_ call_once (a discipline the
  /// capability analysis cannot express), read afterwards — unannotated.
  mutable std::unique_ptr<vp::ReplayEngine> engine_;
  /// Published (release) inside the engine_once_ build so the accounting
  /// accessors can reach a live engine without risking a call_once build.
  mutable std::atomic<vp::ReplayEngine*> engine_live_{nullptr};
  /// Pending check-in hook: hook_mutex_ orders set_checkin_hook against
  /// engine construction so neither direction can lose the hook.
  mutable Mutex hook_mutex_;
  mutable std::function<void()> checkin_hook_ GUARDED_BY(hook_mutex_);
  mutable std::atomic<std::uint32_t> replays_{0};
};

/// Everything the offline flow produces for one network + input.
///
/// Split into the shared immutable cores above plus a small per-input
/// repack surface (the input tensor and its FP32 reference). Copying a
/// PreparedModel — what every parallel batch worker does — therefore
/// copies three shared_ptrs and the input-sized vectors only; the weight
/// file, trace, program bytes and replay schedule are shared, never
/// duplicated.
struct PreparedModel {
  std::shared_ptr<const FrontendArtifacts> frontend;
  std::shared_ptr<const TraceArtifacts> tail;
  std::shared_ptr<const ReplaySchedule> replay;

  // --- per-input repack surface (the only mutable state) -------------------
  std::vector<float> input;             ///< planar float image
  /// FP32 golden output for `input`. Lazily maintained: the serving hot
  /// paths (pooled submit tasks, the repack fast path) leave it empty —
  /// it is a validation artifact, not an inference dependency — and
  /// InferenceSession::prepare()/prepared() fill it on demand.
  std::vector<float> reference_output;

  /// Whether the shared trace was produced by running the virtual platform
  /// on `input`. The repack-input fast path substitutes a new image
  /// without replaying the VP (the register stream — hence config file and
  /// program — is input-independent), which leaves `vp().output`
  /// describing the *traced* image; backends that report the accelerator's
  /// functional output (`vp`, `linux_baseline`) replay the recorded
  /// schedule when this is false instead of returning the stale tensor.
  bool vp_matches_input = true;

  /// Functional result for the current (repacked) input, filled lazily by
  /// the first backend that needed it because vp_matches_input is false —
  /// so repeated runs of the same repacked image pay for one replay, not
  /// one per call. Thread-safe compute-once memo: snapshots that share a
  /// surface (same image) share the memo, and concurrent pooled tasks
  /// cannot double-compute or tear the value (the losing callers block on
  /// the mutex until the winner's value is ready). Repacking to a new
  /// image swaps in a fresh memo. Deliberately NOT std::call_once: the
  /// compute may throw (an injected fault inside the VP re-run surfaces
  /// as a StatusError), and a throwing callable must leave the memo empty
  /// so a retry recomputes — pthread_once-based call_once is a known
  /// deadlock there under ThreadSanitizer, whose interceptor never
  /// releases the once-flag on the exceptional path.
  struct VpRefresh {
    Cycle total_cycles = 0;
    std::vector<float> output;
  };
  class VpRefreshMemo {
   public:
    const VpRefresh& get_or_compute(
        const std::function<VpRefresh()>& compute) const {
      MutexLock lock(mutex_);
      if (!ready_) {
        value_ = compute();  // may throw: memo stays empty for the retry
        ready_ = true;
      }
      return value_;  // immutable once ready_: the escaping ref is safe
    }

   private:
    mutable Mutex mutex_;
    mutable bool ready_ GUARDED_BY(mutex_) = false;
    mutable VpRefresh value_ GUARDED_BY(mutex_);
  };
  std::shared_ptr<VpRefreshMemo> vp_refresh =
      std::make_shared<VpRefreshMemo>();

  // --- views into the shared cores (valid once the stage is staged) --------
  bool has_frontend() const { return frontend != nullptr; }
  bool has_tail() const { return tail != nullptr; }
  bool has_replay() const { return replay != nullptr; }

  const std::string& model_name() const { return frontend->model_name; }
  const nvdla::NvdlaConfig& nvdla() const { return frontend->nvdla; }
  const compiler::NetWeights& weights() const { return frontend->weights; }
  const compiler::CalibrationTable& calibration() const {
    return frontend->calibration;
  }
  const compiler::Loadable& loadable() const { return frontend->loadable; }
  const vp::VpRunResult& vp() const { return tail->vp; }
  const toolflow::ConfigFile& config_file() const {
    return tail->config_file;
  }
  const toolflow::BareMetalProgram& program() const { return tail->program; }
  const ReplaySchedule& replay_schedule() const { return *replay; }

  /// The DRAM preload image for the *current* input: the shared weight
  /// file with this model's input surface patched in. Materializes a copy
  /// (the shared trace is immutable) — meant for data-product exports and
  /// parity checks; the execution paths write the packed input over the
  /// preloaded surface directly instead of copying megabytes per run.
  vp::WeightFile preload_weight_file() const;
};

/// Run the offline generation flow (Fig. 1) end to end.
PreparedModel prepare_model(const compiler::Network& network,
                            const FlowConfig& config);

/// Build the replay-schedule core from a freshly captured VP run, moving
/// the recorded ops out of it (the trace core does not need them).
std::shared_ptr<const ReplaySchedule> make_replay_schedule(
    vp::VpRunResult& vp_result);

/// Functional replay of the recorded schedule for `prepared`'s current
/// input: DMA payload movement plus op math only, on a fresh replay
/// memory. Output is bit-identical to a full VP re-run on the same image;
/// the accompanying cycle count is the schedule's recorded
/// `vp_total_cycles`. Requires has_replay(). Thread-safe (builds all state
/// locally; only bumps the schedule's replay counter). `injector` (may be
/// nullptr) arms per-replay fault injection: replay failures surface as
/// StatusError(kUnavailable), detected arena corruption as
/// StatusError(kDataLoss).
std::vector<float> replay_output(const PreparedModel& prepared,
                                 fault::Injector* injector = nullptr);

/// Execute on the standalone SoC (Fig. 2, internal DRAM model).
SocExecution execute_on_soc(const PreparedModel& prepared,
                            const FlowConfig& config);

/// Execute on the full board set-up (Fig. 4: Zynq-PS preload through the
/// SmartConnect, CDC to the MIG DDR4, then the SoC runs).
SocExecution execute_on_system_top(const PreparedModel& prepared,
                                   const FlowConfig& config);

/// Replay-mode execution on the SoC platforms (`?mode=replay`): the first
/// call per (platform, flow) key runs the full cycle-accurate simulation
/// and records its input-independent envelope (cycles, bus census, engine
/// and CPU stats) on the replay schedule; every later call replays the
/// functional ops for the output and reports the recorded envelope —
/// bit-identical to what a full re-run would produce, at functional-op
/// cost. Requires has_replay() (callers fall back to the full executors
/// otherwise).
SocExecution replay_on_soc(const PreparedModel& prepared,
                           const FlowConfig& config);
SocExecution replay_on_system_top(const PreparedModel& prepared,
                                  const FlowConfig& config);

/// Eagerly record the input-independent `?mode=replay` envelope for the
/// given platform + flow — the same record the first replay_on_* call
/// would produce lazily. Called from staging paths (prepare_async, the
/// backends' stage() hook) so the one full cycle-accurate recording run
/// happens off the serving hot path instead of stalling the first pooled
/// batch. Idempotent per (platform, flow) key; requires has_replay().
void record_replay_envelope_on_soc(const PreparedModel& prepared,
                                   const FlowConfig& config);
void record_replay_envelope_on_system_top(const PreparedModel& prepared,
                                          const FlowConfig& config);

/// Maximum |a-b| between two tensors (validation helper).
float max_abs_diff(std::span<const float> a, std::span<const float> b);

}  // namespace nvsoc::core
