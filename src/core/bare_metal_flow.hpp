// Eager facade over the complete paper flow — the internal machinery the
// runtime API wraps. New code should program against `src/runtime/`
// (InferenceSession for staged/memoized preparation, BackendRegistry /
// ExecutionBackend for execution): it adds lazy stage reuse, batching and
// StatusOr error reporting on top of these entry points.
//
// Offline (Fig. 1): network -> synthetic/trained weights -> INT8
// calibration -> NVDLA compiler -> virtual-platform execution with CSB/DBB
// tracing -> configuration file -> RISC-V assembly -> machine code + weight
// file.
//
// Online (Fig. 2/4): preload DRAM with the weight file and input image,
// load program memory with the machine code, release the µRISC-V core, and
// read the result cube back when it hits ebreak.
//
// This is the API the examples and benches program against.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compiler/calibration.hpp"
#include "compiler/compile.hpp"
#include "compiler/network.hpp"
#include "compiler/reference.hpp"
#include "compiler/weights.hpp"
#include "soc/soc.hpp"
#include "soc/system_top.hpp"
#include "toolflow/asm_emitter.hpp"
#include "toolflow/config_file.hpp"
#include "vp/virtual_platform.hpp"

namespace nvsoc::core {

struct FlowConfig {
  nvdla::NvdlaConfig nvdla = nvdla::NvdlaConfig::small();
  nvdla::Precision precision = nvdla::Precision::kInt8;
  std::uint64_t weight_seed = 42;
  std::uint64_t input_seed = 7;
  Hertz soc_clock = 100 * kMHz;  ///< Table II operating point
  /// How the generated program waits for layer completion: busy-polling
  /// (the paper's flow) or WFI + the NVDLA interrupt line (extension).
  toolflow::WaitMode wait_mode = toolflow::WaitMode::kPoll;
  /// BRAM program memory capacity (runtime backends reject machine code
  /// that overflows it before execution).
  std::uint64_t program_memory_bytes = 4 * 1024 * 1024;
  std::uint64_t dram_bytes = 512ull * 1024 * 1024;
};

/// Input-independent artifacts of the offline frontend: network-level
/// products computed once per (network, config) and never mutated again.
/// Shared read-only — behind shared_ptr<const> — between every
/// PreparedModel that derives from them, so batch workers copy pointers,
/// not the multi-MB weight tensors.
struct FrontendArtifacts {
  std::string model_name;
  /// Hardware tree the flow targets (consumers check it against their own
  /// configuration before reusing downstream artifacts).
  nvdla::NvdlaConfig nvdla;
  compiler::NetWeights weights;
  compiler::CalibrationTable calibration;
  compiler::Loadable loadable;
};

/// Artifacts of one virtual-platform trace. The CSB register stream is
/// input-independent, so the configuration file, the bare-metal program
/// and the weight-file preload image captured here serve *every* image of
/// the session, not just the one that was traced. Immutable once built and
/// shared read-only like FrontendArtifacts; `vp.output`/`vp.total_cycles`
/// describe the traced image specifically (see
/// PreparedModel::vp_matches_input).
struct TraceArtifacts {
  vp::VpRunResult vp;                   ///< VP execution + traces
  toolflow::ConfigFile config_file;
  toolflow::BareMetalProgram program;   ///< assembly + machine code
};

/// Everything the offline flow produces for one network + input.
///
/// Split into the two shared immutable cores above plus a small per-input
/// repack surface (the input tensor and its FP32 reference). Copying a
/// PreparedModel — what every parallel batch worker does — therefore
/// copies two shared_ptrs and the input-sized vectors only; the weight
/// file, trace and program bytes are shared, never duplicated.
struct PreparedModel {
  std::shared_ptr<const FrontendArtifacts> frontend;
  std::shared_ptr<const TraceArtifacts> tail;

  // --- per-input repack surface (the only mutable state) -------------------
  std::vector<float> input;             ///< planar float image
  std::vector<float> reference_output;  ///< FP32 golden output

  /// Whether the shared trace was produced by running the virtual platform
  /// on `input`. The repack-input fast path substitutes a new image
  /// without replaying the VP (the register stream — hence config file and
  /// program — is input-independent), which leaves `vp().output`
  /// describing the *traced* image; backends that report the accelerator's
  /// functional output (`vp`, `linux_baseline`) re-simulate when this is
  /// false instead of returning the stale tensor.
  bool vp_matches_input = true;

  /// Functional VP result for the current (repacked) input, filled lazily
  /// by the first backend that had to re-simulate because vp_matches_input
  /// is false — so repeated runs of the same repacked image pay for one
  /// re-simulation, not one per call. Simulated on `nvdla()` (this model's
  /// hardware tree). Mutable memo: a PreparedModel is only ever used by
  /// one thread at a time (parallel batch workers own private copies).
  struct VpRefresh {
    Cycle total_cycles = 0;
    std::vector<float> output;
  };
  mutable std::optional<VpRefresh> vp_refresh;

  // --- views into the shared cores (valid once the stage is staged) --------
  bool has_frontend() const { return frontend != nullptr; }
  bool has_tail() const { return tail != nullptr; }

  const std::string& model_name() const { return frontend->model_name; }
  const nvdla::NvdlaConfig& nvdla() const { return frontend->nvdla; }
  const compiler::NetWeights& weights() const { return frontend->weights; }
  const compiler::CalibrationTable& calibration() const {
    return frontend->calibration;
  }
  const compiler::Loadable& loadable() const { return frontend->loadable; }
  const vp::VpRunResult& vp() const { return tail->vp; }
  const toolflow::ConfigFile& config_file() const {
    return tail->config_file;
  }
  const toolflow::BareMetalProgram& program() const { return tail->program; }

  /// The DRAM preload image for the *current* input: the shared weight
  /// file with this model's input surface patched in. Materializes a copy
  /// (the shared trace is immutable) — meant for data-product exports and
  /// parity checks; the execution paths write the packed input over the
  /// preloaded surface directly instead of copying megabytes per run.
  vp::WeightFile preload_weight_file() const;
};

/// Run the offline generation flow (Fig. 1) end to end.
PreparedModel prepare_model(const compiler::Network& network,
                            const FlowConfig& config);

/// Result of running the bare-metal program on the SoC model.
struct SocExecution {
  rv::RunResult cpu;
  Cycle cycles = 0;
  double ms = 0.0;
  std::vector<float> output;
  std::size_t predicted_class = 0;
  soc::SocBusCensus census;
  nvdla::EngineStats engine_stats;
  rv::CpuStats cpu_stats;
};

/// Execute on the standalone SoC (Fig. 2, internal DRAM model).
SocExecution execute_on_soc(const PreparedModel& prepared,
                            const FlowConfig& config);

/// Execute on the full board set-up (Fig. 4: Zynq-PS preload through the
/// SmartConnect, CDC to the MIG DDR4, then the SoC runs).
SocExecution execute_on_system_top(const PreparedModel& prepared,
                                   const FlowConfig& config);

/// Maximum |a-b| between two tensors (validation helper).
float max_abs_diff(std::span<const float> a, std::span<const float> b);

}  // namespace nvsoc::core
