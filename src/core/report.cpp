#include "core/report.hpp"

#include <algorithm>
#include <sstream>

#include "common/strfmt.hpp"

namespace nvsoc::core {

std::vector<LayerProfile> ExecutionProfile::hotspots(
    std::size_t top_n) const {
  std::vector<LayerProfile> sorted = layers;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const LayerProfile& a, const LayerProfile& b) {
                     return a.duration > b.duration;
                   });
  if (sorted.size() > top_n) sorted.resize(top_n);
  return sorted;
}

double ExecutionProfile::compute_bound_fraction() const {
  Cycle bound = 0, total = 0;
  for (const auto& layer : layers) {
    total += layer.duration;
    if (layer.compute_bound) bound += layer.duration;
  }
  return total == 0 ? 0.0 : static_cast<double>(bound) / total;
}

std::uint64_t ExecutionProfile::total_traffic_bytes() const {
  std::uint64_t total = 0;
  for (const auto& layer : layers) total += layer.traffic_bytes;
  return total;
}

ExecutionProfile build_profile(
    const compiler::Loadable& loadable,
    const std::vector<nvdla::OpRecord>& records) {
  ExecutionProfile profile;
  const std::size_t n = std::min(loadable.ops.size(), records.size());
  profile.layers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& op = loadable.ops[i];
    const auto& record = records[i];
    LayerProfile layer;
    layer.name = op.name;
    layer.kind = op.kind;
    layer.launch = record.launch;
    layer.complete = record.complete;
    layer.duration = record.duration();
    layer.traffic_bytes = record.cost.traffic_bytes;
    layer.compute_bound =
        record.cost.compute_cycles >= record.cost.dbb_cycles;
    profile.total_cycles =
        std::max(profile.total_cycles, record.complete);
    profile.layers.push_back(std::move(layer));
  }
  return profile;
}

std::string format_profile(const ExecutionProfile& profile, Hertz clock,
                           std::size_t max_rows) {
  std::ostringstream os;
  os << strfmt("{:<40} {:>6} {:>12} {:>10} {:>10} {:>7}\n", "layer", "kind",
               "cycles", "time_us", "KB_moved", "bound");
  std::size_t rows = 0;
  for (const auto& layer : profile.layers) {
    if (max_rows != 0 && rows++ >= max_rows) {
      os << strfmt("... ({} more layers)\n", profile.layers.size() - max_rows);
      break;
    }
    os << strfmt("{:<40} {:>6} {:>12} {:>10.1f} {:>10.1f} {:>7}\n",
                 layer.name.size() > 40 ? layer.name.substr(0, 40)
                                        : layer.name,
                 compiler::hw_op_kind_name(layer.kind), layer.duration,
                 cycles_to_seconds(layer.duration, clock) * 1e6,
                 layer.traffic_bytes / 1024.0,
                 layer.compute_bound ? "MAC" : "DBB");
  }
  os << strfmt("total: {} cycles = {:.3f} ms; {:.1f} MB moved; {:.0f}% of "
               "layer time MAC-bound\n",
               profile.total_cycles,
               cycles_to_ms(profile.total_cycles, clock),
               profile.total_traffic_bytes() / 1e6,
               profile.compute_bound_fraction() * 100.0);
  return os.str();
}

}  // namespace nvsoc::core
