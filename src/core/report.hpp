// Per-layer execution report: joins the compiled loadable's hardware-layer
// descriptors with the engine's OpRecords into a human-readable profile
// (per-layer cycles, compute-vs-DBB boundedness, traffic), the tool an
// integrator uses to find where an inference's time goes.
#pragma once

#include <string>
#include <vector>

#include "compiler/loadable.hpp"
#include "nvdla/engine.hpp"

namespace nvsoc::core {

struct LayerProfile {
  std::string name;          ///< fused IR layer names
  compiler::HwOpKind kind = compiler::HwOpKind::kConv;
  Cycle launch = 0;
  Cycle complete = 0;
  Cycle duration = 0;
  std::uint64_t traffic_bytes = 0;
  bool compute_bound = false;  ///< MAC-bound (vs DBB-bound)
};

struct ExecutionProfile {
  std::vector<LayerProfile> layers;
  Cycle total_cycles = 0;

  /// The `top_n` slowest layers, by duration.
  std::vector<LayerProfile> hotspots(std::size_t top_n) const;
  /// Fraction of total time spent in compute-bound layers.
  double compute_bound_fraction() const;
  std::uint64_t total_traffic_bytes() const;
};

/// Join descriptors and records (must be index-aligned: the engine records
/// ops in launch order, which is the loadable's op order).
ExecutionProfile build_profile(const compiler::Loadable& loadable,
                               const std::vector<nvdla::OpRecord>& records);

/// Render as an aligned text table (markdown-flavoured).
std::string format_profile(const ExecutionProfile& profile, Hertz clock,
                           std::size_t max_rows = 0);

}  // namespace nvsoc::core
