// The overall system set-up of Fig. 4 (the Vivado block design):
//
//   Zynq PS  ──────────────┐
//                          ▼
//   SoC ──► AXI Interconnect (CDC 300 MHz → 100 MHz) ──► AXI SmartConnect
//                                                             │
//                                                             ▼
//                                                      MIG DDR4 ──► DDR
//
// The Zynq processing system initialises the DDR4 with the weight file and
// input image; the SmartConnect then switches the memory over to the SoC,
// which runs the bare-metal program. The AXI Interconnect reconciles the
// SoC's 300 MHz fabric clock with the 100 MHz DDR4 user-interface clock.
#pragma once

#include "bus/smartconnect.hpp"
#include "mem/mig_ddr4.hpp"
#include "soc/soc.hpp"
#include "vp/virtual_platform.hpp"

namespace nvsoc::soc {

struct SystemTopConfig {
  SocConfig soc;
  /// Clock of the SoC-side AXI fabric (the paper's block design clocks it
  /// at 300 MHz). 0 means "same as the SoC clock", which keeps the whole
  /// PL in one domain — the Table II operating point.
  Hertz soc_fabric_clock = 0;
  Hertz ddr_ui_clock = 100 * kMHz;
  MigTiming mig;
};

class SystemTop {
 public:
  explicit SystemTop(SystemTopConfig config);

  /// Phase 1 (Zynq PS): preload DDR through the PS-side SmartConnect port.
  /// Word-accurate bus transactions; returns the PS cycles consumed.
  Cycle ps_preload(Addr dram_offset, std::span<const std::uint8_t> bytes);
  /// Fast-path preload (PS DMA backdoor) for bulk images.
  void ps_preload_backdoor(Addr dram_offset,
                           std::span<const std::uint8_t> bytes);
  void ps_preload_weight_file(const vp::WeightFile& weights);

  /// Phase 2: flip the SmartConnect to the SoC and run the program.
  void switch_to_soc() { smartconnect_->select(SmartConnectSelect::kSoc); }
  void switch_to_ps() { smartconnect_->select(SmartConnectSelect::kZynqPs); }

  Soc& soc() { return *soc_; }
  Dram& ddr() { return ddr_; }
  MigDdr4& mig() { return *mig_; }
  AxiSmartConnect& smartconnect() { return *smartconnect_; }
  AxiInterconnectCdc& interconnect() { return *cdc_; }
  const SystemTopConfig& config() const { return config_; }

 private:
  SystemTopConfig config_;
  Dram ddr_;
  std::unique_ptr<MigDdr4> mig_;
  std::unique_ptr<AxiSmartConnect> smartconnect_;
  std::unique_ptr<AxiInterconnectCdc> cdc_;
  std::unique_ptr<Soc> soc_;
  Cycle ps_cycle_ = 0;
};

}  // namespace nvsoc::soc
