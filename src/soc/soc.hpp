// The SoC of Fig. 2: µRISC-V core + system bus (decoder + arbitration) +
// NVDLA wrapper (AHB->APB bridge, APB->CSB adapter, AHB->AXI bridge, AXI
// 64->32 data-width converter) + DRAM data memory + BRAM program memory.
//
// Address map (the paper's):
//   0x000000 - 0x0FFFFF    NVDLA configuration registers
//   0x100000 - 0x200FFFFF  DRAM data memory (512 MB)
//
// The core runs the bare-metal machine code produced by the toolflow;
// NVDLA register programming happens through plain load/store instructions
// across the decoder and bridges; the NVDLA's DBB shares the DRAM with the
// core through the arbiter. Data memory can optionally be an external port
// (SystemTop wires the Fig. 4 CDC/SmartConnect/MIG path there).
#pragma once

#include <memory>
#include <optional>

#include "bus/arbiter.hpp"
#include "bus/bridges.hpp"
#include "bus/decoder.hpp"
#include "bus/width_converter.hpp"
#include "mem/dram.hpp"
#include "mem/program_memory.hpp"
#include "nvdla/engine.hpp"
#include "riscv/cpu.hpp"

namespace nvsoc::soc {

struct SocConfig {
  Hertz clock = 100 * kMHz;  ///< system clock (Table II operating point)
  std::uint64_t program_memory_bytes = 4 * 1024 * 1024;
  std::uint64_t dram_bytes = 512ull * 1024 * 1024;
  nvdla::NvdlaConfig nvdla = nvdla::NvdlaConfig::small();
  rv::CpuConfig cpu;
  BridgeTiming bridges;
  DramTiming dram_timing;
  /// Deterministic fault injection armed on the NVDLA's CSB/DBB interfaces
  /// (nullptr = fault-free). Shared so concurrent platforms of one
  /// configured variant consume one decision sequence.
  std::shared_ptr<fault::Injector> fault;
};

/// Census of per-component traffic for the Fig. 2 bench.
struct SocBusCensus {
  BusStats decoder;
  BusStats ahb2apb;
  BusStats apb2csb;
  BusStats ahb2axi;
  BusStats width_converter;
  ArbiterMasterStats arbiter_cpu;
  ArbiterMasterStats arbiter_dbb;
  nvdla::DbbStats dbb;
};

class Soc {
 public:
  /// `external_memory`: when set, the SoC's data-memory port (downstream of
  /// the arbiter) connects there instead of the internal DRAM — the Fig. 4
  /// configuration. The external target must accept DRAM-relative addresses.
  explicit Soc(SocConfig config, BusTarget* external_memory = nullptr);

  // --- programming -----------------------------------------------------------
  ProgramMemory& program_memory() { return pmem_; }
  /// Internal DRAM backdoor; throws when external memory is wired.
  Dram& dram();
  bool has_internal_dram() const { return external_memory_ == nullptr; }

  // --- execution -------------------------------------------------------------
  /// Run the loaded program to completion (ebreak) or `max_instructions`.
  rv::RunResult run(std::uint64_t max_instructions = UINT64_MAX);
  void reset();

  // --- introspection -----------------------------------------------------------
  rv::Cpu& cpu() { return *cpu_; }
  nvdla::Nvdla& nvdla() { return *nvdla_; }
  const SocConfig& config() const { return config_; }
  SocBusCensus bus_census() const;

  double cycles_to_ms(Cycle cycles) const {
    return nvsoc::cycles_to_ms(cycles, config_.clock);
  }

 private:
  SocConfig config_;

  ProgramMemory pmem_;
  std::optional<Dram> internal_dram_;
  BusTarget* external_memory_;

  std::unique_ptr<DramArbiter> arbiter_;
  std::unique_ptr<AxiWidthConverter> width_converter_;
  std::unique_ptr<nvdla::Nvdla> nvdla_;
  std::unique_ptr<ApbToCsbAdapter> apb2csb_;
  std::unique_ptr<AhbToApbBridge> ahb2apb_;
  std::unique_ptr<AhbToAxiBridge> ahb2axi_;
  std::unique_ptr<SystemBusDecoder> decoder_;
  std::unique_ptr<rv::Cpu> cpu_;
};

}  // namespace nvsoc::soc
