#include "soc/soc.hpp"

#include <stdexcept>

namespace nvsoc::soc {

Soc::Soc(SocConfig config, BusTarget* external_memory)
    : config_(std::move(config)),
      pmem_(config_.program_memory_bytes),
      external_memory_(external_memory) {
  BusTarget* memory = external_memory_;
  if (memory == nullptr) {
    internal_dram_.emplace(config_.dram_bytes, config_.dram_timing);
    memory = &*internal_dram_;
  }

  // Arbiter guards the shared data memory between the two masters.
  arbiter_ = std::make_unique<DramArbiter>(*memory);

  // NVDLA wrapper: 64-bit DBB -> width converter -> arbiter DBB port.
  width_converter_ = std::make_unique<AxiWidthConverter>(
      arbiter_->port(MasterId::kNvdlaDbb));
  nvdla_ = std::make_unique<nvdla::Nvdla>(config_.nvdla, *width_converter_);
  if (config_.fault != nullptr) {
    nvdla_->set_fault_injector(config_.fault);
  }

  // Config path: AHB -> APB -> CSB.
  apb2csb_ = std::make_unique<ApbToCsbAdapter>(*nvdla_, config_.bridges);
  ahb2apb_ = std::make_unique<AhbToApbBridge>(*apb2csb_, config_.bridges);

  // Data path: AHB -> AXI -> arbiter CPU port.
  ahb2axi_ = std::make_unique<AhbToAxiBridge>(arbiter_->port(MasterId::kCpu),
                                              config_.bridges);

  // System-bus decoder with the paper's two slave regions.
  decoder_ = std::make_unique<SystemBusDecoder>();
  decoder_->add_region({addrmap::kNvdlaBase, addrmap::kNvdlaLast,
                        ahb2apb_.get(), /*relative_addressing=*/true,
                        "nvdla"});
  decoder_->add_region({addrmap::kDramBase, addrmap::kDramLast,
                        ahb2axi_.get(), /*relative_addressing=*/true,
                        "dram"});

  cpu_ = std::make_unique<rv::Cpu>(pmem_, *decoder_, config_.cpu);
}

Dram& Soc::dram() {
  if (!internal_dram_) {
    throw std::runtime_error("Soc: data memory is external (Fig. 4 set-up)");
  }
  return *internal_dram_;
}

rv::RunResult Soc::run(std::uint64_t max_instructions) {
  // Burst loop with the NVDLA interrupt line wired to the core. The line is
  // re-sampled between bursts; the core internally degenerates to
  // single-instruction bursts whenever interrupts are armed (and yields at
  // wfi/CSR boundaries), so a pending NVDLA completion is observed at
  // exactly the same instruction boundary as the per-step loop this
  // replaces. A WFI with no pending interrupt puts the core to sleep until
  // the next NVDLA completion event (the clock keeps running); with no
  // event in flight it is a genuine halt.
  rv::RunResult result;
  std::uint64_t executed = 0;
  while (executed < max_instructions) {
    cpu_->set_irq(nvdla_->irq_pending(cpu_->cycle()));
    rv::HaltReason reason = rv::HaltReason::kNone;
    executed += cpu_->step_burst(max_instructions - executed, reason);
    if (reason == rv::HaltReason::kWfi) {
      if (const auto wake = nvdla_->next_completion_after(cpu_->cycle())) {
        cpu_->advance_to(*wake);
        ++executed;  // the sleeping wfi attempt consumes an instruction slot
        continue;    // retry the wfi with the interrupt now pending
      }
    }
    if (reason != rv::HaltReason::kNone) {
      result.reason = reason;
      break;
    }
  }
  if (result.reason == rv::HaltReason::kNone) {
    result.reason = rv::HaltReason::kInstructionLimit;
  }
  result.cycles = cpu_->cycle();
  result.stats = cpu_->stats();
  result.detail = cpu_->halt_detail();
  return result;
}

void Soc::reset() {
  cpu_->reset();
  nvdla_->reset();
}

SocBusCensus Soc::bus_census() const {
  SocBusCensus census;
  census.decoder = decoder_->stats();
  census.ahb2apb = ahb2apb_->stats();
  census.apb2csb = apb2csb_->stats();
  census.ahb2axi = ahb2axi_->stats();
  census.width_converter = width_converter_->stats();
  census.arbiter_cpu = arbiter_->master_stats(MasterId::kCpu);
  census.arbiter_dbb = arbiter_->master_stats(MasterId::kNvdlaDbb);
  census.dbb = nvdla_->dbb_stats();
  return census;
}

}  // namespace nvsoc::soc
